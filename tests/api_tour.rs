//! Compile-and-run mirror of the README "Public API tour" snippet, so the
//! tour cannot silently drift from the real API.

use alvc::prelude::*;
use std::sync::Arc;

#[test]
fn readme_public_api_tour() -> Result<(), Error> {
    let dc = Arc::new(
        AlvcTopologyBuilder::new()
            .racks(8)
            .servers_per_rack(4)
            .vms_per_server(2)
            .ops_count(24)
            .tor_ops_degree(4)
            .seed(1)
            .build(),
    );

    // Direct (single-caller) style: the orchestrator via its builder.
    let mut orch = Orchestrator::builder()
        .sdn_table_limit(4096)
        .quiet(true)
        .build();
    let vms: Vec<_> = dc.vm_ids().take(8).collect();
    let chain = orch.deploy_chain(
        &dc,
        "tenant-a",
        vms.clone(),
        fig5::black(vms[0], vms[7]),
        &PaperGreedy::new(),
        &ElectronicOnlyPlacer::new(),
    )?;
    assert!(orch.chain(chain).is_some());

    // Redesigned chain surface: specs are built (and validated) through
    // the builder — linear stage lists or partial-order DAGs — and carry
    // typed placement rules enforced at admission.
    let mut b = ChainSpec::builder("inspect");
    let fw = b.stage(VnfSpec::of(VnfType::Firewall));
    let dpi = b.stage(VnfSpec::of(VnfType::Dpi));
    let nat = b.stage(VnfSpec::of(VnfType::Nat));
    b.dependency(fw, dpi).dependency(fw, nat); // DAG: fw → {dpi, nat}
    let ruled = b
        .ingress(vms[0])
        .egress(vms[7])
        .bandwidth_gbps(1.5)
        .anti_affine(dpi, nat)
        .build()?; // typed ChainSpecError on a malformed spec
    let ruled_chain = orch.deploy_chain(
        &dc,
        "tenant-a",
        vms.clone(),
        ruled.clone(),
        &PaperGreedy::new(),
        &ConstraintAwarePlacer::new(), // enforces the rules during placement
    )?;
    let hosts = orch.chain(ruled_chain).unwrap().hosts();
    assert!(ruled.violated_rule(&dc, hosts).is_none());

    // Multi-tenant style: the intent-based control plane.
    let cp = ControlPlane::builder()
        .default_quota(TenantQuota::new(4, 8))
        .build(dc.clone());
    let group: Vec<_> = dc.vm_ids().skip(8).take(8).collect();
    let ticket = cp.submit(
        "tenant-b",
        Intent::DeployChain {
            spec: fig5::green(group[0], group[7]),
            vms: group,
        },
    );
    cp.process_all();
    assert!(cp.outcome(ticket).unwrap().is_completed());
    let view: Arc<StateView> = cp.view();
    assert_eq!(view.chains_of("tenant-b").len(), 1);

    // The log replays to the same view on a fresh control plane.
    let fresh = ControlPlane::builder()
        .default_quota(TenantQuota::new(4, 8))
        .build(dc.clone());
    assert_eq!(*fresh.replay(&cp.intent_log()), *view);
    Ok(())
}
