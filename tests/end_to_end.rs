//! End-to-end integration: topology → clustering → abstraction layers →
//! NFC orchestration → flow simulation, with every architectural invariant
//! checked along the way.

use alvc::core::clustering::tenant_clusters;
use alvc::core::construction::PaperGreedy;
use alvc::core::service_clusters;
use alvc::nfv::chain::fig5;
use alvc::nfv::{Orchestrator, VnfState};
use alvc::optical::EnergyModel;
use alvc::placement::OpticalFirstPlacer;
use alvc::sim::{ChainLoad, FlowSim, FlowSizeDistribution};
use alvc::topology::{AlvcTopologyBuilder, DataCenter, OpsInterconnect};

fn standard_dc(seed: u64) -> DataCenter {
    AlvcTopologyBuilder::new()
        .racks(10)
        .servers_per_rack(4)
        .vms_per_server(2)
        .ops_count(30)
        .tor_ops_degree(6)
        .opto_fraction(0.5)
        .interconnect(OpsInterconnect::FullMesh)
        .seed(seed)
        .build()
}

#[test]
fn full_pipeline_respects_all_invariants() {
    let dc = standard_dc(100);
    let mut orch = Orchestrator::new();

    // Deploy one chain per tenant over thirds of the data center.
    let all_vms: Vec<_> = dc.vm_ids().collect();
    let tenants = tenant_clusters(&all_vms, 3);
    let specs = [
        fig5::blue(tenants[0].vms[0], *tenants[0].vms.last().unwrap()),
        fig5::black(tenants[1].vms[0], *tenants[1].vms.last().unwrap()),
        fig5::green(tenants[2].vms[0], *tenants[2].vms.last().unwrap()),
    ];
    let mut ids = Vec::new();
    for (t, spec) in tenants.iter().zip(specs) {
        ids.push(
            orch.deploy_chain(
                &dc,
                t.label,
                t.vms.clone(),
                spec,
                &PaperGreedy::new(),
                &OpticalFirstPlacer::new(),
            )
            .expect("deployment feasible"),
        );
    }

    // Invariant 1: one NFC per VC, slices bound both ways.
    assert_eq!(orch.chain_count(), 3);
    assert_eq!(orch.manager().cluster_count(), 3);
    for &id in &ids {
        let cluster = orch.chain(id).unwrap().cluster();
        assert_eq!(orch.slices().cluster_of(id), Some(cluster));
        assert_eq!(orch.slices().chain_of(cluster), Some(id));
    }

    // Invariant 2: OPS-disjoint abstraction layers, each valid for its VMs.
    assert!(orch.manager().verify_disjoint());
    for vc in orch.manager().clusters() {
        assert!(vc.al().validate(&dc, vc.vms()).is_ok());
    }

    // Invariant 3: every chain's path starts at the ingress server, ends
    // at the egress server, and visits its VNF hosts in order.
    for &id in &ids {
        let chain = orch.chain(id).unwrap();
        let spec = chain.nfc().spec();
        let first = *chain.path().nodes().first().unwrap();
        let last = *chain.path().nodes().last().unwrap();
        assert_eq!(first, dc.node_of_server(dc.server_of_vm(spec.ingress)));
        assert_eq!(last, dc.node_of_server(dc.server_of_vm(spec.egress)));
        let mut cursor = 0;
        for host in chain.hosts() {
            let node = match host {
                alvc::nfv::HostLocation::Server(s) => dc.node_of_server(*s),
                alvc::nfv::HostLocation::OptoRouter(o) => dc.node_of_ops(*o),
            };
            let pos = chain.path().nodes()[cursor..]
                .iter()
                .position(|&n| n == node)
                .expect("host must appear on the path after the previous host");
            cursor += pos;
        }
    }

    // Invariant 4: SDN rules exactly cover the paths.
    let expected_rules: usize = ids
        .iter()
        .map(|&id| orch.chain(id).unwrap().path().nodes().len())
        .sum();
    assert_eq!(orch.sdn().total_rules(), expected_rules);

    // Invariant 5: every instance is active and serving.
    for &id in &ids {
        for &iid in orch.chain(id).unwrap().instances() {
            assert_eq!(orch.instance(iid).unwrap().state(), VnfState::Active);
        }
    }

    // Drive traffic and confirm conversion accounting matches the paths.
    let loads: Vec<ChainLoad> = ids
        .iter()
        .map(|&id| {
            let chain = orch.chain(id).unwrap();
            ChainLoad {
                chain: id,
                path: chain.path().clone(),
                bandwidth_gbps: 10.0,
                arrival_rate_per_s: 2000.0,
                sizes: FlowSizeDistribution::Constant(10_000),
            }
        })
        .collect();
    let per_flow: Vec<usize> = ids
        .iter()
        .map(|&id| orch.chain(id).unwrap().oeo_conversions())
        .collect();
    let report = FlowSim::new(EnergyModel::default(), loads).run(0.02, 7);
    assert!(report.total_flows > 0);
    for (i, &id) in ids.iter().enumerate() {
        let chain_report = &report.per_chain[&id.index()];
        assert_eq!(
            chain_report.oeo_conversions,
            chain_report.flows * per_flow[i] as u64,
            "simulated conversions must equal path conversions × flows"
        );
    }

    // Teardown restores a clean slate.
    for id in ids {
        orch.teardown_chain(id).expect("chain exists");
    }
    assert_eq!(orch.chain_count(), 0);
    assert_eq!(orch.sdn().total_rules(), 0);
    assert_eq!(orch.manager().cluster_count(), 0);
    assert!(orch.slices().is_empty());
    assert_eq!(orch.manager().availability().blocked_count(), 0);
}

#[test]
fn repeated_deploy_teardown_cycles_do_not_leak() {
    let dc = standard_dc(101);
    let mut orch = Orchestrator::new();
    let vms: Vec<_> = dc.vm_ids().collect();
    for round in 0..20 {
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        let id = orch
            .deploy_chain(
                &dc,
                format!("round-{round}"),
                vms.clone(),
                spec,
                &PaperGreedy::new(),
                &OpticalFirstPlacer::new(),
            )
            .expect("pool fully free each round");
        orch.teardown_chain(id).expect("chain exists");
    }
    assert_eq!(orch.manager().availability().blocked_count(), 0);
    assert_eq!(orch.sdn().total_rules(), 0);
    // Opto capacity fully released.
    for o in dc.optoelectronic_ops() {
        assert_eq!(orch.opto_usage(o).cpu, 0.0);
    }
}

#[test]
fn service_clusters_cover_every_vm_once() {
    let dc = standard_dc(102);
    let clusters = service_clusters(&dc);
    let mut seen = vec![false; dc.vm_count()];
    for c in &clusters {
        for vm in &c.vms {
            assert!(!seen[vm.index()], "vm in two clusters");
            seen[vm.index()] = true;
        }
    }
    assert!(seen.iter().all(|&b| b), "every vm clustered");
}

#[test]
fn umbrella_crate_reexports_work() {
    // Compile-time sanity that the `alvc` facade exposes the full stack.
    let dc = alvc::topology::AlvcTopologyBuilder::new().seed(0).build();
    let _stats = alvc::topology::TopologyStats::compute(&dc);
    let _cover = alvc::graph::cover::SetCoverInstance::new(2, vec![vec![0, 1]]);
    let _energy = alvc::optical::EnergyModel::default();
    let _sum = alvc::sim::Summary::new();
}
