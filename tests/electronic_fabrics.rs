//! The full NFV stack over pure-electronic fabrics (leaf–spine and
//! fat-tree): AL-VC machinery is topology-agnostic — chains deploy, slices
//! stay disjoint, and with no optical links there are no O/E/O conversions
//! anywhere (and no optical VNF hosts to place on).

use alvc::core::clustering::tenant_clusters;
use alvc::core::construction::PaperGreedy;
use alvc::nfv::chain::fig5;
use alvc::nfv::{ElectronicOnlyPlacer, HostLocation, Orchestrator};
use alvc::placement::OpticalFirstPlacer;
use alvc::topology::{fat_tree, leaf_spine, DataCenter, FatTreeParams, LeafSpineParams};

fn fabrics() -> Vec<(&'static str, DataCenter)> {
    vec![
        (
            "leaf-spine",
            leaf_spine(&LeafSpineParams {
                leaves: 8,
                spines: 4,
                servers_per_rack: 4,
                vms_per_server: 2,
                seed: 5,
            }),
        ),
        (
            "fat-tree",
            fat_tree(&FatTreeParams {
                k: 4,
                vms_per_server: 2,
                seed: 5,
            }),
        ),
    ]
}

#[test]
fn chains_deploy_on_electronic_fabrics_without_conversions() {
    for (name, dc) in fabrics() {
        assert_eq!(
            dc.link_count_in_domain(alvc::topology::Domain::Optical),
            0,
            "{name} must be fully electronic"
        );
        let mut orch = Orchestrator::new();
        let all_vms: Vec<_> = dc.vm_ids().collect();
        let tenants = tenant_clusters(&all_vms, 2);
        for (i, tenant) in tenants.iter().enumerate() {
            let spec = if i == 0 {
                fig5::black(tenant.vms[0], *tenant.vms.last().unwrap())
            } else {
                fig5::green(tenant.vms[0], *tenant.vms.last().unwrap())
            };
            let id = orch
                .deploy_chain(
                    &dc,
                    tenant.label,
                    tenant.vms.clone(),
                    spec,
                    &PaperGreedy::new(),
                    // Optical-first degrades gracefully: no optoelectronic
                    // candidates exist, so everything lands on servers.
                    &OpticalFirstPlacer::new(),
                )
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let chain = orch.chain(id).unwrap();
            assert_eq!(chain.oeo_conversions(), 0, "{name}: no optical domain");
            assert!(
                chain
                    .hosts()
                    .iter()
                    .all(|h| matches!(h, HostLocation::Server(_))),
                "{name}: only electronic hosts exist"
            );
            // Path stays in the electronic domain entirely.
            let (e, o) = chain.path().hops_by_domain();
            assert!(e > 0);
            assert_eq!(o, 0, "{name}: no optical hops");
        }
        assert!(orch.manager().verify_disjoint(), "{name}");
    }
}

#[test]
fn electronic_placer_matches_on_both_fabrics() {
    for (name, dc) in fabrics() {
        let mut orch = Orchestrator::new();
        let vms: Vec<_> = dc.vm_ids().collect();
        let spec = fig5::blue(vms[0], *vms.last().unwrap());
        let id = orch
            .deploy_chain(
                &dc,
                "t",
                vms,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let chain = orch.chain(id).unwrap();
        assert_eq!(chain.hosts().len(), 3, "{name}");
        orch.teardown_chain(id).unwrap();
        assert_eq!(orch.manager().availability().blocked_count(), 0, "{name}");
    }
}
