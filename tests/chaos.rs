//! Chaos integration test: failures, modifications, scaling, churn, and
//! teardown interleaved over the full stack, with global invariants
//! checked at every step.

use alvc::core::clustering::tenant_clusters;
use alvc::core::construction::{PaperGreedy, RedundantGreedy};
use alvc::nfv::chain::fig5;
use alvc::nfv::Orchestrator;
use alvc::placement::OpticalFirstPlacer;
use alvc::topology::{
    AlvcTopologyBuilder, DataCenter, Element, OpsId, OpsInterconnect, ServerId, TorId,
};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

fn build() -> DataCenter {
    AlvcTopologyBuilder::new()
        .racks(10)
        .servers_per_rack(4)
        .vms_per_server(2)
        .ops_count(40)
        .tor_ops_degree(8)
        .opto_fraction(0.5)
        .interconnect(OpsInterconnect::FullMesh)
        .seed(777)
        .build()
}

/// Step count, overridable for the CI chaos job (`CHAOS_STEPS=1000`).
fn chaos_steps() -> usize {
    std::env::var("CHAOS_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(120)
}

#[test]
fn orchestrator_survives_chaotic_operation_mix() {
    let dc = build();
    let mut orch = Orchestrator::new();
    let mut rng = StdRng::seed_from_u64(31337);

    let all_vms: Vec<_> = dc.vm_ids().collect();
    let tenants = tenant_clusters(&all_vms, 3);
    let mut live: Vec<(alvc::nfv::NfcId, usize)> = Vec::new();
    let mut free: Vec<usize> = (0..tenants.len()).collect();

    for step in 0..chaos_steps() {
        match rng.random_range(0..7u8) {
            // Deploy a chain for a free tenant group.
            0 => {
                if let Some(pos) = (!free.is_empty()).then(|| rng.random_range(0..free.len())) {
                    let tenant_idx = free[pos];
                    let group = &tenants[tenant_idx];
                    let spec = match step % 3 {
                        0 => fig5::blue(group.vms[0], *group.vms.last().unwrap()),
                        1 => fig5::black(group.vms[0], *group.vms.last().unwrap()),
                        _ => fig5::green(group.vms[0], *group.vms.last().unwrap()),
                    };
                    if let Ok(id) = orch.deploy_chain(
                        &dc,
                        group.label,
                        group.vms.clone(),
                        spec,
                        &PaperGreedy::new(),
                        &OpticalFirstPlacer::new(),
                    ) {
                        free.swap_remove(pos);
                        live.push((id, tenant_idx));
                    }
                }
            }
            // Teardown a live chain.
            1 if !live.is_empty() => {
                let pos = rng.random_range(0..live.len());
                let (id, tenant_idx) = live.swap_remove(pos);
                orch.teardown_chain(id).expect("live chain");
                free.push(tenant_idx);
            }
            // Modify a live chain.
            2 => {
                if let Some(&(id, tenant_idx)) = live.first() {
                    let group = &tenants[tenant_idx];
                    let spec = fig5::black(group.vms[0], *group.vms.last().unwrap());
                    let _ = orch.modify_chain(&dc, id, spec, &OpticalFirstPlacer::new());
                }
            }
            // Scale out / in.
            3 => {
                if let Some(&(id, _)) = live.first() {
                    if let Ok(replica) = orch.scale_out(&dc, id, 0) {
                        if rng.random::<f64>() < 0.5 {
                            orch.scale_in(replica).expect("fresh replica");
                        }
                    }
                }
            }
            // Lifecycle events.
            4 => {
                if let Some(&(id, _)) = live.first() {
                    if let Some(&iid) = orch.chain(id).unwrap().instances().first() {
                        let _ = orch.begin_update(iid);
                        let _ = orch.complete_operation(iid);
                    }
                }
            }
            // Element failure or restore: the recovery ladder runs inline
            // and may discard chains it cannot save.
            5 => {
                if rng.random::<f64>() < 0.6 {
                    match rng.random_range(0..3u8) {
                        0 => {
                            let s = ServerId(rng.random_range(0..dc.server_count()));
                            let _ = orch.fail_server(&dc, s, &OpticalFirstPlacer::new());
                        }
                        1 => {
                            let t = TorId(rng.random_range(0..dc.tor_count()));
                            let _ = orch.fail_tor(&dc, t, &OpticalFirstPlacer::new());
                        }
                        _ => {
                            let o = OpsId(rng.random_range(0..dc.ops_count()));
                            let _ = orch.fail_ops(
                                &dc,
                                o,
                                &PaperGreedy::new(),
                                &OpticalFirstPlacer::new(),
                            );
                        }
                    }
                } else if let Some(&element) = orch.health().failed().first() {
                    match element {
                        Element::Server(s) => assert!(orch.restore_server(s)),
                        Element::Tor(t) => assert!(orch.restore_tor(t)),
                        Element::Ops(o) => assert!(orch.restore_ops(o)),
                    }
                    // Pull degraded chains back into their slices.
                    let _ = orch.reoptimize_degraded(&dc, &OpticalFirstPlacer::new());
                }
                // Recovery may have torn unrecoverable chains down.
                live.retain(|&(id, tenant_idx)| {
                    let alive = orch.chain(id).is_some();
                    if !alive {
                        free.push(tenant_idx);
                    }
                    alive
                });
            }
            // No-op breathing room (keeps op mix from overloading slices).
            _ => {}
        }

        // Global invariants after every operation.
        assert!(orch.manager().verify_disjoint(), "step {step}: overlap");
        assert_eq!(orch.chain_count(), live.len(), "step {step}: chain count");
        assert!(
            orch.verify_no_failed_references(&dc),
            "step {step}: state references a failed element"
        );
        // Terminated instances are garbage-collected: the instance map
        // holds exactly the chain members plus live replicas.
        let chain_instances: usize = orch.chains().map(|c| c.instances().len()).sum();
        assert_eq!(
            orch.instance_count(),
            chain_instances + orch.replica_count(),
            "step {step}: instance leak"
        );
        for &(id, _) in &live {
            let chain = orch.chain(id).expect("live chain");
            let vc = orch.manager().cluster(chain.cluster()).expect("slice");
            assert!(
                vc.al().validate(&dc, vc.vms()).is_ok(),
                "step {step}: invalid AL"
            );
            for &iid in chain.instances() {
                assert!(
                    orch.instance(iid).unwrap().is_serving(),
                    "step {step}: chain member not serving"
                );
            }
        }
    }

    // Drain, then restore whatever is still failed: the clean slate must
    // hold ledgers, rules, instances, and switch availability at zero.
    for (id, _) in live {
        orch.teardown_chain(id).expect("live chain");
    }
    for element in orch.health().failed() {
        match element {
            Element::Server(s) => assert!(orch.restore_server(s)),
            Element::Tor(t) => assert!(orch.restore_tor(t)),
            Element::Ops(o) => assert!(orch.restore_ops(o)),
        }
    }
    assert!(orch.health().all_healthy());
    assert_eq!(orch.chain_count(), 0);
    assert_eq!(orch.sdn().total_rules(), 0);
    assert_eq!(orch.instance_count(), 0);
    assert!(orch.degraded_chains().is_empty());
    assert_eq!(orch.manager().availability().blocked_count(), 0);
}

#[test]
fn cluster_manager_survives_failure_storm_with_redundancy() {
    let dc = build();
    let mut mgr = alvc::core::ClusterManager::new();
    let ctor = RedundantGreedy::new(2);
    let all_vms: Vec<_> = dc.vm_ids().collect();
    let groups = tenant_clusters(&all_vms, 2);
    let mut ids = Vec::new();
    for g in &groups {
        ids.push(
            mgr.create_cluster(&dc, g.label, g.vms.clone(), &ctor)
                .expect("roomy topology"),
        );
    }
    let mut rng = StdRng::seed_from_u64(99);
    let pool: Vec<_> = dc.ops_ids().collect();
    let mut recovered = 0;
    for _ in 0..12 {
        let &victim = pool.choose(&mut rng).unwrap();
        if mgr.fail_ops(&dc, victim, &ctor).is_ok() {
            recovered += 1;
        }
        assert!(mgr.verify_disjoint());
        for &id in &ids {
            let vc = mgr.cluster(id).unwrap();
            // Valid unless the last repair failed (then flagged).
            if mgr.verify_no_failed_in_use() {
                assert!(vc.al().validate(&dc, vc.vms()).is_ok());
            }
        }
    }
    assert!(recovered >= 10, "redundant layers absorb most failures");
}
