//! Reproducibility: the entire pipeline is a pure function of its seeds.

use alvc::core::construction::{AlConstruct, PaperGreedy, RandomSelection};
use alvc::core::{service_clusters, OpsAvailability};
use alvc::nfv::chain::fig5;
use alvc::nfv::Orchestrator;
use alvc::optical::EnergyModel;
use alvc::placement::{CostDrivenPlacer, OpticalFirstPlacer};
use alvc::sim::workload::{FlowSizeDistribution, ServiceTraffic};
use alvc::sim::{ChainLoad, FlowSim};
use alvc::topology::{AlvcTopologyBuilder, DataCenter, OpsInterconnect};

fn build(seed: u64) -> DataCenter {
    AlvcTopologyBuilder::new()
        .racks(8)
        .servers_per_rack(4)
        .vms_per_server(2)
        .ops_count(24)
        .tor_ops_degree(6)
        .opto_fraction(0.5)
        .dual_home_prob(0.3)
        .interconnect(OpsInterconnect::FullMesh)
        .seed(seed)
        .build()
}

#[test]
fn topology_construction_is_deterministic() {
    let (a, b) = (build(7), build(7));
    assert_eq!(a.graph().node_count(), b.graph().node_count());
    assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    for vm in a.vm_ids() {
        assert_eq!(a.service_of_vm(vm), b.service_of_vm(vm));
        assert_eq!(a.tors_of_vm(vm), b.tors_of_vm(vm));
    }
    for o in a.ops_ids() {
        assert_eq!(a.tors_of_ops(o), b.tors_of_ops(o));
        assert_eq!(a.opto_capacity(o).is_some(), b.opto_capacity(o).is_some());
    }
}

#[test]
fn al_construction_is_deterministic() {
    let dc = build(8);
    for c in service_clusters(&dc) {
        for _ in 0..3 {
            let x = PaperGreedy::new().construct(&dc, &c.vms, &OpsAvailability::all());
            let y = PaperGreedy::new().construct(&dc, &c.vms, &OpsAvailability::all());
            assert_eq!(x, y);
            let rx = RandomSelection::new(4).construct(&dc, &c.vms, &OpsAvailability::all());
            let ry = RandomSelection::new(4).construct(&dc, &c.vms, &OpsAvailability::all());
            assert_eq!(rx, ry);
        }
    }
}

#[test]
fn full_deployment_is_deterministic() {
    let run = || {
        let dc = build(9);
        let vms: Vec<_> = dc.vm_ids().collect();
        let mut orch = Orchestrator::new();
        let spec = fig5::green(vms[0], *vms.last().unwrap());
        let id = orch
            .deploy_chain(
                &dc,
                "t",
                vms.clone(),
                spec,
                &PaperGreedy::new(),
                &CostDrivenPlacer::new(),
            )
            .unwrap();
        let chain = orch.chain(id).unwrap();
        (
            chain.hosts().to_vec(),
            chain.path().nodes().to_vec(),
            chain.oeo_conversions(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn flow_simulation_is_deterministic() {
    let dc = build(10);
    let vms: Vec<_> = dc.vm_ids().collect();
    let mut orch = Orchestrator::new();
    let spec = fig5::blue(vms[0], *vms.last().unwrap());
    let id = orch
        .deploy_chain(
            &dc,
            "t",
            vms,
            spec,
            &PaperGreedy::new(),
            &OpticalFirstPlacer::new(),
        )
        .unwrap();
    let load = || ChainLoad {
        chain: id,
        path: orch.chain(id).unwrap().path().clone(),
        bandwidth_gbps: 10.0,
        arrival_rate_per_s: 3000.0,
        sizes: FlowSizeDistribution::dcn_default(),
    };
    let a = FlowSim::new(EnergyModel::default(), vec![load()]).run(0.02, 11);
    let b = FlowSim::new(EnergyModel::default(), vec![load()]).run(0.02, 11);
    assert_eq!(a.total_flows, b.total_flows);
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.total_oeo, b.total_oeo);
    assert_eq!(a.peak_in_flight, b.peak_in_flight);
    assert!((a.total_energy_j - b.total_energy_j).abs() < 1e-12);
}

#[test]
fn workload_generation_is_deterministic() {
    let dc = build(11);
    let gen = |seed| {
        let mut g = ServiceTraffic::new(0.8, FlowSizeDistribution::dcn_default(), seed);
        g.generate(&dc, 200)
    };
    assert_eq!(gen(3), gen(3));
    assert_ne!(gen(3), gen(4));
}

#[test]
fn different_topology_seeds_differ() {
    let a = build(1);
    let b = build(2);
    let differs = a.tor_ids().any(|t| a.ops_of_tor(t) != b.ops_of_tor(t))
        || a.vm_ids().any(|v| a.service_of_vm(v) != b.service_of_vm(v));
    assert!(differs);
}
