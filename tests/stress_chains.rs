//! Stress: hundreds of randomized chains deployed and torn down through
//! the orchestrator without leaking any resource.

use alvc::core::construction::CostAwareGreedy;
use alvc::nfv::{ChainSpec, Orchestrator, VnfSpec, VnfType};
use alvc::placement::{CostDrivenPlacer, OpticalFirstPlacer};
use alvc::sim::workload::ChainWorkload;
use alvc::topology::{AlvcTopologyBuilder, OpsInterconnect};

#[test]
fn three_hundred_random_chains_deploy_cleanly() {
    let dc = AlvcTopologyBuilder::new()
        .racks(8)
        .servers_per_rack(4)
        .vms_per_server(2)
        .ops_count(24)
        .tor_ops_degree(6)
        .opto_fraction(0.5)
        .interconnect(OpsInterconnect::FullMesh)
        .seed(4242)
        .build();
    let vms: Vec<_> = dc.vm_ids().collect();
    let mut workload = ChainWorkload::new(1, 6, 0.3, 99);
    let blueprints = workload.generate(&vms, 300);

    let mut orch = Orchestrator::new();
    // NFV-aware slice construction: the paper's count-minimizing greedy is
    // oblivious to VNF hosting and may build ALs with no optoelectronic
    // routers at all; pricing opto routers *below* plain switches pulls
    // them into every slice.
    let nfv_aware = CostAwareGreedy::new(2.0, 1.0);
    let light = [
        VnfType::Firewall,
        VnfType::Nat,
        VnfType::SecurityGateway,
        VnfType::LoadBalancer,
    ];
    let heavy = [VnfType::Dpi, VnfType::Ids, VnfType::VideoTranscoder];
    let mut deployed = 0usize;
    let mut optical_hosts = 0usize;
    let mut total_hosts = 0usize;
    for (i, bp) in blueprints.iter().enumerate() {
        let vnfs: Vec<VnfSpec> = bp
            .heavy
            .iter()
            .enumerate()
            .map(|(j, &is_heavy)| {
                let ty = if is_heavy {
                    heavy[(i + j) % heavy.len()]
                } else {
                    light[(i + j) % light.len()]
                };
                VnfSpec::of(ty)
            })
            .collect();
        let spec = ChainSpec::builder(format!("chain-{i}"))
            .linear(vnfs)
            .ingress(bp.ingress)
            .egress(bp.egress)
            .build()
            .expect("blueprint specs are valid");
        let placer_choice = i % 2 == 0;
        let result = if placer_choice {
            orch.deploy_chain(
                &dc,
                format!("t{i}"),
                vms.clone(),
                spec,
                &nfv_aware,
                &OpticalFirstPlacer::new(),
            )
        } else {
            orch.deploy_chain(
                &dc,
                format!("t{i}"),
                vms.clone(),
                spec,
                &nfv_aware,
                &CostDrivenPlacer::new(),
            )
        };
        // One tenant at a time (all VMs): deploy must succeed, then tear
        // down so the next iteration starts clean.
        let id = result.expect("clean slate deployment");
        deployed += 1;
        let chain = orch.chain(id).unwrap();
        total_hosts += chain.hosts().len();
        optical_hosts += chain
            .hosts()
            .iter()
            .filter(|h| h.domain() == alvc::topology::Domain::Optical)
            .count();
        // Conversion accounting sanity on every deployment.
        assert!(chain.oeo_conversions() <= chain.hosts().len() + 1);
        orch.teardown_chain(id).expect("just deployed");
        assert_eq!(
            orch.manager().availability().blocked_count(),
            0,
            "chain {i}"
        );
        assert_eq!(orch.sdn().total_rules(), 0, "chain {i}");
    }
    assert_eq!(deployed, 300);
    // Light VNFs must have gone optical at a healthy rate overall.
    assert!(
        optical_hosts * 2 > total_hosts,
        "optical {optical_hosts}/{total_hosts}"
    );
    // All optoelectronic capacity returned.
    for o in dc.optoelectronic_ops() {
        assert_eq!(orch.opto_usage(o).cpu, 0.0);
    }
}
