//! The paper's headline claims as executable assertions. Each test mirrors
//! one experiment (E1–E8) at reduced scale so the suite stays fast; the
//! full sweeps live in the `alvc-bench` binaries.

use alvc::core::construction::{
    AlConstruct, ExactCover, PaperGreedy, RandomSelection, StaticDegreeGreedy,
};
use alvc::core::{service_clusters, ChurnEvent, ClusterManager, OpsAvailability, UpdateCostModel};
use alvc::nfv::chain::fig5;
use alvc::nfv::{ElectronicOnlyPlacer, Orchestrator, VnfPlacer};
use alvc::placement::OpticalFirstPlacer;
use alvc::sim::traffic::LocalityReport;
use alvc::sim::workload::{FlowSizeDistribution, ServiceTraffic};
use alvc::sim::TrafficMatrix;
use alvc::topology::{AlvcTopologyBuilder, DataCenter, OpsInterconnect, ServiceMix, ServiceType};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

fn dc_with(seed: u64, services: usize) -> DataCenter {
    let mix = ServiceMix::uniform(&ServiceType::BUILTIN[..services]);
    AlvcTopologyBuilder::new()
        .racks(12)
        .servers_per_rack(4)
        .vms_per_server(2)
        .ops_count(36)
        .tor_ops_degree(8)
        .opto_fraction(0.5)
        .interconnect(OpsInterconnect::FullMesh)
        .service_mix(mix)
        .seed(seed)
        .build()
}

/// E1 / Fig. 1&3: intra-cluster traffic share tracks service correlation.
#[test]
fn claim_service_clustering_captures_locality() {
    let dc = dc_with(1, 4);
    let share = |p: f64| {
        let mut gen = ServiceTraffic::new(p, FlowSizeDistribution::Constant(1000), 3);
        let m: TrafficMatrix = gen.generate(&dc, 3000).into_iter().collect();
        LocalityReport::compute(&dc, &m).intra_flow_share()
    };
    let low = share(0.3);
    let high = share(0.9);
    assert!(high > 0.8, "high-correlation share {high}");
    assert!(low < 0.45, "low-correlation share {low}");
    assert!(high > low + 0.3);
}

/// E3 / Fig. 4: the paper's greedy builds ALs no larger than the random
/// baseline [15] (averaged over seeds) and close to the exact minimum.
#[test]
fn claim_greedy_al_beats_random_and_nears_optimum() {
    let dc = dc_with(2, 4);
    for cluster in service_clusters(&dc) {
        let greedy = PaperGreedy::new()
            .construct(&dc, &cluster.vms, &OpsAvailability::all())
            .unwrap();
        let exact = ExactCover::new()
            .construct(&dc, &cluster.vms, &OpsAvailability::all())
            .unwrap();
        let random_mean: f64 = (0..8)
            .map(|s| {
                RandomSelection::new(s)
                    .construct(&dc, &cluster.vms, &OpsAvailability::all())
                    .unwrap()
                    .ops_count() as f64
            })
            .sum::<f64>()
            / 8.0;
        // Empirically on this seeded topology: exact ≤ greedy ≤ 1.5 ×
        // exact, and greedy ≤ random on average. (Exact-vs-greedy is not a
        // theorem across whole pipelines — see prop_construction.rs — but
        // holds on this instance and documents the expected shape.)
        assert!(exact.ops_count() <= greedy.ops_count());
        assert!(
            (greedy.ops_count() as f64) <= 1.5 * exact.ops_count() as f64 + 1.0,
            "greedy {} vs exact {}",
            greedy.ops_count(),
            exact.ops_count()
        );
        assert!(
            greedy.ops_count() as f64 <= random_mean,
            "greedy {} vs random mean {random_mean}",
            greedy.ops_count()
        );
    }
}

/// E3 ablation: adaptive weight (paper) is at least as good as static
/// degree ordering in aggregate.
#[test]
fn claim_adaptive_weight_helps() {
    let mut adaptive = 0usize;
    let mut fixed = 0usize;
    for seed in 0..6 {
        let dc = dc_with(seed, 4);
        for c in service_clusters(&dc) {
            adaptive += PaperGreedy::new()
                .construct(&dc, &c.vms, &OpsAvailability::all())
                .unwrap()
                .ops_count();
            fixed += StaticDegreeGreedy::new()
                .construct(&dc, &c.vms, &OpsAvailability::all())
                .unwrap()
                .ops_count();
        }
    }
    assert!(adaptive <= fixed, "adaptive {adaptive} vs static {fixed}");
}

/// E4/E5 / Figs. 5–7: concurrent chains get OPS-disjoint slices.
#[test]
fn claim_one_nfc_per_vc_with_disjoint_slices() {
    let dc = dc_with(3, 4);
    let mut orch = Orchestrator::new();
    let mut deployed = 0;
    for cluster in service_clusters(&dc) {
        let spec = fig5::black(cluster.vms[0], *cluster.vms.last().unwrap());
        if orch
            .deploy_chain(
                &dc,
                cluster.label,
                cluster.vms.clone(),
                spec,
                &PaperGreedy::new(),
                &OpticalFirstPlacer::new(),
            )
            .is_ok()
        {
            deployed += 1;
        }
    }
    assert!(deployed >= 3, "at least three concurrent slices");
    assert!(orch.manager().verify_disjoint());
}

/// E6 / Fig. 8: optical-first placement never incurs more O/E/O
/// conversions than electronic-only, and saves energy.
#[test]
fn claim_optical_placement_saves_conversions() {
    let dc = dc_with(4, 4);
    let vms: Vec<_> = dc.vm_ids().collect();
    let run = |placer: &dyn VnfPlacer| {
        let mut orch = Orchestrator::new();
        let spec = fig5::green(vms[0], *vms.last().unwrap());
        let id = orch
            .deploy_chain(&dc, "t", vms.clone(), spec, &PaperGreedy::new(), placer)
            .unwrap();
        orch.chain(id).unwrap().oeo_conversions()
    };
    let electronic = run(&ElectronicOnlyPlacer::new());
    let optical = run(&OpticalFirstPlacer::new());
    assert!(
        optical < electronic,
        "optical {optical} vs electronic {electronic}"
    );
}

/// E7 / [14]: AL-VC updates far fewer switches than a flat fabric.
#[test]
fn claim_update_cost_below_flat() {
    let mut dc = dc_with(5, 3);
    let mut mgr = ClusterManager::new();
    let mut cluster_of_vm = std::collections::HashMap::new();
    for spec in service_clusters(&dc) {
        let vms = spec.vms.clone();
        let id = mgr
            .create_cluster(&dc, spec.label, spec.vms, &PaperGreedy::new())
            .unwrap();
        for vm in vms {
            cluster_of_vm.insert(vm, id);
        }
    }
    let model = UpdateCostModel::new();
    let mut rng = StdRng::seed_from_u64(5);
    let servers: Vec<_> = dc.server_ids().collect();
    let vms: Vec<_> = dc.vm_ids().collect();
    let mut alvc = 0usize;
    let mut flat = 0usize;
    for _ in 0..50 {
        let &vm = vms.choose(&mut rng).unwrap();
        let &target = servers.choose(&mut rng).unwrap();
        flat += model
            .flat_cost(&dc, ChurnEvent::Migrate { vm, target })
            .total();
        alvc += model
            .apply_migration(
                &mut dc,
                &mut mgr,
                cluster_of_vm[&vm],
                vm,
                target,
                &PaperGreedy::new(),
            )
            .unwrap()
            .total();
    }
    assert!(
        alvc * 3 < flat,
        "AL-VC {alvc} should be well below flat {flat}"
    );
    assert!(mgr.verify_disjoint());
}

/// E8 / [15]: construction scales to thousands of VMs in bounded time.
#[test]
fn claim_construction_scales() {
    let dc = AlvcTopologyBuilder::new()
        .racks(48)
        .servers_per_rack(16)
        .vms_per_server(4) // 3072 VMs
        .ops_count(144)
        .tor_ops_degree(8)
        .interconnect(OpsInterconnect::FullMesh)
        .seed(6)
        .build();
    let vms: Vec<_> = dc.vm_ids().collect();
    let start = std::time::Instant::now();
    let al = PaperGreedy::new()
        .construct(&dc, &vms, &OpsAvailability::all())
        .unwrap();
    let elapsed = start.elapsed();
    assert!(al.validate(&dc, &vms).is_ok());
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "construction took {elapsed:?} for 3072 VMs"
    );
}

/// §III.B bandwidth claim (extension E10 at test scale): under identical
/// contention, the optical core sustains lower completion times than an
/// equal-port-count electronic leaf–spine.
#[test]
fn claim_optical_core_lowers_fct_under_contention() {
    use alvc::optical::routing::route_flow_ecmp;
    use alvc::sim::fairshare::{simulate_fair_share, FairFlow};
    use alvc::topology::{leaf_spine, LeafSpineParams, ServerId};

    let alvc_dc = AlvcTopologyBuilder::new()
        .racks(4)
        .servers_per_rack(8)
        .vms_per_server(1)
        .ops_count(4)
        .tor_ops_degree(2)
        .interconnect(OpsInterconnect::FullMesh)
        .seed(3)
        .build();
    let ls = leaf_spine(&LeafSpineParams {
        leaves: 4,
        spines: 2,
        servers_per_rack: 8,
        vms_per_server: 1,
        seed: 3,
    });
    let servers = alvc_dc.server_count();
    let mk_flows = |dc: &DataCenter| -> Vec<FairFlow> {
        (0..60)
            .map(|i| FairFlow {
                arrival_s: 0.0,
                bytes: 25_000_000,
                path: route_flow_ecmp(
                    dc,
                    &[
                        dc.node_of_server(ServerId(i % servers)),
                        dc.node_of_server(ServerId((i * 11 + 5) % servers)),
                    ],
                    i as u64,
                )
                .unwrap(),
            })
            .collect()
    };
    let optical = simulate_fair_share(&alvc_dc, &mk_flows(&alvc_dc));
    let electronic = simulate_fair_share(&ls, &mk_flows(&ls));
    let o99 = optical.fct_ms.percentile(99.0);
    let e99 = electronic.fct_ms.percentile(99.0);
    assert!(
        o99 <= e99,
        "optical p99 {o99} ms must not exceed electronic {e99} ms"
    );
}
