//! Element-level power model.
//!
//! Synthetic calibration in the spirit of the repo's `EnergyModel`
//! (DESIGN.md §17): values are chosen to reproduce the *orderings*
//! reported for hybrid optical/electronic data centers — an OPS draws less
//! than the electronic aggregation it replaces, idle draw is a large
//! fraction of active draw (which is exactly why consolidation pays), and
//! per-flow switching power scales with path length and O/E/O conversion
//! count — not to match any specific hardware.

use alvc_optical::{EnergyModel, HybridPath};
use alvc_topology::{Element, PowerState};
use serde::{Deserialize, Serialize};

/// The three substrate element families the power model prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ElementFamily {
    /// Optical packet switches.
    Ops,
    /// Top-of-rack switches.
    Tor,
    /// Physical servers.
    Server,
}

impl ElementFamily {
    /// The family of a substrate element.
    pub fn of(element: Element) -> ElementFamily {
        match element {
            Element::Ops(_) => ElementFamily::Ops,
            Element::Tor(_) => ElementFamily::Tor,
            Element::Server(_) => ElementFamily::Server,
        }
    }

    /// Stable snake_case label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            ElementFamily::Ops => "ops",
            ElementFamily::Tor => "tor",
            ElementFamily::Server => "server",
        }
    }

    /// All families, in telemetry order.
    pub const ALL: [ElementFamily; 3] = [
        ElementFamily::Ops,
        ElementFamily::Tor,
        ElementFamily::Server,
    ];
}

/// Wattage assignments per element family plus per-flow energy.
///
/// An element draws `active` watts while it carries at least one flow or
/// hosted VNF, `idle` watts while powered but carrying nothing (whether
/// commanded [`PowerState::Idle`] or merely unused), and zero watts when
/// [`PowerState::PoweredOff`]. Flow power adds the per-bit switching and
/// O/E/O conversion energy of `flow` at the flow's offered rate, so a
/// longer or conversion-heavier path costs proportionally more.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// OPS active draw (W).
    pub ops_active_w: f64,
    /// OPS idle draw (W).
    pub ops_idle_w: f64,
    /// ToR active draw (W).
    pub tor_active_w: f64,
    /// ToR idle draw (W).
    pub tor_idle_w: f64,
    /// Server active draw (W).
    pub server_active_w: f64,
    /// Server idle draw (W).
    pub server_idle_w: f64,
    /// Per-bit flow energy (switching per hop + O/E/O conversions).
    pub flow: EnergyModel,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            ops_active_w: 200.0,
            ops_idle_w: 70.0,
            tor_active_w: 150.0,
            tor_idle_w: 55.0,
            server_active_w: 250.0,
            server_idle_w: 100.0,
            flow: EnergyModel::default(),
        }
    }
}

impl PowerModel {
    /// `(active, idle)` wattage of one family.
    pub fn family_watts(&self, family: ElementFamily) -> (f64, f64) {
        match family {
            ElementFamily::Ops => (self.ops_active_w, self.ops_idle_w),
            ElementFamily::Tor => (self.tor_active_w, self.tor_idle_w),
            ElementFamily::Server => (self.server_active_w, self.server_idle_w),
        }
    }

    /// Instantaneous draw of one element in `state`, `carrying` live
    /// flows/hosts or not. Powered-off elements draw nothing; powered
    /// elements draw idle watts unless they actually carry something.
    pub fn element_power_w(&self, element: Element, state: PowerState, carrying: bool) -> f64 {
        let (active, idle) = self.family_watts(ElementFamily::of(element));
        match state {
            PowerState::PoweredOff => 0.0,
            PowerState::Idle => idle,
            PowerState::Active => {
                if carrying {
                    active
                } else {
                    idle
                }
            }
        }
    }

    /// Switching + conversion power of one flow offered at
    /// `bandwidth_gbps` along `path`, in watts. Energy per second equals
    /// the per-bit path energy times the offered bit rate, so power grows
    /// with hop count and with every O/E/O conversion on the path.
    pub fn flow_power_w(&self, path: &HybridPath, bandwidth_gbps: f64) -> f64 {
        let bytes_per_s = bandwidth_gbps * 1e9 / 8.0;
        self.flow.total_energy_nj(path, bytes_per_s as u64) * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_graph::NodeId;
    use alvc_topology::Domain::{Electronic as E, Optical as O};
    use alvc_topology::{Domain, OpsId, ServerId};

    fn path(domains: &[Domain]) -> HybridPath {
        HybridPath::new(
            (0..=domains.len()).map(NodeId).collect(),
            domains.to_vec(),
            0.0,
        )
    }

    #[test]
    fn power_state_ordering() {
        let m = PowerModel::default();
        let e = Element::Ops(OpsId(0));
        let off = m.element_power_w(e, PowerState::PoweredOff, false);
        let idle = m.element_power_w(e, PowerState::Idle, false);
        let unused = m.element_power_w(e, PowerState::Active, false);
        let carrying = m.element_power_w(e, PowerState::Active, true);
        assert_eq!(off, 0.0);
        assert!(idle > 0.0);
        assert_eq!(unused, idle, "powered-but-unused draws idle watts");
        assert!(carrying > idle);
    }

    #[test]
    fn families_are_priced_separately() {
        let m = PowerModel::default();
        assert_ne!(
            m.element_power_w(Element::Ops(OpsId(0)), PowerState::Active, true),
            m.element_power_w(Element::Server(ServerId(0)), PowerState::Active, true),
        );
        for f in ElementFamily::ALL {
            let (active, idle) = m.family_watts(f);
            assert!(active > idle, "{}: active must exceed idle", f.label());
        }
    }

    #[test]
    fn flow_power_scales_with_path_length_and_conversions() {
        let m = PowerModel::default();
        let short = m.flow_power_w(&path(&[O, O]), 2.0);
        let long = m.flow_power_w(&path(&[O, O, O, O]), 2.0);
        assert!(long > short, "longer path draws more");
        let clean = m.flow_power_w(&path(&[O, O, O]), 2.0);
        let converting = m.flow_power_w(&path(&[O, E, O]), 2.0);
        assert!(converting > clean, "O/E/O conversions draw more");
        assert!(m.flow_power_w(&path(&[O, E, O]), 4.0) > converting);
    }

    #[test]
    fn family_of_element() {
        assert_eq!(
            ElementFamily::of(Element::Ops(OpsId(3))),
            ElementFamily::Ops
        );
        assert_eq!(
            ElementFamily::of(Element::Server(ServerId(3))),
            ElementFamily::Server
        );
    }
}
