//! SLO-gated consolidation planning.
//!
//! [`ConsolidationPlanner`] closes the loop between observed load and the
//! substrate's power states:
//!
//! 1. **Load signal** — the caller feeds `alvc_affinity`'s streaming
//!    [`TrafficStats`] (decayed pair weights); the planner tracks the peak
//!    and derives the current load fraction.
//! 2. **Ebb → consolidate** — when the fraction drops below
//!    [`ConsolidationConfig::engage_below`], the planner optionally packs
//!    VMs onto fewer clusters (label-propagation proposal, priced and
//!    hysteresis-gated by [`MigrationPlanner`]) and selects vacated
//!    elements to power off — never one carrying a live flow, host, or
//!    AL membership, and never more than the configured cap.
//! 3. **SLO gate** — before proposing anything, the predicted per-chain
//!    latencies are checked against every attached
//!    [`QosClass`](alvc_nfv::QosClass); one violated SLO vetoes the whole
//!    plan (powering elements down must never ride over a degraded p99).
//! 4. **Flood → re-power** — when the fraction recovers above
//!    [`ConsolidationConfig::release_above`], the safety valve proposes
//!    `SetPowerState(Active)` for every non-active element uncondition-
//!    ally: capacity returns before any new admission needs it.
//!
//! Plans are *data* — [`ConsolidationPlan::intents`] lowers them to
//! operator intents (`Recluster`, `SetPowerState`) so execution flows
//! through the control plane's admission, logging, and deterministic
//! replay like every other mutation.

use alvc_affinity::{
    AffinityClusterer, ClustererConfig, HysteresisPolicy, MigrationPlanner, TrafficStats, VmMove,
};
use alvc_core::ClusterSpec;
use alvc_nfv::{Intent, Orchestrator};
use alvc_topology::{DataCenter, Element, PowerState};
use serde::{Deserialize, Serialize};

use crate::ledger::{all_elements, carrying_elements};

/// Tuning for the consolidation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsolidationConfig {
    /// Engage consolidation when observed load falls below this fraction
    /// of the tracked peak.
    pub engage_below: f64,
    /// Release (re-power everything) when load recovers above this
    /// fraction. Must exceed `engage_below` — the gap is the hysteresis
    /// band that keeps the loop from flapping.
    pub release_above: f64,
    /// Upper bound on elements powered down by one plan.
    pub max_power_downs: usize,
    /// Leave at least this many unowned OPSs powered as deployment
    /// headroom.
    pub keep_free_ops: usize,
    /// Whether to propose cluster packing (`Intent::Recluster`) before
    /// powering down, using the label-propagation clusterer.
    pub pack_clusters: bool,
    /// Gate for packing plans (minimum predicted gain, move cap).
    pub hysteresis: HysteresisPolicy,
    /// Label-propagation settings for packing proposals.
    pub clusterer: ClustererConfig,
}

impl Default for ConsolidationConfig {
    fn default() -> Self {
        ConsolidationConfig {
            engage_below: 0.35,
            release_above: 0.6,
            max_power_downs: 64,
            keep_free_ops: 2,
            pack_clusters: true,
            hysteresis: HysteresisPolicy::default(),
            clusterer: ClustererConfig {
                max_cluster_size: 0,
                max_rounds: 8,
                seed: 0xa1_c0,
            },
        }
    }
}

/// Which side of the hysteresis band the planner is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsolidationMode {
    /// Full fabric powered; no consolidation in force.
    Normal,
    /// A consolidation plan has been proposed; vacated elements may be
    /// powered off until load returns.
    Consolidated,
}

impl ConsolidationMode {
    /// Stable snake_case label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            ConsolidationMode::Normal => "normal",
            ConsolidationMode::Consolidated => "consolidated",
        }
    }
}

/// One planning decision: what to migrate, power down, or re-power.
///
/// An all-empty plan means "hold" — either load sits inside the
/// hysteresis band, or the SLO gate vetoed action (`slo_ok == false`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConsolidationPlan {
    /// Mode after this plan.
    pub mode: ConsolidationMode,
    /// Observed load as a fraction of the tracked peak.
    pub load_fraction: f64,
    /// Approved packing moves (empty when packing is off or gated).
    pub moves: Vec<VmMove>,
    /// Elements to power off, in deterministic element order.
    pub power_downs: Vec<Element>,
    /// Elements to re-power, in deterministic element order.
    pub power_ups: Vec<Element>,
    /// Predicted p99 chain latency (µs) at planning time.
    pub predicted_p99_us: f64,
    /// Whether every chain with a QoS class met its latency SLO; `false`
    /// vetoes consolidation (power-ups are still allowed).
    pub slo_ok: bool,
}

impl ConsolidationPlan {
    /// Whether the plan proposes no action.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty() && self.power_downs.is_empty() && self.power_ups.is_empty()
    }

    /// Lowers the plan to operator intents, safety first: re-powering
    /// precedes packing, packing precedes power-downs.
    pub fn intents(&self) -> Vec<Intent> {
        let mut out = Vec::new();
        for &e in &self.power_ups {
            out.push(Intent::SetPowerState {
                element: e,
                state: PowerState::Active,
            });
        }
        if !self.moves.is_empty() {
            out.push(Intent::Recluster {
                moves: self.moves.clone(),
            });
        }
        for &e in &self.power_downs {
            out.push(Intent::SetPowerState {
                element: e,
                state: PowerState::PoweredOff,
            });
        }
        out
    }
}

/// The energy plane's planning half: watches the load signal and proposes
/// SLO-safe consolidation and re-power plans.
#[derive(Debug)]
pub struct ConsolidationPlanner {
    config: ConsolidationConfig,
    clusterer: AffinityClusterer,
    migration: MigrationPlanner,
    mode: ConsolidationMode,
    peak_weight: f64,
}

impl ConsolidationPlanner {
    /// A planner in [`ConsolidationMode::Normal`] with no load history.
    ///
    /// # Panics
    ///
    /// Panics if the hysteresis band is empty or the thresholds are not
    /// fractions in `(0, 1]`.
    pub fn new(config: ConsolidationConfig) -> Self {
        assert!(
            config.engage_below > 0.0 && config.engage_below < config.release_above,
            "engage_below must sit strictly below release_above"
        );
        assert!(
            config.release_above <= 1.0,
            "release_above is a fraction of peak"
        );
        ConsolidationPlanner {
            clusterer: AffinityClusterer::new(config.clusterer),
            migration: MigrationPlanner::new(config.hysteresis),
            config,
            mode: ConsolidationMode::Normal,
            peak_weight: 0.0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> ConsolidationMode {
        self.mode
    }

    /// The configuration the planner runs under.
    pub fn config(&self) -> &ConsolidationConfig {
        &self.config
    }

    /// Highest total load weight observed so far.
    pub fn peak_weight(&self) -> f64 {
        self.peak_weight
    }

    /// Predicted p99 one-way latency (µs) over all deployed chains, and
    /// whether every QoS-classed chain meets its SLO.
    fn slo_check(orch: &Orchestrator) -> (f64, bool) {
        let mut latencies: Vec<f64> = Vec::new();
        let mut ok = true;
        for chain in orch.chains() {
            let id = chain.nfc().id();
            let Some(latency) = orch.chain_latency_us(id) else {
                continue;
            };
            latencies.push(latency);
            if let Some(qos) = chain.nfc().spec().qos {
                if latency > qos.latency_slo_us {
                    ok = false;
                }
            }
        }
        if latencies.is_empty() {
            return (0.0, ok);
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let idx = ((latencies.len() as f64 * 0.99).ceil() as usize).clamp(1, latencies.len()) - 1;
        (latencies[idx], ok)
    }

    /// Vacated elements eligible for power-down, deterministic order:
    /// powered, healthy, carrying nothing, and (for OPSs) owned by no
    /// abstraction layer, honoring the free-OPS floor and the per-plan
    /// cap.
    fn power_down_candidates(&self, dc: &DataCenter, orch: &Orchestrator) -> Vec<Element> {
        let carrying = carrying_elements(dc, orch);
        let mut free_ops_kept = 0usize;
        let mut out = Vec::new();
        for e in all_elements(dc) {
            if out.len() == self.config.max_power_downs {
                break;
            }
            if orch.power().state(e) == PowerState::PoweredOff || carrying.contains(&e) {
                continue;
            }
            // The orchestrator's own predicate is authoritative (it also
            // sees flow rules and bandwidth commitments); the capped
            // candidate list keeps this exact check cheap.
            if orch.element_in_use(dc, e) {
                continue;
            }
            if let Element::Ops(ops) = e {
                if orch.manager().ops_owner(ops).is_some() {
                    continue;
                }
                if free_ops_kept < self.config.keep_free_ops {
                    free_ops_kept += 1;
                    continue;
                }
            }
            out.push(e);
        }
        out
    }

    /// Produces the next plan from the current load signal and live
    /// orchestrator state. Mutates only the planner's own mode and peak
    /// tracking — applying the plan is the caller's move (submit
    /// [`ConsolidationPlan::intents`] as the operator).
    pub fn plan(
        &mut self,
        dc: &DataCenter,
        orch: &Orchestrator,
        stats: &TrafficStats,
    ) -> ConsolidationPlan {
        let load = stats.total_weight();
        self.peak_weight = self.peak_weight.max(load);
        let load_fraction = if self.peak_weight > 0.0 {
            load / self.peak_weight
        } else {
            1.0
        };
        let (predicted_p99_us, slo_ok) = Self::slo_check(orch);

        let mut plan = ConsolidationPlan {
            mode: self.mode,
            load_fraction,
            moves: Vec::new(),
            power_downs: Vec::new(),
            power_ups: Vec::new(),
            predicted_p99_us,
            slo_ok,
        };

        if load_fraction >= self.config.release_above {
            // Safety valve: load is back — restore every element
            // unconditionally (the SLO gate never blocks re-powering).
            plan.power_ups = all_elements(dc)
                .filter(|&e| orch.power().state(e) != PowerState::Active)
                .collect();
            if self.mode == ConsolidationMode::Consolidated || !plan.power_ups.is_empty() {
                self.mode = ConsolidationMode::Normal;
            }
        } else if load_fraction < self.config.engage_below && slo_ok {
            if self.config.pack_clusters {
                let current = MigrationPlanner::current_specs(orch.manager());
                if !current.is_empty() {
                    let specs: Vec<ClusterSpec> = current.iter().map(|(_, s)| s.clone()).collect();
                    let proposed = self.clusterer.propose(&specs, stats);
                    let rp = self
                        .migration
                        .plan(dc, orch.manager(), &current, &proposed, stats);
                    if rp.approved {
                        plan.moves = rp.moves;
                    }
                }
            }
            plan.power_downs = self.power_down_candidates(dc, orch);
            if !plan.power_downs.is_empty() || !plan.moves.is_empty() {
                self.mode = ConsolidationMode::Consolidated;
            }
        }
        plan.mode = self.mode;

        alvc_telemetry::counter!("alvc_energy.consolidation.plans").incr();
        if !slo_ok {
            alvc_telemetry::counter!("alvc_energy.consolidation.slo_vetoes").incr();
        }
        alvc_telemetry::gauge!("alvc_energy.consolidation.load_fraction").set(load_fraction);
        alvc_telemetry::gauge!("alvc_energy.consolidation.consolidated")
            .set(f64::from(self.mode == ConsolidationMode::Consolidated));
        alvc_telemetry::histogram!("alvc_energy.consolidation.power_downs")
            .record(plan.power_downs.len() as f64);
        alvc_telemetry::histogram!("alvc_energy.consolidation.predicted_p99_us")
            .record(predicted_p99_us);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_affinity::{CollectorConfig, TrafficCollector};
    use alvc_core::construction::PaperGreedy;
    use alvc_nfv::chain::fig5;
    use alvc_nfv::{ChainSpec, ElectronicOnlyPlacer, QosClass};
    use alvc_topology::{AlvcTopologyBuilder, OpsInterconnect, ServiceType, VmId};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(8)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(24)
            .tor_ops_degree(4)
            .opto_fraction(0.5)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(31)
            .build()
    }

    fn deploy(dc: &DataCenter, orch: &mut Orchestrator, spec: ChainSpec) -> alvc_nfv::NfcId {
        let vms = dc.vms_of_service(ServiceType::WebService);
        orch.deploy_chain(
            dc,
            "web",
            vms,
            spec,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        )
        .unwrap()
    }

    fn web_spec(dc: &DataCenter) -> ChainSpec {
        let vms = dc.vms_of_service(ServiceType::WebService);
        fig5::black(vms[0], *vms.last().unwrap())
    }

    /// Observes one pair at `ts_ns` (zero bytes still advances the decay
    /// clock) and snapshots the decayed stats.
    fn stats_after(collector: &mut TrafficCollector, weight: u64, ts_ns: u64) -> TrafficStats {
        collector.observe_pairs([(VmId(0), VmId(1), weight)], ts_ns);
        collector.snapshot()
    }

    fn planner() -> ConsolidationPlanner {
        ConsolidationPlanner::new(ConsolidationConfig {
            pack_clusters: false,
            ..ConsolidationConfig::default()
        })
    }

    #[test]
    fn high_load_proposes_nothing() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        deploy(&dc, &mut orch, web_spec(&dc));
        let mut collector = TrafficCollector::new(CollectorConfig {
            capacity: 128,
            half_life_s: 30.0,
        });
        let stats = stats_after(&mut collector, 1_000_000, 1_000_000_000);
        let mut p = planner();
        let plan = p.plan(&dc, &orch, &stats);
        assert!(plan.is_empty(), "peak load must not consolidate: {plan:?}");
        assert_eq!(p.mode(), ConsolidationMode::Normal);
    }

    #[test]
    fn ebb_powers_down_only_vacant_elements() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        deploy(&dc, &mut orch, web_spec(&dc));
        let mut collector = TrafficCollector::new(CollectorConfig {
            capacity: 128,
            half_life_s: 10.0,
        });
        // Peak (shown to the planner so it learns the reference), then
        // silence long enough for the decayed weight to ebb.
        let mut p = planner();
        let peak = stats_after(&mut collector, 1_000_000, 1_000_000_000);
        assert!(p.plan(&dc, &orch, &peak).is_empty());
        let stats = stats_after(&mut collector, 0, 200_000_000_000);
        let plan = p.plan(&dc, &orch, &stats);
        assert!(!plan.power_downs.is_empty(), "ebb must consolidate");
        assert_eq!(p.mode(), ConsolidationMode::Consolidated);
        let carrying = carrying_elements(&dc, &orch);
        for &e in &plan.power_downs {
            assert!(!carrying.contains(&e), "{e} carries live state");
            assert!(!orch.element_in_use(&dc, e));
        }
        // Every proposed power-down actually executes.
        for &e in &plan.power_downs {
            orch.set_power_state(&dc, e, PowerState::PoweredOff)
                .unwrap();
        }
    }

    #[test]
    fn slo_violation_vetoes_consolidation() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let mut spec = web_spec(&dc);
        spec.qos = Some(QosClass::new(1e6));
        let id = deploy(&dc, &mut orch, spec);
        let mut collector = TrafficCollector::new(CollectorConfig {
            capacity: 128,
            half_life_s: 10.0,
        });
        let mut p = planner();
        let peak = stats_after(&mut collector, 1_000_000, 1_000_000_000);
        p.plan(&dc, &orch, &peak);
        let ebb = stats_after(&mut collector, 0, 200_000_000_000);

        // SLO met: consolidation proceeds.
        let plan = p.plan(&dc, &orch, &ebb);
        assert!(plan.slo_ok);
        assert!(!plan.power_downs.is_empty());

        // Degrade the prediction post-deployment: a pathological O/E/O
        // model inflates conversion latency far past the 1 s SLO (the
        // routed path is unchanged — only its predicted latency moves).
        let before = orch.chain_latency_us(id).unwrap();
        orch.set_oeo_model(alvc_optical::OeoCostModel::new(5.0, 1e9));
        if orch.chain_latency_us(id).unwrap() <= before {
            return; // conversion-free path on this topology: veto untestable
        }
        let mut p2 = planner();
        let plan = p2.plan(&dc, &orch, &ebb);
        assert!(!plan.slo_ok, "inflated latency must violate the SLO");
        assert!(
            plan.power_downs.is_empty() && plan.moves.is_empty(),
            "a violated SLO vetoes consolidation: {plan:?}"
        );
        assert_eq!(p2.mode(), ConsolidationMode::Normal);
    }

    #[test]
    fn load_return_repowers_everything() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        deploy(&dc, &mut orch, web_spec(&dc));
        let mut collector = TrafficCollector::new(CollectorConfig {
            capacity: 128,
            half_life_s: 10.0,
        });
        let mut p = planner();
        let peak = stats_after(&mut collector, 1_000_000, 1_000_000_000);
        p.plan(&dc, &orch, &peak);
        let ebb = stats_after(&mut collector, 0, 200_000_000_000);
        let plan = p.plan(&dc, &orch, &ebb);
        for &e in &plan.power_downs {
            orch.set_power_state(&dc, e, PowerState::PoweredOff)
                .unwrap();
        }
        assert!(orch.power().powered_off_count() > 0);
        // Load floods back above the release threshold.
        let flood = stats_after(&mut collector, 2_000_000, 201_000_000_000);
        let plan = p.plan(&dc, &orch, &flood);
        assert!(!plan.power_ups.is_empty(), "safety valve must re-power");
        assert!(plan.power_downs.is_empty());
        for &e in &plan.power_ups {
            orch.set_power_state(&dc, e, PowerState::Active).unwrap();
        }
        assert!(orch.power().all_active());
        assert_eq!(p.mode(), ConsolidationMode::Normal);
    }

    #[test]
    fn plans_lower_to_operator_intents_in_safe_order() {
        let plan = ConsolidationPlan {
            mode: ConsolidationMode::Consolidated,
            load_fraction: 0.2,
            moves: vec![],
            power_downs: vec![Element::Ops(alvc_topology::OpsId(1))],
            power_ups: vec![Element::Ops(alvc_topology::OpsId(2))],
            predicted_p99_us: 10.0,
            slo_ok: true,
        };
        let intents = plan.intents();
        assert_eq!(intents.len(), 2);
        assert!(matches!(
            intents[0],
            Intent::SetPowerState {
                state: PowerState::Active,
                ..
            }
        ));
        assert!(matches!(
            intents[1],
            Intent::SetPowerState {
                state: PowerState::PoweredOff,
                ..
            }
        ));
        assert!(intents.iter().all(|i| i.kind().operator_only()));
    }

    #[test]
    fn keep_free_ops_floor_is_respected() {
        let dc = dc();
        let orch = Orchestrator::new();
        let mut collector = TrafficCollector::new(CollectorConfig {
            capacity: 128,
            half_life_s: 10.0,
        });
        let mut p = ConsolidationPlanner::new(ConsolidationConfig {
            pack_clusters: false,
            max_power_downs: usize::MAX,
            keep_free_ops: 3,
            ..ConsolidationConfig::default()
        });
        let peak = stats_after(&mut collector, 1_000_000, 1_000_000_000);
        p.plan(&dc, &orch, &peak);
        let ebb = stats_after(&mut collector, 0, 200_000_000_000);
        let plan = p.plan(&dc, &orch, &ebb);
        let ops_down = plan
            .power_downs
            .iter()
            .filter(|e| matches!(e, Element::Ops(_)))
            .count();
        assert_eq!(ops_down, dc.ops_count() - 3, "floor of 3 OPSs kept");
    }
}
