//! Energy- and QoS-aware reoptimization plane for AL-VC.
//!
//! The paper's economy argument (§III.B) is that abstraction layers keep
//! flows optical and cut O/E/O conversions; this crate makes the claim
//! measurable in joules and actionable at run time:
//!
//! * [`model`] — [`PowerModel`]: idle/active wattage per element family
//!   (OPS, ToR, server) plus per-flow switching and conversion power
//!   proportional to path length (via `alvc_optical::EnergyModel`);
//! * [`ledger`] — [`PowerLedger`]: integrates watt-seconds from the
//!   orchestrator's live element and flow state, tracking
//!   `Active ⇄ Idle ⇄ PoweredOff` per element and exporting
//!   `alvc_energy.*` telemetry gauges per family;
//! * [`consolidate`] — [`ConsolidationPlanner`]: when traffic ebbs
//!   (streaming load signal from `alvc_affinity`, hysteresis-gated), packs
//!   abstraction layers onto fewer powered switches and powers vacated
//!   elements down through `Intent::SetPowerState`, never proposing a plan
//!   whose predicted p99 violates any chain's latency SLO, and re-powers
//!   everything the moment load returns.
//!
//! Chains opt into QoS protection by attaching
//! [`QosClass`](alvc_nfv::QosClass) to their spec; the orchestrator
//! enforces the SLO at admission and on every reroute, and the planner
//! treats it as an inviolable ceiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library crates report progress through alvc-telemetry events, never the
// process's stdout/stderr (enforced under cargo clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod consolidate;
pub mod ledger;
pub mod model;

pub use consolidate::{
    ConsolidationConfig, ConsolidationMode, ConsolidationPlan, ConsolidationPlanner,
};
pub use ledger::{PowerBreakdown, PowerLedger, PowerSample};
pub use model::{ElementFamily, PowerModel};
