//! Watt-second integration over live orchestrator state.
//!
//! [`PowerLedger::sample`] computes the data center's instantaneous draw
//! — every element priced by its power state and whether it carries
//! anything, plus per-flow switching/conversion power — and integrates it
//! into cumulative watt-seconds between samples (left-Riemann: the draw
//! measured at a sample is charged until the next one). Sampling is a
//! pure function of orchestrator state and the sample timestamps, so a
//! replayed run integrates to bit-identical joules.

use std::collections::BTreeSet;

use alvc_graph::NodeId;
use alvc_nfv::{HostLocation, Orchestrator};
use alvc_topology::{DataCenter, Element, PhysNode, PowerState};
use serde::{Deserialize, Serialize};

use crate::model::{ElementFamily, PowerModel};

/// Instantaneous draw split by family, in watts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Draw of all optical packet switches.
    pub ops_w: f64,
    /// Draw of all ToR switches.
    pub tor_w: f64,
    /// Draw of all servers.
    pub server_w: f64,
    /// Per-flow switching and O/E/O conversion draw.
    pub flow_w: f64,
}

impl PowerBreakdown {
    /// Total draw in watts.
    pub fn total_w(&self) -> f64 {
        self.ops_w + self.tor_w + self.server_w + self.flow_w
    }

    fn family_mut(&mut self, family: ElementFamily) -> &mut f64 {
        match family {
            ElementFamily::Ops => &mut self.ops_w,
            ElementFamily::Tor => &mut self.tor_w,
            ElementFamily::Server => &mut self.server_w,
        }
    }
}

/// One ledger sample: the instantaneous state at `ts_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Sample timestamp on the caller's clock, in seconds.
    pub ts_s: f64,
    /// Instantaneous draw at the sample.
    pub power: PowerBreakdown,
    /// Elements commanded off.
    pub powered_off: usize,
    /// Powered elements carrying no flow or host (drawing idle watts).
    pub idle: usize,
    /// Powered elements carrying at least one flow or host.
    pub carrying: usize,
    /// Cumulative energy integrated so far, in joules (watt-seconds).
    pub energy_j: f64,
}

/// Integrates watt-seconds from live orchestrator state.
#[derive(Debug, Clone)]
pub struct PowerLedger {
    model: PowerModel,
    last: Option<(f64, f64)>,
    energy_j: f64,
    samples: u64,
}

/// The substrate element a path node corresponds to.
fn element_of_node(dc: &DataCenter, n: NodeId) -> Option<Element> {
    match dc.graph().node_weight(n)? {
        PhysNode::Server(s) => Some(Element::Server(*s)),
        PhysNode::Tor(t) => Some(Element::Tor(*t)),
        PhysNode::Ops { id, .. } => Some(Element::Ops(*id)),
    }
}

fn element_of_host(host: HostLocation) -> Element {
    match host {
        HostLocation::Server(s) => Element::Server(s),
        HostLocation::OptoRouter(o) => Element::Ops(o),
    }
}

/// Every element touched by a live chain: path nodes, VNF hosts, and
/// scale-out replica hosts — the set that must draw active watts (and that
/// consolidation must never power off). One sweep over the chains, so
/// pricing a 100k-VM snapshot does not pay per-element scans.
pub fn carrying_elements(dc: &DataCenter, orch: &Orchestrator) -> BTreeSet<Element> {
    let mut used = BTreeSet::new();
    for chain in orch.chains() {
        for &n in chain.path().nodes() {
            if let Some(e) = element_of_node(dc, n) {
                used.insert(e);
            }
        }
        for &h in chain.hosts() {
            used.insert(element_of_host(h));
        }
        for &iid in chain.instances() {
            if let Some(i) = orch.instance(iid) {
                used.insert(element_of_host(i.host()));
            }
        }
        for iid in orch.replicas_of(chain.nfc().id()) {
            if let Some(i) = orch.instance(iid) {
                used.insert(element_of_host(i.host()));
            }
        }
    }
    used
}

impl PowerLedger {
    /// A ledger pricing with `model`, starting at zero joules.
    pub fn new(model: PowerModel) -> Self {
        PowerLedger {
            model,
            last: None,
            energy_j: 0.0,
            samples: 0,
        }
    }

    /// The pricing model.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Cumulative integrated energy, in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Number of samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Instantaneous draw of the data center under `orch`'s current
    /// element states and flows. Pure — does not advance the ledger.
    pub fn measure(&self, dc: &DataCenter, orch: &Orchestrator) -> PowerBreakdown {
        let carrying = carrying_elements(dc, orch);
        let mut power = PowerBreakdown::default();
        for e in all_elements(dc) {
            let state = orch.power().state(e);
            let w = self.model.element_power_w(e, state, carrying.contains(&e));
            *power.family_mut(ElementFamily::of(e)) += w;
        }
        for chain in orch.chains() {
            power.flow_w += self
                .model
                .flow_power_w(chain.path(), chain.nfc().spec().bandwidth_gbps);
        }
        power
    }

    /// Takes a sample at `ts_s` (caller's monotone clock): measures the
    /// instantaneous draw, charges the *previous* draw for the elapsed
    /// interval, and publishes the `alvc_energy.power.*` gauges.
    ///
    /// Out-of-order timestamps charge nothing (the interval is clamped to
    /// zero) rather than rewinding the ledger.
    pub fn sample(&mut self, dc: &DataCenter, orch: &Orchestrator, ts_s: f64) -> PowerSample {
        let power = self.measure(dc, orch);
        if let Some((t0, w0)) = self.last {
            let dt = (ts_s - t0).max(0.0);
            self.energy_j += w0 * dt;
        }
        self.last = Some((ts_s, power.total_w()));
        self.samples += 1;

        let carrying_set = carrying_elements(dc, orch);
        let (mut off, mut idle, mut carrying) = (0usize, 0usize, 0usize);
        for e in all_elements(dc) {
            match orch.power().state(e) {
                PowerState::PoweredOff => off += 1,
                _ if carrying_set.contains(&e) => carrying += 1,
                _ => idle += 1,
            }
        }

        alvc_telemetry::gauge!("alvc_energy.power.total_w").set(power.total_w());
        alvc_telemetry::gauge_with("alvc_energy.power.family_w", "ops").set(power.ops_w);
        alvc_telemetry::gauge_with("alvc_energy.power.family_w", "tor").set(power.tor_w);
        alvc_telemetry::gauge_with("alvc_energy.power.family_w", "server").set(power.server_w);
        alvc_telemetry::gauge_with("alvc_energy.power.family_w", "flow").set(power.flow_w);
        alvc_telemetry::gauge!("alvc_energy.ledger.energy_j").set(self.energy_j);
        alvc_telemetry::gauge!("alvc_energy.elements.powered_off").set(off as f64);
        alvc_telemetry::gauge!("alvc_energy.elements.idle").set(idle as f64);
        alvc_telemetry::gauge!("alvc_energy.elements.carrying").set(carrying as f64);
        alvc_telemetry::counter!("alvc_energy.ledger.samples").incr();

        PowerSample {
            ts_s,
            power,
            powered_off: off,
            idle,
            carrying,
            energy_j: self.energy_j,
        }
    }
}

/// All substrate elements of `dc`, in deterministic (family, id) order.
pub fn all_elements(dc: &DataCenter) -> impl Iterator<Item = Element> + '_ {
    dc.ops_ids()
        .map(Element::Ops)
        .chain(dc.tor_ids().map(Element::Tor))
        .chain(dc.server_ids().map(Element::Server))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_core::construction::PaperGreedy;
    use alvc_nfv::chain::fig5;
    use alvc_nfv::ElectronicOnlyPlacer;
    use alvc_topology::{AlvcTopologyBuilder, OpsInterconnect, ServiceType};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(8)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(24)
            .tor_ops_degree(4)
            .opto_fraction(0.5)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(31)
            .build()
    }

    fn deploy(dc: &DataCenter, orch: &mut Orchestrator) -> alvc_nfv::NfcId {
        let vms = dc.vms_of_service(ServiceType::WebService);
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        orch.deploy_chain(
            dc,
            "web",
            vms,
            spec,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        )
        .unwrap()
    }

    #[test]
    fn idle_fabric_draws_only_idle_watts() {
        let dc = dc();
        let orch = Orchestrator::new();
        let ledger = PowerLedger::new(PowerModel::default());
        let power = ledger.measure(&dc, &orch);
        let m = ledger.model();
        let expect = dc.ops_count() as f64 * m.ops_idle_w
            + dc.tor_count() as f64 * m.tor_idle_w
            + dc.server_count() as f64 * m.server_idle_w;
        assert!((power.total_w() - expect).abs() < 1e-9);
        assert_eq!(power.flow_w, 0.0);
    }

    #[test]
    fn deploying_a_chain_raises_draw() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let ledger = PowerLedger::new(PowerModel::default());
        let before = ledger.measure(&dc, &orch);
        deploy(&dc, &mut orch);
        let after = ledger.measure(&dc, &orch);
        assert!(after.total_w() > before.total_w());
        assert!(after.flow_w > 0.0, "flows draw switching power");
        assert!(!carrying_elements(&dc, &orch).is_empty());
    }

    #[test]
    fn powering_off_reduces_draw_to_zero_for_the_element() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let ledger = PowerLedger::new(PowerModel::default());
        let before = ledger.measure(&dc, &orch);
        let ops = dc.ops_ids().next().unwrap();
        orch.set_power_state(&dc, Element::Ops(ops), PowerState::PoweredOff)
            .unwrap();
        let after = ledger.measure(&dc, &orch);
        assert!(
            (before.total_w() - after.total_w() - ledger.model().ops_idle_w).abs() < 1e-9,
            "one idle OPS's draw disappears"
        );
    }

    #[test]
    fn sampling_integrates_watt_seconds() {
        let dc = dc();
        let orch = Orchestrator::new();
        let mut ledger = PowerLedger::new(PowerModel::default());
        let s0 = ledger.sample(&dc, &orch, 0.0);
        assert_eq!(s0.energy_j, 0.0, "nothing charged before an interval");
        let s1 = ledger.sample(&dc, &orch, 10.0);
        assert!((s1.energy_j - s0.power.total_w() * 10.0).abs() < 1e-6);
        // Out-of-order samples charge nothing.
        let s2 = ledger.sample(&dc, &orch, 5.0);
        assert_eq!(s2.energy_j, s1.energy_j);
        assert_eq!(ledger.samples(), 3);
    }

    #[test]
    fn identical_runs_integrate_identically() {
        let dc = dc();
        let run = || {
            let mut orch = Orchestrator::new();
            let mut ledger = PowerLedger::new(PowerModel::default());
            ledger.sample(&dc, &orch, 0.0);
            deploy(&dc, &mut orch);
            ledger.sample(&dc, &orch, 7.5);
            ledger.sample(&dc, &orch, 31.25);
            ledger.energy_j().to_bits()
        };
        assert_eq!(run(), run(), "bit-identical joules per identical history");
    }
}
