//! Energy-plane properties: a consolidation plan never powers off an
//! element carrying live state, a violated SLO vetoes every consolidation
//! action, applying a plan never perturbs a deployed chain, and one
//! seeded history — deploys, load signal, planning, ledger sampling —
//! reproduces bit-identical joules, plans, and control-plane state views.

use std::sync::Arc;

use alvc_affinity::{CollectorConfig, TrafficCollector, TrafficStats};
use alvc_core::construction::PaperGreedy;
use alvc_energy::ledger::carrying_elements;
use alvc_energy::{ConsolidationConfig, ConsolidationPlanner, PowerLedger, PowerModel};
use alvc_nfv::chain::fig5;
use alvc_nfv::{
    ChainSpec, ControlPlane, ElectronicOnlyPlacer, Intent, NfcId, Orchestrator, QosClass,
    TenantQuota,
};
use alvc_topology::{AlvcTopologyBuilder, DataCenter, OpsInterconnect, PowerState, VmId};
use proptest::prelude::*;

fn dc_for(seed: u64, racks: usize) -> DataCenter {
    AlvcTopologyBuilder::new()
        .racks(racks)
        .servers_per_rack(2)
        .vms_per_server(2)
        .ops_count(racks * 3)
        .tor_ops_degree(3)
        .opto_fraction(0.5)
        .interconnect(OpsInterconnect::FullMesh)
        .seed(seed)
        .build()
}

/// A fig. 5 chain over `vms` with a (generous) latency SLO attached.
fn spec_for(kind: u8, ingress: VmId, egress: VmId, slo_us: f64) -> ChainSpec {
    let mut spec = match kind % 3 {
        0 => fig5::blue(ingress, egress),
        1 => fig5::black(ingress, egress),
        _ => fig5::green(ingress, egress),
    };
    spec.qos = Some(QosClass::new(slo_us));
    spec
}

/// Deploys up to `chains` QoS-classed chains over disjoint VM groups.
/// Groups the topology cannot admit (no route, no headroom for this seed)
/// are skipped — properties quantify over whatever actually deployed.
fn deploy_chains(
    dc: &DataCenter,
    orch: &mut Orchestrator,
    chains: usize,
    slo_us: f64,
) -> Vec<NfcId> {
    let vms: Vec<VmId> = dc.vm_ids().collect();
    let group = vms.len() / chains;
    (0..chains)
        .filter_map(|i| {
            let vms = vms[i * group..(i + 1) * group].to_vec();
            let spec = spec_for(i as u8, vms[0], *vms.last().unwrap(), slo_us);
            orch.deploy_chain(
                dc,
                format!("t{i}"),
                vms,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .ok()
        })
        .collect()
}

/// Observes one weighted pair, then snapshots the decayed stats.
fn stats_after(collector: &mut TrafficCollector, weight: u64, ts_ns: u64) -> TrafficStats {
    collector.observe_pairs([(VmId(0), VmId(1), weight)], ts_ns);
    collector.snapshot()
}

/// A planner that has seen `peak` as its load high-water mark.
fn primed_planner(
    dc: &DataCenter,
    orch: &Orchestrator,
    peak: &TrafficStats,
) -> ConsolidationPlanner {
    let mut p = ConsolidationPlanner::new(ConsolidationConfig {
        pack_clusters: false,
        ..ConsolidationConfig::default()
    });
    p.plan(dc, orch, peak);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Safety property: no plan ever powers down an element that carries a
    /// live flow, VNF host, or replica — by construction *and* by the
    /// orchestrator's authoritative `element_in_use` predicate — so
    /// applying every proposed power-down always succeeds and never moves
    /// a deployed chain.
    #[test]
    fn plans_never_power_off_a_carrying_element(
        seed in 0u64..40,
        racks in 4usize..8,
        chains in 1usize..4,
        peak_weight in 1_000u64..2_000_000,
    ) {
        let dc = dc_for(seed, racks);
        let mut orch = Orchestrator::new();
        let ids = deploy_chains(&dc, &mut orch, chains, 1e9);
        let before: Vec<f64> = ids
            .iter()
            .map(|&id| orch.chain_latency_us(id).unwrap())
            .collect();

        let mut collector = TrafficCollector::new(CollectorConfig {
            capacity: 128,
            half_life_s: 10.0,
        });
        let peak = stats_after(&mut collector, peak_weight, 1_000_000_000);
        let mut p = primed_planner(&dc, &orch, &peak);
        let ebb = stats_after(&mut collector, 0, 200_000_000_000);
        let plan = p.plan(&dc, &orch, &ebb);

        let carrying = carrying_elements(&dc, &orch);
        for &e in &plan.power_downs {
            prop_assert!(!carrying.contains(&e), "{e:?} carries live state");
            prop_assert!(!orch.element_in_use(&dc, e), "{e:?} is in use");
        }
        for &e in &plan.power_downs {
            orch.set_power_state(&dc, e, PowerState::PoweredOff).unwrap();
        }
        // Every chain survives consolidation untouched: same path, same
        // latency, no path node on a powered-off element.
        for (&id, &b) in ids.iter().zip(&before) {
            prop_assert_eq!(orch.chain_latency_us(id).unwrap(), b);
        }
        let carrying_after = carrying_elements(&dc, &orch);
        for &e in &carrying_after {
            prop_assert_eq!(orch.power().state(e), PowerState::Active);
        }
    }

    /// SLO gate: when any QoS-classed chain's predicted latency exceeds
    /// its SLO, the plan proposes *no* consolidation action; when every
    /// SLO holds, applying the plan keeps every chain inside its
    /// effective latency budget.
    #[test]
    fn slo_violations_veto_and_safe_plans_preserve_budgets(
        seed in 0u64..40,
        racks in 4usize..8,
        tight in 0u8..2,
    ) {
        let tight = tight == 1;
        let dc = dc_for(seed, racks);
        let mut orch = Orchestrator::new();
        // A generous SLO first so deployment always admits; the tight case
        // then shrinks the admitted chain's SLO below its own latency,
        // modeling a degraded-world prediction.
        let ids = deploy_chains(&dc, &mut orch, 2, 1e9);
        if tight {
            let worst = ids
                .iter()
                .map(|&id| orch.chain_latency_us(id).unwrap())
                .fold(0.0f64, f64::max);
            orch.set_oeo_model(alvc_optical::OeoCostModel::new(5.0, 1e9));
            let inflated = ids
                .iter()
                .map(|&id| orch.chain_latency_us(id).unwrap())
                .fold(0.0f64, f64::max);
            if inflated <= worst {
                return Ok(()); // conversion-free paths: veto untestable here
            }
        }

        let mut collector = TrafficCollector::new(CollectorConfig {
            capacity: 128,
            half_life_s: 10.0,
        });
        let peak = stats_after(&mut collector, 1_000_000, 1_000_000_000);
        let mut p = primed_planner(&dc, &orch, &peak);
        let ebb = stats_after(&mut collector, 0, 200_000_000_000);
        let plan = p.plan(&dc, &orch, &ebb);

        let violated = orch.chains().any(|c| {
            let latency = orch.chain_latency_us(c.nfc().id()).unwrap();
            c.nfc().spec().qos.is_some_and(|q| latency > q.latency_slo_us)
        });
        prop_assert_eq!(plan.slo_ok, !violated);
        if violated {
            prop_assert!(plan.power_downs.is_empty() && plan.moves.is_empty(),
                "a violated SLO must veto consolidation: {plan:?}");
        } else {
            for &e in &plan.power_downs {
                orch.set_power_state(&dc, e, PowerState::PoweredOff).unwrap();
            }
            for chain in orch.chains() {
                let latency = orch.chain_latency_us(chain.nfc().id()).unwrap();
                if let Some(budget) = chain.nfc().spec().effective_latency_budget_us() {
                    prop_assert!(latency <= budget, "budget violated after plan");
                }
            }
        }
    }

    /// Determinism: one seeded history — deploy through the control
    /// plane, feed the load signal, plan, execute the plan's operator
    /// intents, sample the ledger — yields bit-identical joules and
    /// plans across runs, and the recorded intent log replays to an
    /// identical state view on a fresh control plane.
    #[test]
    fn seeded_history_replays_bit_identically(
        seed in 0u64..40,
        racks in 4usize..7,
        peak_weight in 1_000u64..2_000_000,
    ) {
        let dc = Arc::new(dc_for(seed, racks));
        let run = || {
            let cp = ControlPlane::builder()
                .default_quota(TenantQuota::unlimited())
                .build(dc.clone());
            let vms: Vec<VmId> = dc.vm_ids().collect();
            let half = vms.len() / 2;
            for (t, group) in [&vms[..half], &vms[half..]].into_iter().enumerate() {
                cp.submit(
                    &format!("t{t}"),
                    Intent::DeployChain {
                        vms: group.to_vec(),
                        spec: spec_for(t as u8, group[0], *group.last().unwrap(), 1e9),
                    },
                );
            }
            cp.process_all();

            let mut ledger = PowerLedger::new(PowerModel::default());
            cp.inspect(|orch| ledger.sample(&dc, orch, 0.0));

            let mut collector = TrafficCollector::new(CollectorConfig {
                capacity: 128,
                half_life_s: 10.0,
            });
            let peak = stats_after(&mut collector, peak_weight, 1_000_000_000);
            let ebb = stats_after(&mut collector, 0, 200_000_000_000);
            let plan = cp.inspect(|orch| {
                let mut p = primed_planner(&dc, orch, &peak);
                p.plan(&dc, orch, &ebb)
            });
            for intent in plan.intents() {
                cp.submit("operator", intent);
            }
            cp.process_all();
            cp.inspect(|orch| ledger.sample(&dc, orch, 60.0));

            let replayed = ControlPlane::builder()
                .default_quota(TenantQuota::unlimited())
                .build(dc.clone())
                .replay(&cp.intent_log());
            (format!("{plan:?}"), ledger.energy_j().to_bits(), cp.view(), replayed)
        };
        let (plan_a, joules_a, view_a, replay_a) = run();
        let (plan_b, joules_b, view_b, replay_b) = run();
        prop_assert_eq!(plan_a, plan_b, "plans are a pure function of the history");
        prop_assert_eq!(joules_a, joules_b, "bit-identical watt-second integral");
        prop_assert_eq!(&*view_a, &*view_b);
        prop_assert_eq!(&*view_a, &*replay_a, "log replays to the live view");
        prop_assert_eq!(&*replay_a, &*replay_b);
    }
}
