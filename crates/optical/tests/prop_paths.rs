//! Property tests for hybrid paths, routing, and cost models.

use alvc_graph::NodeId;
use alvc_optical::routing::{route_flow, route_flow_within};
use alvc_optical::{EnergyModel, HybridPath, OeoCostModel};
use alvc_topology::{AlvcTopologyBuilder, DataCenter, Domain, OpsInterconnect, ServerId};
use proptest::prelude::*;
use std::collections::HashSet;

fn domain_strategy() -> impl Strategy<Value = Vec<Domain>> {
    proptest::collection::vec(
        prop_oneof![Just(Domain::Optical), Just(Domain::Electronic)],
        0..40,
    )
}

fn path_of(domains: &[Domain]) -> HybridPath {
    if domains.is_empty() {
        return HybridPath::empty();
    }
    HybridPath::new(
        (0..=domains.len()).map(NodeId).collect(),
        domains.to_vec(),
        domains.len() as f64,
    )
}

fn dc_strategy() -> impl Strategy<Value = DataCenter> {
    (2usize..6, 1usize..4, 2usize..8, 1usize..4, 0u64..500).prop_map(
        |(racks, spr, ops, degree, seed)| {
            AlvcTopologyBuilder::new()
                .racks(racks)
                .servers_per_rack(spr)
                .vms_per_server(1)
                .ops_count(ops)
                .tor_ops_degree(degree)
                .interconnect(OpsInterconnect::FullMesh)
                .seed(seed)
                .build()
        },
    )
}

proptest! {
    /// Conversions are at most half the domain crossings, and zero for
    /// single-domain paths.
    #[test]
    fn conversions_bounded_by_crossings(domains in domain_strategy()) {
        let p = path_of(&domains);
        prop_assert!(p.oeo_conversions() * 2 <= p.domain_crossings() + 1);
        let single_domain = domains.windows(2).all(|w| w[0] == w[1]);
        if single_domain {
            prop_assert_eq!(p.oeo_conversions(), 0);
            prop_assert_eq!(p.domain_crossings(), 0);
        }
        let (e, o) = p.hops_by_domain();
        prop_assert_eq!(e + o, p.hop_count());
    }

    /// Conversions equal the number of electronic runs strictly between
    /// optical segments (independent reference implementation).
    #[test]
    fn conversions_match_reference_count(domains in domain_strategy()) {
        let p = path_of(&domains);
        // Reference: trim leading/trailing electronic hops, then count
        // maximal electronic runs.
        let first_o = domains.iter().position(|&d| d == Domain::Optical);
        let last_o = domains.iter().rposition(|&d| d == Domain::Optical);
        let expected = match (first_o, last_o) {
            (Some(a), Some(b)) if a < b => {
                let inner = &domains[a..=b];
                let mut runs = 0;
                let mut in_run = false;
                for &d in inner {
                    match d {
                        Domain::Electronic if !in_run => {
                            runs += 1;
                            in_run = true;
                        }
                        Domain::Optical => in_run = false,
                        _ => {}
                    }
                }
                runs
            }
            _ => 0,
        };
        prop_assert_eq!(p.oeo_conversions(), expected);
    }

    /// Energy is monotone in flow size and additive over conversions.
    #[test]
    fn energy_monotone_in_bytes(domains in domain_strategy(), bytes in 1u64..1_000_000) {
        let p = path_of(&domains);
        let m = EnergyModel::default();
        let e1 = m.total_energy_nj(&p, bytes);
        let e2 = m.total_energy_nj(&p, bytes * 2);
        if p.hop_count() > 0 {
            prop_assert!(e2 > e1);
            prop_assert!((e2 - 2.0 * e1).abs() < 1e-6 * e2.max(1.0), "energy linear in bytes");
        } else {
            prop_assert_eq!(e1, 0.0);
        }
        let oeo = OeoCostModel::default();
        prop_assert_eq!(
            oeo.path_conversion_energy_nj(&p, bytes),
            p.oeo_conversions() as f64 * oeo.conversion_energy_nj(bytes)
        );
    }

    /// Routed paths connect their endpoints through existing edges and the
    /// slice restriction is honored.
    #[test]
    fn routes_are_walks_and_respect_slices(dc in dc_strategy()) {
        let servers: Vec<ServerId> = dc.server_ids().collect();
        let a = dc.node_of_server(servers[0]);
        let b = dc.node_of_server(*servers.last().unwrap());
        if let Ok(p) = route_flow(&dc, &[a, b]) {
            prop_assert_eq!(*p.nodes().first().unwrap(), a);
            prop_assert_eq!(*p.nodes().last().unwrap(), b);
            for w in p.nodes().windows(2) {
                prop_assert!(dc.graph().contains_edge(w[0], w[1]));
            }
            // Restricting to exactly the found path reproduces a path
            // inside the allowed set.
            let allowed: HashSet<NodeId> = p.nodes().iter().copied().collect();
            let q = route_flow_within(&dc, &allowed, &[a, b]).expect("path still available");
            for n in q.nodes() {
                prop_assert!(allowed.contains(n));
            }
        }
    }

    /// A route's latency equals the sum of the cheapest per-hop latencies.
    #[test]
    fn route_latency_is_additive(dc in dc_strategy()) {
        let servers: Vec<ServerId> = dc.server_ids().collect();
        let a = dc.node_of_server(servers[0]);
        let b = dc.node_of_server(servers[servers.len() / 2]);
        if a == b {
            return Ok(());
        }
        if let Ok(p) = route_flow(&dc, &[a, b]) {
            let mut total = 0.0;
            for w in p.nodes().windows(2) {
                let min_latency = dc
                    .graph()
                    .incident_edges(w[0])
                    .filter(|&(_, n)| n == w[1])
                    .map(|(e, _)| dc.graph().edge_weight(e).unwrap().latency_us)
                    .fold(f64::INFINITY, f64::min);
                total += min_latency;
            }
            prop_assert!((p.latency_us() - total).abs() < 1e-9);
        }
    }
}
