//! O/E/O conversion cost: proportional to flow length (§IV.D).

use serde::{Deserialize, Serialize};

use crate::path::HybridPath;

/// Conversion cost model: "Cost of this conversion corresponds to the
/// length of the flow. The larger the flow is, higher will be the cost."
///
/// Each O/E/O conversion of a flow of `bytes` costs
/// `bytes * 8 * nj_per_bit` nanojoules plus a fixed per-conversion latency.
///
/// # Example
///
/// ```
/// use alvc_optical::OeoCostModel;
///
/// let m = OeoCostModel::default();
/// // Doubling the flow doubles the conversion energy (cost ∝ length).
/// let one = m.conversion_energy_nj(1_000_000);
/// let two = m.conversion_energy_nj(2_000_000);
/// assert!((two - 2.0 * one).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OeoCostModel {
    /// Energy per bit converted, in nanojoules. Synthetic calibration:
    /// 5 nJ/bit for a full O→E→O transit of commodity transponders.
    pub nj_per_bit: f64,
    /// Added latency per conversion, in microseconds.
    pub latency_us_per_conversion: f64,
}

impl Default for OeoCostModel {
    fn default() -> Self {
        OeoCostModel {
            nj_per_bit: 5.0,
            latency_us_per_conversion: 10.0,
        }
    }
}

impl OeoCostModel {
    /// Creates a model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is negative.
    pub fn new(nj_per_bit: f64, latency_us_per_conversion: f64) -> Self {
        assert!(nj_per_bit >= 0.0, "energy per bit must be non-negative");
        assert!(
            latency_us_per_conversion >= 0.0,
            "latency per conversion must be non-negative"
        );
        OeoCostModel {
            nj_per_bit,
            latency_us_per_conversion,
        }
    }

    /// Energy of a single O/E/O conversion for a flow of `flow_bytes`, in
    /// nanojoules.
    pub fn conversion_energy_nj(&self, flow_bytes: u64) -> f64 {
        flow_bytes as f64 * 8.0 * self.nj_per_bit
    }

    /// Total conversion energy for a flow following `path`, in nanojoules.
    pub fn path_conversion_energy_nj(&self, path: &HybridPath, flow_bytes: u64) -> f64 {
        path.oeo_conversions() as f64 * self.conversion_energy_nj(flow_bytes)
    }

    /// Total conversion latency added along `path`, in microseconds.
    pub fn path_conversion_latency_us(&self, path: &HybridPath) -> f64 {
        path.oeo_conversions() as f64 * self.latency_us_per_conversion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_graph::NodeId;
    use alvc_topology::Domain::{Electronic as E, Optical as O};

    fn path(domains: &[alvc_topology::Domain]) -> HybridPath {
        HybridPath::new(
            (0..=domains.len()).map(NodeId).collect(),
            domains.to_vec(),
            0.0,
        )
    }

    #[test]
    fn cost_proportional_to_flow_length() {
        let m = OeoCostModel::default();
        assert_eq!(m.conversion_energy_nj(0), 0.0);
        let small = m.conversion_energy_nj(1_000);
        let big = m.conversion_energy_nj(10_000);
        assert!((big / small - 10.0).abs() < 1e-9);
    }

    #[test]
    fn path_energy_counts_conversions() {
        let m = OeoCostModel::new(2.0, 5.0);
        let two_detours = path(&[O, E, O, E, O]);
        let bytes = 1_000u64;
        assert_eq!(
            m.path_conversion_energy_nj(&two_detours, bytes),
            2.0 * bytes as f64 * 8.0 * 2.0
        );
        assert_eq!(m.path_conversion_latency_us(&two_detours), 10.0);
        let clean = path(&[E, O, O, E]);
        assert_eq!(m.path_conversion_energy_nj(&clean, bytes), 0.0);
        assert_eq!(m.path_conversion_latency_us(&clean), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_rejected() {
        OeoCostModel::new(-1.0, 0.0);
    }
}
