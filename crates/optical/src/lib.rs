//! Hybrid optical/electronic domain model and O/E/O cost accounting
//! (§III.B and §IV.D of the AL-VC paper).
//!
//! "TOR switches produce electronic packets and they need to be converted
//! into optical packets before sending over the optical domain. … This back
//! and forth conversion results in O/E/O conversions that consume an
//! enormous amount of energy." And, for VNF placement: "Each time the flow
//! is traversed from optical to electronic and back to optical, it consumes
//! O/E/O conversion. Cost of this conversion corresponds to the length of
//! the flow."
//!
//! This crate provides:
//!
//! * [`HybridPath`] — a physical path annotated with per-link domains, with
//!   [`HybridPath::oeo_conversions`] counting exactly the paper's
//!   optical→electronic→optical detours;
//! * [`routing`] — latency-optimal waypoint routing over the
//!   [`alvc_topology::DataCenter`] graph, optionally restricted to an
//!   abstraction layer's switches (slice isolation);
//! * [`EnergyModel`] — per-bit switching + conversion energy, making the
//!   "enormous amount of energy" claim measurable;
//! * [`OeoCostModel`] — conversion cost proportional to flow length.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library crates report progress through alvc-telemetry events, never the
// process's stdout/stderr (enforced under cargo clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod energy;
pub mod oeo;
pub mod path;
pub mod routing;

pub use energy::EnergyModel;
pub use oeo::OeoCostModel;
pub use path::HybridPath;
pub use routing::{route_flow, route_flow_ecmp, route_flow_within, try_path_edges, RoutingError};
