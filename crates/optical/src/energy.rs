//! Per-bit switching energy for hybrid paths.
//!
//! The topology argument for OPS cores (§III.B, ref \[29\]) is "higher
//! bandwidth with small energy consumption". This model makes the claim
//! measurable: electronic switching costs an order of magnitude more per
//! bit than optical forwarding, and each O/E/O conversion adds transponder
//! energy on top.

use serde::{Deserialize, Serialize};

use crate::oeo::OeoCostModel;
use crate::path::HybridPath;
use alvc_topology::Domain;

/// Energy accounting for a flow traversing a hybrid path.
///
/// Synthetic calibration (documented in DESIGN.md): electronic switching
/// ≈ 10 nJ/bit/hop, optical forwarding ≈ 1 nJ/bit/hop, O/E/O conversion
/// ≈ 5 nJ/bit — values chosen to reproduce the *ordering* reported for
/// optical DCNs, not any specific hardware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per bit per electronic hop (nJ).
    pub electronic_nj_per_bit_hop: f64,
    /// Energy per bit per optical hop (nJ).
    pub optical_nj_per_bit_hop: f64,
    /// The conversion model used for O/E/O energy.
    pub oeo: OeoCostModel,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            electronic_nj_per_bit_hop: 10.0,
            optical_nj_per_bit_hop: 1.0,
            oeo: OeoCostModel::default(),
        }
    }
}

impl EnergyModel {
    /// Switching (forwarding) energy of a flow of `flow_bytes` along
    /// `path`, excluding conversions, in nanojoules.
    pub fn switching_energy_nj(&self, path: &HybridPath, flow_bytes: u64) -> f64 {
        let bits = flow_bytes as f64 * 8.0;
        path.link_domains()
            .iter()
            .map(|d| match d {
                Domain::Electronic => self.electronic_nj_per_bit_hop,
                Domain::Optical => self.optical_nj_per_bit_hop,
            })
            .sum::<f64>()
            * bits
    }

    /// Total energy (switching + O/E/O conversions) in nanojoules.
    pub fn total_energy_nj(&self, path: &HybridPath, flow_bytes: u64) -> f64 {
        self.switching_energy_nj(path, flow_bytes)
            + self.oeo.path_conversion_energy_nj(path, flow_bytes)
    }

    /// Total energy in joules (convenience for reports).
    pub fn total_energy_j(&self, path: &HybridPath, flow_bytes: u64) -> f64 {
        self.total_energy_nj(path, flow_bytes) * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_graph::NodeId;
    use alvc_topology::Domain::{Electronic as E, Optical as O};

    fn path(domains: &[Domain]) -> HybridPath {
        HybridPath::new(
            (0..=domains.len()).map(NodeId).collect(),
            domains.to_vec(),
            0.0,
        )
    }

    #[test]
    fn optical_hops_cheaper_than_electronic() {
        let m = EnergyModel::default();
        let bytes = 1_000_000;
        let optical = m.switching_energy_nj(&path(&[O, O, O]), bytes);
        let electronic = m.switching_energy_nj(&path(&[E, E, E]), bytes);
        assert!(optical < electronic);
        assert!((electronic / optical - 10.0).abs() < 1e-9);
    }

    #[test]
    fn conversions_add_energy() {
        let m = EnergyModel::default();
        let bytes = 1_000;
        let detour = path(&[O, E, O]); // 1 conversion
        let clean = path(&[O, E, E]); // same hops mix? no — use equal mixes
        let with = m.total_energy_nj(&detour, bytes);
        let without = m.switching_energy_nj(&detour, bytes);
        assert!(with > without);
        assert_eq!(m.oeo.path_conversion_energy_nj(&clean, bytes), 0.0);
    }

    #[test]
    fn zero_bytes_zero_energy() {
        let m = EnergyModel::default();
        assert_eq!(m.total_energy_nj(&path(&[O, E, O]), 0), 0.0);
    }

    #[test]
    fn joules_conversion() {
        let m = EnergyModel::default();
        let p = path(&[O]);
        let nj = m.total_energy_nj(&p, 1_000_000);
        assert!((m.total_energy_j(&p, 1_000_000) - nj * 1e-9).abs() < 1e-15);
    }
}
