//! Waypoint routing over the physical graph, with optional slice
//! restriction.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use alvc_graph::shortest_path::dijkstra;
use alvc_graph::{Graph, NodeId};
use alvc_topology::{DataCenter, LinkAttrs, PhysNode};

use crate::path::HybridPath;

/// Errors from flow routing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutingError {
    /// No route between two consecutive waypoints (possibly because the
    /// slice restriction removed every path).
    NoRoute {
        /// Segment source.
        from: NodeId,
        /// Segment target.
        to: NodeId,
    },
    /// Fewer than two waypoints were supplied.
    TooFewWaypoints,
    /// A path references two consecutive nodes with no connecting link in
    /// the topology — the signature of a stale path kept across a link or
    /// switch failure.
    MissingLink {
        /// First node of the broken hop.
        from: NodeId,
        /// Second node of the broken hop.
        to: NodeId,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::NoRoute { from, to } => {
                write!(
                    f,
                    "no route from node {} to node {}",
                    from.index(),
                    to.index()
                )
            }
            RoutingError::TooFewWaypoints => write!(f, "routing needs at least two waypoints"),
            RoutingError::MissingLink { from, to } => {
                write!(
                    f,
                    "path references a missing link between node {} and node {}",
                    from.index(),
                    to.index()
                )
            }
        }
    }
}

impl Error for RoutingError {}

/// Latency in tenths of microseconds as an integer Dijkstra cost.
fn latency_cost(attrs: &LinkAttrs) -> u64 {
    (attrs.latency_us * 10.0).round().max(0.0) as u64
}

fn segment(
    graph: &Graph<PhysNode, LinkAttrs>,
    from: NodeId,
    to: NodeId,
    allowed: Option<&HashSet<NodeId>>,
) -> Result<HybridPath, RoutingError> {
    // Restricted routing: forbid disallowed *intermediate* nodes by giving
    // their incident edges infinite cost. Simpler: run Dijkstra on a cost
    // function that returns u64::MAX/4 for edges touching a forbidden node;
    // such edges are never chosen unless no other route exists, so verify
    // the resulting path afterwards.
    let path = dijkstra(graph, from, to, |e, attrs| {
        if let Some(allowed) = allowed {
            let (a, b) = graph.edge_endpoints(e).expect("edge exists");
            let node_ok = |n: NodeId| n == from || n == to || allowed.contains(&n);
            if !node_ok(a) || !node_ok(b) {
                return u64::MAX / 8;
            }
        }
        latency_cost(attrs)
    })
    .map_err(|_| RoutingError::NoRoute { from, to })?;
    if let Some(allowed) = allowed {
        for &n in &path.nodes {
            if n != from && n != to && !allowed.contains(&n) {
                return Err(RoutingError::NoRoute { from, to });
            }
        }
    }
    // Annotate with link domains and real latency.
    let mut domains = Vec::with_capacity(path.nodes.len().saturating_sub(1));
    let mut latency = 0.0;
    for w in path.nodes.windows(2) {
        // Cheapest-latency parallel edge between w[0] and w[1].
        let attrs = graph
            .incident_edges(w[0])
            .filter(|&(_, n)| n == w[1])
            .map(|(e, _)| *graph.edge_weight(e).expect("edge exists"))
            .min_by(|a, b| {
                a.latency_us
                    .partial_cmp(&b.latency_us)
                    .expect("latency is finite")
            })
            .expect("path edges exist");
        domains.push(attrs.domain);
        latency += attrs.latency_us;
    }
    Ok(HybridPath::new(path.nodes, domains, latency))
}

/// Routes a flow through `waypoints` (≥ 2 physical nodes, in visiting
/// order), taking the latency-minimal path for each leg.
///
/// # Errors
///
/// [`RoutingError::TooFewWaypoints`] for fewer than two waypoints,
/// [`RoutingError::NoRoute`] if a leg is unroutable.
///
/// # Example
///
/// ```
/// use alvc_optical::routing::route_flow;
/// use alvc_topology::AlvcTopologyBuilder;
///
/// let dc = AlvcTopologyBuilder::new().seed(1).build();
/// let a = dc.node_of_server(alvc_topology::ServerId(0));
/// let b = dc.node_of_server(alvc_topology::ServerId(5));
/// let path = route_flow(&dc, &[a, b])?;
/// assert!(path.hop_count() >= 2);
/// # Ok::<(), alvc_optical::RoutingError>(())
/// ```
pub fn route_flow(dc: &DataCenter, waypoints: &[NodeId]) -> Result<HybridPath, RoutingError> {
    route_impl(dc, waypoints, None)
}

/// Like [`route_flow`], but intermediate nodes are restricted to `allowed`
/// (waypoints themselves are always permitted). This implements slice
/// isolation: a chain routed within its AL may only transit the AL's
/// switches.
pub fn route_flow_within(
    dc: &DataCenter,
    allowed: &HashSet<NodeId>,
    waypoints: &[NodeId],
) -> Result<HybridPath, RoutingError> {
    route_impl(dc, waypoints, Some(allowed))
}

/// Like [`route_flow`], but equal-latency paths are tie-broken by a
/// per-flow hash — flow-level ECMP. Distinct `flow_hash` values spread
/// flows across the parallel spines/cores of multipath fabrics instead of
/// funneling them all through the lowest-id switch; the chosen path is
/// still latency-minimal.
///
/// # Errors
///
/// As [`route_flow`].
pub fn route_flow_ecmp(
    dc: &DataCenter,
    waypoints: &[NodeId],
    flow_hash: u64,
) -> Result<HybridPath, RoutingError> {
    if waypoints.len() < 2 {
        return Err(RoutingError::TooFewWaypoints);
    }
    let graph = dc.graph();
    let mut full = HybridPath::empty();
    for w in waypoints.windows(2) {
        if w[0] == w[1] {
            continue;
        }
        // Scale latency so the hash jitter (0..8) never changes which
        // paths are latency-minimal (min link latency is 1 µs = 160 units).
        let path = dijkstra(graph, w[0], w[1], |e, attrs| {
            let jitter = {
                // SplitMix-style mix of edge id and flow hash.
                let mut x = flow_hash ^ (e.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x % 8
            };
            (attrs.latency_us * 160.0).round() as u64 + jitter
        })
        .map_err(|_| RoutingError::NoRoute {
            from: w[0],
            to: w[1],
        })?;
        let mut domains = Vec::with_capacity(path.nodes.len().saturating_sub(1));
        let mut latency = 0.0;
        for hop in path.nodes.windows(2) {
            let attrs = graph
                .incident_edges(hop[0])
                .filter(|&(_, n)| n == hop[1])
                .map(|(e, _)| *graph.edge_weight(e).expect("edge exists"))
                .min_by(|a, b| {
                    a.latency_us
                        .partial_cmp(&b.latency_us)
                        .expect("latency is finite")
                })
                .expect("path edges exist");
            domains.push(attrs.domain);
            latency += attrs.latency_us;
        }
        full.join(&HybridPath::new(path.nodes, domains, latency));
    }
    if full.nodes().is_empty() {
        full = HybridPath::new(vec![waypoints[0]], vec![], 0.0);
    }
    record_route(&full);
    Ok(full)
}

/// The concrete edges a path traverses: for each hop, the
/// cheapest-latency parallel link between the two nodes (the same choice
/// the router makes).
///
/// # Panics
///
/// Panics if consecutive path nodes are not adjacent in `dc`. Use
/// [`try_path_edges`] where a stale path (e.g. kept across an element
/// failure) must surface as an error instead.
pub fn path_edges(dc: &DataCenter, path: &HybridPath) -> Vec<alvc_graph::EdgeId> {
    try_path_edges(dc, path).expect("path nodes must be adjacent")
}

/// Fallible variant of [`path_edges`]: a hop between non-adjacent nodes is
/// reported as [`RoutingError::MissingLink`] instead of panicking.
///
/// # Errors
///
/// [`RoutingError::MissingLink`] naming the first broken hop.
pub fn try_path_edges(
    dc: &DataCenter,
    path: &HybridPath,
) -> Result<Vec<alvc_graph::EdgeId>, RoutingError> {
    path.nodes()
        .windows(2)
        .map(|w| {
            dc.graph()
                .incident_edges(w[0])
                .filter(|&(_, n)| n == w[1])
                .min_by(|&(a, _), &(b, _)| {
                    let la = dc.graph().edge_weight(a).expect("edge exists").latency_us;
                    let lb = dc.graph().edge_weight(b).expect("edge exists").latency_us;
                    la.total_cmp(&lb)
                })
                .map(|(e, _)| e)
                .ok_or(RoutingError::MissingLink {
                    from: w[0],
                    to: w[1],
                })
        })
        .collect()
}

fn route_impl(
    dc: &DataCenter,
    waypoints: &[NodeId],
    allowed: Option<&HashSet<NodeId>>,
) -> Result<HybridPath, RoutingError> {
    if waypoints.len() < 2 {
        return Err(RoutingError::TooFewWaypoints);
    }
    let mut full = HybridPath::empty();
    for w in waypoints.windows(2) {
        if w[0] == w[1] {
            continue; // co-located waypoints need no hop
        }
        let seg = segment(dc.graph(), w[0], w[1], allowed)?;
        full.join(&seg);
    }
    if full.nodes().is_empty() {
        // All waypoints co-located.
        full = HybridPath::new(vec![waypoints[0]], vec![], 0.0);
    }
    record_route(&full);
    Ok(full)
}

/// O/E/O accounting probe, shared by every successful routing call: how
/// many flows were routed and how many optical↔electronic boundary
/// crossings their paths pay for (the cost the paper's hybrid
/// architecture tries to minimize).
fn record_route(path: &HybridPath) {
    alvc_telemetry::counter!("alvc_optical.routing.routes").incr();
    alvc_telemetry::counter!("alvc_optical.oeo.conversions").add(path.oeo_conversions() as u64);
    alvc_telemetry::histogram!("alvc_optical.routing.path_latency_us").record(path.latency_us());
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_topology::{AlvcTopologyBuilder, Domain, OpsInterconnect, ServerId};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(6)
            .servers_per_rack(2)
            .ops_count(6)
            .tor_ops_degree(2)
            .interconnect(OpsInterconnect::Ring)
            .seed(13)
            .build()
    }

    #[test]
    fn server_to_server_route_crosses_core() {
        let dc = dc();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(11)); // different rack
        let p = route_flow(&dc, &[a, b]).unwrap();
        assert_eq!(p.nodes().first(), Some(&a));
        assert_eq!(p.nodes().last(), Some(&b));
        // server -E- tor ... tor -E- server with optical middle.
        assert!(
            p.hops_by_domain().1 >= 1,
            "route should use the optical core"
        );
        assert!(p.latency_us() > 0.0);
    }

    #[test]
    fn same_rack_route_stays_electronic() {
        let dc = dc();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(1));
        let p = route_flow(&dc, &[a, b]).unwrap();
        assert_eq!(p.hop_count(), 2); // server-tor-server
        assert_eq!(p.hops_by_domain(), (2, 0));
        assert_eq!(p.oeo_conversions(), 0);
    }

    #[test]
    fn waypoint_route_visits_in_order() {
        let dc = dc();
        let a = dc.node_of_server(ServerId(0));
        let mid = dc.node_of_ops(dc.ops_ids().next().unwrap());
        let b = dc.node_of_server(ServerId(10));
        let p = route_flow(&dc, &[a, mid, b]).unwrap();
        let pos = |n| p.nodes().iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(mid));
        assert!(pos(mid) <= pos(b));
    }

    #[test]
    fn duplicate_waypoints_are_skipped() {
        let dc = dc();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(3));
        let p1 = route_flow(&dc, &[a, a, b, b]).unwrap();
        let p2 = route_flow(&dc, &[a, b]).unwrap();
        assert_eq!(p1.hop_count(), p2.hop_count());
    }

    #[test]
    fn all_colocated_waypoints_give_trivial_path() {
        let dc = dc();
        let a = dc.node_of_server(ServerId(0));
        let p = route_flow(&dc, &[a, a]).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.nodes(), &[a]);
    }

    #[test]
    fn too_few_waypoints_rejected() {
        let dc = dc();
        let a = dc.node_of_server(ServerId(0));
        assert_eq!(route_flow(&dc, &[a]), Err(RoutingError::TooFewWaypoints));
        assert_eq!(route_flow(&dc, &[]), Err(RoutingError::TooFewWaypoints));
    }

    #[test]
    fn restricted_route_stays_in_slice() {
        let dc = dc();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(11));
        let free = route_flow(&dc, &[a, b]).unwrap();
        // Allow exactly the free path's interior → same route is found.
        let allowed: HashSet<NodeId> = free.nodes().iter().copied().collect();
        let restricted = route_flow_within(&dc, &allowed, &[a, b]).unwrap();
        for n in restricted.nodes() {
            assert!(allowed.contains(n));
        }
    }

    #[test]
    fn empty_slice_blocks_cross_rack_route() {
        let dc = dc();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(11));
        let err = route_flow_within(&dc, &HashSet::new(), &[a, b]);
        assert!(matches!(err, Err(RoutingError::NoRoute { .. })));
    }

    #[test]
    fn route_latency_is_sum_of_link_latencies() {
        let dc = dc();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(2));
        let p = route_flow(&dc, &[a, b]).unwrap();
        let expected: f64 = p
            .link_domains()
            .iter()
            .map(|d| match d {
                Domain::Electronic => 2.0,
                Domain::Optical => 1.0,
            })
            .sum();
        assert!((p.latency_us() - expected).abs() < 1e-9);
    }

    #[test]
    fn routing_error_display() {
        let e = RoutingError::NoRoute {
            from: NodeId(1),
            to: NodeId(2),
        };
        assert!(e.to_string().contains("no route"));
        assert!(RoutingError::TooFewWaypoints.to_string().contains("two"));
    }
}

#[cfg(test)]
mod path_edges_tests {
    use super::*;
    use alvc_topology::{AlvcTopologyBuilder, ServerId};

    #[test]
    fn path_edges_match_hops_and_domains() {
        let dc = AlvcTopologyBuilder::new().seed(4).build();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(7));
        let p = route_flow(&dc, &[a, b]).unwrap();
        let edges = path_edges(&dc, &p);
        assert_eq!(edges.len(), p.hop_count());
        for (e, d) in edges.iter().zip(p.link_domains()) {
            assert_eq!(dc.graph().edge_weight(*e).unwrap().domain, *d);
        }
    }

    #[test]
    fn trivial_path_has_no_edges() {
        let dc = AlvcTopologyBuilder::new().seed(4).build();
        let a = dc.node_of_server(ServerId(0));
        let p = route_flow(&dc, &[a, a]).unwrap();
        assert!(path_edges(&dc, &p).is_empty());
    }
}

#[cfg(test)]
mod ecmp_tests {
    use super::*;
    use alvc_topology::{fat_tree, FatTreeParams, ServerId};

    #[test]
    fn ecmp_spreads_flows_across_cores() {
        let dc = fat_tree(&FatTreeParams {
            k: 4,
            vms_per_server: 1,
            seed: 0,
        });
        // Cross-pod pair: servers 0 (pod 0) and 15 (pod 3).
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(15));
        let mut distinct = std::collections::HashSet::new();
        for h in 0..32u64 {
            let p = route_flow_ecmp(&dc, &[a, b], h).unwrap();
            distinct.insert(p.nodes().to_vec());
            // All paths remain shortest (6 hops in a fat-tree).
            assert_eq!(p.hop_count(), 6, "hash {h}");
        }
        assert!(
            distinct.len() >= 2,
            "ECMP must use multiple equal-cost paths, got {}",
            distinct.len()
        );
    }

    #[test]
    fn ecmp_is_deterministic_per_hash() {
        let dc = fat_tree(&FatTreeParams::default());
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(12));
        for h in [0u64, 7, 99] {
            let p1 = route_flow_ecmp(&dc, &[a, b], h).unwrap();
            let p2 = route_flow_ecmp(&dc, &[a, b], h).unwrap();
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn ecmp_matches_plain_routing_cost() {
        let dc = fat_tree(&FatTreeParams::default());
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(15));
        let plain = route_flow(&dc, &[a, b]).unwrap();
        let ecmp = route_flow_ecmp(&dc, &[a, b], 5).unwrap();
        assert_eq!(plain.hop_count(), ecmp.hop_count());
        assert!((plain.latency_us() - ecmp.latency_us()).abs() < 1e-9);
    }

    #[test]
    fn ecmp_trivial_cases() {
        let dc = fat_tree(&FatTreeParams::default());
        let a = dc.node_of_server(ServerId(0));
        assert!(matches!(
            route_flow_ecmp(&dc, &[a], 0),
            Err(RoutingError::TooFewWaypoints)
        ));
        let p = route_flow_ecmp(&dc, &[a, a], 0).unwrap();
        assert_eq!(p.hop_count(), 0);
    }
}
