//! Domain-annotated physical paths.

use alvc_graph::NodeId;
use alvc_topology::Domain;
use serde::{Deserialize, Serialize};

/// A physical path through the data center with each traversed link's
/// domain recorded.
///
/// `links[i]` is the domain of the link between `nodes[i]` and
/// `nodes[i + 1]`; hence `links.len() + 1 == nodes.len()` for non-trivial
/// paths (a single-node path has no links).
///
/// # Example
///
/// ```
/// use alvc_graph::NodeId;
/// use alvc_optical::HybridPath;
/// use alvc_topology::Domain::{Electronic as E, Optical as O};
///
/// // server -E- tor -O- ops -O- tor -E- server: one optical segment,
/// // no O/E/O detour (the flow converts at ingress and egress only).
/// let p = HybridPath::new(
///     (0..5).map(NodeId).collect(),
///     vec![E, O, O, E],
///     12.0,
/// );
/// assert_eq!(p.oeo_conversions(), 0);
/// assert_eq!(p.domain_crossings(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridPath {
    nodes: Vec<NodeId>,
    links: Vec<Domain>,
    latency_us: f64,
}

impl HybridPath {
    /// Creates a path.
    ///
    /// # Panics
    ///
    /// Panics if `links.len() + 1 != nodes.len()` (unless both are empty).
    pub fn new(nodes: Vec<NodeId>, links: Vec<Domain>, latency_us: f64) -> Self {
        if !nodes.is_empty() || !links.is_empty() {
            assert_eq!(
                links.len() + 1,
                nodes.len(),
                "path with {} nodes needs {} link domains",
                nodes.len(),
                nodes.len().saturating_sub(1)
            );
        }
        HybridPath {
            nodes,
            links,
            latency_us,
        }
    }

    /// An empty path (zero hops, zero latency).
    pub fn empty() -> Self {
        HybridPath {
            nodes: Vec::new(),
            links: Vec::new(),
            latency_us: 0.0,
        }
    }

    /// The traversed nodes in order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Per-link domains, in order.
    pub fn link_domains(&self) -> &[Domain] {
        &self.links
    }

    /// Number of links traversed.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Accumulated link latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.latency_us
    }

    /// Appends another path that starts where this one ends.
    ///
    /// # Panics
    ///
    /// Panics if `other` does not start at this path's last node.
    pub fn join(&mut self, other: &HybridPath) {
        if other.nodes.is_empty() {
            return;
        }
        if self.nodes.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(
            *self.nodes.last().expect("non-empty"),
            other.nodes[0],
            "joined path must start at the current endpoint"
        );
        self.nodes.extend_from_slice(&other.nodes[1..]);
        self.links.extend_from_slice(&other.links);
        self.latency_us += other.latency_us;
    }

    /// Number of adjacent link pairs whose domain differs (each is one
    /// O→E or E→O conversion point).
    pub fn domain_crossings(&self) -> usize {
        self.links.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Number of **O/E/O conversions** in the paper's sense: maximal
    /// electronic segments with optical segments on *both* sides. A flow
    /// that dips out of the optical core to visit an electronic VNF and
    /// returns incurs exactly one such conversion (§IV.D, Fig. 8); the
    /// inherent electronic ingress/egress at the end servers does not
    /// count.
    pub fn oeo_conversions(&self) -> usize {
        let mut conversions = 0;
        let mut seen_optical = false;
        let mut in_electronic_run = false;
        for &d in &self.links {
            match d {
                Domain::Electronic => {
                    if seen_optical {
                        in_electronic_run = true;
                    }
                }
                Domain::Optical => {
                    if in_electronic_run {
                        conversions += 1;
                        in_electronic_run = false;
                    }
                    seen_optical = true;
                }
            }
        }
        conversions
    }

    /// Hops traversed in each domain: `(electronic, optical)`.
    pub fn hops_by_domain(&self) -> (usize, usize) {
        let e = self
            .links
            .iter()
            .filter(|&&d| d == Domain::Electronic)
            .count();
        (e, self.links.len() - e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Domain::{Electronic as E, Optical as O};

    fn path(domains: &[Domain]) -> HybridPath {
        let nodes = (0..=domains.len()).map(NodeId).collect();
        HybridPath::new(nodes, domains.to_vec(), domains.len() as f64)
    }

    #[test]
    fn empty_path_counts_nothing() {
        let p = HybridPath::empty();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.oeo_conversions(), 0);
        assert_eq!(p.domain_crossings(), 0);
        assert_eq!(p.latency_us(), 0.0);
    }

    #[test]
    fn pure_optical_no_conversions() {
        let p = path(&[O, O, O]);
        assert_eq!(p.oeo_conversions(), 0);
        assert_eq!(p.domain_crossings(), 0);
        assert_eq!(p.hops_by_domain(), (0, 3));
    }

    #[test]
    fn pure_electronic_no_conversions() {
        let p = path(&[E, E]);
        assert_eq!(p.oeo_conversions(), 0);
        assert_eq!(p.hops_by_domain(), (2, 0));
    }

    #[test]
    fn ingress_egress_not_counted() {
        // server -E- core -O,O- egress -E- server.
        let p = path(&[E, O, O, E]);
        assert_eq!(p.oeo_conversions(), 0);
        assert_eq!(p.domain_crossings(), 2);
    }

    #[test]
    fn one_electronic_detour_is_one_conversion() {
        // Fig. 8: optical, dip to electronic VNF, back to optical.
        let p = path(&[E, O, E, E, O, E]);
        assert_eq!(p.oeo_conversions(), 1);
    }

    #[test]
    fn two_detours_two_conversions() {
        let p = path(&[E, O, E, O, E, O, E]);
        assert_eq!(p.oeo_conversions(), 2);
        assert_eq!(p.domain_crossings(), 6);
    }

    #[test]
    fn consecutive_electronic_vnfs_share_a_conversion() {
        // Two VNFs visited in one electronic dip: still one O/E/O.
        let p = path(&[O, E, E, E, O]);
        assert_eq!(p.oeo_conversions(), 1);
    }

    #[test]
    fn trailing_electronic_run_not_counted() {
        let p = path(&[O, O, E, E]);
        assert_eq!(p.oeo_conversions(), 0);
    }

    #[test]
    fn join_concatenates() {
        let mut a = path(&[E, O]);
        let b = HybridPath::new(vec![NodeId(2), NodeId(3)], vec![O], 5.0);
        a.join(&b);
        assert_eq!(a.hop_count(), 3);
        assert_eq!(a.latency_us(), 7.0);
        assert_eq!(a.nodes().len(), 4);
    }

    #[test]
    fn join_empty_paths() {
        let mut a = HybridPath::empty();
        let b = path(&[O, E]);
        a.join(&b);
        assert_eq!(a, b);
        let mut c = b.clone();
        c.join(&HybridPath::empty());
        assert_eq!(c, b);
    }

    #[test]
    #[should_panic(expected = "must start at the current endpoint")]
    fn join_mismatched_endpoint_panics() {
        let mut a = path(&[O]);
        let b = HybridPath::new(vec![NodeId(9), NodeId(10)], vec![O], 1.0);
        a.join(&b);
    }

    #[test]
    #[should_panic(expected = "link domains")]
    fn inconsistent_lengths_rejected() {
        HybridPath::new(vec![NodeId(0), NodeId(1)], vec![], 0.0);
    }

    #[test]
    fn single_node_path_is_valid() {
        let p = HybridPath::new(vec![NodeId(5)], vec![], 0.0);
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.oeo_conversions(), 0);
    }
}
