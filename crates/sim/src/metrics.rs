//! Counters and sample summaries.
//!
//! [`Summary`] is backed by [`alvc_telemetry::LogHistogram`], so memory is
//! bounded (a fixed set of log-spaced buckets) no matter how many samples a
//! simulation records. Count, sum, mean, stddev, min, and max are exact;
//! interior percentiles are approximate with at most ~9.1% relative error
//! (`p0`/`p100` remain exact).

use alvc_telemetry::LogHistogram;
use serde::{Deserialize, Serialize};

/// A monotonically increasing counter. Saturates at [`u64::MAX`] instead of
/// overflowing, so a hot loop can increment unconditionally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zero counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n`, saturating at [`u64::MAX`].
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Increments by one, saturating at [`u64::MAX`].
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// A bounded-memory summary over recorded samples: count, sum, min/max, mean,
/// stddev, and approximate percentiles from a log-bucketed histogram.
///
/// # Example
///
/// ```
/// use alvc_sim::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// let p50 = s.percentile(50.0);
/// assert!((p50 - 2.0).abs() / 2.0 < 0.095, "{p50}");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    hist: LogHistogram,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records a sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "summary samples must not be NaN");
        assert!(value.is_finite(), "summary samples must be finite");
        self.hist.record(value);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        // Saturating cast: the histogram counts in u64; usize is narrower only
        // on 32-bit targets, where 2^32 samples is already unreachable.
        usize::try_from(self.hist.count()).unwrap_or(usize::MAX)
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.count() == 0
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.hist.sum()
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        self.hist.mean()
    }

    /// Minimum (0 for an empty summary).
    pub fn min(&self) -> f64 {
        self.hist.min().unwrap_or(0.0)
    }

    /// Maximum (0 for an empty summary).
    pub fn max(&self) -> f64 {
        self.hist.max().unwrap_or(0.0)
    }

    /// The `p`-th percentile (0 for an empty summary). `p = 0` and `p = 100`
    /// are the exact min/max; interior percentiles carry the histogram's
    /// bucketing error (≤ ~9.1% relative).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0..=100`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        self.hist.percentile(p)
    }

    /// Standard deviation (population; 0 for fewer than two samples).
    pub fn stddev(&self) -> f64 {
        self.hist.stddev()
    }

    /// Merges another summary's samples into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.hist.merge(&other.hist);
    }

    /// The backing histogram (e.g. for bucket-level export).
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.incr();
        assert_eq!(c.value(), u64::MAX);
        c.incr();
        c.add(17);
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 15.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        // Extremes are exact; the median carries bucketing error.
        assert_eq!(s.percentile(0.0), 1.0);
        let p50 = s.percentile(50.0);
        assert!((p50 - 3.0).abs() / 3.0 < 0.095, "{p50}");
        assert_eq!(s.percentile(100.0), 5.0);
        assert!((s.stddev() - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn percentile_nearest_rank_within_bucket_error() {
        let mut s = Summary::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        for (p, exact) in [(95.0, 95.0), (99.0, 99.0), (1.0, 1.0), (50.0, 50.0)] {
            let got = s.percentile(p);
            assert!(
                (got - exact).abs() / exact < 0.095,
                "p{p}: {got} vs {exact}"
            );
        }
    }

    #[test]
    fn recording_after_percentile_keeps_correctness() {
        let mut s = Summary::new();
        s.record(10.0);
        assert_eq!(s.percentile(50.0), 10.0);
        s.record(0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn memory_stays_bounded() {
        let mut s = Summary::new();
        for i in 0..200_000u32 {
            s.record(f64::from(i) + 0.5);
        }
        assert_eq!(s.count(), 200_000);
        // The backing store is a fixed bucket array, not retained samples.
        assert_eq!(
            s.histogram().bucket_counts().len(),
            alvc_telemetry::hist::BUCKET_COUNT
        );
        let p50 = s.percentile(50.0);
        assert!((p50 - 100_000.0).abs() / 100_000.0 < 0.095, "{p50}");
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_rejected() {
        Summary::new().record(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "0..=100")]
    fn bad_percentile_rejected() {
        let mut s = Summary::new();
        s.record(1.0);
        s.percentile(101.0);
    }
}
