//! Counters and sample summaries.

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zero counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// A summary over recorded samples: count, sum, min/max, mean, and
/// percentiles (exact, from retained samples).
///
/// # Example
///
/// ```
/// use alvc_sim::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.percentile(50.0), 2.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records a sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "summary samples must not be NaN");
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Minimum (0 for an empty summary).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum (0 for an empty summary).
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// The `p`-th percentile (nearest-rank; 0 for an empty summary).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0..=100`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)]
    }

    /// Standard deviation (population; 0 for fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 15.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(50.0), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert!((s.stddev() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s = Summary::new();
        for v in 1..=100 {
            s.record(v as f64);
        }
        assert_eq!(s.percentile(95.0), 95.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(1.0), 1.0);
    }

    #[test]
    fn recording_after_percentile_keeps_correctness() {
        let mut s = Summary::new();
        s.record(10.0);
        assert_eq!(s.percentile(50.0), 10.0);
        s.record(0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "0..=100")]
    fn bad_percentile_rejected() {
        let mut s = Summary::new();
        s.record(1.0);
        s.percentile(101.0);
    }
}
