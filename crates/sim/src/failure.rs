//! Deterministic failure schedules for outage replay.
//!
//! The orchestrator's recovery subsystem (`alvc-nfv::recovery`) reacts to
//! element failures; the flow-level experiments need the *traffic side* of
//! the same story: which flows are lost while a chain's substrate is down.
//! A [`FailureSchedule`] is a seeded, sorted list of fail/restore events
//! over the data center's elements. [`chain_outages`] projects it onto a
//! set of deployed chains, producing the per-chain down intervals that
//! [`FlowSim::run_with_outages`](crate::FlowSim::run_with_outages) replays
//! — so experiments E9/E10 can rerun identical outage traces across
//! configurations.

use std::collections::BTreeMap;

use alvc_graph::NodeId;
use alvc_topology::{DataCenter, Element};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::flowsim::ChainLoad;

/// One edge of an outage: an element going down or coming back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageEvent {
    /// Simulated time of the transition, in nanoseconds.
    pub at_ns: u64,
    /// The element transitioning.
    pub element: Element,
    /// `true` for a restore, `false` for a failure.
    pub up: bool,
}

/// A deterministic schedule of element outages over a simulation horizon.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureSchedule {
    events: Vec<OutageEvent>,
}

impl FailureSchedule {
    /// An empty schedule (no outages).
    pub fn none() -> Self {
        FailureSchedule::default()
    }

    /// Builds a schedule from explicit events (sorted by time, failures
    /// before restores at equal times).
    pub fn from_events(mut events: Vec<OutageEvent>) -> Self {
        events.sort_by_key(|e| (e.at_ns, e.up));
        FailureSchedule { events }
    }

    /// Generates `outage_count` independent element outages, uniformly
    /// placed over `horizon_s` seconds, each lasting up to
    /// `max_downtime_s` (restores past the horizon are clamped to it, i.e.
    /// the element stays down to the end). Deterministic per seed; the
    /// element mix covers servers, ToRs, and OPSs.
    pub fn generate(
        dc: &DataCenter,
        seed: u64,
        horizon_s: f64,
        outage_count: usize,
        max_downtime_s: f64,
    ) -> Self {
        let horizon_ns = (horizon_s * 1e9) as u64;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0f1e_2d3c);
        let mut events = Vec::with_capacity(outage_count * 2);
        for _ in 0..outage_count {
            let element = match rng.random_range(0..3u8) {
                0 => Element::Server(alvc_topology::ServerId(
                    rng.random_range(0..dc.server_count()),
                )),
                1 => Element::Tor(alvc_topology::TorId(rng.random_range(0..dc.tor_count()))),
                _ => Element::Ops(alvc_topology::OpsId(rng.random_range(0..dc.ops_count()))),
            };
            let down_at = (rng.random::<f64>() * horizon_ns as f64) as u64;
            let downtime_ns = (rng.random::<f64>() * max_downtime_s * 1e9) as u64;
            let up_at = down_at.saturating_add(downtime_ns).min(horizon_ns);
            events.push(OutageEvent {
                at_ns: down_at,
                element,
                up: false,
            });
            events.push(OutageEvent {
                at_ns: up_at,
                element,
                up: true,
            });
        }
        FailureSchedule::from_events(events)
    }

    /// All events in time order.
    pub fn events(&self) -> &[OutageEvent] {
        &self.events
    }

    /// The half-open `[down, up)` intervals during which `element` is
    /// down, merged where overlapping.
    pub fn down_intervals(&self, element: Element) -> Vec<(u64, u64)> {
        let mut intervals = Vec::new();
        let mut depth = 0usize;
        let mut down_since = 0u64;
        for e in &self.events {
            if e.element != element {
                continue;
            }
            if e.up {
                depth = depth.saturating_sub(1);
                if depth == 0 && e.at_ns > down_since {
                    intervals.push((down_since, e.at_ns));
                }
            } else {
                if depth == 0 {
                    down_since = e.at_ns;
                }
                depth += 1;
            }
        }
        merge_intervals(intervals)
    }

    /// Returns `true` if `element` is down at time `t_ns`.
    pub fn is_down(&self, element: Element, t_ns: u64) -> bool {
        self.down_intervals(element)
            .iter()
            .any(|&(a, b)| a <= t_ns && t_ns < b)
    }

    /// Distinct elements the schedule touches, in first-event order.
    pub fn elements(&self) -> Vec<Element> {
        let mut seen = Vec::new();
        for e in &self.events {
            if !seen.contains(&e.element) {
                seen.push(e.element);
            }
        }
        seen
    }
}

/// Projects a failure schedule onto deployed chains: a chain is down
/// whenever any element whose graph node lies on its path is down. Returns
/// the merged down intervals keyed by chain index (the key space of
/// [`SimReport::per_chain`](crate::SimReport)).
pub fn chain_outages(
    schedule: &FailureSchedule,
    dc: &DataCenter,
    chains: &[ChainLoad],
) -> BTreeMap<usize, Vec<(u64, u64)>> {
    let mut out = BTreeMap::new();
    for load in chains {
        let nodes: Vec<NodeId> = load.path.nodes().to_vec();
        let mut intervals = Vec::new();
        for element in schedule.elements() {
            let node = match element {
                Element::Server(s) => dc.node_of_server(s),
                Element::Tor(t) => dc.node_of_tor(t),
                Element::Ops(o) => dc.node_of_ops(o),
            };
            if nodes.contains(&node) {
                intervals.extend(schedule.down_intervals(element));
            }
        }
        let merged = merge_intervals(intervals);
        if !merged.is_empty() {
            out.insert(load.chain.index(), merged);
        }
    }
    out
}

fn merge_intervals(mut intervals: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for (a, b) in intervals {
        match merged.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => merged.push((a, b)),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_topology::{AlvcTopologyBuilder, OpsId};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(4)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(8)
            .seed(3)
            .build()
    }

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let dc = dc();
        let a = FailureSchedule::generate(&dc, 7, 1.0, 10, 0.2);
        let b = FailureSchedule::generate(&dc, 7, 1.0, 10, 0.2);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 20);
        assert!(a.events().windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        let c = FailureSchedule::generate(&dc, 8, 1.0, 10, 0.2);
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn down_intervals_merge_and_query() {
        let e = Element::Ops(OpsId(0));
        let s = FailureSchedule::from_events(vec![
            OutageEvent {
                at_ns: 100,
                element: e,
                up: false,
            },
            OutageEvent {
                at_ns: 300,
                element: e,
                up: true,
            },
            OutageEvent {
                at_ns: 200,
                element: e,
                up: false,
            },
            OutageEvent {
                at_ns: 500,
                element: e,
                up: true,
            },
        ]);
        assert_eq!(s.down_intervals(e), vec![(100, 500)]);
        assert!(s.is_down(e, 100));
        assert!(s.is_down(e, 499));
        assert!(!s.is_down(e, 500));
        assert!(!s.is_down(e, 99));
        assert!(!s.is_down(Element::Ops(OpsId(1)), 200));
    }

    #[test]
    fn chain_outage_projection_tracks_path_membership() {
        use alvc_nfv::NfcId;
        use alvc_optical::HybridPath;
        let dc = dc();
        let on = dc.node_of_ops(OpsId(0));
        let off = dc.node_of_ops(OpsId(1));
        let mk = |chain: usize, node| ChainLoad {
            chain: NfcId(chain),
            path: HybridPath::new(vec![node], vec![], 1.0),
            bandwidth_gbps: 1.0,
            arrival_rate_per_s: 1.0,
            sizes: crate::workload::FlowSizeDistribution::Constant(100),
        };
        let schedule = FailureSchedule::from_events(vec![
            OutageEvent {
                at_ns: 10,
                element: Element::Ops(OpsId(0)),
                up: false,
            },
            OutageEvent {
                at_ns: 20,
                element: Element::Ops(OpsId(0)),
                up: true,
            },
        ]);
        let outages = chain_outages(&schedule, &dc, &[mk(0, on), mk(1, off)]);
        assert_eq!(outages.get(&0), Some(&vec![(10, 20)]));
        assert!(!outages.contains_key(&1));
    }
}
