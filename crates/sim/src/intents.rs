//! Seeded multi-tenant intent streams for control-plane experiments.
//!
//! The control plane (in `alvc-nfv`) accepts typed lifecycle intents;
//! this module generates the *abstract* operation stream each simulated
//! tenant submits — deploy/teardown/modify/scale draws with configurable
//! weights, plus chain blueprints from [`ChainWorkload`]. The crate
//! cannot name `alvc-nfv`'s intent types itself (it sits below it in the
//! dependency order), so the driver maps each [`IntentOp`] onto a real
//! intent against its own live chains.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use alvc_topology::VmId;

use crate::workload::{ChainBlueprint, ChainWorkload};

/// One abstract control-plane operation. Target selection (which of the
/// tenant's live chains or replicas) is left to the driver: the generator
/// cannot know which earlier operations were admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntentOp {
    /// Deploy a new chain built from this blueprint.
    Deploy(ChainBlueprint),
    /// Tear down one of the tenant's live chains.
    Teardown,
    /// Re-specify one of the tenant's live chains with this blueprint.
    Modify(ChainBlueprint),
    /// Add a replica to one of the tenant's live chains.
    ScaleOut,
    /// Remove one of the tenant's live replicas.
    ScaleIn,
}

impl IntentOp {
    /// A stable snake_case label for reporting.
    pub fn label(&self) -> &'static str {
        match self {
            IntentOp::Deploy(_) => "deploy",
            IntentOp::Teardown => "teardown",
            IntentOp::Modify(_) => "modify",
            IntentOp::ScaleOut => "scale_out",
            IntentOp::ScaleIn => "scale_in",
        }
    }
}

/// Relative draw weights for the five operation families. Only ratios
/// matter; weights need not sum to one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixWeights {
    /// Weight of [`IntentOp::Deploy`].
    pub deploy: f64,
    /// Weight of [`IntentOp::Teardown`].
    pub teardown: f64,
    /// Weight of [`IntentOp::Modify`].
    pub modify: f64,
    /// Weight of [`IntentOp::ScaleOut`].
    pub scale_out: f64,
    /// Weight of [`IntentOp::ScaleIn`].
    pub scale_in: f64,
}

impl Default for MixWeights {
    /// A deploy-heavy steady-state mix: deployments dominate, with a
    /// trickle of churn (teardown/modify) and elasticity (scaling).
    fn default() -> Self {
        MixWeights {
            deploy: 4.0,
            teardown: 1.0,
            modify: 1.0,
            scale_out: 1.0,
            scale_in: 0.5,
        }
    }
}

impl MixWeights {
    /// A pure-deployment mix (capacity fill experiments).
    pub fn deploy_only() -> Self {
        MixWeights {
            deploy: 1.0,
            teardown: 0.0,
            modify: 0.0,
            scale_out: 0.0,
            scale_in: 0.0,
        }
    }

    fn total(&self) -> f64 {
        self.deploy + self.teardown + self.modify + self.scale_out + self.scale_in
    }
}

/// Seeded generator of weighted [`IntentOp`] streams.
///
/// # Example
///
/// ```
/// use alvc_sim::{ChainWorkload, IntentMix, MixWeights};
/// use alvc_topology::VmId;
///
/// let vms: Vec<VmId> = (0..8).map(VmId).collect();
/// let mut mix = IntentMix::new(MixWeights::default(), ChainWorkload::new(1, 3, 0.3, 7), 7);
/// let ops = mix.generate(&vms, 100);
/// assert_eq!(ops.len(), 100);
/// ```
#[derive(Debug)]
pub struct IntentMix {
    weights: MixWeights,
    chains: ChainWorkload,
    rng: StdRng,
}

impl IntentMix {
    /// Creates a generator drawing operations per `weights`, with deploy
    /// and modify blueprints from `chains`.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero or any weight is negative or
    /// non-finite.
    pub fn new(weights: MixWeights, chains: ChainWorkload, seed: u64) -> Self {
        let all = [
            weights.deploy,
            weights.teardown,
            weights.modify,
            weights.scale_out,
            weights.scale_in,
        ];
        assert!(
            all.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        assert!(
            weights.total() > 0.0,
            "at least one weight must be positive"
        );
        IntentMix {
            weights,
            chains,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next operation, taking endpoints from `vms` when a
    /// blueprint is needed.
    ///
    /// # Panics
    ///
    /// Panics if `vms` has fewer than two entries (blueprints need
    /// distinct endpoints).
    pub fn next(&mut self, vms: &[VmId]) -> IntentOp {
        let mut x = self.rng.random::<f64>() * self.weights.total();
        x -= self.weights.deploy;
        if x < 0.0 {
            let bp = self.chains.generate(vms, 1).pop().expect("one blueprint");
            return IntentOp::Deploy(bp);
        }
        x -= self.weights.teardown;
        if x < 0.0 {
            return IntentOp::Teardown;
        }
        x -= self.weights.modify;
        if x < 0.0 {
            let bp = self.chains.generate(vms, 1).pop().expect("one blueprint");
            return IntentOp::Modify(bp);
        }
        x -= self.weights.scale_out;
        if x < 0.0 {
            return IntentOp::ScaleOut;
        }
        IntentOp::ScaleIn
    }

    /// Generates a stream of `n` operations.
    pub fn generate(&mut self, vms: &[VmId], n: usize) -> Vec<IntentOp> {
        (0..n).map(|_| self.next(vms)).collect()
    }
}

/// A deliberately unfair multi-tenant arrival process: tenant `0` (the
/// *heavy* tenant) offers a fixed multiple of every other tenant's
/// per-round burst, and each round emits the heavy burst **first** — the
/// worst case for a FIFO control plane, whose batch slots then go to
/// whoever flooded earliest. Fairness experiments (e12) drive both the
/// FIFO baseline and the deficit-round-robin scheduler with this stream
/// and compare per-tenant service.
///
/// Each tenant draws from its own seeded [`IntentMix`], so the op streams
/// are independent and a run is reproducible from the seed alone.
#[derive(Debug)]
pub struct AsymmetricLoad {
    mixes: Vec<IntentMix>,
    bursts: Vec<usize>,
    offered: Vec<usize>,
}

impl AsymmetricLoad {
    /// `light_tenants` weight-1 tenants offering `light_burst` ops per
    /// round, plus the heavy tenant (index `0`) offering `heavy_burst`.
    /// All tenants share `weights` and the blueprint shape of `chains`
    /// (re-seeded per tenant from `seed`).
    ///
    /// # Panics
    ///
    /// Panics if either burst is zero or there are no light tenants.
    pub fn new(
        heavy_burst: usize,
        light_burst: usize,
        light_tenants: usize,
        weights: MixWeights,
        chains: &ChainWorkload,
        seed: u64,
    ) -> Self {
        assert!(
            heavy_burst > 0 && light_burst > 0,
            "bursts must be positive"
        );
        assert!(light_tenants > 0, "at least one light tenant");
        let tenants = light_tenants + 1;
        let mixes = (0..tenants)
            .map(|t| {
                let s = seed.wrapping_add(1 + t as u64);
                IntentMix::new(weights, chains.reseeded(s), s)
            })
            .collect();
        let mut bursts = vec![light_burst; tenants];
        bursts[0] = heavy_burst;
        AsymmetricLoad {
            mixes,
            bursts,
            offered: vec![0; tenants],
        }
    }

    /// Number of tenants (heavy tenant included).
    pub fn tenants(&self) -> usize {
        self.bursts.len()
    }

    /// Ops offered per round by tenant `t`.
    pub fn burst(&self, t: usize) -> usize {
        self.bursts[t]
    }

    /// Total arrivals per round across all tenants.
    pub fn arrivals_per_round(&self) -> usize {
        self.bursts.iter().sum()
    }

    /// Cumulative ops tenant `t` has offered so far.
    pub fn offered(&self, t: usize) -> usize {
        self.offered[t]
    }

    /// One arrival round: `(tenant, op)` pairs, the heavy tenant's entire
    /// burst first, then each light tenant's in index order. `groups[t]`
    /// supplies tenant `t`'s VM endpoints for blueprint-carrying ops.
    pub fn round(&mut self, groups: &[Vec<VmId>]) -> Vec<(usize, IntentOp)> {
        assert_eq!(groups.len(), self.tenants(), "one VM group per tenant");
        let mut out = Vec::with_capacity(self.arrivals_per_round());
        for (t, group) in groups.iter().enumerate() {
            for _ in 0..self.bursts[t] {
                out.push((t, self.mixes[t].next(group)));
            }
            self.offered[t] += self.bursts[t];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vms() -> Vec<VmId> {
        (0..12).map(VmId).collect()
    }

    fn mix(weights: MixWeights, seed: u64) -> IntentMix {
        IntentMix::new(weights, ChainWorkload::new(1, 3, 0.25, seed), seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = mix(MixWeights::default(), 11).generate(&vms(), 50);
        let b = mix(MixWeights::default(), 11).generate(&vms(), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn weights_shape_the_stream() {
        let ops = mix(MixWeights::default(), 3).generate(&vms(), 2000);
        let deploys = ops
            .iter()
            .filter(|o| matches!(o, IntentOp::Deploy(_)))
            .count() as f64
            / ops.len() as f64;
        // deploy weight 4 of 7.5 total ≈ 0.53.
        assert!((0.45..=0.62).contains(&deploys), "deploy share {deploys}");
        for op in &ops {
            if let IntentOp::Deploy(bp) | IntentOp::Modify(bp) = op {
                assert_ne!(bp.ingress, bp.egress);
                assert!((1..=3).contains(&bp.heavy.len()));
            }
        }
    }

    #[test]
    fn deploy_only_mix_never_churns() {
        let ops = mix(MixWeights::deploy_only(), 5).generate(&vms(), 200);
        assert!(ops.iter().all(|o| matches!(o, IntentOp::Deploy(_))));
    }

    #[test]
    fn labels_are_stable() {
        let bp = ChainWorkload::new(1, 1, 0.0, 0)
            .generate(&vms(), 1)
            .pop()
            .unwrap();
        assert_eq!(IntentOp::Deploy(bp.clone()).label(), "deploy");
        assert_eq!(IntentOp::Teardown.label(), "teardown");
        assert_eq!(IntentOp::Modify(bp).label(), "modify");
        assert_eq!(IntentOp::ScaleOut.label(), "scale_out");
        assert_eq!(IntentOp::ScaleIn.label(), "scale_in");
    }

    #[test]
    fn asymmetric_load_emits_heavy_first_at_the_configured_ratio() {
        let chains = ChainWorkload::new(1, 3, 0.25, 9);
        let mut load = AsymmetricLoad::new(50, 5, 8, MixWeights::default(), &chains, 9);
        assert_eq!(load.tenants(), 9);
        assert_eq!(load.arrivals_per_round(), 50 + 8 * 5);
        let groups: Vec<Vec<VmId>> = (0..9).map(|_| vms()).collect();
        let round = load.round(&groups);
        assert_eq!(round.len(), 90);
        // The heavy tenant's burst leads, then light tenants in order.
        assert!(round[..50].iter().all(|&(t, _)| t == 0));
        for light in 1..9 {
            let at = 50 + (light - 1) * 5;
            assert!(round[at..at + 5].iter().all(|&(t, _)| t == light));
        }
        for t in 0..9 {
            assert_eq!(load.offered(t), load.burst(t));
        }
    }

    #[test]
    fn asymmetric_load_is_deterministic_per_seed() {
        let chains = ChainWorkload::new(1, 3, 0.25, 4);
        let groups: Vec<Vec<VmId>> = (0..3).map(|_| vms()).collect();
        let run = |seed| {
            let mut load = AsymmetricLoad::new(10, 1, 2, MixWeights::default(), &chains, seed);
            (0..4).flat_map(|_| load.round(&groups)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_rejected() {
        let w = MixWeights {
            deploy: 0.0,
            teardown: 0.0,
            modify: 0.0,
            scale_out: 0.0,
            scale_in: 0.0,
        };
        mix(w, 0);
    }
}
