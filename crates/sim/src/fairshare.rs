//! Flow-level simulation with link contention (max–min fair sharing).
//!
//! [`crate::flowsim::FlowSim`] gives every flow its provisioned bandwidth —
//! fine for admission-controlled chains, but unable to show what happens
//! when flows *compete*. This module implements the classical flow-level
//! contention model: at any instant, active flows receive their **max–min
//! fair** rates over the links they traverse (progressive filling), and the
//! simulation advances between flow arrival/completion events,
//! recomputing rates whenever the active set changes.
//!
//! This is the model used by flow-level DCN simulators to compare fabric
//! designs; experiment E10 uses it to compare the AL-VC core against the
//! electronic leaf–spine baseline under identical offered load.

use std::collections::HashMap;

use alvc_graph::EdgeId;
use alvc_optical::routing::path_edges;
use alvc_optical::HybridPath;
use alvc_topology::DataCenter;
use serde::{Deserialize, Serialize};

use crate::metrics::Summary;

/// A flow to push through the network.
#[derive(Debug, Clone)]
pub struct FairFlow {
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Flow length in bytes.
    pub bytes: u64,
    /// The route the flow takes.
    pub path: HybridPath,
}

/// Results of a fair-share simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FairShareReport {
    /// Completed flows.
    pub flows: u64,
    /// Total bytes delivered.
    pub bytes: u64,
    /// Flow completion times in milliseconds.
    pub fct_ms: Summary,
    /// Mean per-flow throughput in Gb/s (bytes / completion time).
    pub mean_throughput_gbps: f64,
    /// The maximum number of simultaneously active flows observed.
    pub peak_active: usize,
}

/// Computes max–min fair rates (Gb/s) for the active flows.
///
/// `flow_links[i]` lists the link indices flow `i` traverses;
/// `capacity[l]` is link `l`'s capacity in Gb/s. Progressive filling:
/// repeatedly saturate the bottleneck link with the smallest fair share.
///
/// # Panics
///
/// Panics if a flow references a link out of range.
pub fn max_min_rates(flow_links: &[Vec<usize>], capacity: &[f64]) -> Vec<f64> {
    let n = flow_links.len();
    let mut rate = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut remaining: Vec<f64> = capacity.to_vec();
    // Flows with no links get unbounded rate conceptually; cap at the max
    // capacity so the result stays finite.
    let max_cap = capacity.iter().cloned().fold(0.0, f64::max);
    let mut active_on_link: Vec<usize> = vec![0; capacity.len()];
    for links in flow_links {
        for &l in links {
            active_on_link[l] += 1;
        }
    }
    loop {
        // Fair share each unsaturated link could still give its flows.
        let mut bottleneck: Option<(f64, usize)> = None;
        for (l, &rem) in remaining.iter().enumerate() {
            if active_on_link[l] == 0 {
                continue;
            }
            let share = rem / active_on_link[l] as f64;
            if bottleneck.is_none_or(|(s, _)| share < s) {
                bottleneck = Some((share, l));
            }
        }
        let Some((share, bottleneck_link)) = bottleneck else {
            break;
        };
        // Freeze every unfrozen flow crossing the bottleneck at the share.
        let mut froze_any = false;
        for i in 0..n {
            if frozen[i] || !flow_links[i].contains(&bottleneck_link) {
                continue;
            }
            rate[i] += share;
            frozen[i] = true;
            froze_any = true;
            for &l in &flow_links[i] {
                remaining[l] = (remaining[l] - share).max(0.0);
                active_on_link[l] -= 1;
            }
        }
        if !froze_any {
            // Bottleneck had no unfrozen flows left; clear and continue.
            active_on_link[bottleneck_link] = 0;
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
    }
    for i in 0..n {
        if flow_links[i].is_empty() {
            rate[i] = max_cap.max(1.0);
        }
    }
    rate
}

/// Simulates `flows` (any order) over `dc` under max–min fair sharing.
///
/// Event-driven: between consecutive arrival/completion instants every
/// active flow progresses at its current fair rate; rates are recomputed
/// whenever the active set changes. Quadratic in the number of concurrent
/// flows — intended for thousands of flows, not millions.
pub fn simulate_fair_share(dc: &DataCenter, flows: &[FairFlow]) -> FairShareReport {
    #[derive(Debug)]
    struct Active {
        remaining_bits: f64,
        arrival_s: f64,
        bytes: u64,
        links: Vec<usize>,
    }

    // Dense link indexing.
    let mut edge_index: HashMap<EdgeId, usize> = HashMap::new();
    let mut capacity: Vec<f64> = Vec::new();
    let mut flow_link_ids: Vec<Vec<usize>> = Vec::with_capacity(flows.len());
    for f in flows {
        let ids = path_edges(dc, &f.path)
            .into_iter()
            .map(|e| {
                *edge_index.entry(e).or_insert_with(|| {
                    capacity.push(
                        dc.graph()
                            .edge_weight(e)
                            .expect("edge exists")
                            .bandwidth_gbps,
                    );
                    capacity.len() - 1
                })
            })
            .collect();
        flow_link_ids.push(ids);
    }

    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by(|&a, &b| {
        flows[a]
            .arrival_s
            .partial_cmp(&flows[b].arrival_s)
            .expect("finite arrival")
    });

    let mut report = FairShareReport::default();
    let mut active: Vec<Active> = Vec::new();
    let mut now = 0.0f64;
    let mut next_arrival = 0usize;

    loop {
        // Current fair rates.
        let links: Vec<Vec<usize>> = active.iter().map(|a| a.links.clone()).collect();
        let rates = max_min_rates(&links, &capacity);

        // Earliest completion among active flows at these rates.
        let mut completion: Option<(f64, usize)> = None;
        for (i, a) in active.iter().enumerate() {
            let r = rates[i].max(1e-9) * 1e9; // bits/s
            let t = now + a.remaining_bits / r;
            if completion.is_none_or(|(tc, _)| t < tc) {
                completion = Some((t, i));
            }
        }
        let arrival_t = (next_arrival < order.len()).then(|| flows[order[next_arrival]].arrival_s);

        let complete_first = match (completion, arrival_t) {
            (None, None) => break,
            (Some((tc, _)), Some(at)) => tc <= at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
        };
        if complete_first {
            let (tc, idx) = completion.expect("checked above");
            // Progress everyone to tc, complete idx.
            for (i, a) in active.iter_mut().enumerate() {
                a.remaining_bits -= rates[i] * 1e9 * (tc - now);
            }
            now = tc;
            let done = active.swap_remove(idx);
            report.flows += 1;
            report.bytes += done.bytes;
            let fct_s = now - done.arrival_s;
            report.fct_ms.record(fct_s * 1e3);
            alvc_telemetry::histogram!("alvc_sim.fairshare.fct_ms").record(fct_s * 1e3);
            if fct_s > 0.0 {
                report.mean_throughput_gbps += done.bytes as f64 * 8.0 / fct_s / 1e9;
            }
        } else {
            // Progress to the arrival, then admit it.
            let at = arrival_t.expect("checked above");
            for (i, a) in active.iter_mut().enumerate() {
                a.remaining_bits -= rates[i] * 1e9 * (at - now);
            }
            now = at.max(now);
            let fi = order[next_arrival];
            next_arrival += 1;
            active.push(Active {
                remaining_bits: flows[fi].bytes as f64 * 8.0,
                arrival_s: flows[fi].arrival_s,
                bytes: flows[fi].bytes,
                links: flow_link_ids[fi].clone(),
            });
            report.peak_active = report.peak_active.max(active.len());
        }
    }
    if report.flows > 0 {
        report.mean_throughput_gbps /= report.flows as f64;
    }
    alvc_telemetry::counter!("alvc_sim.fairshare.flows_completed").add(report.flows);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_graph::NodeId;
    use alvc_optical::routing::route_flow;
    use alvc_topology::{AlvcTopologyBuilder, Domain, ServerId};

    #[test]
    fn max_min_single_link_split_evenly() {
        // Two flows share a 10 Gb/s link.
        let rates = max_min_rates(&[vec![0], vec![0]], &[10.0]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_bottleneck_releases_capacity_elsewhere() {
        // Flow A uses links 0+1; flow B uses link 0 only; link 0 = 10,
        // link 1 = 2. A is capped at 2 by link 1, so B gets 8.
        let rates = max_min_rates(&[vec![0, 1], vec![0]], &[10.0, 2.0]);
        assert!((rates[0] - 2.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 8.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn max_min_empty_and_linkless() {
        assert!(max_min_rates(&[], &[10.0]).is_empty());
        let rates = max_min_rates(&[vec![]], &[10.0]);
        assert!(rates[0] >= 10.0);
    }

    #[test]
    fn max_min_three_flows_two_links() {
        // Classic example: links of capacity 10 each. f0 on l0, f1 on l1,
        // f2 on both. Fair: f2 limited to 5 on each... progressive fill:
        // shares l0: 10/2=5, l1: 10/2=5 → all frozen at 5.
        let rates = max_min_rates(&[vec![0], vec![1], vec![0, 1]], &[10.0, 10.0]);
        for r in &rates {
            assert!((r - 5.0).abs() < 1e-9, "{rates:?}");
        }
    }

    fn path_between(dc: &alvc_topology::DataCenter, a: usize, b: usize) -> HybridPath {
        route_flow(
            dc,
            &[
                dc.node_of_server(ServerId(a)),
                dc.node_of_server(ServerId(b)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_flow_gets_line_rate() {
        let dc = AlvcTopologyBuilder::new().seed(5).build();
        let path = path_between(&dc, 0, 1); // same rack: two 10 Gb/s hops
        let flows = vec![FairFlow {
            arrival_s: 0.0,
            bytes: 125_000_000, // 1 Gb
            path,
        }];
        let report = simulate_fair_share(&dc, &flows);
        assert_eq!(report.flows, 1);
        // 1 Gb over a 10 Gb/s bottleneck ≈ 100 ms.
        let fct = report.fct_ms.clone().percentile(50.0);
        assert!((fct - 100.0).abs() < 1.0, "fct {fct} ms");
        assert!((report.mean_throughput_gbps - 10.0).abs() < 0.1);
    }

    #[test]
    fn two_flows_share_the_access_link() {
        let dc = AlvcTopologyBuilder::new().seed(5).build();
        let path = path_between(&dc, 0, 1);
        let mk = |arrival| FairFlow {
            arrival_s: arrival,
            bytes: 125_000_000,
            path: path.clone(),
        };
        let solo = simulate_fair_share(&dc, &[mk(0.0)]);
        let shared = simulate_fair_share(&dc, &[mk(0.0), mk(0.0)]);
        assert_eq!(shared.flows, 2);
        assert_eq!(shared.peak_active, 2);
        let solo_fct = solo.fct_ms.clone().percentile(50.0);
        let shared_fct = shared.fct_ms.clone().percentile(99.0);
        assert!(
            shared_fct > 1.8 * solo_fct,
            "sharing must slow flows: {shared_fct} vs {solo_fct}"
        );
    }

    #[test]
    fn staggered_arrivals_monotone_time() {
        let dc = AlvcTopologyBuilder::new().seed(5).build();
        let path = path_between(&dc, 0, 7);
        let flows: Vec<FairFlow> = (0..10)
            .map(|i| FairFlow {
                arrival_s: i as f64 * 0.001,
                bytes: 1_000_000,
                path: path.clone(),
            })
            .collect();
        let report = simulate_fair_share(&dc, &flows);
        assert_eq!(report.flows, 10);
        assert_eq!(report.bytes, 10_000_000);
        assert!(report.fct_ms.clone().min() > 0.0);
    }

    #[test]
    fn optical_core_outperforms_skinny_electronic_for_elephants() {
        // Same endpoints; the cross-rack path contains 100 Gb/s optical
        // hops whose capacity exceeds any single access link, so the
        // bottleneck is the 10 Gb/s access link, and ten parallel elephant
        // flows between *different* server pairs complete far faster than
        // if they all shared one pair.
        let dc = AlvcTopologyBuilder::new()
            .racks(6)
            .servers_per_rack(2)
            .seed(6)
            .build();
        let spread: Vec<FairFlow> = (0..5)
            .map(|i| FairFlow {
                arrival_s: 0.0,
                bytes: 12_500_000,
                path: path_between(&dc, i, 11 - i),
            })
            .collect();
        let shared: Vec<FairFlow> = (0..5)
            .map(|_| FairFlow {
                arrival_s: 0.0,
                bytes: 12_500_000,
                path: path_between(&dc, 0, 11),
            })
            .collect();
        let spread_report = simulate_fair_share(&dc, &spread);
        let shared_report = simulate_fair_share(&dc, &shared);
        let spread_p99 = spread_report.fct_ms.clone().percentile(99.0);
        let shared_p99 = shared_report.fct_ms.clone().percentile(99.0);
        assert!(
            spread_p99 < shared_p99 / 2.0,
            "spread {spread_p99} ms vs shared {shared_p99} ms"
        );
        // Paths hit the optical domain.
        assert!(
            spread[0].path.hops_by_domain().1 > 0 || {
                // same-rack pairing fallback; at least one pair crosses racks
                spread.iter().any(|f| f.path.hops_by_domain().1 > 0)
            }
        );
        let _ = Domain::Optical;
        let _ = NodeId(0);
    }

    #[test]
    fn no_flows_empty_report() {
        let dc = AlvcTopologyBuilder::new().seed(5).build();
        let report = simulate_fair_share(&dc, &[]);
        assert_eq!(report.flows, 0);
        assert_eq!(report.peak_active, 0);
    }
}
