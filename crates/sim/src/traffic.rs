//! Traffic matrices and the cluster-locality report (experiment E1).

use serde::{Deserialize, Serialize};

use alvc_topology::{DataCenter, VmId};

use crate::workload::GeneratedFlow;

/// A set of VM-to-VM traffic demands.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    entries: Vec<GeneratedFlow>,
}

impl TrafficMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        TrafficMatrix::default()
    }

    /// Adds a demand.
    pub fn push(&mut self, flow: GeneratedFlow) {
        self.entries.push(flow);
    }

    /// Number of demands.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over demands.
    pub fn iter(&self) -> impl Iterator<Item = &GeneratedFlow> {
        self.entries.iter()
    }

    /// Total bytes across all demands.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|f| f.bytes).sum()
    }
}

impl FromIterator<GeneratedFlow> for TrafficMatrix {
    fn from_iter<T: IntoIterator<Item = GeneratedFlow>>(iter: T) -> Self {
        TrafficMatrix {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<GeneratedFlow> for TrafficMatrix {
    fn extend<T: IntoIterator<Item = GeneratedFlow>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

/// How much of a traffic matrix stays inside service clusters — the
/// quantitative version of Fig. 1/3's motivation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityReport {
    /// Bytes between same-service VMs.
    pub intra_bytes: u64,
    /// Bytes between different-service VMs.
    pub inter_bytes: u64,
    /// Flows between same-service VMs.
    pub intra_flows: usize,
    /// Flows between different-service VMs.
    pub inter_flows: usize,
}

impl LocalityReport {
    /// Computes the report for `matrix` against `dc`'s service tags.
    pub fn compute(dc: &DataCenter, matrix: &TrafficMatrix) -> Self {
        let mut report = LocalityReport {
            intra_bytes: 0,
            inter_bytes: 0,
            intra_flows: 0,
            inter_flows: 0,
        };
        for f in matrix.iter() {
            if dc.service_of_vm(f.src) == dc.service_of_vm(f.dst) {
                report.intra_bytes += f.bytes;
                report.intra_flows += 1;
            } else {
                report.inter_bytes += f.bytes;
                report.inter_flows += 1;
            }
        }
        report
    }

    /// Fraction of bytes that stay within a service cluster (0 for an
    /// empty matrix).
    pub fn intra_byte_share(&self) -> f64 {
        let total = self.intra_bytes + self.inter_bytes;
        if total == 0 {
            0.0
        } else {
            self.intra_bytes as f64 / total as f64
        }
    }

    /// Fraction of flows that stay within a service cluster.
    pub fn intra_flow_share(&self) -> f64 {
        let total = self.intra_flows + self.inter_flows;
        if total == 0 {
            0.0
        } else {
            self.intra_flows as f64 / total as f64
        }
    }
}

/// Helper: builds a matrix by selecting VM pairs with a fixed byte count.
pub fn matrix_of_pairs(pairs: &[(VmId, VmId, u64)]) -> TrafficMatrix {
    pairs
        .iter()
        .map(|&(src, dst, bytes)| GeneratedFlow { src, dst, bytes })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{FlowSizeDistribution, ServiceTraffic};
    use alvc_topology::{AlvcTopologyBuilder, ServiceMix, ServiceType};

    #[test]
    fn empty_matrix_report() {
        let dc = AlvcTopologyBuilder::new().seed(0).build();
        let report = LocalityReport::compute(&dc, &TrafficMatrix::new());
        assert_eq!(report.intra_byte_share(), 0.0);
        assert_eq!(report.intra_flow_share(), 0.0);
    }

    #[test]
    fn pure_intra_matrix() {
        let dc = AlvcTopologyBuilder::new()
            .service_mix(ServiceMix::uniform(&[ServiceType::WebService]))
            .seed(1)
            .build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let m = matrix_of_pairs(&[(vms[0], vms[1], 100), (vms[2], vms[3], 50)]);
        let r = LocalityReport::compute(&dc, &m);
        assert_eq!(r.intra_bytes, 150);
        assert_eq!(r.inter_bytes, 0);
        assert_eq!(r.intra_byte_share(), 1.0);
        assert_eq!(m.total_bytes(), 150);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn correlated_workload_shows_high_locality() {
        let dc = AlvcTopologyBuilder::new()
            .racks(6)
            .vms_per_server(4)
            .seed(3)
            .build();
        let mut gen = ServiceTraffic::new(0.8, FlowSizeDistribution::Constant(1000), 11);
        let matrix: TrafficMatrix = gen.generate(&dc, 1000).into_iter().collect();
        let r = LocalityReport::compute(&dc, &matrix);
        assert!(r.intra_flow_share() > 0.7);
        assert!(r.intra_byte_share() > 0.7);
        assert_eq!(r.intra_flows + r.inter_flows, 1000);
    }

    #[test]
    fn extend_and_iterate() {
        let mut m = TrafficMatrix::new();
        assert!(m.is_empty());
        m.push(GeneratedFlow {
            src: VmId(0),
            dst: VmId(1),
            bytes: 10,
        });
        m.extend([GeneratedFlow {
            src: VmId(1),
            dst: VmId(0),
            bytes: 20,
        }]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.iter().map(|f| f.bytes).sum::<u64>(), 30);
    }
}
