//! Traffic matrices and the cluster-locality report (experiment E1).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use alvc_topology::{DataCenter, VmId};

use crate::workload::GeneratedFlow;

/// Aggregate demand between one ordered `(src, dst)` VM pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairDemand {
    /// Total bytes from `src` to `dst`.
    pub bytes: u64,
    /// Number of individual flows aggregated into this entry.
    pub flows: usize,
}

/// A set of VM-to-VM traffic demands, aggregated per ordered
/// `(src, dst)` pair.
///
/// Workload generators emit individual [`GeneratedFlow`]s, but every
/// consumer (locality reports, the affinity collector, cost models)
/// only cares about the per-pair totals — so the matrix stores exactly
/// those, in O(pairs) memory instead of O(flows), with an indexed
/// accessor ([`demand_between`](TrafficMatrix::demand_between)) that a
/// flat flow list cannot offer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    demands: BTreeMap<(VmId, VmId), PairDemand>,
    total_flows: usize,
    total_bytes: u64,
}

impl TrafficMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        TrafficMatrix::default()
    }

    /// Adds a demand, merging it into the `(src, dst)` aggregate.
    pub fn push(&mut self, flow: GeneratedFlow) {
        let d = self.demands.entry((flow.src, flow.dst)).or_default();
        d.bytes += flow.bytes;
        d.flows += 1;
        self.total_flows += 1;
        self.total_bytes += flow.bytes;
    }

    /// Number of individual flows pushed (not distinct pairs).
    pub fn len(&self) -> usize {
        self.total_flows
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.total_flows == 0
    }

    /// Number of distinct `(src, dst)` pairs with demand.
    pub fn pair_count(&self) -> usize {
        self.demands.len()
    }

    /// The aggregate demand from `src` to `dst`, if any. Directional:
    /// `a→b` and `b→a` are distinct entries.
    pub fn demand_between(&self, src: VmId, dst: VmId) -> Option<PairDemand> {
        self.demands.get(&(src, dst)).copied()
    }

    /// Iterates over `(src, dst, demand)` aggregates in pair order.
    pub fn pairs(&self) -> impl Iterator<Item = (VmId, VmId, PairDemand)> + '_ {
        self.demands.iter().map(|(&(s, d), &p)| (s, d, p))
    }

    /// Iterates over `(src, dst, bytes)` triples — the shape
    /// `alvc_affinity::TrafficCollector::observe_pairs` consumes.
    pub fn pair_demands(&self) -> impl Iterator<Item = (VmId, VmId, u64)> + '_ {
        self.demands.iter().map(|(&(s, d), p)| (s, d, p.bytes))
    }

    /// Total bytes across all demands.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

impl FromIterator<GeneratedFlow> for TrafficMatrix {
    fn from_iter<T: IntoIterator<Item = GeneratedFlow>>(iter: T) -> Self {
        let mut m = TrafficMatrix::new();
        m.extend(iter);
        m
    }
}

impl Extend<GeneratedFlow> for TrafficMatrix {
    fn extend<T: IntoIterator<Item = GeneratedFlow>>(&mut self, iter: T) {
        for f in iter {
            self.push(f);
        }
    }
}

/// How much of a traffic matrix stays inside service clusters — the
/// quantitative version of Fig. 1/3's motivation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityReport {
    /// Bytes between same-service VMs.
    pub intra_bytes: u64,
    /// Bytes between different-service VMs.
    pub inter_bytes: u64,
    /// Flows between same-service VMs.
    pub intra_flows: usize,
    /// Flows between different-service VMs.
    pub inter_flows: usize,
}

impl LocalityReport {
    /// Computes the report for `matrix` against `dc`'s service tags.
    pub fn compute(dc: &DataCenter, matrix: &TrafficMatrix) -> Self {
        let mut report = LocalityReport {
            intra_bytes: 0,
            inter_bytes: 0,
            intra_flows: 0,
            inter_flows: 0,
        };
        for (src, dst, demand) in matrix.pairs() {
            if dc.service_of_vm(src) == dc.service_of_vm(dst) {
                report.intra_bytes += demand.bytes;
                report.intra_flows += demand.flows;
            } else {
                report.inter_bytes += demand.bytes;
                report.inter_flows += demand.flows;
            }
        }
        report
    }

    /// Fraction of bytes that stay within a service cluster (0 for an
    /// empty matrix).
    pub fn intra_byte_share(&self) -> f64 {
        let total = self.intra_bytes + self.inter_bytes;
        if total == 0 {
            0.0
        } else {
            self.intra_bytes as f64 / total as f64
        }
    }

    /// Fraction of flows that stay within a service cluster.
    pub fn intra_flow_share(&self) -> f64 {
        let total = self.intra_flows + self.inter_flows;
        if total == 0 {
            0.0
        } else {
            self.intra_flows as f64 / total as f64
        }
    }
}

/// Helper: builds a matrix by selecting VM pairs with a fixed byte count.
pub fn matrix_of_pairs(pairs: &[(VmId, VmId, u64)]) -> TrafficMatrix {
    pairs
        .iter()
        .map(|&(src, dst, bytes)| GeneratedFlow { src, dst, bytes })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{FlowSizeDistribution, ServiceTraffic};
    use alvc_topology::{AlvcTopologyBuilder, ServiceMix, ServiceType};

    #[test]
    fn empty_matrix_report() {
        let dc = AlvcTopologyBuilder::new().seed(0).build();
        let report = LocalityReport::compute(&dc, &TrafficMatrix::new());
        assert_eq!(report.intra_byte_share(), 0.0);
        assert_eq!(report.intra_flow_share(), 0.0);
    }

    #[test]
    fn pure_intra_matrix() {
        let dc = AlvcTopologyBuilder::new()
            .service_mix(ServiceMix::uniform(&[ServiceType::WebService]))
            .seed(1)
            .build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let m = matrix_of_pairs(&[(vms[0], vms[1], 100), (vms[2], vms[3], 50)]);
        let r = LocalityReport::compute(&dc, &m);
        assert_eq!(r.intra_bytes, 150);
        assert_eq!(r.inter_bytes, 0);
        assert_eq!(r.intra_byte_share(), 1.0);
        assert_eq!(m.total_bytes(), 150);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn correlated_workload_shows_high_locality() {
        let dc = AlvcTopologyBuilder::new()
            .racks(6)
            .vms_per_server(4)
            .seed(3)
            .build();
        let mut gen = ServiceTraffic::new(0.8, FlowSizeDistribution::Constant(1000), 11);
        let matrix: TrafficMatrix = gen.generate(&dc, 1000).into_iter().collect();
        let r = LocalityReport::compute(&dc, &matrix);
        assert!(r.intra_flow_share() > 0.7);
        assert!(r.intra_byte_share() > 0.7);
        assert_eq!(r.intra_flows + r.inter_flows, 1000);
    }

    #[test]
    fn extend_and_iterate() {
        let mut m = TrafficMatrix::new();
        assert!(m.is_empty());
        m.push(GeneratedFlow {
            src: VmId(0),
            dst: VmId(1),
            bytes: 10,
        });
        m.extend([GeneratedFlow {
            src: VmId(1),
            dst: VmId(0),
            bytes: 20,
        }]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.pairs().map(|(_, _, d)| d.bytes).sum::<u64>(), 30);
    }

    #[test]
    fn flows_aggregate_per_ordered_pair() {
        let mut m = TrafficMatrix::new();
        for bytes in [10, 15] {
            m.push(GeneratedFlow {
                src: VmId(0),
                dst: VmId(1),
                bytes,
            });
        }
        m.push(GeneratedFlow {
            src: VmId(1),
            dst: VmId(0),
            bytes: 7,
        });
        // Three flows, but only two directional pairs.
        assert_eq!(m.len(), 3);
        assert_eq!(m.pair_count(), 2);
        assert_eq!(
            m.demand_between(VmId(0), VmId(1)),
            Some(PairDemand {
                bytes: 25,
                flows: 2
            })
        );
        assert_eq!(
            m.demand_between(VmId(1), VmId(0)),
            Some(PairDemand { bytes: 7, flows: 1 })
        );
        assert_eq!(m.demand_between(VmId(0), VmId(2)), None);
        assert_eq!(m.total_bytes(), 32);
        let triples: Vec<_> = m.pair_demands().collect();
        assert_eq!(triples, vec![(VmId(0), VmId(1), 25), (VmId(1), VmId(0), 7)]);
    }
}
