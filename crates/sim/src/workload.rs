//! Seeded workload generators.
//!
//! Production traces are not available (the paper reports none), so the
//! experiments use standard synthetic models: Poisson flow arrivals,
//! bounded-Pareto flow sizes (heavy-tailed, as in DCN measurement
//! literature), and service-correlated endpoint selection implementing the
//! §III.A claim that "two machines providing similar service have high
//! data correlation".

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use alvc_topology::{DataCenter, ServiceType, VmId};

/// Poisson arrival process: exponential interarrival times.
///
/// # Example
///
/// ```
/// use alvc_sim::PoissonArrivals;
///
/// let mut arr = PoissonArrivals::new(1000.0, 7); // 1000 flows/s
/// let t1 = arr.next_arrival_ns();
/// let t2 = arr.next_arrival_ns();
/// assert!(t2 > t1);
/// ```
#[derive(Debug)]
pub struct PoissonArrivals {
    rate_per_s: f64,
    clock_ns: u64,
    rng: StdRng,
}

impl PoissonArrivals {
    /// Creates a process with `rate_per_s` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_s` is not strictly positive.
    pub fn new(rate_per_s: f64, seed: u64) -> Self {
        assert!(rate_per_s > 0.0, "arrival rate must be positive");
        PoissonArrivals {
            rate_per_s,
            clock_ns: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Advances to and returns the next arrival time in nanoseconds.
    pub fn next_arrival_ns(&mut self) -> u64 {
        let u: f64 = self.rng.random();
        // Inverse transform; guard u=1 which would give -ln(0).
        let interarrival_s = -(1.0 - u).max(f64::MIN_POSITIVE).ln() / self.rate_per_s;
        self.clock_ns += (interarrival_s * 1e9).ceil().max(1.0) as u64;
        self.clock_ns
    }
}

/// Flow size distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlowSizeDistribution {
    /// Every flow has the same size.
    Constant(u64),
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest flow.
        min: u64,
        /// Largest flow.
        max: u64,
    },
    /// Bounded Pareto: heavy-tailed with shape `alpha`, scale `min`,
    /// truncated at `max` (mice-and-elephants DCN traffic).
    BoundedPareto {
        /// Scale (minimum size).
        min: u64,
        /// Truncation point.
        max: u64,
        /// Tail index (smaller = heavier tail).
        alpha: f64,
    },
}

impl FlowSizeDistribution {
    /// The default DCN-style distribution: 10 KiB–1 GiB, alpha 1.3.
    pub fn dcn_default() -> Self {
        FlowSizeDistribution::BoundedPareto {
            min: 10 << 10,
            max: 1 << 30,
            alpha: 1.3,
        }
    }

    /// Samples a flow size in bytes.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (`min > max`, `alpha <= 0`).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            FlowSizeDistribution::Constant(s) => s,
            FlowSizeDistribution::Uniform { min, max } => {
                assert!(min <= max, "uniform needs min <= max");
                rng.random_range(min..=max)
            }
            FlowSizeDistribution::BoundedPareto { min, max, alpha } => {
                assert!(min <= max, "pareto needs min <= max");
                assert!(alpha > 0.0, "pareto alpha must be positive");
                if min == max {
                    return min;
                }
                // Inverse-CDF of the bounded Pareto.
                let u: f64 = rng.random();
                let (l, h) = (min as f64, max as f64);
                let la = l.powf(alpha);
                let ha = h.powf(alpha);
                let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
                (x.round() as u64).clamp(min, max)
            }
        }
    }
}

/// Service-correlated endpoint generator: with probability
/// `intra_service_prob` a flow's destination shares the source's service
/// (§III.A's data-correlation assumption); otherwise it is uniform over
/// other-service VMs.
#[derive(Debug)]
pub struct ServiceTraffic {
    intra_service_prob: f64,
    sizes: FlowSizeDistribution,
    rng: StdRng,
}

/// One generated flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratedFlow {
    /// Source VM.
    pub src: VmId,
    /// Destination VM.
    pub dst: VmId,
    /// Flow length in bytes.
    pub bytes: u64,
}

impl ServiceTraffic {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `intra_service_prob` is outside `0..=1`.
    pub fn new(intra_service_prob: f64, sizes: FlowSizeDistribution, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intra_service_prob),
            "probability must be in 0..=1"
        );
        ServiceTraffic {
            intra_service_prob,
            sizes,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates `n` flows over the VMs of `dc`.
    ///
    /// A data center with fewer than two VMs cannot host any flow, so the
    /// result is empty rather than a panic. When the drawn intra/inter
    /// relation is infeasible for the whole topology (e.g. every VM runs
    /// the same service, so no inter-service pair exists), the generator
    /// falls back to the feasible relation instead of redrawing forever.
    pub fn generate(&mut self, dc: &DataCenter, n: usize) -> Vec<GeneratedFlow> {
        if dc.vm_count() < 2 {
            return Vec::new();
        }
        let all: Vec<VmId> = dc.vm_ids().collect();
        // Pre-index VMs by service.
        let mut by_service: std::collections::HashMap<ServiceType, Vec<VmId>> =
            std::collections::HashMap::new();
        for &vm in &all {
            by_service.entry(dc.service_of_vm(vm)).or_default().push(vm);
        }
        // Global feasibility of each relation kind.
        let has_intra = by_service.values().any(|vms| vms.len() >= 2);
        let has_inter = by_service.len() >= 2;
        let mut flows = Vec::with_capacity(n);
        while flows.len() < n {
            let Some(&src) = all.choose(&mut self.rng) else {
                break;
            };
            let service = dc.service_of_vm(src);
            let mut same = self.rng.random::<f64>() < self.intra_service_prob;
            // Fall back when the drawn relation has no candidate pair
            // anywhere in the topology.
            if same && !has_intra {
                same = false;
            } else if !same && !has_inter {
                same = true;
            }
            let pool: Vec<VmId> = if same {
                by_service[&service]
                    .iter()
                    .copied()
                    .filter(|&v| v != src)
                    .collect()
            } else {
                all.iter()
                    .copied()
                    .filter(|&v| dc.service_of_vm(v) != service)
                    .collect()
            };
            let Some(&dst) = pool.choose(&mut self.rng) else {
                continue; // this src has no candidate; redraw the source
            };
            flows.push(GeneratedFlow {
                src,
                dst,
                bytes: self.sizes.sample(&mut self.rng),
            });
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_topology::AlvcTopologyBuilder;

    #[test]
    fn poisson_is_monotone_and_rate_scaled() {
        let mut slow = PoissonArrivals::new(10.0, 1);
        let mut fast = PoissonArrivals::new(10_000.0, 1);
        let mut prev = 0;
        let mut slow_last = 0;
        for _ in 0..100 {
            let t = slow.next_arrival_ns();
            assert!(t > prev);
            prev = t;
            slow_last = t;
        }
        let mut fast_last = 0;
        for _ in 0..100 {
            fast_last = fast.next_arrival_ns();
        }
        assert!(
            fast_last < slow_last,
            "higher rate must produce earlier 100th arrival"
        );
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        let mut a = PoissonArrivals::new(100.0, 9);
        let mut b = PoissonArrivals::new(100.0, 9);
        for _ in 0..10 {
            assert_eq!(a.next_arrival_ns(), b.next_arrival_ns());
        }
    }

    #[test]
    fn constant_and_uniform_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(FlowSizeDistribution::Constant(42).sample(&mut rng), 42);
        for _ in 0..100 {
            let s = FlowSizeDistribution::Uniform { min: 10, max: 20 }.sample(&mut rng);
            assert!((10..=20).contains(&s));
        }
    }

    #[test]
    fn bounded_pareto_within_bounds_and_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = FlowSizeDistribution::dcn_default();
        let samples: Vec<u64> = (0..5000).map(|_| dist.sample(&mut rng)).collect();
        let (min, max) = (10u64 << 10, 1u64 << 30);
        assert!(samples.iter().all(|&s| (min..=max).contains(&s)));
        // Heavy tail: median far below mean.
        let mut sorted = samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // Bounded Pareto with alpha 1.3 has mean ≈ 2.4× the median
        // analytically; sampled means vary with the tail draw.
        assert!(mean > 1.5 * median, "mean {mean} median {median}");
    }

    #[test]
    fn degenerate_pareto_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = FlowSizeDistribution::BoundedPareto {
            min: 100,
            max: 100,
            alpha: 1.5,
        };
        assert_eq!(d.sample(&mut rng), 100);
    }

    #[test]
    fn service_traffic_respects_correlation() {
        let dc = AlvcTopologyBuilder::new()
            .racks(6)
            .servers_per_rack(2)
            .vms_per_server(4)
            .seed(2)
            .build();
        let mut hi = ServiceTraffic::new(0.9, FlowSizeDistribution::Constant(1), 5);
        let flows = hi.generate(&dc, 2000);
        let intra = flows
            .iter()
            .filter(|f| dc.service_of_vm(f.src) == dc.service_of_vm(f.dst))
            .count() as f64
            / flows.len() as f64;
        assert!((0.85..=0.95).contains(&intra), "intra share {intra}");

        let mut lo = ServiceTraffic::new(0.1, FlowSizeDistribution::Constant(1), 5);
        let flows = lo.generate(&dc, 2000);
        let intra = flows
            .iter()
            .filter(|f| dc.service_of_vm(f.src) == dc.service_of_vm(f.dst))
            .count() as f64
            / flows.len() as f64;
        assert!(intra < 0.2, "intra share {intra}");
    }

    #[test]
    fn flows_never_self_directed() {
        let dc = AlvcTopologyBuilder::new().seed(1).build();
        let mut gen = ServiceTraffic::new(1.0, FlowSizeDistribution::Constant(1), 0);
        for f in gen.generate(&dc, 500) {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn single_vm_topology_yields_no_flows() {
        let dc = AlvcTopologyBuilder::new()
            .racks(1)
            .servers_per_rack(1)
            .vms_per_server(1)
            .seed(0)
            .build();
        let mut gen = ServiceTraffic::new(0.5, FlowSizeDistribution::Constant(1), 0);
        assert!(gen.generate(&dc, 100).is_empty(), "no pair, no flows");
    }

    #[test]
    fn infeasible_relation_falls_back_instead_of_spinning() {
        use alvc_topology::ServiceMix;
        // Every VM runs the same service, so no inter-service pair exists
        // anywhere; an inter-only generator must fall back to intra flows
        // rather than redraw forever.
        let dc = AlvcTopologyBuilder::new()
            .racks(2)
            .servers_per_rack(2)
            .vms_per_server(2)
            .service_mix(ServiceMix::uniform(&[ServiceType::WebService]))
            .seed(4)
            .build();
        let mut gen = ServiceTraffic::new(0.0, FlowSizeDistribution::Constant(1), 6);
        let flows = gen.generate(&dc, 200);
        assert_eq!(flows.len(), 200);
        assert!(flows
            .iter()
            .all(|f| dc.service_of_vm(f.src) == dc.service_of_vm(f.dst)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        ServiceTraffic::new(1.5, FlowSizeDistribution::Constant(1), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_rate_rejected() {
        PoissonArrivals::new(0.0, 0);
    }
}

/// Generates randomized `ChainSpec`-shaped data: VNF type sequences for
/// stress experiments. (The `alvc-sim` crate cannot name `ChainSpec`
/// itself — `alvc-nfv` sits above it — so this produces the raw sequence
/// plus endpoints and the caller assembles the spec.)
#[derive(Debug)]
pub struct ChainWorkload {
    min_len: usize,
    max_len: usize,
    heavy_prob: f64,
    rng: StdRng,
}

/// A generated chain blueprint: endpoint VMs plus a tag per VNF slot
/// (`true` = heavy function that cannot run on an optoelectronic router).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainBlueprint {
    /// Ingress VM.
    pub ingress: VmId,
    /// Egress VM.
    pub egress: VmId,
    /// One entry per VNF: `true` for a heavy (electronic-only) function.
    pub heavy: Vec<bool>,
}

impl ChainWorkload {
    /// Creates a generator for chains of `min_len..=max_len` VNFs where
    /// each VNF is heavy with probability `heavy_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `min_len > max_len` or the probability is outside `0..=1`.
    pub fn new(min_len: usize, max_len: usize, heavy_prob: f64, seed: u64) -> Self {
        assert!(min_len <= max_len, "chain length range inverted");
        assert!(
            (0.0..=1.0).contains(&heavy_prob),
            "probability must be in 0..=1"
        );
        ChainWorkload {
            min_len,
            max_len,
            heavy_prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A fresh generator with the same shape parameters (length range,
    /// heavy probability) but an independent seed — one per tenant in
    /// multi-tenant load generators.
    pub fn reseeded(&self, seed: u64) -> Self {
        ChainWorkload::new(self.min_len, self.max_len, self.heavy_prob, seed)
    }

    /// Generates `n` blueprints with endpoints drawn from `vms`.
    ///
    /// A chain needs two *distinct* endpoints, so a pool with fewer than
    /// two distinct VMs yields no blueprints (an empty result, not a
    /// panic). Duplicate entries in `vms` are tolerated — they only skew
    /// the endpoint distribution, never the termination of the draw.
    pub fn generate(&mut self, vms: &[VmId], n: usize) -> Vec<ChainBlueprint> {
        let mut distinct: Vec<VmId> = vms.to_vec();
        distinct.sort();
        distinct.dedup();
        if distinct.len() < 2 {
            return Vec::new();
        }
        (0..n)
            .map(|_| {
                let &ingress = vms
                    .choose(&mut self.rng)
                    .expect("pool has two distinct VMs");
                let mut egress = ingress;
                while egress == ingress {
                    egress = *vms
                        .choose(&mut self.rng)
                        .expect("pool has two distinct VMs");
                }
                let len = self.rng.random_range(self.min_len..=self.max_len);
                let heavy = (0..len)
                    .map(|_| self.rng.random::<f64>() < self.heavy_prob)
                    .collect();
                ChainBlueprint {
                    ingress,
                    egress,
                    heavy,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod chain_workload_tests {
    use super::*;

    #[test]
    fn blueprints_have_requested_shape() {
        let vms: Vec<VmId> = (0..10).map(VmId).collect();
        let mut gen = ChainWorkload::new(2, 5, 0.3, 7);
        let chains = gen.generate(&vms, 100);
        assert_eq!(chains.len(), 100);
        for c in &chains {
            assert_ne!(c.ingress, c.egress);
            assert!((2..=5).contains(&c.heavy.len()));
        }
        // Heavy probability is roughly honored.
        let heavy: usize = chains
            .iter()
            .map(|c| c.heavy.iter().filter(|&&h| h).count())
            .sum();
        let total: usize = chains.iter().map(|c| c.heavy.len()).sum();
        let frac = heavy as f64 / total as f64;
        assert!((0.2..=0.4).contains(&frac), "heavy fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let vms: Vec<VmId> = (0..5).map(VmId).collect();
        let a = ChainWorkload::new(1, 3, 0.5, 9).generate(&vms, 20);
        let b = ChainWorkload::new(1, 3, 0.5, 9).generate(&vms, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn single_vm_yields_no_blueprints() {
        let chains = ChainWorkload::new(1, 2, 0.0, 0).generate(&[VmId(0)], 5);
        assert!(chains.is_empty(), "one VM cannot host a chain");
    }

    #[test]
    fn empty_pool_yields_no_blueprints() {
        let chains = ChainWorkload::new(1, 2, 0.0, 0).generate(&[], 5);
        assert!(chains.is_empty());
    }

    #[test]
    fn duplicated_single_vm_yields_no_blueprints() {
        // Duplicates of one VM are not two distinct endpoints; the old
        // implementation span forever redrawing the egress here.
        let chains = ChainWorkload::new(1, 2, 0.0, 0).generate(&[VmId(3); 4], 5);
        assert!(chains.is_empty());
    }

    #[test]
    #[should_panic(expected = "range inverted")]
    fn inverted_range_rejected() {
        ChainWorkload::new(5, 2, 0.0, 0);
    }
}
