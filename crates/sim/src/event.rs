//! A deterministic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in nanoseconds.
pub type SimTime = u64;

/// A time-ordered event queue with FIFO tie-breaking (events scheduled at
/// the same instant pop in scheduling order), making simulations
/// deterministic regardless of payload type.
///
/// # Example
///
/// ```
/// use alvc_sim::EventQueue;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(20, "late");
/// q.schedule(10, "early");
/// q.schedule(10, "early-second");
/// assert_eq!(q.pop(), Some((10, "early")));
/// assert_eq!(q.pop(), Some((10, "early-second")));
/// assert_eq!(q.pop(), Some((20, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    payloads: Vec<Option<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
            now: 0,
        }
    }

    /// The time of the most recently popped event (0 before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past (before `now`) is allowed but the event pops
    /// immediately with its recorded time; simulations that never schedule
    /// backwards observe monotone `now`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let idx = self.payloads.len();
        self.payloads.push(Some(event));
        self.heap.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    /// Schedules `event` `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, idx)) = self.heap.pop()?;
        self.now = self.now.max(at);
        let payload = self.payloads[idx].take().expect("event popped once");
        Some((at, payload))
    }

    /// Pops the earliest event only if it is scheduled at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let &Reverse((at, _, _)) = self.heap.peek()?;
        if at > deadline {
            return None;
        }
        self.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 0);
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, 'a'), (20, 'b'), (30, 'c')]);
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.schedule(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
        q.pop();
        assert_eq!(q.now(), 10);
    }

    #[test]
    fn schedule_after_uses_now() {
        let mut q = EventQueue::new();
        q.schedule(100, 'a');
        q.pop();
        q.schedule_after(50, 'b');
        assert_eq!(q.pop(), Some((150, 'b')));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        assert_eq!(q.pop_until(15), Some((10, 'a')));
        assert_eq!(q.pop_until(15), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(20), Some((20, 'b')));
    }

    #[test]
    fn interleaved_scheduling_while_popping() {
        // Cascading events: each pop schedules a follow-up until time 50.
        let mut q = EventQueue::new();
        q.schedule(10, 1u64);
        let mut history = Vec::new();
        while let Some((t, gen)) = q.pop() {
            history.push((t, gen));
            if t + 10 <= 50 {
                q.schedule(t + 10, gen + 1);
            }
        }
        assert_eq!(history.len(), 5);
        assert_eq!(history.last(), Some(&(50, 5)));
    }
}
