//! The flow-level discrete-event simulator.
//!
//! Flows arrive per chain (Poisson), traverse the chain's hybrid path, and
//! complete after path latency + O/E/O conversion latency + transmission
//! time. The simulator accumulates per-chain and aggregate completion
//! times, O/E/O conversion counts, and energy — the measurable form of the
//! paper's §IV.D claim.

use std::collections::BTreeMap;

use alvc_nfv::NfcId;
use alvc_optical::{EnergyModel, HybridPath};
use serde::{Deserialize, Serialize};

use crate::event::EventQueue;
use crate::metrics::Summary;
use crate::workload::{FlowSizeDistribution, PoissonArrivals};

/// Offered load for one deployed chain.
#[derive(Debug, Clone)]
pub struct ChainLoad {
    /// The chain id (for reporting).
    pub chain: NfcId,
    /// The chain's routed path.
    pub path: HybridPath,
    /// Provisioned bandwidth for the chain.
    pub bandwidth_gbps: f64,
    /// Poisson arrival rate (flows per second).
    pub arrival_rate_per_s: f64,
    /// Flow size distribution.
    pub sizes: FlowSizeDistribution,
}

/// Per-chain simulation results.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChainReport {
    /// Completed flows.
    pub flows: u64,
    /// Total bytes carried.
    pub bytes: u64,
    /// Total O/E/O conversions incurred (conversions per flow × flows).
    pub oeo_conversions: u64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Flow completion times in microseconds.
    pub completion_us: Summary,
}

/// Aggregate simulation results.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-chain breakdown.
    pub per_chain: BTreeMap<usize, ChainReport>,
    /// Completed flows across chains.
    pub total_flows: u64,
    /// Bytes across chains.
    pub total_bytes: u64,
    /// O/E/O conversions across chains.
    pub total_oeo: u64,
    /// Energy across chains in joules.
    pub total_energy_j: f64,
    /// Peak number of in-flight flows.
    pub peak_in_flight: usize,
    /// Flows that arrived while their chain's substrate was down (outage
    /// replay via [`FlowSim::run_with_outages`]) and were lost.
    #[serde(default)]
    pub dropped_flows: u64,
}

#[derive(Debug)]
enum Event {
    Arrival {
        chain_idx: usize,
        bytes: u64,
    },
    Completion {
        chain_idx: usize,
        bytes: u64,
        started_ns: u64,
    },
}

/// Flow-level simulator over a set of deployed chains.
///
/// # Example
///
/// ```
/// use alvc_graph::NodeId;
/// use alvc_nfv::NfcId;
/// use alvc_optical::{EnergyModel, HybridPath};
/// use alvc_sim::{ChainLoad, FlowSim, FlowSizeDistribution};
/// use alvc_topology::Domain::Optical;
///
/// let path = HybridPath::new(vec![NodeId(0), NodeId(1)], vec![Optical], 1.0);
/// let sim = FlowSim::new(EnergyModel::default(), vec![ChainLoad {
///     chain: NfcId(0),
///     path,
///     bandwidth_gbps: 10.0,
///     arrival_rate_per_s: 1000.0,
///     sizes: FlowSizeDistribution::Constant(1500),
/// }]);
/// let report = sim.run(0.05, 42); // 50 ms horizon
/// assert!(report.total_flows > 0);
/// assert_eq!(report.total_oeo, 0); // pure optical path
/// ```
#[derive(Debug)]
pub struct FlowSim {
    energy: EnergyModel,
    chains: Vec<ChainLoad>,
}

impl FlowSim {
    /// Creates a simulator over `chains`.
    pub fn new(energy: EnergyModel, chains: Vec<ChainLoad>) -> Self {
        FlowSim { energy, chains }
    }

    /// Runs for `horizon_s` simulated seconds with the given seed;
    /// arrivals after the horizon are not generated, but flows in flight
    /// at the horizon are allowed to complete.
    pub fn run(&self, horizon_s: f64, seed: u64) -> SimReport {
        self.run_with_outages(horizon_s, seed, &BTreeMap::new())
    }

    /// Like [`FlowSim::run`], but replays an outage trace: `down` maps a
    /// chain index (as in [`SimReport::per_chain`]) to its merged down
    /// intervals in nanoseconds — typically produced by
    /// [`chain_outages`](crate::failure::chain_outages) from a
    /// [`FailureSchedule`](crate::FailureSchedule). A flow arriving inside
    /// a down interval is dropped (counted in
    /// [`SimReport::dropped_flows`]), matching the recovery model: routes
    /// are rebuilt around the failure, but traffic in flight at the
    /// failure instant is lost.
    pub fn run_with_outages(
        &self,
        horizon_s: f64,
        seed: u64,
        down: &BTreeMap<usize, Vec<(u64, u64)>>,
    ) -> SimReport {
        self.run_observed(horizon_s, seed, down, &mut |_, _, _| {})
    }

    /// Like [`FlowSim::run_with_outages`], but invokes `observer` with
    /// `(chain, bytes, completed_at_ns)` for every flow completion, in
    /// event order. This is the measurement tap of the adaptive
    /// re-clustering loop: an `alvc_affinity::TrafficCollector` subscribes
    /// here to build its decayed per-VM-pair statistics without the
    /// simulator knowing anything about clustering.
    pub fn run_observed(
        &self,
        horizon_s: f64,
        seed: u64,
        down: &BTreeMap<usize, Vec<(u64, u64)>>,
        observer: &mut dyn FnMut(NfcId, u64, u64),
    ) -> SimReport {
        let _span = alvc_telemetry::span!("alvc_sim.flowsim.run_us");
        let wall_start = std::time::Instant::now();
        let horizon_ns = (horizon_s * 1e9) as u64;
        let mut queue: EventQueue<Event> = EventQueue::new();

        // Pre-generate arrivals per chain.
        let mut size_rng =
            <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0x5151_5151);
        for (idx, load) in self.chains.iter().enumerate() {
            let mut arrivals =
                PoissonArrivals::new(load.arrival_rate_per_s, seed.wrapping_add(idx as u64));
            loop {
                let t = arrivals.next_arrival_ns();
                if t > horizon_ns {
                    break;
                }
                let bytes = load.sizes.sample(&mut size_rng);
                queue.schedule(
                    t,
                    Event::Arrival {
                        chain_idx: idx,
                        bytes,
                    },
                );
            }
        }

        let mut report = SimReport::default();
        let mut in_flight = 0usize;
        // Event-loop accounting stays in plain locals and is flushed to the
        // registry once after the loop, so the hot path carries no atomics.
        let mut events_processed: u64 = 0;
        while let Some((now, event)) = queue.pop() {
            events_processed += 1;
            match event {
                Event::Arrival { chain_idx, bytes } => {
                    let load = &self.chains[chain_idx];
                    let lost = down
                        .get(&load.chain.index())
                        .is_some_and(|ivs| ivs.iter().any(|&(a, b)| a <= now && now < b));
                    if lost {
                        report.dropped_flows += 1;
                        continue;
                    }
                    in_flight += 1;
                    report.peak_in_flight = report.peak_in_flight.max(in_flight);
                    let path_latency_us = load.path.latency_us();
                    let conversion_latency_us =
                        self.energy.oeo.path_conversion_latency_us(&load.path);
                    let transmit_us = bytes as f64 * 8.0 / (load.bandwidth_gbps * 1e9) * 1e6;
                    let total_us = path_latency_us + conversion_latency_us + transmit_us;
                    queue.schedule(
                        now + (total_us * 1000.0).ceil() as u64,
                        Event::Completion {
                            chain_idx,
                            bytes,
                            started_ns: now,
                        },
                    );
                }
                Event::Completion {
                    chain_idx,
                    bytes,
                    started_ns,
                } => {
                    in_flight -= 1;
                    let load = &self.chains[chain_idx];
                    let entry = report.per_chain.entry(load.chain.index()).or_default();
                    entry.flows += 1;
                    entry.bytes += bytes;
                    entry.oeo_conversions += load.path.oeo_conversions() as u64;
                    entry.energy_j += self.energy.total_energy_j(&load.path, bytes);
                    let completion_us = (queue.now() - started_ns) as f64 / 1000.0;
                    entry.completion_us.record(completion_us);
                    alvc_telemetry::histogram!("alvc_sim.flowsim.completion_us")
                        .record(completion_us);
                    observer(load.chain, bytes, now);
                }
            }
        }

        for chain in report.per_chain.values() {
            report.total_flows += chain.flows;
            report.total_bytes += chain.bytes;
            report.total_oeo += chain.oeo_conversions;
            report.total_energy_j += chain.energy_j;
        }

        alvc_telemetry::counter!("alvc_sim.flowsim.events").add(events_processed);
        alvc_telemetry::counter!("alvc_sim.flowsim.flows_completed").add(report.total_flows);
        let wall_s = wall_start.elapsed().as_secs_f64();
        if wall_s > 0.0 {
            alvc_telemetry::gauge!("alvc_sim.flowsim.events_per_sec")
                .set(events_processed as f64 / wall_s);
        }
        alvc_telemetry::event!(
            "alvc_sim.flowsim.run",
            "chains" = self.chains.len(),
            "events" = events_processed,
            "flows" = report.total_flows,
            "peak_in_flight" = report.peak_in_flight,
            "dropped" = report.dropped_flows,
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_graph::NodeId;
    use alvc_topology::Domain::{Electronic as E, Optical as O};

    fn path(domains: &[alvc_topology::Domain]) -> HybridPath {
        HybridPath::new(
            (0..=domains.len()).map(NodeId).collect(),
            domains.to_vec(),
            domains.len() as f64, // 1 µs per hop
        )
    }

    fn load(chain: usize, domains: &[alvc_topology::Domain], rate: f64) -> ChainLoad {
        ChainLoad {
            chain: NfcId(chain),
            path: path(domains),
            bandwidth_gbps: 10.0,
            arrival_rate_per_s: rate,
            sizes: FlowSizeDistribution::Constant(1500),
        }
    }

    #[test]
    fn all_arrivals_complete() {
        let sim = FlowSim::new(EnergyModel::default(), vec![load(0, &[O, O], 10_000.0)]);
        let report = sim.run(0.01, 1);
        assert!(report.total_flows > 0);
        assert_eq!(report.total_bytes, report.total_flows * 1500);
        assert_eq!(report.total_oeo, 0);
        assert!(report.peak_in_flight >= 1);
    }

    #[test]
    fn conversions_counted_per_flow() {
        // Two detours per flow.
        let sim = FlowSim::new(
            EnergyModel::default(),
            vec![load(0, &[E, O, E, O, E, O, E], 5_000.0)],
        );
        let report = sim.run(0.01, 2);
        assert_eq!(report.total_oeo, report.total_flows * 2);
    }

    #[test]
    fn conversion_latency_visible_in_completions() {
        let clean =
            FlowSim::new(EnergyModel::default(), vec![load(0, &[O, O, O, O], 1000.0)]).run(0.02, 3);
        let dirty =
            FlowSim::new(EnergyModel::default(), vec![load(0, &[O, E, O, E], 1000.0)]).run(0.02, 3);
        let mean_clean = clean.per_chain[&0].completion_us.clone().mean();
        let mean_dirty = dirty.per_chain[&0].completion_us.clone().mean();
        // Two detours × 10 µs conversion latency... wait: O,E,O,E has one
        // interior detour (E at index 1) — trailing E is egress. 10 µs.
        assert!(
            mean_dirty > mean_clean + 9.0,
            "dirty {mean_dirty} clean {mean_clean}"
        );
    }

    #[test]
    fn multiple_chains_reported_separately() {
        let sim = FlowSim::new(
            EnergyModel::default(),
            vec![load(0, &[O, O], 2000.0), load(7, &[O, E, O], 2000.0)],
        );
        let report = sim.run(0.01, 4);
        assert_eq!(report.per_chain.len(), 2);
        assert!(report.per_chain.contains_key(&0));
        assert!(report.per_chain.contains_key(&7));
        assert_eq!(report.per_chain[&0].oeo_conversions, 0);
        assert_eq!(
            report.per_chain[&7].oeo_conversions,
            report.per_chain[&7].flows
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || FlowSim::new(EnergyModel::default(), vec![load(0, &[O, E, O], 3000.0)]);
        let a = mk().run(0.01, 9);
        let b = mk().run(0.01, 9);
        assert_eq!(a.total_flows, b.total_flows);
        assert_eq!(a.total_bytes, b.total_bytes);
        assert!((a.total_energy_j - b.total_energy_j).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_no_flows() {
        let sim = FlowSim::new(EnergyModel::default(), vec![load(0, &[O], 1000.0)]);
        let report = sim.run(0.0, 0);
        assert_eq!(report.total_flows, 0);
    }

    #[test]
    fn outage_drops_flows_inside_the_interval_only() {
        let mk = || FlowSim::new(EnergyModel::default(), vec![load(3, &[O, O], 10_000.0)]);
        let clean = mk().run(0.01, 6);
        // Chain index 3 down for the first half of the horizon.
        let mut down = BTreeMap::new();
        down.insert(3usize, vec![(0u64, 5_000_000u64)]);
        let outage = mk().run_with_outages(0.01, 6, &down);
        assert!(outage.dropped_flows > 0);
        assert!(outage.total_flows < clean.total_flows);
        assert_eq!(
            outage.total_flows + outage.dropped_flows,
            clean.total_flows,
            "every arrival either completes or is dropped"
        );
        // An outage keyed to a different chain drops nothing.
        let mut other = BTreeMap::new();
        other.insert(99usize, vec![(0u64, u64::MAX)]);
        let unaffected = mk().run_with_outages(0.01, 6, &other);
        assert_eq!(unaffected.dropped_flows, 0);
        assert_eq!(unaffected.total_flows, clean.total_flows);
    }

    #[test]
    fn observer_sees_every_completion() {
        let sim = FlowSim::new(
            EnergyModel::default(),
            vec![load(0, &[O, O], 3000.0), load(5, &[O, E, O], 3000.0)],
        );
        let mut seen: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        let mut last_ns = 0u64;
        let report = sim.run_observed(0.01, 8, &BTreeMap::new(), &mut |chain, bytes, now| {
            let e = seen.entry(chain.index()).or_default();
            e.0 += 1;
            e.1 += bytes;
            assert!(now >= last_ns, "completions observed in event order");
            last_ns = now;
        });
        for (idx, chain) in &report.per_chain {
            assert_eq!(seen[idx], (chain.flows, chain.bytes));
        }
    }

    #[test]
    fn energy_scales_with_conversions() {
        let few =
            FlowSim::new(EnergyModel::default(), vec![load(0, &[O, E, O], 1000.0)]).run(0.02, 5);
        let many = FlowSim::new(
            EnergyModel::default(),
            vec![load(0, &[O, E, O, E, O, E, O], 1000.0)],
        )
        .run(0.02, 5);
        let per_flow_few = few.total_energy_j / few.total_flows as f64;
        let per_flow_many = many.total_energy_j / many.total_flows as f64;
        assert!(per_flow_many > per_flow_few);
    }
}
