//! Deterministic diurnal + flash-crowd load shaping.
//!
//! Energy experiments (E14) and the DC-day harness need *the same* load
//! curve on every run: a repeating day of named phases (trough, ramp,
//! peak, …) each holding a load level in `[0, 1]`, optionally punctuated
//! by flash crowds — short overrides that spike the level regardless of
//! the phase underneath. [`DiurnalLoad`] is a pure function of the epoch
//! index, so it composes with any seeded generator: scale an
//! [`AsymmetricLoad`](crate::AsymmetricLoad) burst with
//! [`DiurnalLoad::scaled`], or draw per-phase blueprints from a
//! [`ChainWorkload::reseeded`](crate::ChainWorkload::reseeded) copy keyed
//! by [`DiurnalLoad::phase_index`].

/// One phase of the diurnal cycle: a named load plateau.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalPhase {
    /// Phase name for reports ("trough", "peak", …).
    pub name: &'static str,
    /// Offered load as a fraction of peak, in `[0, 1]`.
    pub level: f64,
    /// How many epochs the phase lasts.
    pub epochs: u64,
}

impl DiurnalPhase {
    /// A named plateau of `level` load for `epochs` epochs.
    pub fn new(name: &'static str, level: f64, epochs: u64) -> Self {
        DiurnalPhase {
            name,
            level,
            epochs,
        }
    }
}

/// A deterministic diurnal load shaper: a repeating cycle of
/// [`DiurnalPhase`]s plus optional flash-crowd overrides.
///
/// The shaper holds no RNG — the level at epoch `e` is a pure function of
/// the phase table, so two runs with the same configuration see exactly
/// the same curve and seeded generators layered on top stay reproducible.
///
/// # Example
///
/// ```
/// use alvc_sim::DiurnalLoad;
///
/// let load = DiurnalLoad::standard_day(4).with_flash_crowd(6, 2, 1.0);
/// assert_eq!(load.level(0), 0.2);           // trough
/// assert_eq!(load.level(6), 1.0);           // flash crowd overrides
/// assert_eq!(load.scaled(0, 50), 10);       // 20% of a 50-op burst
/// assert_eq!(load.level(0), load.level(load.cycle_epochs()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalLoad {
    phases: Vec<DiurnalPhase>,
    /// `(start_epoch, epochs, level)` overrides on the absolute epoch
    /// axis (not repeated with the cycle).
    flashes: Vec<(u64, u64, f64)>,
}

impl DiurnalLoad {
    /// A shaper cycling through `phases`.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any phase has zero epochs, or any
    /// level is outside `[0, 1]`.
    pub fn new(phases: Vec<DiurnalPhase>) -> Self {
        assert!(!phases.is_empty(), "at least one phase");
        for p in &phases {
            assert!(
                p.epochs > 0,
                "phase {:?} must last at least one epoch",
                p.name
            );
            assert!(
                (0.0..=1.0).contains(&p.level),
                "phase {:?} level {} outside [0, 1]",
                p.name,
                p.level
            );
        }
        DiurnalLoad {
            phases,
            flashes: Vec::new(),
        }
    }

    /// The canonical synthetic day: trough (20%), morning ramp (60%),
    /// peak (100%), evening ramp (60%), each lasting `epochs_per_phase`
    /// epochs.
    pub fn standard_day(epochs_per_phase: u64) -> Self {
        DiurnalLoad::new(vec![
            DiurnalPhase::new("trough", 0.2, epochs_per_phase),
            DiurnalPhase::new("ramp_up", 0.6, epochs_per_phase),
            DiurnalPhase::new("peak", 1.0, epochs_per_phase),
            DiurnalPhase::new("ramp_down", 0.6, epochs_per_phase),
        ])
    }

    /// Adds a flash crowd: from `start_epoch` (absolute, not per-cycle)
    /// the level is overridden to `level` for `epochs` epochs. Later
    /// flashes win where overrides overlap.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero or `level` is outside `[0, 1]`.
    pub fn with_flash_crowd(mut self, start_epoch: u64, epochs: u64, level: f64) -> Self {
        assert!(epochs > 0, "flash crowd must last at least one epoch");
        assert!(
            (0.0..=1.0).contains(&level),
            "flash crowd level {level} outside [0, 1]"
        );
        self.flashes.push((start_epoch, epochs, level));
        self
    }

    /// Epochs in one full cycle of the phase table.
    pub fn cycle_epochs(&self) -> u64 {
        self.phases.iter().map(|p| p.epochs).sum()
    }

    /// Index into the phase table at `epoch` (flash crowds do not change
    /// the underlying phase).
    pub fn phase_index(&self, epoch: u64) -> usize {
        let mut e = epoch % self.cycle_epochs();
        for (i, p) in self.phases.iter().enumerate() {
            if e < p.epochs {
                return i;
            }
            e -= p.epochs;
        }
        unreachable!("epoch within cycle")
    }

    /// The phase underneath `epoch`.
    pub fn phase(&self, epoch: u64) -> &DiurnalPhase {
        &self.phases[self.phase_index(epoch)]
    }

    /// Offered load at `epoch` as a fraction of peak: the phase level, or
    /// the last matching flash-crowd override.
    pub fn level(&self, epoch: u64) -> f64 {
        let mut level = self.phase(epoch).level;
        for &(start, epochs, l) in &self.flashes {
            if epoch >= start && epoch - start < epochs {
                level = l;
            }
        }
        level
    }

    /// Scales a peak per-epoch volume (ops, flows, bursts) by the level at
    /// `epoch`, rounding half up so a nonzero level never silently rounds
    /// an offered load of one to zero.
    pub fn scaled(&self, epoch: u64, peak: usize) -> usize {
        (self.level(epoch) * peak as f64).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_day_cycles() {
        let load = DiurnalLoad::standard_day(3);
        assert_eq!(load.cycle_epochs(), 12);
        assert_eq!(load.phase(0).name, "trough");
        assert_eq!(load.phase(3).name, "ramp_up");
        assert_eq!(load.phase(6).name, "peak");
        assert_eq!(load.phase(9).name, "ramp_down");
        for e in 0..24 {
            assert_eq!(load.level(e), load.level(e + 12), "cycle repeats");
        }
    }

    #[test]
    fn flash_crowd_overrides_phase() {
        let load = DiurnalLoad::standard_day(2).with_flash_crowd(1, 2, 0.9);
        assert_eq!(load.level(0), 0.2);
        assert_eq!(load.level(1), 0.9);
        assert_eq!(load.level(2), 0.9);
        assert_eq!(load.level(3), 0.6, "override expired");
        // The phase underneath is unchanged.
        assert_eq!(load.phase(1).name, "trough");
        // Flash crowds are absolute: the next cycle's trough is quiet.
        assert_eq!(load.level(1 + load.cycle_epochs()), 0.2);
    }

    #[test]
    fn later_flash_wins_overlap() {
        let load = DiurnalLoad::standard_day(2)
            .with_flash_crowd(0, 4, 0.8)
            .with_flash_crowd(2, 1, 1.0);
        assert_eq!(load.level(1), 0.8);
        assert_eq!(load.level(2), 1.0);
        assert_eq!(load.level(3), 0.8);
    }

    #[test]
    fn scaled_rounds_not_truncates() {
        let load = DiurnalLoad::new(vec![DiurnalPhase::new("low", 0.25, 1)]);
        assert_eq!(load.scaled(0, 10), 3); // 2.5 rounds up
        assert_eq!(load.scaled(0, 2), 1); // 0.5 stays visible
    }

    #[test]
    fn deterministic_by_construction() {
        let a = DiurnalLoad::standard_day(4).with_flash_crowd(7, 3, 1.0);
        let b = DiurnalLoad::standard_day(4).with_flash_crowd(7, 3, 1.0);
        let curve = |l: &DiurnalLoad| (0..32).map(|e| l.level(e)).collect::<Vec<_>>();
        assert_eq!(curve(&a), curve(&b));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_level_rejected() {
        DiurnalLoad::new(vec![DiurnalPhase::new("bad", 1.5, 1)]);
    }
}
