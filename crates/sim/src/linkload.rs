//! Per-link load accounting and hotspot analysis.
//!
//! §III.B motivates the OPS core with "higher bandwidth"; this module makes
//! link-level load observable: accumulate the bytes each physical link
//! carries for a set of routed flows, then report utilization against link
//! capacity and locate hotspots.

use std::collections::HashMap;

use alvc_graph::{EdgeId, NodeId};
use alvc_optical::HybridPath;
use alvc_topology::{DataCenter, Domain};
use serde::{Deserialize, Serialize};

/// Accumulates bytes per physical link.
///
/// # Example
///
/// ```
/// use alvc_optical::routing::route_flow;
/// use alvc_sim::linkload::LinkLoad;
/// use alvc_topology::{AlvcTopologyBuilder, ServerId};
///
/// let dc = AlvcTopologyBuilder::new().seed(1).build();
/// let mut load = LinkLoad::new();
/// let a = dc.node_of_server(ServerId(0));
/// let b = dc.node_of_server(ServerId(5));
/// let path = route_flow(&dc, &[a, b])?;
/// load.add_path(&dc, &path, 1_000_000);
/// assert!(load.total_byte_hops() >= 1_000_000);
/// # Ok::<(), alvc_optical::RoutingError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinkLoad {
    bytes_per_edge: HashMap<EdgeId, u64>,
}

/// A loaded link in a report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkReportEntry {
    /// The physical edge.
    pub edge: EdgeId,
    /// Link endpoints.
    pub endpoints: (NodeId, NodeId),
    /// The link's domain.
    pub domain: Domain,
    /// Bytes carried.
    pub bytes: u64,
    /// Bytes relative to capacity over `window_s` seconds (1.0 = the link
    /// is exactly full over the window).
    pub utilization: f64,
}

impl LinkLoad {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        LinkLoad::default()
    }

    /// Charges `bytes` to every link along `path` (the cheapest-latency
    /// parallel link between consecutive nodes, matching the router's
    /// choice).
    ///
    /// # Panics
    ///
    /// Panics if consecutive path nodes are not adjacent in `dc`.
    pub fn add_path(&mut self, dc: &DataCenter, path: &HybridPath, bytes: u64) {
        for w in path.nodes().windows(2) {
            let edge = dc
                .graph()
                .incident_edges(w[0])
                .filter(|&(_, n)| n == w[1])
                .min_by(|&(a, _), &(b, _)| {
                    let la = dc.graph().edge_weight(a).expect("edge exists").latency_us;
                    let lb = dc.graph().edge_weight(b).expect("edge exists").latency_us;
                    la.partial_cmp(&lb).expect("finite latency")
                })
                .map(|(e, _)| e)
                .expect("path nodes must be adjacent");
            *self.bytes_per_edge.entry(edge).or_insert(0) += bytes;
        }
    }

    /// Number of distinct links that carried traffic.
    pub fn loaded_link_count(&self) -> usize {
        self.bytes_per_edge.len()
    }

    /// Total byte·hops (sum of bytes over all links).
    pub fn total_byte_hops(&self) -> u64 {
        self.bytes_per_edge.values().sum()
    }

    /// Bytes carried on `edge`.
    pub fn bytes_on(&self, edge: EdgeId) -> u64 {
        self.bytes_per_edge.get(&edge).copied().unwrap_or(0)
    }

    /// Total bytes carried per domain: `(electronic, optical)`.
    pub fn bytes_by_domain(&self, dc: &DataCenter) -> (u64, u64) {
        let mut e = 0;
        let mut o = 0;
        for (&edge, &bytes) in &self.bytes_per_edge {
            match dc.graph().edge_weight(edge).expect("edge exists").domain {
                Domain::Electronic => e += bytes,
                Domain::Optical => o += bytes,
            }
        }
        (e, o)
    }

    /// The `n` most loaded links, with utilization computed against each
    /// link's capacity over a `window_s`-second interval.
    pub fn hotspots(&self, dc: &DataCenter, window_s: f64, n: usize) -> Vec<LinkReportEntry> {
        let mut entries: Vec<LinkReportEntry> = self
            .bytes_per_edge
            .iter()
            .map(|(&edge, &bytes)| {
                let attrs = dc.graph().edge_weight(edge).expect("edge exists");
                let capacity_bytes = attrs.bandwidth_gbps * 1e9 / 8.0 * window_s;
                let (a, b) = dc.graph().edge_endpoints(edge).expect("edge exists");
                LinkReportEntry {
                    edge,
                    endpoints: (a, b),
                    domain: attrs.domain,
                    bytes,
                    utilization: if capacity_bytes > 0.0 {
                        bytes as f64 / capacity_bytes
                    } else {
                        f64::INFINITY
                    },
                }
            })
            .collect();
        entries.sort_by(|x, y| {
            y.utilization
                .partial_cmp(&x.utilization)
                .expect("finite utilization")
                .then(x.edge.cmp(&y.edge))
        });
        entries.truncate(n);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_optical::routing::route_flow;
    use alvc_topology::{AlvcTopologyBuilder, OpsInterconnect, ServerId};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(4)
            .servers_per_rack(2)
            .ops_count(6)
            .tor_ops_degree(2)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(3)
            .build()
    }

    #[test]
    fn empty_load_is_zero() {
        let load = LinkLoad::new();
        assert_eq!(load.loaded_link_count(), 0);
        assert_eq!(load.total_byte_hops(), 0);
        assert!(load.hotspots(&dc(), 1.0, 5).is_empty());
    }

    #[test]
    fn path_load_charges_every_hop() {
        let dc = dc();
        let mut load = LinkLoad::new();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(7));
        let path = route_flow(&dc, &[a, b]).unwrap();
        load.add_path(&dc, &path, 1000);
        assert_eq!(load.loaded_link_count(), path.hop_count());
        assert_eq!(load.total_byte_hops(), 1000 * path.hop_count() as u64);
    }

    #[test]
    fn repeated_flows_accumulate() {
        let dc = dc();
        let mut load = LinkLoad::new();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(1));
        let path = route_flow(&dc, &[a, b]).unwrap();
        load.add_path(&dc, &path, 500);
        load.add_path(&dc, &path, 500);
        let hot = load.hotspots(&dc, 1.0, 10);
        assert!(!hot.is_empty());
        assert!(hot.iter().all(|e| e.bytes == 1000));
    }

    #[test]
    fn domain_split_matches_path_domains() {
        let dc = dc();
        let mut load = LinkLoad::new();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(7)); // cross-rack: uses the core
        let path = route_flow(&dc, &[a, b]).unwrap();
        load.add_path(&dc, &path, 100);
        let (e, o) = load.bytes_by_domain(&dc);
        let (eh, oh) = path.hops_by_domain();
        assert_eq!(e, 100 * eh as u64);
        assert_eq!(o, 100 * oh as u64);
    }

    #[test]
    fn hotspots_sorted_by_utilization() {
        let dc = dc();
        let mut load = LinkLoad::new();
        // Access links (10 Gb/s) saturate before optical ones (100 Gb/s):
        // charge the same bytes on a cross-core route.
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(7));
        let path = route_flow(&dc, &[a, b]).unwrap();
        load.add_path(&dc, &path, 10_000_000);
        let hot = load.hotspots(&dc, 1.0, 100);
        for w in hot.windows(2) {
            assert!(w[0].utilization >= w[1].utilization);
        }
        assert_eq!(hot[0].domain, Domain::Electronic, "access links hottest");
    }

    #[test]
    fn hotspot_utilization_formula() {
        let dc = dc();
        let mut load = LinkLoad::new();
        let a = dc.node_of_server(ServerId(0));
        let b = dc.node_of_server(ServerId(1));
        let path = route_flow(&dc, &[a, b]).unwrap();
        // 10 Gb/s access link over 1 s = 1.25e9 bytes of capacity.
        load.add_path(&dc, &path, 1_250_000_000);
        let hot = load.hotspots(&dc, 1.0, 1);
        assert!((hot[0].utilization - 1.0).abs() < 1e-9);
    }
}
