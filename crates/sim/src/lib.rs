//! Flow-level discrete-event simulation and workload generation for the
//! AL-VC experiments.
//!
//! The paper's architecture claims (service locality §III.A, O/E/O savings
//! §IV.D, energy §III.B) are exercised by simulating flows over deployed
//! chains:
//!
//! * [`event`] — a deterministic discrete-event queue (u64-nanosecond
//!   timebase, FIFO tie-breaking);
//! * [`workload`] — seeded generators: Poisson arrivals, Pareto
//!   heavy-tailed flow sizes, service-correlated VM-to-VM traffic;
//! * [`traffic`] — traffic matrices and the intra- vs inter-cluster
//!   locality report of experiment E1;
//! * [`flowsim`] — the flow-level simulator: flows arrive per chain,
//!   traverse the chain's hybrid path, and accumulate completion-time,
//!   conversion, and energy metrics;
//! * [`fairshare`] — flow-level contention: max–min fair rate allocation
//!   with event-driven recomputation (experiment E10);
//! * [`failure`] — seeded element-outage schedules and their projection
//!   onto deployed chains, replayed by
//!   [`FlowSim::run_with_outages`](flowsim::FlowSim::run_with_outages)
//!   (experiment E9);
//! * [`linkload`] — per-link byte accounting and hotspot reports;
//! * [`metrics`] — counters and sample summaries (mean/percentiles);
//! * [`intents`] — weighted multi-tenant intent streams for the
//!   control-plane experiment (E10);
//! * [`diurnal`] — deterministic diurnal + flash-crowd load shaping for
//!   the energy experiment (E14) and the DC-day harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library crates report progress through alvc-telemetry events, never the
// process's stdout/stderr (enforced under cargo clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod diurnal;
pub mod event;
pub mod failure;
pub mod fairshare;
pub mod flowsim;
pub mod intents;
pub mod linkload;
pub mod metrics;
pub mod traffic;
pub mod workload;

pub use diurnal::{DiurnalLoad, DiurnalPhase};
pub use event::EventQueue;
pub use failure::{chain_outages, FailureSchedule, OutageEvent};
pub use fairshare::{simulate_fair_share, FairFlow, FairShareReport};
pub use flowsim::{ChainLoad, FlowSim, SimReport};
pub use intents::{AsymmetricLoad, IntentMix, IntentOp, MixWeights};
pub use linkload::LinkLoad;
pub use metrics::{Counter, Summary};
pub use traffic::{matrix_of_pairs, LocalityReport, PairDemand, TrafficMatrix};
pub use workload::{
    ChainBlueprint, ChainWorkload, FlowSizeDistribution, PoissonArrivals, ServiceTraffic,
};
