//! Property-based tests for the graph substrate.

use alvc_graph::cover::{greedy_vertex_cover, konig_vertex_cover, SetCoverInstance};
use alvc_graph::matching::hopcroft_karp;
use alvc_graph::shortest_path::{bfs_distances, dijkstra};
use alvc_graph::traversal::{bfs_order, connected_components, is_connected};
use alvc_graph::{Bipartite, Graph, LeftId, NodeId, RightId, UnionFind};
use proptest::prelude::*;

/// Strategy: a random bipartite graph as (n_left, n_right, edges).
fn bipartite_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize)>)> {
    (1usize..12, 1usize..12).prop_flat_map(|(nl, nr)| {
        let edges = proptest::collection::vec((0..nl, 0..nr), 0..40);
        (Just(nl), Just(nr), edges)
    })
}

fn build_bipartite(nl: usize, nr: usize, edges: &[(usize, usize)]) -> Bipartite<(), (), ()> {
    let mut b = Bipartite::new();
    for _ in 0..nl {
        b.add_left(());
    }
    for _ in 0..nr {
        b.add_right(());
    }
    for &(l, r) in edges {
        b.add_edge(LeftId(l), RightId(r), ());
    }
    b
}

/// Strategy: a random undirected graph as (n, edges).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, u64)>)> {
    (1usize..20).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 1u64..100), 0..60);
        (Just(n), edges)
    })
}

fn build_graph(n: usize, edges: &[(usize, usize, u64)]) -> Graph<(), u64> {
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_node(());
    }
    for &(a, b, w) in edges {
        g.add_edge(NodeId(a), NodeId(b), w);
    }
    g
}

proptest! {
    /// König's theorem: the cover is valid and |cover| == |max matching|.
    #[test]
    fn konig_cover_is_valid_and_optimal((nl, nr, edges) in bipartite_strategy()) {
        let b = build_bipartite(nl, nr, &edges);
        let m = hopcroft_karp(&b);
        let c = konig_vertex_cover(&b);
        prop_assert!(c.covers(&b));
        prop_assert_eq!(c.size(), m.size());
    }

    /// Greedy cover is valid and never smaller than the optimum.
    #[test]
    fn greedy_cover_valid_and_at_least_optimal((nl, nr, edges) in bipartite_strategy()) {
        let b = build_bipartite(nl, nr, &edges);
        let greedy = greedy_vertex_cover(&b);
        let exact = konig_vertex_cover(&b);
        prop_assert!(greedy.covers(&b));
        prop_assert!(greedy.size() >= exact.size());
        // Max-degree greedy vertex cover is a ln-factor approximation; on
        // these small instances it stays within 2x of optimal.
        prop_assert!(greedy.size() <= exact.size() * 2 + 1);
    }

    /// The matching returned is a matching: each node used at most once,
    /// each pair is an edge.
    #[test]
    fn matching_is_consistent((nl, nr, edges) in bipartite_strategy()) {
        let b = build_bipartite(nl, nr, &edges);
        let m = hopcroft_karp(&b);
        let mut left_used = vec![false; nl];
        let mut right_used = vec![false; nr];
        for (l, r) in m.pairs() {
            prop_assert!(b.contains_edge(l, r));
            prop_assert!(!left_used[l.index()]);
            prop_assert!(!right_used[r.index()]);
            left_used[l.index()] = true;
            right_used[r.index()] = true;
        }
    }

    /// Dijkstra with unit weights agrees with BFS hop distances.
    #[test]
    fn dijkstra_unit_weight_equals_bfs((n, edges) in graph_strategy()) {
        let g = build_graph(n, &edges);
        let unit = g.map(|_, _| (), |_, _| 1u64);
        let dist = bfs_distances(&unit, NodeId(0));
        for (t, &d) in dist.iter().enumerate() {
            match dijkstra(&unit, NodeId(0), NodeId(t), |_, &w| w) {
                Ok(p) => prop_assert_eq!(p.cost, d),
                Err(_) => prop_assert_eq!(d, u64::MAX),
            }
        }
    }

    /// Dijkstra path cost equals the sum of its edge costs and the path is
    /// genuinely a path in the graph.
    #[test]
    fn dijkstra_path_is_consistent((n, edges) in graph_strategy()) {
        let g = build_graph(n, &edges);
        for t in 0..n {
            if let Ok(p) = dijkstra(&g, NodeId(0), NodeId(t), |_, &w| w) {
                prop_assert_eq!(*p.nodes.first().unwrap(), NodeId(0));
                prop_assert_eq!(*p.nodes.last().unwrap(), NodeId(t));
                let mut total = 0u64;
                for w in p.nodes.windows(2) {
                    let e = g.find_edge(w[0], w[1]);
                    prop_assert!(e.is_some(), "consecutive path nodes must be adjacent");
                    // Lower-bound by the cheapest parallel edge.
                    let min_parallel = g
                        .incident_edges(w[0])
                        .filter(|&(_, nb)| nb == w[1])
                        .map(|(e, _)| *g.edge_weight(e).unwrap())
                        .min()
                        .unwrap();
                    total += min_parallel;
                }
                prop_assert_eq!(total, p.cost);
            }
        }
    }

    /// BFS reachability agrees with union-find connectivity.
    #[test]
    fn bfs_agrees_with_union_find((n, edges) in graph_strategy()) {
        let g = build_graph(n, &edges);
        let mut uf = UnionFind::new(n);
        for &(a, b, _) in &edges {
            uf.union(a, b);
        }
        let reach = bfs_order(&g, NodeId(0));
        for t in 0..n {
            prop_assert_eq!(reach.contains(&NodeId(t)), uf.connected(0, t));
        }
        let (_, comps) = connected_components(&g);
        prop_assert_eq!(comps, uf.component_count());
        prop_assert_eq!(is_connected(&g), comps <= 1);
    }

    /// Exact set cover (branch and bound) is a cover and no larger than
    /// greedy.
    #[test]
    fn set_cover_bnb_no_worse_than_greedy(
        universe in 1usize..16,
        raw_sets in proptest::collection::vec(
            proptest::collection::vec(0usize..16, 1..6), 1..8)
    ) {
        let sets: Vec<Vec<usize>> = raw_sets
            .into_iter()
            .map(|s| s.into_iter().map(|e| e % universe).collect())
            .collect();
        let inst = SetCoverInstance::new(universe, sets);
        match (inst.greedy(), inst.branch_and_bound().unwrap()) {
            (Some(g), Some(e)) => {
                prop_assert!(inst.is_cover(&g));
                prop_assert!(inst.is_cover(&e));
                prop_assert!(e.len() <= g.len());
            }
            (None, None) => prop_assert!(!inst.is_coverable()),
            (g, e) => prop_assert!(false, "greedy/exact disagree: {g:?} vs {e:?}"),
        }
    }
}
