//! Equivalence properties for the incremental lazy-greedy engine.
//!
//! The heap-based implementations (`greedy`, `greedy_weighted`,
//! `greedy_vertex_cover`) encode the historical rescan tie-breaks in their
//! heap keys, so on every instance they must produce *exactly* the same
//! output as the `*_naive` reference rescans — same sets, same order — not
//! merely a cover of the same size. The documented tie-breaks:
//!
//! * unweighted set cover: highest gain, then lowest set index;
//! * weighted set cover: lowest `weight/gain` density, then lowest index;
//! * vertex cover: highest degree, right side beats left on cross-side
//!   ties, highest index within a side.

use alvc_graph::cover::{greedy_vertex_cover, greedy_vertex_cover_naive, SetCoverInstance};
use alvc_graph::{Bipartite, LeftId, RightId};
use proptest::prelude::*;

/// Strategy: a random set-cover instance as (universe_size, sets). Sets may
/// contain duplicate elements — the naive gain counts occurrences, and the
/// incremental gain must match that exactly.
fn set_cover_strategy() -> impl Strategy<Value = (usize, Vec<Vec<usize>>)> {
    (1usize..16).prop_flat_map(|u| {
        let sets = proptest::collection::vec(proptest::collection::vec(0..u, 0..10), 0..12);
        (Just(u), sets)
    })
}

fn bipartite_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize)>)> {
    (1usize..14, 1usize..14).prop_flat_map(|(nl, nr)| {
        let edges = proptest::collection::vec((0..nl, 0..nr), 0..50);
        (Just(nl), Just(nr), edges)
    })
}

fn build_bipartite(nl: usize, nr: usize, edges: &[(usize, usize)]) -> Bipartite<(), (), ()> {
    let mut b = Bipartite::new();
    for _ in 0..nl {
        b.add_left(());
    }
    for _ in 0..nr {
        b.add_right(());
    }
    for &(l, r) in edges {
        b.add_edge(LeftId(l), RightId(r), ());
    }
    b
}

proptest! {
    /// Heap-based greedy set cover selects the identical sets in the
    /// identical order as the naive rescan (or identically returns `None`).
    #[test]
    fn heap_set_cover_equals_naive((u, sets) in set_cover_strategy()) {
        let inst = SetCoverInstance::new(u, sets);
        let heap = inst.greedy();
        let naive = inst.greedy_naive();
        prop_assert_eq!(&heap, &naive);
        if let Some(chosen) = heap {
            prop_assert!(inst.is_cover(&chosen));
        } else {
            prop_assert!(!inst.is_coverable());
        }
    }

    /// Heap-based weighted greedy equals the naive rescan on random
    /// positive finite weights: identical choices, identical order.
    #[test]
    fn heap_weighted_set_cover_equals_naive(
        (u, sets) in set_cover_strategy(),
        wseed in 0u64..10_000,
    ) {
        let inst = SetCoverInstance::new(u, sets);
        // Deterministic pseudo-random positive weights; a few deliberate
        // repeats so equal-density ties actually occur.
        let weights: Vec<f64> = (0..inst.set_count())
            .map(|i| {
                let x = (wseed ^ (i as u64).wrapping_mul(0x9e37_79b9)) % 7;
                1.0 + x as f64
            })
            .collect();
        let heap = inst.greedy_weighted(&weights);
        let naive = inst.greedy_weighted_naive(&weights);
        prop_assert_eq!(heap, naive);
    }

    /// Heap-based greedy vertex cover equals the naive rescan: same
    /// vertices on each side, same selection order.
    #[test]
    fn heap_vertex_cover_equals_naive((nl, nr, edges) in bipartite_strategy()) {
        let b = build_bipartite(nl, nr, &edges);
        let heap = greedy_vertex_cover(&b);
        let naive = greedy_vertex_cover_naive(&b);
        prop_assert_eq!(&heap, &naive);
        prop_assert!(heap.covers(&b));
    }
}
