//! Graph substrate for the AL-VC reproduction.
//!
//! The AL-VC paper (Bashir, Ohsita, Murata, ICDCSW 2016) reduces abstraction
//! layer construction to covering problems on the bipartite connectivity
//! graphs of a data center (VMs ↔ ToR switches ↔ optical packet switches).
//! This crate provides the from-scratch graph machinery those reductions
//! need, with no external graph dependency:
//!
//! * [`Graph`] — an undirected adjacency-list graph with typed node and edge
//!   weights, stable integer ids, and O(1) amortized insertion.
//! * [`DiGraph`] — a directed variant used for NFC forwarding graphs.
//! * [`Bipartite`] — a two-sided graph used for VM↔ToR and ToR↔OPS
//!   connectivity, with conversions to covering instances.
//! * [`matching`] — Hopcroft–Karp maximum bipartite matching.
//! * [`cover`] — minimum vertex cover via König's theorem (exact, bipartite),
//!   greedy vertex cover, and greedy / branch-and-bound set cover.
//! * [`lazy_greedy`] — the heap-backed incremental selection engine behind
//!   every greedy cover (lazy deletion of stale entries).
//! * [`traversal`] — BFS/DFS orders, connected components, reachability.
//! * [`shortest_path`] — Dijkstra and unweighted BFS shortest paths.
//! * [`unionfind`] — disjoint set union used by the topology generators.
//!
//! # Example
//!
//! Build a bipartite graph and compute an exact minimum vertex cover:
//!
//! ```
//! use alvc_graph::{Bipartite, cover};
//!
//! // Three left nodes (machines), two right nodes (switches).
//! let mut b = Bipartite::new();
//! let machines: Vec<_> = (0..3).map(|i| b.add_left(i)).collect();
//! let switches: Vec<_> = (0..2).map(|i| b.add_right(i)).collect();
//! b.add_edge(machines[0], switches[0], ());
//! b.add_edge(machines[1], switches[0], ());
//! b.add_edge(machines[2], switches[1], ());
//!
//! let cover = cover::konig_vertex_cover(&b);
//! // Covering both switches covers every edge.
//! assert_eq!(cover.size(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library crates report progress through alvc-telemetry events, never the
// process's stdout/stderr (enforced under cargo clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod bipartite;
pub mod cover;
pub mod digraph;
pub mod error;
pub mod graph;
pub mod lazy_greedy;
pub mod matching;
pub mod shortest_path;
pub mod traversal;
pub mod unionfind;

pub use bipartite::{Bipartite, BipartiteCsr, LeftId, RightId};
pub use cover::{SetCoverInstance, VertexCover};
pub use digraph::DiGraph;
pub use error::GraphError;
pub use graph::{EdgeId, Graph, NodeId};
pub use lazy_greedy::{LazySelector, SelectorStats, TotalF64};
pub use matching::Matching;
pub use unionfind::UnionFind;
