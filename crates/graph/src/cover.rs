//! Covering problems: minimum vertex cover and set cover.
//!
//! The AL-VC paper frames abstraction layer construction as a minimum vertex
//! cover (MIN-VCP) on the bipartite machine↔switch graph, solved with a
//! maximum-weight greedy. This module supplies:
//!
//! * [`konig_vertex_cover`] — *exact* minimum vertex cover for bipartite
//!   graphs via König's theorem (|min cover| = |max matching|);
//! * [`greedy_vertex_cover`] — max-degree greedy on arbitrary bipartite
//!   instances (the paper's "maximum-weighted" selection rule);
//! * [`SetCoverInstance`] with [`SetCoverInstance::greedy`] and
//!   [`SetCoverInstance::branch_and_bound`] — the set-cover view used when
//!   selecting the minimum set of OPSs that covers all selected ToRs.
//!
//! All greedy entry points run on the incremental lazy-greedy engine in
//! [`crate::lazy_greedy`]; the historical rescan implementations are kept
//! as `*_naive` functions for equivalence testing and benchmarking.

use std::cmp::Reverse;

use serde::{Deserialize, Serialize};

use crate::bipartite::{Bipartite, LeftId, RightId};
use crate::error::GraphError;
use crate::lazy_greedy::{LazySelector, TotalF64};
use crate::matching::hopcroft_karp;

/// A vertex cover of a bipartite graph: every edge has an endpoint in the
/// cover.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexCover {
    /// Covered left vertices.
    pub left: Vec<LeftId>,
    /// Covered right vertices.
    pub right: Vec<RightId>,
}

impl VertexCover {
    /// Total number of vertices in the cover.
    pub fn size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Returns `true` if every edge of `graph` is covered.
    pub fn covers<L, R, E>(&self, graph: &Bipartite<L, R, E>) -> bool {
        let mut in_left = vec![false; graph.left_count()];
        let mut in_right = vec![false; graph.right_count()];
        for &l in &self.left {
            in_left[l.0] = true;
        }
        for &r in &self.right {
            in_right[r.0] = true;
        }
        graph.edges().all(|(l, r, _)| in_left[l.0] || in_right[r.0])
    }
}

/// Computes an **exact** minimum vertex cover of a bipartite graph using
/// König's theorem.
///
/// Runs Hopcroft–Karp, then takes `Z` = vertices reachable by alternating
/// paths from unmatched left vertices; the cover is `(L \ Z) ∪ (R ∩ Z)`.
///
/// # Example
///
/// ```
/// use alvc_graph::{Bipartite, cover};
///
/// let mut b: Bipartite<(), (), ()> = Bipartite::new();
/// let l: Vec<_> = (0..3).map(|_| b.add_left(())).collect();
/// let r = b.add_right(());
/// for &li in &l {
///     b.add_edge(li, r, ());
/// }
/// // A star is covered by its center alone.
/// let c = cover::konig_vertex_cover(&b);
/// assert_eq!(c.size(), 1);
/// assert!(c.covers(&b));
/// ```
pub fn konig_vertex_cover<L, R, E>(graph: &Bipartite<L, R, E>) -> VertexCover {
    let matching = hopcroft_karp(graph);
    let adj = graph.left_adjacency();
    let n_left = graph.left_count();
    let n_right = graph.right_count();

    let mut left_visited = vec![false; n_left];
    let mut right_visited = vec![false; n_right];
    let mut stack: Vec<usize> = (0..n_left)
        .filter(|&l| !matching.is_left_matched(LeftId(l)))
        .collect();
    for &l in &stack {
        left_visited[l] = true;
    }
    // Alternate: unmatched edge left->right, matched edge right->left.
    while let Some(l) = stack.pop() {
        for &r in &adj[l] {
            if matching.pair_left[l] == Some(RightId(r)) {
                continue; // only unmatched edges leave the left side
            }
            if !right_visited[r] {
                right_visited[r] = true;
                if let Some(l2) = matching.pair_right[r] {
                    if !left_visited[l2.0] {
                        left_visited[l2.0] = true;
                        stack.push(l2.0);
                    }
                }
            }
        }
    }

    VertexCover {
        left: (0..n_left)
            .filter(|&l| !left_visited[l])
            .map(LeftId)
            .collect(),
        right: (0..n_right)
            .filter(|&r| right_visited[r])
            .map(RightId)
            .collect(),
    }
}

/// Greedy maximum-degree vertex cover ("maximum-weighted algorithm" in the
/// paper): repeatedly add the vertex covering the most uncovered edges.
///
/// Incremental lazy-greedy implementation: vertex degrees decay in place as
/// edges get covered (walking [`crate::bipartite::BipartiteCsr`] rows), and
/// the per-round maximum comes from a [`LazySelector`] instead of a full
/// rescan. Output is identical to [`greedy_vertex_cover_naive`]: ties
/// prefer the right side (switches), then the higher index within a side,
/// matching the historical rescan's selection rule.
///
/// Not optimal in general; [`konig_vertex_cover`] gives the optimum for
/// comparison.
pub fn greedy_vertex_cover<L, R, E>(graph: &Bipartite<L, R, E>) -> VertexCover {
    let n_left = graph.left_count();
    let n_right = graph.right_count();
    let csr = graph.to_csr();
    let mut edge_covered = vec![false; csr.edge_count()];
    let mut remaining = csr.edge_count();
    let mut left_deg: Vec<usize> = (0..n_left).map(|l| csr.left_degree(l)).collect();
    let mut right_deg: Vec<usize> = (0..n_right).map(|r| csr.right_degree(r)).collect();

    // Key = (degree, side, index): higher degree wins; the right side wins
    // cross-side ties; the higher index wins within a side. Vertices are
    // numbered left-first so `current` can tell the sides apart.
    let key_left = |l: usize, deg: usize| (deg, 0usize, l);
    let key_right = |r: usize, deg: usize| (deg, 1usize, r);
    let mut selector = LazySelector::with_capacity(n_left + n_right);
    for (l, &deg) in left_deg.iter().enumerate() {
        if deg > 0 {
            selector.push(l, key_left(l, deg));
        }
    }
    for (r, &deg) in right_deg.iter().enumerate() {
        if deg > 0 {
            selector.push(n_left + r, key_right(r, deg));
        }
    }

    let mut cover = VertexCover::default();
    while remaining > 0 {
        let v = selector
            .pop_max(|v| {
                if v < n_left {
                    let deg = left_deg[v];
                    (deg > 0).then(|| key_left(v, deg))
                } else {
                    let deg = right_deg[v - n_left];
                    (deg > 0).then(|| key_right(v - n_left, deg))
                }
            })
            .expect("an uncovered edge implies a positive-degree vertex");
        if v >= n_left {
            let r = v - n_left;
            cover.right.push(RightId(r));
            for (e, l) in csr.right_row(r) {
                if !edge_covered[e] {
                    edge_covered[e] = true;
                    remaining -= 1;
                    left_deg[l] -= 1;
                    right_deg[r] -= 1;
                }
            }
        } else {
            cover.left.push(LeftId(v));
            for (e, r) in csr.left_row(v) {
                if !edge_covered[e] {
                    edge_covered[e] = true;
                    remaining -= 1;
                    left_deg[v] -= 1;
                    right_deg[r] -= 1;
                }
            }
        }
    }
    cover
}

/// Reference rescan implementation of [`greedy_vertex_cover`], kept for
/// equivalence testing and speedup benchmarking: every round rescans the
/// full edge list (`O(rounds × edges)`).
pub fn greedy_vertex_cover_naive<L, R, E>(graph: &Bipartite<L, R, E>) -> VertexCover {
    let n_left = graph.left_count();
    let n_right = graph.right_count();
    let edges: Vec<(usize, usize)> = graph.edges().map(|(l, r, _)| (l.0, r.0)).collect();
    let mut edge_covered = vec![false; edges.len()];
    let mut remaining = edges.len();
    let mut left_deg = vec![0usize; n_left];
    let mut right_deg = vec![0usize; n_right];
    for &(l, r) in &edges {
        left_deg[l] += 1;
        right_deg[r] += 1;
    }
    let mut cover = VertexCover::default();
    while remaining > 0 {
        // Pick max-degree vertex over both sides; ties prefer the right side
        // (switches), matching the paper's orientation of covering machines
        // with switches.
        let best_left = (0..n_left).max_by_key(|&l| left_deg[l]).unwrap_or(0);
        let best_right = (0..n_right).max_by_key(|&r| right_deg[r]).unwrap_or(0);
        let take_right =
            n_right > 0 && (n_left == 0 || right_deg[best_right] >= left_deg[best_left]);
        if take_right {
            cover.right.push(RightId(best_right));
            for (i, &(l, r)) in edges.iter().enumerate() {
                if !edge_covered[i] && r == best_right {
                    edge_covered[i] = true;
                    remaining -= 1;
                    left_deg[l] -= 1;
                    right_deg[r] -= 1;
                }
            }
        } else {
            cover.left.push(LeftId(best_left));
            for (i, &(l, r)) in edges.iter().enumerate() {
                if !edge_covered[i] && l == best_left {
                    edge_covered[i] = true;
                    remaining -= 1;
                    left_deg[l] -= 1;
                    right_deg[r] -= 1;
                }
            }
        }
    }
    cover
}

/// A set cover instance: a universe `0..universe_size` and a family of
/// subsets. The AL-VC OPS-selection step is the instance whose universe is
/// the cluster's ToRs and whose sets are the ToR-neighborhoods of each OPS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetCoverInstance {
    universe_size: usize,
    sets: Vec<Vec<usize>>,
}

impl SetCoverInstance {
    /// Creates an instance over universe `0..universe_size` with the given
    /// subsets.
    ///
    /// # Panics
    ///
    /// Panics if a set contains an element `>= universe_size`.
    pub fn new(universe_size: usize, sets: Vec<Vec<usize>>) -> Self {
        for (i, s) in sets.iter().enumerate() {
            for &e in s {
                assert!(
                    e < universe_size,
                    "set {i} contains element {e} outside universe 0..{universe_size}"
                );
            }
        }
        SetCoverInstance {
            universe_size,
            sets,
        }
    }

    /// Universe size.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Number of candidate sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// The elements of set `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&self, i: usize) -> &[usize] {
        &self.sets[i]
    }

    /// Returns `true` if the union of all sets covers the universe.
    pub fn is_coverable(&self) -> bool {
        let mut seen = vec![false; self.universe_size];
        for s in &self.sets {
            for &e in s {
                seen[e] = true;
            }
        }
        seen.iter().all(|&b| b)
    }

    /// Returns `true` if the chosen set indices cover the universe.
    pub fn is_cover(&self, chosen: &[usize]) -> bool {
        let mut seen = vec![false; self.universe_size];
        for &i in chosen {
            for &e in &self.sets[i] {
                seen[e] = true;
            }
        }
        seen.iter().all(|&b| b)
    }

    /// Builds the inverted element → set-occurrence index used by the
    /// incremental greedies. Duplicate occurrences of an element within a
    /// set are preserved so the incremental gain decrements match the naive
    /// duplicate-counting gain exactly.
    fn inverted_index(&self) -> Vec<Vec<u32>> {
        let mut elem_sets: Vec<Vec<u32>> = vec![Vec::new(); self.universe_size];
        for (i, s) in self.sets.iter().enumerate() {
            for &e in s {
                elem_sets[e].push(i as u32);
            }
        }
        elem_sets
    }

    /// Greedy set cover: repeatedly choose the set covering the most
    /// still-uncovered elements (ln(n)-approximate). Ties break toward the
    /// lower index, making the algorithm deterministic.
    ///
    /// Incremental lazy-greedy implementation: per-set gains decay through
    /// an inverted element→set index as elements get covered, and each
    /// round's maximum comes from a [`LazySelector`]. Output is identical
    /// to [`SetCoverInstance::greedy_naive`].
    ///
    /// Returns `None` if the universe is not coverable.
    pub fn greedy(&self) -> Option<Vec<usize>> {
        let mut covered = vec![false; self.universe_size];
        let mut n_covered = 0;
        let mut chosen = Vec::new();
        let mut used = vec![false; self.sets.len()];
        let elem_sets = self.inverted_index();
        // Gains count element *occurrences*, matching the naive rescan's
        // duplicate-counting `filter(!covered).count()`.
        let mut gains: Vec<usize> = self.sets.iter().map(Vec::len).collect();
        let mut selector = LazySelector::with_capacity(self.sets.len());
        for (i, &g) in gains.iter().enumerate() {
            if g > 0 {
                selector.push(i, (g, Reverse(i)));
            }
        }
        while n_covered < self.universe_size {
            let i =
                selector.pop_max(|i| (!used[i] && gains[i] > 0).then(|| (gains[i], Reverse(i))))?;
            used[i] = true;
            chosen.push(i);
            for &e in &self.sets[i] {
                if !covered[e] {
                    covered[e] = true;
                    n_covered += 1;
                    for &j in &elem_sets[e] {
                        gains[j as usize] -= 1;
                    }
                }
            }
        }
        Some(chosen)
    }

    /// Reference rescan implementation of [`SetCoverInstance::greedy`], kept
    /// for equivalence testing and speedup benchmarking: every round
    /// recomputes every set's gain from scratch.
    pub fn greedy_naive(&self) -> Option<Vec<usize>> {
        let mut covered = vec![false; self.universe_size];
        let mut n_covered = 0;
        let mut chosen = Vec::new();
        let mut used = vec![false; self.sets.len()];
        while n_covered < self.universe_size {
            let mut best = None;
            let mut best_gain = 0usize;
            for (i, s) in self.sets.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let gain = s.iter().filter(|&&e| !covered[e]).count();
                if gain > best_gain {
                    best_gain = gain;
                    best = Some(i);
                }
            }
            let i = best?;
            used[i] = true;
            chosen.push(i);
            for &e in &self.sets[i] {
                if !covered[e] {
                    covered[e] = true;
                    n_covered += 1;
                }
            }
        }
        Some(chosen)
    }

    /// Greedy *weighted* set cover: repeatedly choose the set minimizing
    /// `weight / newly-covered`, the classical H_n-approximation for
    /// minimum-cost covers. Ties break toward the lower index.
    ///
    /// Incremental lazy-greedy implementation over
    /// `Reverse((density, index))` keys: as gains decay, densities only
    /// increase, so the reversed key is non-increasing — exactly the
    /// lazy-selection invariant. Output is identical to
    /// [`SetCoverInstance::greedy_weighted_naive`] (the recomputed density
    /// for an unchanged gain is bit-identical, so stale detection is
    /// exact).
    ///
    /// Returns `None` if the universe is not coverable.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != set_count()` or any weight is not
    /// strictly positive and finite.
    pub fn greedy_weighted(&self, weights: &[f64]) -> Option<Vec<usize>> {
        assert_eq!(
            weights.len(),
            self.sets.len(),
            "one weight per candidate set"
        );
        for (i, w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && *w > 0.0,
                "weight of set {i} must be positive and finite"
            );
        }
        let mut covered = vec![false; self.universe_size];
        let mut n_covered = 0;
        let mut chosen = Vec::new();
        let mut used = vec![false; self.sets.len()];
        let elem_sets = self.inverted_index();
        let mut gains: Vec<usize> = self.sets.iter().map(Vec::len).collect();
        let key = |i: usize, gain: usize| Reverse((TotalF64(weights[i] / gain as f64), i));
        let mut selector = LazySelector::with_capacity(self.sets.len());
        for (i, &g) in gains.iter().enumerate() {
            if g > 0 {
                selector.push(i, key(i, g));
            }
        }
        while n_covered < self.universe_size {
            let i = selector.pop_max(|i| (!used[i] && gains[i] > 0).then(|| key(i, gains[i])))?;
            used[i] = true;
            chosen.push(i);
            for &e in &self.sets[i] {
                if !covered[e] {
                    covered[e] = true;
                    n_covered += 1;
                    for &j in &elem_sets[e] {
                        gains[j as usize] -= 1;
                    }
                }
            }
        }
        Some(chosen)
    }

    /// Reference rescan implementation of
    /// [`SetCoverInstance::greedy_weighted`], kept for equivalence testing
    /// and speedup benchmarking.
    ///
    /// # Panics
    ///
    /// Same contract as [`SetCoverInstance::greedy_weighted`].
    pub fn greedy_weighted_naive(&self, weights: &[f64]) -> Option<Vec<usize>> {
        assert_eq!(
            weights.len(),
            self.sets.len(),
            "one weight per candidate set"
        );
        for (i, w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && *w > 0.0,
                "weight of set {i} must be positive and finite"
            );
        }
        let mut covered = vec![false; self.universe_size];
        let mut n_covered = 0;
        let mut chosen = Vec::new();
        let mut used = vec![false; self.sets.len()];
        while n_covered < self.universe_size {
            let mut best: Option<(f64, usize)> = None;
            for (i, s) in self.sets.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let gain = s.iter().filter(|&&e| !covered[e]).count();
                if gain == 0 {
                    continue;
                }
                let density = weights[i] / gain as f64;
                let better = match best {
                    None => true,
                    Some((d, j)) => density < d || (density == d && i < j),
                };
                if better {
                    best = Some((density, i));
                }
            }
            let (_, i) = best?;
            used[i] = true;
            chosen.push(i);
            for &e in &self.sets[i] {
                if !covered[e] {
                    covered[e] = true;
                    n_covered += 1;
                }
            }
        }
        Some(chosen)
    }

    /// Exact minimum set cover by branch and bound over `u128` bitmasks.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InstanceTooLarge`] if the universe exceeds 128
    /// elements. Returns `Ok(None)` if the universe is not coverable.
    pub fn branch_and_bound(&self) -> Result<Option<Vec<usize>>, GraphError> {
        if self.universe_size > 128 {
            return Err(GraphError::InstanceTooLarge {
                algorithm: "set cover branch and bound",
                size: self.universe_size,
                max: 128,
            });
        }
        let full: u128 = if self.universe_size == 128 {
            u128::MAX
        } else {
            (1u128 << self.universe_size) - 1
        };
        let masks: Vec<u128> = self
            .sets
            .iter()
            .map(|s| s.iter().fold(0u128, |m, &e| m | (1u128 << e)))
            .collect();
        if masks.iter().fold(0u128, |m, &s| m | s) != full {
            return Ok(None);
        }
        // Seed the upper bound with the greedy solution.
        let greedy = self.greedy().expect("coverable instance has greedy cover");
        let mut best_len = greedy.len();
        let mut best = greedy;

        // For pruning: the largest set size bounds how many elements one
        // additional set can cover.
        let max_set_size = masks
            .iter()
            .map(|m| m.count_ones() as usize)
            .max()
            .unwrap_or(0);

        fn recurse(
            masks: &[u128],
            full: u128,
            covered: u128,
            chosen: &mut Vec<usize>,
            best: &mut Vec<usize>,
            best_len: &mut usize,
            max_set_size: usize,
        ) {
            if covered == full {
                if chosen.len() < *best_len {
                    *best_len = chosen.len();
                    *best = chosen.clone();
                }
                return;
            }
            let uncovered = (full & !covered).count_ones() as usize;
            // Lower bound: ceil(uncovered / max_set_size) more sets needed.
            let lb = uncovered.div_ceil(max_set_size.max(1));
            if chosen.len() + lb >= *best_len {
                return;
            }
            // Branch on the lowest uncovered element: some chosen set must
            // contain it.
            let elem = (full & !covered).trailing_zeros();
            let bit = 1u128 << elem;
            for (i, &m) in masks.iter().enumerate() {
                if m & bit != 0 {
                    chosen.push(i);
                    recurse(
                        masks,
                        full,
                        covered | m,
                        chosen,
                        best,
                        best_len,
                        max_set_size,
                    );
                    chosen.pop();
                }
            }
        }

        let mut chosen = Vec::new();
        recurse(
            &masks,
            full,
            0,
            &mut chosen,
            &mut best,
            &mut best_len,
            max_set_size,
        );
        Ok(Some(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bip(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> Bipartite<(), (), ()> {
        let mut b = Bipartite::new();
        for _ in 0..n_left {
            b.add_left(());
        }
        for _ in 0..n_right {
            b.add_right(());
        }
        for &(l, r) in edges {
            b.add_edge(LeftId(l), RightId(r), ());
        }
        b
    }

    #[test]
    fn konig_on_star_picks_center() {
        let b = bip(4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let c = konig_vertex_cover(&b);
        assert_eq!(c.size(), 1);
        assert_eq!(c.right, vec![RightId(0)]);
        assert!(c.covers(&b));
    }

    #[test]
    fn konig_matches_matching_size() {
        // C6 as bipartite: perfect matching size 3 → cover size 3.
        let b = bip(3, 3, &[(0, 0), (0, 2), (1, 0), (1, 1), (2, 1), (2, 2)]);
        let c = konig_vertex_cover(&b);
        assert_eq!(c.size(), 3);
        assert!(c.covers(&b));
    }

    #[test]
    fn konig_empty_graph() {
        let b = bip(3, 3, &[]);
        let c = konig_vertex_cover(&b);
        assert_eq!(c.size(), 0);
        assert!(c.covers(&b));
    }

    #[test]
    fn greedy_cover_is_valid() {
        let b = bip(3, 3, &[(0, 0), (0, 2), (1, 0), (1, 1), (2, 1), (2, 2)]);
        let c = greedy_vertex_cover(&b);
        assert!(c.covers(&b));
        assert!(c.size() >= konig_vertex_cover(&b).size());
    }

    #[test]
    fn greedy_prefers_switch_side_on_tie() {
        let b = bip(1, 1, &[(0, 0)]);
        let c = greedy_vertex_cover(&b);
        assert_eq!(c.right, vec![RightId(0)]);
        assert!(c.left.is_empty());
    }

    #[test]
    fn set_cover_greedy_simple() {
        let inst = SetCoverInstance::new(4, vec![vec![0, 1], vec![2], vec![3], vec![2, 3]]);
        let chosen = inst.greedy().unwrap();
        assert!(inst.is_cover(&chosen));
        assert_eq!(chosen.len(), 2); // {0,1} + {2,3}
    }

    #[test]
    fn set_cover_uncoverable_returns_none() {
        let inst = SetCoverInstance::new(3, vec![vec![0], vec![1]]);
        assert!(!inst.is_coverable());
        assert_eq!(inst.greedy(), None);
        assert_eq!(inst.branch_and_bound().unwrap(), None);
    }

    #[test]
    fn bnb_beats_greedy_on_adversarial_instance() {
        // Classic greedy-trap: optimal = 2 ({0..3},{4..7}), greedy starts
        // with the size-5 set and needs 3.
        let inst = SetCoverInstance::new(
            8,
            vec![
                vec![0, 1, 2, 3],
                vec![4, 5, 6, 7],
                vec![0, 1, 4, 5, 6],
                vec![2, 3, 7],
            ],
        );
        let greedy = inst.greedy().unwrap();
        let exact = inst.branch_and_bound().unwrap().unwrap();
        assert!(inst.is_cover(&greedy));
        assert!(inst.is_cover(&exact));
        assert_eq!(exact.len(), 2);
        assert!(greedy.len() >= exact.len());
    }

    #[test]
    fn bnb_rejects_oversized_universe() {
        let inst = SetCoverInstance::new(200, vec![(0..200).collect()]);
        assert!(matches!(
            inst.branch_and_bound(),
            Err(GraphError::InstanceTooLarge { .. })
        ));
    }

    #[test]
    fn bnb_handles_128_element_universe() {
        let inst = SetCoverInstance::new(128, vec![(0..64).collect(), (64..128).collect()]);
        let exact = inst.branch_and_bound().unwrap().unwrap();
        assert_eq!(exact.len(), 2);
    }

    #[test]
    fn set_cover_empty_universe_is_trivially_covered() {
        let inst = SetCoverInstance::new(0, vec![vec![], vec![]]);
        assert_eq!(inst.greedy().unwrap(), Vec::<usize>::new());
        assert_eq!(
            inst.branch_and_bound().unwrap().unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn set_cover_rejects_out_of_universe_element() {
        SetCoverInstance::new(2, vec![vec![5]]);
    }

    #[test]
    fn weighted_greedy_prefers_cheap_sets() {
        // Universe {0,1}: an expensive set covering both vs two cheap sets.
        let inst = SetCoverInstance::new(2, vec![vec![0, 1], vec![0], vec![1]]);
        // Expensive combined set: cheap singles win.
        let chosen = inst.greedy_weighted(&[10.0, 1.0, 1.0]).unwrap();
        assert!(inst.is_cover(&chosen));
        assert_eq!(chosen.len(), 2);
        assert!(!chosen.contains(&0));
        // Cheap combined set: it wins alone.
        let chosen = inst.greedy_weighted(&[1.0, 10.0, 10.0]).unwrap();
        assert_eq!(chosen, vec![0]);
    }

    #[test]
    fn weighted_greedy_with_unit_weights_matches_unweighted() {
        let inst = SetCoverInstance::new(4, vec![vec![0, 1], vec![2], vec![3], vec![2, 3]]);
        let unweighted = inst.greedy().unwrap();
        let weighted = inst.greedy_weighted(&[1.0; 4]).unwrap();
        assert_eq!(unweighted.len(), weighted.len());
        assert!(inst.is_cover(&weighted));
    }

    #[test]
    fn weighted_greedy_uncoverable_returns_none() {
        let inst = SetCoverInstance::new(2, vec![vec![0]]);
        assert_eq!(inst.greedy_weighted(&[1.0]), None);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn weighted_greedy_rejects_nonpositive_weight() {
        let inst = SetCoverInstance::new(1, vec![vec![0]]);
        inst.greedy_weighted(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "one weight per candidate set")]
    fn weighted_greedy_rejects_wrong_arity() {
        let inst = SetCoverInstance::new(1, vec![vec![0]]);
        inst.greedy_weighted(&[1.0, 2.0]);
    }

    #[test]
    fn heap_greedy_matches_naive_on_fixtures() {
        let instances = [
            SetCoverInstance::new(4, vec![vec![0, 1], vec![2], vec![3], vec![2, 3]]),
            SetCoverInstance::new(
                8,
                vec![
                    vec![0, 1, 2, 3],
                    vec![4, 5, 6, 7],
                    vec![0, 1, 4, 5, 6],
                    vec![2, 3, 7],
                ],
            ),
            // Duplicate occurrences inflate the naive gain; the incremental
            // version must count them identically.
            SetCoverInstance::new(3, vec![vec![0, 0, 1], vec![0, 1, 2], vec![2, 2]]),
            SetCoverInstance::new(3, vec![vec![0], vec![1]]), // uncoverable
            SetCoverInstance::new(0, vec![vec![], vec![]]),
        ];
        for inst in &instances {
            assert_eq!(inst.greedy(), inst.greedy_naive());
        }
    }

    #[test]
    fn heap_weighted_greedy_matches_naive_on_fixtures() {
        let inst = SetCoverInstance::new(2, vec![vec![0, 1], vec![0], vec![1]]);
        for weights in [[10.0, 1.0, 1.0], [1.0, 10.0, 10.0], [1.0, 1.0, 1.0]] {
            assert_eq!(
                inst.greedy_weighted(&weights),
                inst.greedy_weighted_naive(&weights)
            );
        }
        let uncoverable = SetCoverInstance::new(2, vec![vec![0]]);
        assert_eq!(
            uncoverable.greedy_weighted(&[1.0]),
            uncoverable.greedy_weighted_naive(&[1.0])
        );
    }

    #[test]
    fn heap_vertex_cover_matches_naive_on_fixtures() {
        type Fixture = (usize, usize, &'static [(usize, usize)]);
        let shapes: &[Fixture] = &[
            (1, 1, &[(0, 0)]),
            (4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]),
            (3, 3, &[(0, 0), (0, 2), (1, 0), (1, 1), (2, 1), (2, 2)]),
            (3, 3, &[]),
            (2, 0, &[]),
        ];
        for &(nl, nr, edges) in shapes {
            let b = bip(nl, nr, edges);
            assert_eq!(greedy_vertex_cover(&b), greedy_vertex_cover_naive(&b));
        }
    }

    #[test]
    fn konig_cover_size_equals_matching_size_random_shapes() {
        // König's theorem: |min VC| == |max matching| in bipartite graphs.
        use crate::matching::hopcroft_karp;
        type Shape = (usize, usize, &'static [(usize, usize)]);
        let shapes: &[Shape] = &[
            (2, 2, &[(0, 0), (1, 1)]),
            (3, 2, &[(0, 0), (1, 0), (2, 1), (0, 1)]),
            (4, 4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 0)]),
        ];
        for &(nl, nr, edges) in shapes {
            let b = bip(nl, nr, edges);
            let m = hopcroft_karp(&b);
            let c = konig_vertex_cover(&b);
            assert_eq!(c.size(), m.size());
            assert!(c.covers(&b));
        }
    }
}
