//! Disjoint-set union (union–find) with path compression and union by rank.

/// A union–find structure over `0..n`.
///
/// Used by the topology generators to guarantee core connectivity and by the
/// traversal tests as an independent connectivity oracle.
///
/// # Example
///
/// ```
/// use alvc_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`'s set (with path compression).
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were separate.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn chain_union_compresses_paths() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, n - 1));
        // After compression the parent chain should be flat.
        let root = uf.find(0);
        for i in 0..n {
            uf.find(i);
            assert_eq!(uf.parent[i], root);
        }
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
