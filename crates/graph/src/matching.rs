//! Maximum bipartite matching (Hopcroft–Karp).

use std::collections::VecDeque;

use crate::bipartite::{Bipartite, LeftId, RightId};

/// A matching in a bipartite graph: a set of edges sharing no endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `pair_left[l]` is the right partner of left node `l`, if matched.
    pub pair_left: Vec<Option<RightId>>,
    /// `pair_right[r]` is the left partner of right node `r`, if matched.
    pub pair_right: Vec<Option<LeftId>>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.pair_left.iter().filter(|p| p.is_some()).count()
    }

    /// Iterates over matched `(left, right)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (LeftId, RightId)> + '_ {
        self.pair_left
            .iter()
            .enumerate()
            .filter_map(|(l, r)| r.map(|r| (LeftId(l), r)))
    }

    /// Returns `true` if `l` is matched.
    pub fn is_left_matched(&self, l: LeftId) -> bool {
        self.pair_left.get(l.0).is_some_and(|p| p.is_some())
    }

    /// Returns `true` if `r` is matched.
    pub fn is_right_matched(&self, r: RightId) -> bool {
        self.pair_right.get(r.0).is_some_and(|p| p.is_some())
    }
}

const INF: u32 = u32::MAX;

/// Computes a maximum matching with the Hopcroft–Karp algorithm in
/// `O(E sqrt(V))`.
///
/// # Example
///
/// ```
/// use alvc_graph::{Bipartite, matching};
///
/// let mut b: Bipartite<(), (), ()> = Bipartite::new();
/// let l: Vec<_> = (0..2).map(|_| b.add_left(())).collect();
/// let r: Vec<_> = (0..2).map(|_| b.add_right(())).collect();
/// b.add_edge(l[0], r[0], ());
/// b.add_edge(l[0], r[1], ());
/// b.add_edge(l[1], r[0], ());
/// let m = matching::hopcroft_karp(&b);
/// assert_eq!(m.size(), 2);
/// ```
pub fn hopcroft_karp<L, R, E>(graph: &Bipartite<L, R, E>) -> Matching {
    let n_left = graph.left_count();
    let n_right = graph.right_count();
    let adj = graph.left_adjacency();

    let mut pair_left: Vec<Option<usize>> = vec![None; n_left];
    let mut pair_right: Vec<Option<usize>> = vec![None; n_right];
    let mut dist = vec![INF; n_left];

    // BFS layering from free left vertices.
    fn bfs(
        adj: &[Vec<usize>],
        pair_left: &[Option<usize>],
        pair_right: &[Option<usize>],
        dist: &mut [u32],
    ) -> bool {
        let mut queue = VecDeque::new();
        for (l, pl) in pair_left.iter().enumerate() {
            if pl.is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_free_right = false;
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                match pair_right[r] {
                    None => found_free_right = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        found_free_right
    }

    fn dfs(
        l: usize,
        adj: &[Vec<usize>],
        pair_left: &mut [Option<usize>],
        pair_right: &mut [Option<usize>],
        dist: &mut [u32],
    ) -> bool {
        for i in 0..adj[l].len() {
            let r = adj[l][i];
            let ok = match pair_right[r] {
                None => true,
                Some(l2) => dist[l2] == dist[l] + 1 && dfs(l2, adj, pair_left, pair_right, dist),
            };
            if ok {
                pair_left[l] = Some(r);
                pair_right[r] = Some(l);
                return true;
            }
        }
        dist[l] = INF;
        false
    }

    while bfs(&adj, &pair_left, &pair_right, &mut dist) {
        for l in 0..n_left {
            if pair_left[l].is_none() {
                dfs(l, &adj, &mut pair_left, &mut pair_right, &mut dist);
            }
        }
    }

    Matching {
        pair_left: pair_left.into_iter().map(|p| p.map(RightId)).collect(),
        pair_right: pair_right.into_iter().map(|p| p.map(LeftId)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bip(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> Bipartite<(), (), ()> {
        let mut b = Bipartite::new();
        for _ in 0..n_left {
            b.add_left(());
        }
        for _ in 0..n_right {
            b.add_right(());
        }
        for &(l, r) in edges {
            b.add_edge(LeftId(l), RightId(r), ());
        }
        b
    }

    /// Checks that the matching is consistent and uses only graph edges.
    fn assert_valid(b: &Bipartite<(), (), ()>, m: &Matching) {
        for (l, r) in m.pairs() {
            assert!(b.contains_edge(l, r), "matched pair must be an edge");
            assert_eq!(m.pair_right[r.0], Some(l), "pairing must be mutual");
        }
    }

    #[test]
    fn perfect_matching_found() {
        let b = bip(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 2), (2, 1)]);
        let m = hopcroft_karp(&b);
        assert_eq!(m.size(), 3);
        assert_valid(&b, &m);
    }

    #[test]
    fn empty_graph_empty_matching() {
        let b = bip(0, 0, &[]);
        assert_eq!(hopcroft_karp(&b).size(), 0);
    }

    #[test]
    fn no_edges_no_matching() {
        let b = bip(3, 3, &[]);
        let m = hopcroft_karp(&b);
        assert_eq!(m.size(), 0);
        assert!(!m.is_left_matched(LeftId(0)));
    }

    #[test]
    fn star_matches_one() {
        // All left nodes connect only to right 0.
        let b = bip(4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let m = hopcroft_karp(&b);
        assert_eq!(m.size(), 1);
        assert!(m.is_right_matched(RightId(0)));
        assert_valid(&b, &m);
    }

    #[test]
    fn augmenting_path_required() {
        // l0-r0, l1-r0, l1-r1: greedy that matches l1-r0 first must augment.
        let b = bip(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let m = hopcroft_karp(&b);
        assert_eq!(m.size(), 2);
        assert_valid(&b, &m);
    }

    #[test]
    fn long_augmenting_chain() {
        // Path structure forcing repeated augmentation:
        // l_i -- r_i and l_i -- r_{i-1}.
        let n = 50;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, i));
            if i > 0 {
                edges.push((i, i - 1));
            }
        }
        let b = bip(n, n, &edges);
        let m = hopcroft_karp(&b);
        assert_eq!(m.size(), n);
        assert_valid(&b, &m);
    }

    #[test]
    fn unbalanced_sides() {
        let b = bip(2, 5, &[(0, 4), (1, 4)]);
        let m = hopcroft_karp(&b);
        assert_eq!(m.size(), 1);
        assert_valid(&b, &m);
    }

    #[test]
    fn matching_size_equals_min_side_in_complete_bipartite() {
        let mut edges = Vec::new();
        for l in 0..4 {
            for r in 0..7 {
                edges.push((l, r));
            }
        }
        let b = bip(4, 7, &edges);
        assert_eq!(hopcroft_karp(&b).size(), 4);
    }
}
