//! Incremental lazy-greedy selection.
//!
//! Every covering algorithm in this workspace repeats the same step: pick
//! the candidate with the maximum current score, where scores only ever
//! *decrease* as elements get covered. The classical implementation rescans
//! all candidates per round (`O(rounds × candidates)` score evaluations);
//! [`LazySelector`] replaces the rescan with a max-heap and *lazy deletion*:
//!
//! 1. every candidate is pushed once with its initial score;
//! 2. to select, pop the top entry and ask the caller for the candidate's
//!    *current* score;
//! 3. if the entry is stale (the score decayed since it was pushed), push
//!    it back with the fresh score and try again — correct because scores
//!    are non-increasing, so a stale top entry can only over-promise;
//! 4. if the entry is current, that candidate is the true maximum.
//!
//! Each candidate is re-pushed at most once per decay, so a full greedy run
//! costs `O((candidates + decays) log candidates)` instead of
//! `O(rounds × candidates × score-evaluation)`.
//!
//! Tie-breaking is the caller's responsibility: encode it in the key type
//! (e.g. `(gain, Reverse(index))` for "highest gain, then lowest index"),
//! which lets each call site reproduce its historical rescan semantics
//! exactly.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A max-heap entry: a candidate id tagged with the score it had when
/// pushed.
#[derive(Debug, Clone)]
struct Entry<K> {
    key: K,
    id: usize,
}

impl<K: Ord> PartialEq for Entry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.id == other.id
    }
}

impl<K: Ord> Eq for Entry<K> {}

impl<K: Ord> PartialOrd for Entry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for Entry<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Keys carry the caller's full tie-break; the id comparison only
        // orders duplicate entries of distinct candidates whose keys the
        // caller chose to make equal.
        self.key.cmp(&other.key).then(self.id.cmp(&other.id))
    }
}

/// A heap-backed maximum selector with stale-entry invalidation.
///
/// Requires the score of every candidate to be non-increasing over the
/// selector's lifetime (the lazy-greedy invariant).
///
/// # Example
///
/// ```
/// use alvc_graph::lazy_greedy::LazySelector;
///
/// let mut scores = [3usize, 5, 4];
/// let mut sel = LazySelector::with_capacity(3);
/// for (i, &s) in scores.iter().enumerate() {
///     sel.push(i, s);
/// }
/// // Candidate 1 decays before selection; the stale entry is refreshed.
/// scores[1] = 1;
/// let current = |i: usize| if scores[i] > 0 { Some(scores[i]) } else { None };
/// assert_eq!(sel.pop_max(current), Some(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LazySelector<K: Ord> {
    heap: BinaryHeap<Entry<K>>,
    stats: SelectorStats,
}

/// Operation counts accumulated by a [`LazySelector`] over its lifetime.
///
/// The counters are plain fields (kept in all builds — they cost one
/// register increment per heap operation); with the `telemetry` feature on
/// they are flushed into the global `alvc_graph.selector.*` counters when
/// the selector drops, which is how bench runs decompose a greedy pass
/// into heap work vs. stale refreshes vs. dead skips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectorStats {
    /// Entries offered via [`LazySelector::push`].
    pub pushes: u64,
    /// Successful selections returned by [`LazySelector::pop_max`].
    pub pops: u64,
    /// Stale entries re-pushed with a refreshed key before retrying.
    pub stale_refreshes: u64,
    /// Entries discarded because the candidate was no longer selectable.
    pub dead_skips: u64,
}

impl<K: Ord> LazySelector<K> {
    /// Creates an empty selector.
    pub fn new() -> Self {
        LazySelector {
            heap: BinaryHeap::new(),
            stats: SelectorStats::default(),
        }
    }

    /// Creates an empty selector with room for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        LazySelector {
            heap: BinaryHeap::with_capacity(n),
            stats: SelectorStats::default(),
        }
    }

    /// Operation counts accumulated so far.
    pub fn stats(&self) -> SelectorStats {
        self.stats
    }

    /// Number of heap entries, counting stale duplicates.
    pub fn entry_count(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no entries remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers candidate `id` with its current score.
    pub fn push(&mut self, id: usize, key: K) {
        self.stats.pushes += 1;
        self.heap.push(Entry { key, id });
    }

    /// Pops the candidate whose *current* score is maximal.
    ///
    /// `current` returns the up-to-date key of a candidate, or `None` if it
    /// is no longer selectable (already selected, or its score dropped to a
    /// useless value). Stale entries are re-pushed with their refreshed key
    /// before retrying; dead entries are dropped.
    ///
    /// Returns `None` when no selectable candidate remains.
    pub fn pop_max(&mut self, mut current: impl FnMut(usize) -> Option<K>) -> Option<usize> {
        while let Some(top) = self.heap.pop() {
            match current(top.id) {
                None => self.stats.dead_skips += 1,
                Some(key) if key == top.key => {
                    self.stats.pops += 1;
                    return Some(top.id);
                }
                Some(key) => {
                    debug_assert!(
                        key < top.key,
                        "lazy-greedy invariant violated: a score increased"
                    );
                    self.stats.stale_refreshes += 1;
                    self.heap.push(Entry { key, id: top.id });
                }
            }
        }
        None
    }
}

/// Flushes the per-selector operation counts into the global
/// `alvc_graph.selector.*` counters. Only compiled with the `telemetry`
/// feature: without it, dropping a selector stays trivial.
#[cfg(feature = "telemetry")]
impl<K: Ord> Drop for LazySelector<K> {
    fn drop(&mut self) {
        let s = self.stats;
        if s.pushes == 0 && s.pops == 0 && s.stale_refreshes == 0 && s.dead_skips == 0 {
            return;
        }
        alvc_telemetry::counter!("alvc_graph.selector.pushes").add(s.pushes);
        alvc_telemetry::counter!("alvc_graph.selector.pops").add(s.pops);
        alvc_telemetry::counter!("alvc_graph.selector.stale_refreshes").add(s.stale_refreshes);
        alvc_telemetry::counter!("alvc_graph.selector.dead_skips").add(s.dead_skips);
    }
}

/// A total order over non-NaN `f64` values, for float-scored selections
/// (e.g. weighted set-cover densities).
///
/// # Panics
///
/// Comparisons panic if either value is NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("TotalF64 requires non-NaN values")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn selects_maximum_and_exhausts() {
        let mut sel = LazySelector::with_capacity(3);
        for (i, &s) in [2usize, 9, 4].iter().enumerate() {
            sel.push(i, s);
        }
        let scores = [2usize, 9, 4];
        let mut dead = [false; 3];
        let mut order = Vec::new();
        while let Some(i) = sel.pop_max(|i| if dead[i] { None } else { Some(scores[i]) }) {
            dead[i] = true;
            order.push(i);
        }
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(sel.pop_max(|_| Some(0usize)), None);
    }

    #[test]
    fn stale_entries_are_refreshed_not_selected() {
        // Candidate 0 starts highest but decays below candidate 1.
        let mut scores = [10usize, 7];
        let mut sel = LazySelector::new();
        sel.push(0, scores[0]);
        sel.push(1, scores[1]);
        scores[0] = 3;
        let picked = sel.pop_max(|i| Some(scores[i]));
        assert_eq!(picked, Some(1));
        // The refreshed entry for 0 is still selectable afterwards.
        assert_eq!(
            sel.pop_max(|i| if i == 1 { None } else { Some(scores[i]) }),
            Some(0)
        );
    }

    #[test]
    fn dead_candidates_are_skipped() {
        let mut sel = LazySelector::new();
        sel.push(0, 5usize);
        sel.push(1, 4);
        assert_eq!(
            sel.pop_max(|i| if i == 0 { None } else { Some(4) }),
            Some(1)
        );
        assert!(sel.is_empty());
    }

    #[test]
    fn composite_keys_break_ties_deterministically() {
        // Equal gains: Reverse(id) prefers the lowest id, as the naive
        // first-max rescan would.
        let mut sel = LazySelector::new();
        for i in 0..4usize {
            sel.push(i, (3usize, Reverse(i)));
        }
        assert_eq!(sel.pop_max(|i| Some((3usize, Reverse(i)))), Some(0));
    }

    #[test]
    fn stats_count_pushes_pops_refreshes_and_skips() {
        let mut scores = [10usize, 7];
        let mut sel = LazySelector::new();
        sel.push(0, scores[0]);
        sel.push(1, scores[1]);
        scores[0] = 3;
        // Pops 0 (stale, re-push), then selects 1.
        assert_eq!(sel.pop_max(|i| Some(scores[i])), Some(1));
        // 0 is dead now: one skip, then exhaustion.
        assert_eq!(sel.pop_max(|_| None::<usize>), None);
        assert_eq!(
            sel.stats(),
            SelectorStats {
                pushes: 2,
                pops: 1,
                stale_refreshes: 1,
                dead_skips: 1,
            }
        );
    }

    #[test]
    fn total_f64_orders_and_panics_on_nan() {
        assert!(TotalF64(1.0) < TotalF64(2.0));
        assert_eq!(TotalF64(1.5), TotalF64(1.5));
        let caught = std::panic::catch_unwind(|| TotalF64(f64::NAN).cmp(&TotalF64(1.0)));
        assert!(caught.is_err());
    }
}
