//! Error types for graph operations.

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id did not refer to a node of the graph it was used with.
    InvalidNode {
        /// The offending node index.
        index: usize,
        /// Number of nodes actually present.
        node_count: usize,
    },
    /// An edge id did not refer to an edge of the graph it was used with.
    InvalidEdge {
        /// The offending edge index.
        index: usize,
        /// Number of edges actually present.
        edge_count: usize,
    },
    /// An exact algorithm was invoked on an instance larger than it supports.
    InstanceTooLarge {
        /// Human-readable name of the algorithm.
        algorithm: &'static str,
        /// Size of the instance that was passed.
        size: usize,
        /// Largest supported size.
        max: usize,
    },
    /// No path exists between the requested endpoints.
    NoPath,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode { index, node_count } => {
                write!(f, "node index {index} out of range ({node_count} nodes)")
            }
            GraphError::InvalidEdge { index, edge_count } => {
                write!(f, "edge index {index} out of range ({edge_count} edges)")
            }
            GraphError::InstanceTooLarge {
                algorithm,
                size,
                max,
            } => write!(
                f,
                "instance of size {size} too large for exact algorithm {algorithm} (max {max})"
            ),
            GraphError::NoPath => write!(f, "no path between the requested endpoints"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            GraphError::InvalidNode {
                index: 3,
                node_count: 1,
            },
            GraphError::InvalidEdge {
                index: 9,
                edge_count: 2,
            },
            GraphError::InstanceTooLarge {
                algorithm: "bnb_set_cover",
                size: 1000,
                max: 128,
            },
            GraphError::NoPath,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
