//! Shortest paths: Dijkstra (non-negative integer costs) and unweighted BFS.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// A path together with its total cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostedPath {
    /// Node sequence from source to target (inclusive).
    pub nodes: Vec<NodeId>,
    /// Sum of edge costs along the path.
    pub cost: u64,
}

impl CostedPath {
    /// Number of hops (edges) on the path.
    pub fn hop_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// Computes a minimum-cost path from `source` to `target` using Dijkstra's
/// algorithm with the given non-negative edge cost function.
///
/// Costs are `u64`; model fractional link costs by scaling. The cost
/// function receives the edge id, so parallel links can carry distinct
/// costs.
///
/// # Errors
///
/// Returns [`GraphError::InvalidNode`] if an endpoint is out of range and
/// [`GraphError::NoPath`] if `target` is unreachable.
///
/// # Example
///
/// ```
/// use alvc_graph::{Graph, shortest_path};
///
/// let mut g: Graph<(), u64> = Graph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, 1);
/// g.add_edge(b, c, 1);
/// g.add_edge(a, c, 10);
/// let p = shortest_path::dijkstra(&g, a, c, |_, &w| w)?;
/// assert_eq!(p.cost, 2);
/// assert_eq!(p.nodes, vec![a, b, c]);
/// # Ok::<(), alvc_graph::GraphError>(())
/// ```
pub fn dijkstra<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    mut cost: impl FnMut(crate::graph::EdgeId, &E) -> u64,
) -> Result<CostedPath, GraphError> {
    let n = graph.node_count();
    for id in [source, target] {
        if id.0 >= n {
            return Err(GraphError::InvalidNode {
                index: id.0,
                node_count: n,
            });
        }
    }
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.0] = 0;
    heap.push(Reverse((0u64, source.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        if u == target.0 {
            break;
        }
        for (e, v) in graph.incident_edges(NodeId(u)) {
            let w = cost(e, graph.edge_weight(e).expect("edge exists"));
            let nd = d.saturating_add(w);
            if nd < dist[v.0] {
                dist[v.0] = nd;
                prev[v.0] = Some(NodeId(u));
                heap.push(Reverse((nd, v.0)));
            }
        }
    }
    if dist[target.0] == u64::MAX {
        return Err(GraphError::NoPath);
    }
    let mut nodes = vec![target];
    let mut cur = target;
    while let Some(p) = prev[cur.0] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    Ok(CostedPath {
        nodes,
        cost: dist[target.0],
    })
}

/// Computes distances from `source` to every node (hop counts), `u64::MAX`
/// for unreachable nodes.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances<N, E>(graph: &Graph<N, E>, source: NodeId) -> Vec<u64> {
    assert!(source.0 < graph.node_count(), "source out of range");
    let mut dist = vec![u64::MAX; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[source.0] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in graph.neighbors(u) {
            if dist[v.0] == u64::MAX {
                dist[v.0] = dist[u.0] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Computes a minimum-hop path from `source` to `target`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidNode`] for out-of-range endpoints and
/// [`GraphError::NoPath`] if unreachable.
pub fn bfs_path<N, E>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
) -> Result<CostedPath, GraphError> {
    dijkstra(graph, source, target, |_, _| 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_square() -> (Graph<(), u64>, [NodeId; 4]) {
        // a -1- b -1- d ; a -5- c -1- d
        let mut g = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(b, d, 1);
        g.add_edge(a, c, 5);
        g.add_edge(c, d, 1);
        (g, [a, b, c, d])
    }

    #[test]
    fn dijkstra_picks_cheaper_route() {
        let (g, [a, b, _, d]) = weighted_square();
        let p = dijkstra(&g, a, d, |_, &w| w).unwrap();
        assert_eq!(p.cost, 2);
        assert_eq!(p.nodes, vec![a, b, d]);
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    fn dijkstra_source_equals_target() {
        let (g, [a, ..]) = weighted_square();
        let p = dijkstra(&g, a, a, |_, &w| w).unwrap();
        assert_eq!(p.cost, 0);
        assert_eq!(p.nodes, vec![a]);
        assert_eq!(p.hop_count(), 0);
    }

    #[test]
    fn dijkstra_no_path() {
        let mut g: Graph<(), u64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert_eq!(
            dijkstra(&g, a, b, |_, &w| w).unwrap_err(),
            GraphError::NoPath
        );
    }

    #[test]
    fn dijkstra_invalid_node() {
        let (g, [a, ..]) = weighted_square();
        assert!(matches!(
            dijkstra(&g, a, NodeId(100), |_, &w| w),
            Err(GraphError::InvalidNode { .. })
        ));
    }

    #[test]
    fn dijkstra_respects_parallel_edge_costs() {
        let mut g: Graph<(), u64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 10);
        g.add_edge(a, b, 3);
        let p = dijkstra(&g, a, b, |_, &w| w).unwrap();
        assert_eq!(p.cost, 3);
    }

    #[test]
    fn bfs_distances_hop_counts() {
        let (g, [a, b, c, d]) = weighted_square();
        let dist = bfs_distances(&g, a);
        assert_eq!(dist[a.0], 0);
        assert_eq!(dist[b.0], 1);
        assert_eq!(dist[c.0], 1);
        assert_eq!(dist[d.0], 2);
    }

    #[test]
    fn bfs_path_ignores_weights() {
        let (g, [a, _, _, d]) = weighted_square();
        let p = bfs_path(&g, a, d).unwrap();
        assert_eq!(p.cost, 2); // two hops either way
    }

    #[test]
    fn bfs_distances_unreachable_is_max() {
        let mut g: Graph<(), u64> = Graph::new();
        let a = g.add_node(());
        g.add_node(());
        let dist = bfs_distances(&g, a);
        assert_eq!(dist[1], u64::MAX);
    }

    #[test]
    fn dijkstra_large_grid_agrees_with_bfs_on_unit_weights() {
        // 10x10 grid, unit weights: Dijkstra cost == BFS hop distance.
        let mut g: Graph<(), u64> = Graph::new();
        let ids: Vec<_> = (0..100).map(|_| g.add_node(())).collect();
        for r in 0..10 {
            for c in 0..10 {
                if c + 1 < 10 {
                    g.add_edge(ids[r * 10 + c], ids[r * 10 + c + 1], 1);
                }
                if r + 1 < 10 {
                    g.add_edge(ids[r * 10 + c], ids[(r + 1) * 10 + c], 1);
                }
            }
        }
        let dist = bfs_distances(&g, ids[0]);
        for &t in &[ids[99], ids[55], ids[9]] {
            let p = dijkstra(&g, ids[0], t, |_, &w| w).unwrap();
            assert_eq!(p.cost, dist[t.0]);
        }
    }
}
