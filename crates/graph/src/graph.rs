//! Undirected adjacency-list graph with typed node and edge weights.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;

/// Index of a node inside a [`Graph`].
///
/// Node ids are dense, stable, and only meaningful for the graph that issued
/// them. They are ordinary `usize` indices wrapped in a newtype so that node
/// and edge indices cannot be confused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of an edge inside a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl NodeId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl EdgeId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

impl From<usize> for EdgeId {
    fn from(value: usize) -> Self {
        EdgeId(value)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeRecord<E> {
    a: NodeId,
    b: NodeId,
    weight: E,
}

/// An undirected multigraph stored as adjacency lists.
///
/// `N` is the node weight type (for AL-VC, a typed network element id) and
/// `E` the edge weight (link attributes). Parallel edges and self-loops are
/// permitted; the covering algorithms in [`crate::cover`] treat parallel
/// edges as a single constraint.
///
/// # Example
///
/// ```
/// use alvc_graph::Graph;
///
/// let mut g: Graph<&str, u32> = Graph::new();
/// let a = g.add_node("tor-1");
/// let b = g.add_node("ops-1");
/// let e = g.add_edge(a, b, 40);
/// assert_eq!(g.edge_weight(e), Some(&40));
/// assert_eq!(g.neighbors(a).collect::<Vec<_>>(), vec![b]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeRecord<E>>,
    /// adjacency[v] = list of (edge id, other endpoint)
    adjacency: Vec<Vec<(EdgeId, NodeId)>>,
}

impl<N, E> Default for Graph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> Graph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            edges: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            adjacency: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node carrying `weight` and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(weight);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge between `a` and `b` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is not a node of this graph.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: E) -> EdgeId {
        assert!(a.0 < self.nodes.len(), "edge endpoint {a:?} out of range");
        assert!(b.0 < self.nodes.len(), "edge endpoint {b:?} out of range");
        let id = EdgeId(self.edges.len());
        self.edges.push(EdgeRecord { a, b, weight });
        self.adjacency[a.0].push((id, b));
        if a != b {
            self.adjacency[b.0].push((id, a));
        }
        id
    }

    /// Fallible variant of [`Graph::add_edge`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidNode`] if either endpoint is not a node
    /// of this graph.
    pub fn try_add_edge(&mut self, a: NodeId, b: NodeId, weight: E) -> Result<EdgeId, GraphError> {
        for id in [a, b] {
            if id.0 >= self.nodes.len() {
                return Err(GraphError::InvalidNode {
                    index: id.0,
                    node_count: self.nodes.len(),
                });
            }
        }
        Ok(self.add_edge(a, b, weight))
    }

    /// Returns the weight of `node`, or `None` if out of range.
    pub fn node_weight(&self, node: NodeId) -> Option<&N> {
        self.nodes.get(node.0)
    }

    /// Returns a mutable reference to the weight of `node`.
    pub fn node_weight_mut(&mut self, node: NodeId) -> Option<&mut N> {
        self.nodes.get_mut(node.0)
    }

    /// Returns the weight of `edge`, or `None` if out of range.
    pub fn edge_weight(&self, edge: EdgeId) -> Option<&E> {
        self.edges.get(edge.0).map(|e| &e.weight)
    }

    /// Returns a mutable reference to the weight of `edge`.
    pub fn edge_weight_mut(&mut self, edge: EdgeId) -> Option<&mut E> {
        self.edges.get_mut(edge.0).map(|e| &mut e.weight)
    }

    /// Returns the endpoints `(a, b)` of `edge`.
    pub fn edge_endpoints(&self, edge: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges.get(edge.0).map(|e| (e.a, e.b))
    }

    /// Degree of `node` (self-loops count once).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this graph.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.0].len()
    }

    /// Iterates over the neighbors of `node` (with multiplicity for parallel
    /// edges).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this graph.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[node.0].iter().map(|&(_, n)| n)
    }

    /// Iterates over `(edge id, neighbor)` pairs incident to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of this graph.
    pub fn incident_edges(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.adjacency[node.0].iter().copied()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Iterates over `(id, weight)` for all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes.iter().enumerate().map(|(i, w)| (NodeId(i), w))
    }

    /// Iterates over `(id, a, b, weight)` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i), e.a, e.b, &e.weight))
    }

    /// Returns `true` if some edge joins `a` and `b`.
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a.0 >= self.nodes.len() || b.0 >= self.nodes.len() {
            return false;
        }
        // Scan the smaller adjacency list.
        let (from, to) = if self.adjacency[a.0].len() <= self.adjacency[b.0].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adjacency[from.0].iter().any(|&(_, n)| n == to)
    }

    /// Finds an edge joining `a` and `b`, if any.
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        if a.0 >= self.nodes.len() {
            return None;
        }
        self.adjacency[a.0]
            .iter()
            .find(|&&(_, n)| n == b)
            .map(|&(e, _)| e)
    }

    /// Maps node and edge weights into a new graph with identical structure.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeId, &N) -> N2,
        mut edge_map: impl FnMut(EdgeId, &E) -> E2,
    ) -> Graph<N2, E2> {
        Graph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, w)| node_map(NodeId(i), w))
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, e)| EdgeRecord {
                    a: e.a,
                    b: e.b,
                    weight: edge_map(EdgeId(i), &e.weight),
                })
                .collect(),
            adjacency: self.adjacency.clone(),
        }
    }
}

impl<N, E> Extend<N> for Graph<N, E> {
    fn extend<T: IntoIterator<Item = N>>(&mut self, iter: T) {
        for w in iter {
            self.add_node(w);
        }
    }
}

impl<N, E> FromIterator<N> for Graph<N, E> {
    fn from_iter<T: IntoIterator<Item = N>>(iter: T) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph<u32, u32>, [NodeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.add_edge(a, b, 10);
        g.add_edge(b, c, 20);
        g.add_edge(c, a, 30);
        (g, [a, b, c])
    }

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g: Graph<(), ()> = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_node_returns_dense_ids() {
        let mut g: Graph<u8, ()> = Graph::new();
        for i in 0..10u8 {
            let id = g.add_node(i);
            assert_eq!(id.index(), i as usize);
        }
        assert_eq!(g.node_count(), 10);
    }

    #[test]
    fn triangle_degrees_and_neighbors() {
        let (g, [a, b, c]) = triangle();
        for n in [a, b, c] {
            assert_eq!(g.degree(n), 2);
        }
        let mut nbrs: Vec<_> = g.neighbors(a).collect();
        nbrs.sort();
        assert_eq!(nbrs, vec![b, c]);
    }

    #[test]
    fn edge_weights_and_endpoints() {
        let (g, [a, b, _]) = triangle();
        let e = g.find_edge(a, b).unwrap();
        assert_eq!(g.edge_weight(e), Some(&10));
        let (x, y) = g.edge_endpoints(e).unwrap();
        assert_eq!((x, y), (a, b));
    }

    #[test]
    fn contains_edge_is_symmetric() {
        let (g, [a, b, c]) = triangle();
        assert!(g.contains_edge(a, b));
        assert!(g.contains_edge(b, a));
        assert!(g.contains_edge(c, a));
        assert!(!g.contains_edge(a, NodeId(99)));
    }

    #[test]
    fn self_loop_counts_once_in_adjacency() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.neighbors(a).collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let mut g: Graph<(), u8> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    fn try_add_edge_rejects_bad_endpoint() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let err = g.try_add_edge(a, NodeId(7), ()).unwrap_err();
        assert_eq!(
            err,
            GraphError::InvalidNode {
                index: 7,
                node_count: 1
            }
        );
    }

    #[test]
    fn node_weight_mut_updates() {
        let (mut g, [a, _, _]) = triangle();
        *g.node_weight_mut(a).unwrap() = 42;
        assert_eq!(g.node_weight(a), Some(&42));
    }

    #[test]
    fn map_preserves_structure() {
        let (g, [a, b, _]) = triangle();
        let mapped = g.map(|_, &w| w * 2, |_, &e| e + 1);
        assert_eq!(mapped.node_count(), 3);
        assert_eq!(mapped.edge_count(), 3);
        assert_eq!(mapped.node_weight(b), Some(&2));
        let e = mapped.find_edge(a, b).unwrap();
        assert_eq!(mapped.edge_weight(e), Some(&11));
    }

    #[test]
    fn from_iterator_collects_nodes() {
        let g: Graph<u32, ()> = (0..5).collect();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let (g, _) = triangle();
        let json = serde_json_like(&g);
        assert!(json.contains("nodes"));
    }

    // serde_json is not a dependency; exercise Serialize via the compact
    // `serde` test writer instead: here we simply ensure the types implement
    // Serialize by formatting through a no-op serializer substitute.
    fn serde_json_like<T: serde::Serialize>(_t: &T) -> String {
        // Compile-time check only.
        "nodes".to_string()
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_panics_on_bad_endpoint() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(3), ());
    }
}
