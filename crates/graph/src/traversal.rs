//! Breadth-first / depth-first traversal and connectivity queries.

use crate::graph::{Graph, NodeId};

/// Returns the nodes reachable from `start` in BFS order.
///
/// # Panics
///
/// Panics if `start` is not a node of `graph`.
///
/// # Example
///
/// ```
/// use alvc_graph::{Graph, traversal};
///
/// let mut g: Graph<(), ()> = Graph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// g.add_node(()); // isolated
/// g.add_edge(a, b, ());
/// assert_eq!(traversal::bfs_order(&g, a), vec![a, b]);
/// ```
pub fn bfs_order<N, E>(graph: &Graph<N, E>, start: NodeId) -> Vec<NodeId> {
    assert!(start.0 < graph.node_count(), "start node out of range");
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    visited[start.0] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in graph.neighbors(u) {
            if !visited[v.0] {
                visited[v.0] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Returns the nodes reachable from `start` in DFS preorder.
///
/// # Panics
///
/// Panics if `start` is not a node of `graph`.
pub fn dfs_order<N, E>(graph: &Graph<N, E>, start: NodeId) -> Vec<NodeId> {
    assert!(start.0 < graph.node_count(), "start node out of range");
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if visited[u.0] {
            continue;
        }
        visited[u.0] = true;
        order.push(u);
        // Push neighbors in reverse so lower-indexed neighbors come first.
        let mut nbrs: Vec<_> = graph.neighbors(u).collect();
        nbrs.reverse();
        for v in nbrs {
            if !visited[v.0] {
                stack.push(v);
            }
        }
    }
    order
}

/// Assigns each node a component index; returns `(labels, component_count)`.
pub fn connected_components<N, E>(graph: &Graph<N, E>) -> (Vec<usize>, usize) {
    let n = graph.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        for v in bfs_order(graph, NodeId(s)) {
            label[v.0] = next;
        }
        next += 1;
    }
    (label, next)
}

/// Returns `true` if the graph is connected (the empty graph counts as
/// connected).
pub fn is_connected<N, E>(graph: &Graph<N, E>) -> bool {
    if graph.node_count() == 0 {
        return true;
    }
    bfs_order(graph, NodeId(0)).len() == graph.node_count()
}

/// Returns `true` if `target` is reachable from `start`.
///
/// # Panics
///
/// Panics if `start` is not a node of `graph`.
pub fn is_reachable<N, E>(graph: &Graph<N, E>, start: NodeId, target: NodeId) -> bool {
    bfs_order(graph, start).contains(&target)
}

/// Returns `true` if all of `nodes` lie in a single connected component of
/// the subgraph induced by `allowed` (a node filter).
///
/// This is the primitive behind validating an abstraction layer: the VMs of
/// a cluster must be mutually reachable using only the cluster's ToRs and
/// selected OPSs.
pub fn connected_within<N, E>(
    graph: &Graph<N, E>,
    nodes: &[NodeId],
    mut allowed: impl FnMut(NodeId) -> bool,
) -> bool {
    let Some(&first) = nodes.first() else {
        return true;
    };
    if !nodes.iter().all(|&n| allowed(n)) {
        return false;
    }
    let mut visited = vec![false; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    visited[first.0] = true;
    queue.push_back(first);
    while let Some(u) = queue.pop_front() {
        for v in graph.neighbors(u) {
            if !visited[v.0] && allowed(v) {
                visited[v.0] = true;
                queue.push_back(v);
            }
        }
    }
    nodes.iter().all(|&n| visited[n.0])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path a-b-c plus isolated d.
    fn path_plus_isolated() -> (Graph<(), ()>, [NodeId; 4]) {
        let mut g = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        (g, [a, b, c, d])
    }

    #[test]
    fn bfs_visits_component_in_distance_order() {
        let (g, [a, b, c, _]) = path_plus_isolated();
        assert_eq!(bfs_order(&g, a), vec![a, b, c]);
        assert_eq!(bfs_order(&g, b), vec![b, a, c]);
    }

    #[test]
    fn dfs_visits_whole_component() {
        let (g, [a, b, c, _]) = path_plus_isolated();
        let order = dfs_order(&g, a);
        assert_eq!(order.len(), 3);
        assert!(order.contains(&b) && order.contains(&c));
    }

    #[test]
    fn components_counted() {
        let (g, [a, _, _, d]) = path_plus_isolated();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_ne!(labels[a.0], labels[d.0]);
    }

    #[test]
    fn connectivity_predicates() {
        let (g, [a, _, c, d]) = path_plus_isolated();
        assert!(!is_connected(&g));
        assert!(is_reachable(&g, a, c));
        assert!(!is_reachable(&g, a, d));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g: Graph<(), ()> = Graph::new();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).1, 0);
    }

    #[test]
    fn connected_within_respects_filter() {
        // Star: center x joins a, b. Removing x disconnects them.
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let x = g.add_node(());
        g.add_edge(a, x, ());
        g.add_edge(b, x, ());
        assert!(connected_within(&g, &[a, b], |_| true));
        assert!(!connected_within(&g, &[a, b], |n| n != x));
    }

    #[test]
    fn connected_within_empty_and_single() {
        let (g, [a, _, _, _]) = path_plus_isolated();
        assert!(connected_within(&g, &[], |_| true));
        assert!(connected_within(&g, &[a], |_| true));
        // A node excluded by its own filter is not connected.
        assert!(!connected_within(&g, &[a], |n| n != a));
    }

    #[test]
    fn bfs_with_cycle_terminates() {
        let mut g: Graph<(), ()> = Graph::new();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            g.add_edge(ids[i], ids[(i + 1) % 5], ());
        }
        assert_eq!(bfs_order(&g, ids[0]).len(), 5);
        assert!(is_connected(&g));
    }
}

/// Computes the articulation points (cut vertices) of the graph: nodes
/// whose removal increases the number of connected components. Iterative
/// Tarjan lowlink computation, O(V + E).
///
/// The AL-VC layers use this to find switches that are single points of
/// failure for slice connectivity.
pub fn articulation_points<N, E>(graph: &Graph<N, E>) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Iterative DFS; each frame tracks the neighbor cursor.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        let mut root_children = 0usize;
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
            let neighbors: Vec<usize> = graph.neighbors(NodeId(u)).map(|v| v.index()).collect();
            if *cursor < neighbors.len() {
                let v = neighbors[*cursor];
                *cursor += 1;
                if disc[v] == usize::MAX {
                    parent[v] = u;
                    if u == root {
                        root_children += 1;
                    }
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, 0));
                } else if v != parent[u] {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_cut[root] = true;
        }
    }
    (0..n).filter(|&i| is_cut[i]).map(NodeId).collect()
}

#[cfg(test)]
mod articulation_tests {
    use super::*;

    fn graph_of(n: usize, edges: &[(usize, usize)]) -> Graph<(), ()> {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_node(());
        }
        for &(a, b) in edges {
            g.add_edge(NodeId(a), NodeId(b), ());
        }
        g
    }

    #[test]
    fn path_interior_nodes_are_cuts() {
        let g = graph_of(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(articulation_points(&g), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn cycle_has_no_cuts() {
        let g = graph_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn star_center_is_a_cut() {
        let g = graph_of(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(articulation_points(&g), vec![NodeId(0)]);
    }

    #[test]
    fn bridge_between_cycles() {
        // Two triangles joined at node 2–3 bridge: 2 and 3 are cuts.
        let g = graph_of(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let mut cuts = articulation_points(&g);
        cuts.sort();
        assert_eq!(cuts, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn disconnected_components_handled() {
        // Component A: path 0-1-2 (1 is a cut); component B: edge 3-4.
        let g = graph_of(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(articulation_points(&g), vec![NodeId(1)]);
    }

    #[test]
    fn empty_and_singleton() {
        let g: Graph<(), ()> = Graph::new();
        assert!(articulation_points(&g).is_empty());
        let g = graph_of(1, &[]);
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn agrees_with_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..30 {
            let n = rng.random_range(2..10usize);
            let m = rng.random_range(0..20usize);
            let edges: Vec<(usize, usize)> = (0..m)
                .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
                .filter(|&(a, b)| a != b)
                .collect();
            let g = graph_of(n, &edges);
            let fast: std::collections::HashSet<_> = articulation_points(&g).into_iter().collect();
            // Brute force: removing v increases component count among the
            // remaining nodes.
            let (_, base) = connected_components(&g);
            for v in 0..n {
                let others: Vec<NodeId> = (0..n).filter(|&i| i != v).map(NodeId).collect();
                // Count components of the graph minus v.
                let mut seen = vec![false; n];
                seen[v] = true;
                let mut comps = 0;
                for &s in &others {
                    if seen[s.index()] {
                        continue;
                    }
                    comps += 1;
                    let mut queue = std::collections::VecDeque::from([s]);
                    seen[s.index()] = true;
                    while let Some(u) = queue.pop_front() {
                        for w in g.neighbors(u) {
                            if !seen[w.index()] {
                                seen[w.index()] = true;
                                queue.push_back(w);
                            }
                        }
                    }
                }
                // v isolated contributes no component of its own; compare
                // against base adjusted for v being its own component.
                let v_isolated = g.degree(NodeId(v)) == 0;
                let base_without_v = if v_isolated { base - 1 } else { base };
                let brute_cut = comps > base_without_v;
                assert_eq!(
                    fast.contains(&NodeId(v)),
                    brute_cut,
                    "node {v} in graph {edges:?}"
                );
            }
        }
    }
}
