//! Directed graph used for NFC forwarding graphs and orchestration DAGs.

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::graph::{EdgeId, NodeId};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArcRecord<E> {
    from: NodeId,
    to: NodeId,
    weight: E,
}

/// A directed multigraph stored as out/in adjacency lists.
///
/// Shares [`NodeId`]/[`EdgeId`] with [`crate::Graph`]; ids from one graph are
/// not valid in another.
///
/// # Example
///
/// ```
/// use alvc_graph::DiGraph;
///
/// let mut g: DiGraph<&str, ()> = DiGraph::new();
/// let fw = g.add_node("firewall");
/// let dpi = g.add_node("dpi");
/// g.add_edge(fw, dpi, ());
/// assert_eq!(g.out_degree(fw), 1);
/// assert_eq!(g.in_degree(dpi), 1);
/// assert!(g.topological_order().is_some());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    arcs: Vec<ArcRecord<E>>,
    out_adj: Vec<Vec<(EdgeId, NodeId)>>,
    in_adj: Vec<Vec<(EdgeId, NodeId)>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty directed graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            arcs: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of arcs.
    pub fn edge_count(&self) -> usize {
        self.arcs.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node carrying `weight` and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(weight);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds an arc `from -> to` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: E) -> EdgeId {
        assert!(
            from.0 < self.nodes.len(),
            "arc source {from:?} out of range"
        );
        assert!(to.0 < self.nodes.len(), "arc target {to:?} out of range");
        let id = EdgeId(self.arcs.len());
        self.arcs.push(ArcRecord { from, to, weight });
        self.out_adj[from.0].push((id, to));
        self.in_adj[to.0].push((id, from));
        id
    }

    /// Fallible variant of [`DiGraph::add_edge`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidNode`] if either endpoint is invalid.
    pub fn try_add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: E,
    ) -> Result<EdgeId, GraphError> {
        for id in [from, to] {
            if id.0 >= self.nodes.len() {
                return Err(GraphError::InvalidNode {
                    index: id.0,
                    node_count: self.nodes.len(),
                });
            }
        }
        Ok(self.add_edge(from, to, weight))
    }

    /// Returns the weight of `node`.
    pub fn node_weight(&self, node: NodeId) -> Option<&N> {
        self.nodes.get(node.0)
    }

    /// Returns the weight of `edge`.
    pub fn edge_weight(&self, edge: EdgeId) -> Option<&E> {
        self.arcs.get(edge.0).map(|a| &a.weight)
    }

    /// Returns the endpoints `(from, to)` of `edge`.
    pub fn edge_endpoints(&self, edge: EdgeId) -> Option<(NodeId, NodeId)> {
        self.arcs.get(edge.0).map(|a| (a.from, a.to))
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_adj[node.0].len()
    }

    /// In-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_adj[node.0].len()
    }

    /// Iterates over successors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[node.0].iter().map(|&(_, n)| n)
    }

    /// Iterates over predecessors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_adj[node.0].iter().map(|&(_, n)| n)
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates over `(id, from, to, weight)` for all arcs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> {
        self.arcs
            .iter()
            .enumerate()
            .map(|(i, a)| (EdgeId(i), a.from, a.to, &a.weight))
    }

    /// Returns a topological order of the nodes, or `None` if the graph has
    /// a cycle (Kahn's algorithm).
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.in_adj[i].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(NodeId(u));
            for &(_, v) in &self.out_adj[u] {
                indeg[v.0] -= 1;
                if indeg[v.0] == 0 {
                    queue.push(v.0);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Returns the unique topological order in which ties are broken by
    /// smallest [`NodeId`], or `None` if the graph has a cycle.
    ///
    /// Unlike [`DiGraph::topological_order`], whose tie ordering depends on
    /// traversal internals, this order is a pure function of the graph's
    /// structure: two graphs with the same nodes and arcs linearize
    /// identically regardless of how the adjacency lists were populated.
    pub fn stable_topological_order(&self) -> Option<Vec<NodeId>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.in_adj[i].len()).collect();
        let mut ready: BinaryHeap<Reverse<usize>> =
            (0..n).filter(|&i| indeg[i] == 0).map(Reverse).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(u)) = ready.pop() {
            order.push(NodeId(u));
            for &(_, v) in &self.out_adj[u] {
                indeg[v.0] -= 1;
                if indeg[v.0] == 0 {
                    ready.push(Reverse(v.0));
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Returns `true` if the graph contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        self.topological_order().is_none()
    }

    /// Returns the nodes with in-degree zero (chain entry points).
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Returns the nodes with out-degree zero (chain exit points).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.out_degree(n) == 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DiGraph<usize, ()> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g
    }

    #[test]
    fn chain_degrees() {
        let g = chain(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(NodeId(0)), 1);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.in_degree(NodeId(3)), 1);
        assert_eq!(g.out_degree(NodeId(3)), 0);
    }

    #[test]
    fn topological_order_of_chain_is_the_chain() {
        let g = chain(5);
        let order = g.topological_order().unwrap();
        assert_eq!(order, (0..5).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn cycle_detection() {
        let mut g = chain(3);
        assert!(!g.has_cycle());
        g.add_edge(NodeId(2), NodeId(0), ());
        assert!(g.has_cycle());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn sources_and_sinks() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        assert_eq!(g.sources(), vec![a]);
        let mut sinks = g.sinks();
        sinks.sort();
        assert_eq!(sinks, vec![b, c]);
    }

    #[test]
    fn successors_and_predecessors() {
        let g = chain(3);
        assert_eq!(g.successors(NodeId(0)).collect::<Vec<_>>(), vec![NodeId(1)]);
        assert_eq!(
            g.predecessors(NodeId(2)).collect::<Vec<_>>(),
            vec![NodeId(1)]
        );
    }

    #[test]
    fn try_add_edge_rejects_bad_endpoint() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        assert!(g.try_add_edge(a, NodeId(9), ()).is_err());
        assert!(g.try_add_edge(NodeId(9), a, ()).is_err());
    }

    #[test]
    fn branching_graph_topological_order_is_valid() {
        // Diamond: a -> b, a -> c, b -> d, c -> d.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        let order = g.topological_order().unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn empty_digraph_topological_order_is_empty() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert_eq!(g.topological_order().unwrap(), Vec::<NodeId>::new());
    }

    #[test]
    fn stable_topological_order_breaks_ties_by_node_id() {
        // Diamond with the branch edges inserted in reverse order: the
        // unstable Kahn traversal visits c before b here, the stable one
        // must not.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, c, ());
        g.add_edge(a, b, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        assert_eq!(g.stable_topological_order().unwrap(), vec![a, b, c, d]);
    }

    #[test]
    fn stable_topological_order_detects_cycles() {
        let mut g = chain(3);
        assert_eq!(
            g.stable_topological_order().unwrap(),
            (0..3).map(NodeId).collect::<Vec<_>>()
        );
        g.add_edge(NodeId(2), NodeId(0), ());
        assert!(g.stable_topological_order().is_none());
    }
}
