//! Two-sided (bipartite) graphs.
//!
//! The AL-VC construction operates on two bipartite layers: VMs ↔ ToR
//! switches and ToR switches ↔ optical packet switches. [`Bipartite`] keeps
//! the sides statically distinct via [`LeftId`] / [`RightId`] so an algorithm
//! cannot confuse a machine index with a switch index.

use serde::{Deserialize, Serialize};

/// Index of a node on the left side of a [`Bipartite`] graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LeftId(pub usize);

/// Index of a node on the right side of a [`Bipartite`] graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RightId(pub usize);

impl LeftId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl RightId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An undirected bipartite multigraph with typed side weights.
///
/// `L` and `R` are the node weights of the two sides; `E` the edge weight.
///
/// # Example
///
/// ```
/// use alvc_graph::Bipartite;
///
/// let mut b: Bipartite<&str, &str, u32> = Bipartite::new();
/// let vm = b.add_left("vm-0");
/// let tor = b.add_right("tor-0");
/// b.add_edge(vm, tor, 10);
/// assert_eq!(b.left_degree(vm), 1);
/// assert_eq!(b.right_degree(tor), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bipartite<L, R, E> {
    left: Vec<L>,
    right: Vec<R>,
    edges: Vec<(LeftId, RightId, E)>,
    left_adj: Vec<Vec<(usize, RightId)>>,
    right_adj: Vec<Vec<(usize, LeftId)>>,
}

impl<L, R, E> Default for Bipartite<L, R, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L, R, E> Bipartite<L, R, E> {
    /// Creates an empty bipartite graph.
    pub fn new() -> Self {
        Bipartite {
            left: Vec::new(),
            right: Vec::new(),
            edges: Vec::new(),
            left_adj: Vec::new(),
            right_adj: Vec::new(),
        }
    }

    /// Number of left nodes.
    pub fn left_count(&self) -> usize {
        self.left.len()
    }

    /// Number of right nodes.
    pub fn right_count(&self) -> usize {
        self.right.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether both sides are empty.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }

    /// Adds a node to the left side.
    pub fn add_left(&mut self, weight: L) -> LeftId {
        let id = LeftId(self.left.len());
        self.left.push(weight);
        self.left_adj.push(Vec::new());
        id
    }

    /// Adds a node to the right side.
    pub fn add_right(&mut self, weight: R) -> RightId {
        let id = RightId(self.right.len());
        self.right.push(weight);
        self.right_adj.push(Vec::new());
        id
    }

    /// Adds an edge between a left and a right node.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: LeftId, r: RightId, weight: E) {
        assert!(l.0 < self.left.len(), "left endpoint {l:?} out of range");
        assert!(r.0 < self.right.len(), "right endpoint {r:?} out of range");
        let idx = self.edges.len();
        self.edges.push((l, r, weight));
        self.left_adj[l.0].push((idx, r));
        self.right_adj[r.0].push((idx, l));
    }

    /// Returns the weight of left node `l`.
    pub fn left_weight(&self, l: LeftId) -> Option<&L> {
        self.left.get(l.0)
    }

    /// Returns the weight of right node `r`.
    pub fn right_weight(&self, r: RightId) -> Option<&R> {
        self.right.get(r.0)
    }

    /// Degree of left node `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn left_degree(&self, l: LeftId) -> usize {
        self.left_adj[l.0].len()
    }

    /// Degree of right node `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn right_degree(&self, r: RightId) -> usize {
        self.right_adj[r.0].len()
    }

    /// Iterates over right neighbors of left node `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn left_neighbors(&self, l: LeftId) -> impl Iterator<Item = RightId> + '_ {
        self.left_adj[l.0].iter().map(|&(_, r)| r)
    }

    /// Iterates over left neighbors of right node `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn right_neighbors(&self, r: RightId) -> impl Iterator<Item = LeftId> + '_ {
        self.right_adj[r.0].iter().map(|&(_, l)| l)
    }

    /// Iterates over all left ids.
    pub fn left_ids(&self) -> impl Iterator<Item = LeftId> {
        (0..self.left.len()).map(LeftId)
    }

    /// Iterates over all right ids.
    pub fn right_ids(&self) -> impl Iterator<Item = RightId> {
        (0..self.right.len()).map(RightId)
    }

    /// Iterates over `(left, right, weight)` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (LeftId, RightId, &E)> {
        self.edges.iter().map(|(l, r, w)| (*l, *r, w))
    }

    /// Returns `true` if some edge joins `l` and `r`.
    pub fn contains_edge(&self, l: LeftId, r: RightId) -> bool {
        if l.0 >= self.left.len() || r.0 >= self.right.len() {
            return false;
        }
        self.left_adj[l.0].iter().any(|&(_, rr)| rr == r)
    }

    /// Left-to-right adjacency as plain index lists (used by the matching
    /// and covering algorithms).
    pub fn left_adjacency(&self) -> Vec<Vec<usize>> {
        self.left_adj
            .iter()
            .map(|adj| adj.iter().map(|&(_, r)| r.0).collect())
            .collect()
    }

    /// Returns `true` if every left node has at least one edge.
    pub fn left_side_covered(&self) -> bool {
        self.left_adj.iter().all(|adj| !adj.is_empty())
    }

    /// Builds a compact CSR (compressed sparse row) view of both adjacency
    /// directions, for algorithms whose inner loop walks neighborhoods
    /// (e.g. [`crate::cover::greedy_vertex_cover`]): rows are contiguous
    /// `u32` slices instead of per-node `Vec`s, so coverage updates are
    /// cache-friendly index walks.
    pub fn to_csr(&self) -> BipartiteCsr {
        fn pack(adj: &[Vec<(usize, impl Copy + Into<usize>)>]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
            let total: usize = adj.iter().map(Vec::len).sum();
            let mut offsets = Vec::with_capacity(adj.len() + 1);
            let mut edges = Vec::with_capacity(total);
            let mut targets = Vec::with_capacity(total);
            offsets.push(0u32);
            for row in adj {
                for &(e, t) in row {
                    edges.push(e as u32);
                    targets.push(t.into() as u32);
                }
                offsets.push(edges.len() as u32);
            }
            (offsets, edges, targets)
        }
        let (left_offsets, left_edges, left_targets) = pack(&self.left_adj);
        let (right_offsets, right_edges, right_targets) = pack(&self.right_adj);
        BipartiteCsr {
            left_offsets,
            left_edges,
            left_targets,
            right_offsets,
            right_edges,
            right_targets,
        }
    }
}

impl From<LeftId> for usize {
    fn from(l: LeftId) -> usize {
        l.0
    }
}

impl From<RightId> for usize {
    fn from(r: RightId) -> usize {
        r.0
    }
}

/// Compact CSR adjacency of a [`Bipartite`] graph: per-side offset arrays
/// into flat `u32` edge-id and opposite-endpoint arrays. Immutable snapshot;
/// rebuild after mutating the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteCsr {
    left_offsets: Vec<u32>,
    left_edges: Vec<u32>,
    left_targets: Vec<u32>,
    right_offsets: Vec<u32>,
    right_edges: Vec<u32>,
    right_targets: Vec<u32>,
}

impl BipartiteCsr {
    /// Number of left nodes.
    pub fn left_count(&self) -> usize {
        self.left_offsets.len() - 1
    }

    /// Number of right nodes.
    pub fn right_count(&self) -> usize {
        self.right_offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.left_edges.len()
    }

    /// Degree of left node `l`.
    pub fn left_degree(&self, l: usize) -> usize {
        (self.left_offsets[l + 1] - self.left_offsets[l]) as usize
    }

    /// Degree of right node `r`.
    pub fn right_degree(&self, r: usize) -> usize {
        (self.right_offsets[r + 1] - self.right_offsets[r]) as usize
    }

    /// Iterates over `(edge index, right index)` incident to left node `l`.
    pub fn left_row(&self, l: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let (lo, hi) = (
            self.left_offsets[l] as usize,
            self.left_offsets[l + 1] as usize,
        );
        self.left_edges[lo..hi]
            .iter()
            .zip(&self.left_targets[lo..hi])
            .map(|(&e, &t)| (e as usize, t as usize))
    }

    /// Iterates over `(edge index, left index)` incident to right node `r`.
    pub fn right_row(&self, r: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let (lo, hi) = (
            self.right_offsets[r] as usize,
            self.right_offsets[r + 1] as usize,
        );
        self.right_edges[lo..hi]
            .iter()
            .zip(&self.right_targets[lo..hi])
            .map(|(&e, &t)| (e as usize, t as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Bipartite<u32, u32, ()> {
        // 3 machines, 2 switches; m0,m1 -> s0; m2 -> s1; m1 -> s1.
        let mut b = Bipartite::new();
        let m: Vec<_> = (0..3).map(|i| b.add_left(i)).collect();
        let s: Vec<_> = (0..2).map(|i| b.add_right(i)).collect();
        b.add_edge(m[0], s[0], ());
        b.add_edge(m[1], s[0], ());
        b.add_edge(m[2], s[1], ());
        b.add_edge(m[1], s[1], ());
        b
    }

    #[test]
    fn counts() {
        let b = small();
        assert_eq!(b.left_count(), 3);
        assert_eq!(b.right_count(), 2);
        assert_eq!(b.edge_count(), 4);
        assert!(!b.is_empty());
    }

    #[test]
    fn degrees() {
        let b = small();
        assert_eq!(b.left_degree(LeftId(1)), 2);
        assert_eq!(b.right_degree(RightId(0)), 2);
        assert_eq!(b.right_degree(RightId(1)), 2);
    }

    #[test]
    fn neighbors() {
        let b = small();
        let mut n: Vec<_> = b.left_neighbors(LeftId(1)).collect();
        n.sort();
        assert_eq!(n, vec![RightId(0), RightId(1)]);
        let mut m: Vec<_> = b.right_neighbors(RightId(1)).collect();
        m.sort();
        assert_eq!(m, vec![LeftId(1), LeftId(2)]);
    }

    #[test]
    fn contains_edge_checks_bounds() {
        let b = small();
        assert!(b.contains_edge(LeftId(0), RightId(0)));
        assert!(!b.contains_edge(LeftId(0), RightId(1)));
        assert!(!b.contains_edge(LeftId(99), RightId(0)));
    }

    #[test]
    fn left_adjacency_matches_edges() {
        let b = small();
        let adj = b.left_adjacency();
        assert_eq!(adj[0], vec![0]);
        assert_eq!(adj[1], vec![0, 1]);
        assert_eq!(adj[2], vec![1]);
    }

    #[test]
    fn left_side_covered_detects_isolated_machine() {
        let mut b = small();
        assert!(b.left_side_covered());
        b.add_left(99);
        assert!(!b.left_side_covered());
    }

    #[test]
    fn csr_rows_match_adjacency() {
        let b = small();
        let csr = b.to_csr();
        assert_eq!(csr.left_count(), 3);
        assert_eq!(csr.right_count(), 2);
        assert_eq!(csr.edge_count(), 4);
        for l in 0..3 {
            assert_eq!(csr.left_degree(l), b.left_degree(LeftId(l)));
            let row: Vec<usize> = csr.left_row(l).map(|(_, r)| r).collect();
            let adj: Vec<usize> = b.left_neighbors(LeftId(l)).map(|r| r.0).collect();
            assert_eq!(row, adj);
        }
        for r in 0..2 {
            assert_eq!(csr.right_degree(r), b.right_degree(RightId(r)));
            let row: Vec<usize> = csr.right_row(r).map(|(_, l)| l).collect();
            let adj: Vec<usize> = b.right_neighbors(RightId(r)).map(|l| l.0).collect();
            assert_eq!(row, adj);
        }
        // Edge ids in rows refer back to the edge list.
        for l in 0..3 {
            for (e, r) in csr.left_row(l) {
                let (el, er, ()) = b.edges().nth(e).unwrap();
                assert_eq!((el.0, er.0), (l, r));
            }
        }
    }

    #[test]
    fn csr_of_empty_graph() {
        let b: Bipartite<(), (), ()> = Bipartite::new();
        let csr = b.to_csr();
        assert_eq!(csr.left_count(), 0);
        assert_eq!(csr.right_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn weights_accessible() {
        let b = small();
        assert_eq!(b.left_weight(LeftId(2)), Some(&2));
        assert_eq!(b.right_weight(RightId(0)), Some(&0));
        assert_eq!(b.left_weight(LeftId(9)), None);
    }
}
