//! Control-plane properties: intent-log replay reproduces the live
//! [`StateView`] bit-for-bit, admission rejections leave zero residual
//! state, the deficit-round-robin scheduler starves no tenant,
//! incremental snapshot publication matches a full capture after every
//! batch, and concurrent submission is safe.

use std::sync::Arc;

use alvc_nfv::chain::fig5;
use alvc_nfv::{
    AdmissionError, ChainSpec, ControlPlane, Intent, IntentEffect, IntentOutcome, NfcId,
    SchedulerMode, StateView, TenantQuota, VnfInstanceId, VnfSpec, VnfType,
};
use alvc_topology::{AlvcTopologyBuilder, DataCenter, Element, OpsInterconnect, VmId};
use proptest::prelude::*;

fn dc_for(seed: u64) -> Arc<DataCenter> {
    Arc::new(
        AlvcTopologyBuilder::new()
            .racks(6)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(30)
            .tor_ops_degree(6)
            .opto_fraction(0.5)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(seed)
            .build(),
    )
}

fn spec_for(kind: u8, ingress: VmId, egress: VmId) -> ChainSpec {
    match kind % 4 {
        0 => fig5::blue(ingress, egress),
        1 => fig5::black(ingress, egress),
        2 => fig5::green(ingress, egress),
        _ => ChainSpec::builder("fw-only")
            .linear([VnfSpec::of(VnfType::Firewall)])
            .ingress(ingress)
            .egress(egress)
            .build()
            .unwrap(),
    }
}

fn control_plane(dc: &Arc<DataCenter>, batch_size: usize) -> ControlPlane {
    ControlPlane::builder()
        .batch_size(batch_size)
        .default_quota(TenantQuota::new(2, 3))
        .tenant_quota("operator", TenantQuota::unlimited())
        .build(dc.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole acceptance property: running an arbitrary multi-tenant
    /// intent script live, then replaying its log on a fresh control
    /// plane, yields an identical [`StateView`] — same chain set, same
    /// instance map, same integer-kbps bandwidth ledger — and an identical
    /// regenerated log.
    #[test]
    fn replay_reproduces_live_state_view(
        seed in 0u64..100,
        batch_size in 1usize..5,
        script in proptest::collection::vec((0u8..6, 0u8..4), 1..20),
    ) {
        let dc = dc_for(seed);
        let vms: Vec<VmId> = dc.vm_ids().collect();
        let half = vms.len() / 2;
        let groups = [vms[..half].to_vec(), vms[half..].to_vec()];

        let live = control_plane(&dc, batch_size);
        // Replicas are addressed by the ids scale-out effects returned;
        // track them exactly as a real client would.
        let mut replicas: Vec<VnfInstanceId> = Vec::new();
        for (op, kind) in script {
            let tenant = format!("t{}", kind % 2);
            let group = &groups[(kind % 2) as usize];
            let view = live.view();
            let first_chain: Option<NfcId> = view.chains_of(&tenant).first().copied();
            let intent = match op {
                0 => Intent::DeployChain {
                    vms: group.clone(),
                    spec: spec_for(kind, group[0], *group.last().unwrap()),
                },
                1 => match first_chain {
                    Some(chain) => Intent::TeardownChain { chain },
                    None => Intent::Reoptimize, // rejected: not the operator
                },
                2 => match first_chain {
                    Some(chain) => Intent::ModifyChain {
                        chain,
                        spec: spec_for(kind + 1, group[0], *group.last().unwrap()),
                    },
                    None => Intent::Reoptimize,
                },
                3 => match first_chain {
                    Some(chain) => Intent::ScaleOut { chain, position: 0 },
                    None => Intent::Reoptimize,
                },
                4 => match replicas.pop() {
                    Some(replica) => Intent::ScaleIn { replica },
                    None => Intent::Reoptimize,
                },
                _ => Intent::Reoptimize,
            };
            let tenant = if matches!(intent, Intent::Reoptimize) {
                "operator".to_string()
            } else {
                tenant
            };
            let id = live.submit(&tenant, intent);
            live.process_batch();
            if let Some(IntentOutcome::Completed(IntentEffect::ScaledOut { replica, .. })) =
                live.outcome(id)
            {
                replicas.push(replica);
            }
        }
        live.process_all();

        let live_view: Arc<StateView> = live.view();
        let log = live.intent_log();
        prop_assert_eq!(live_view.intents_processed, log.len() as u64);

        // Internal invariants hold on the live orchestrator.
        live.inspect(|orch| {
            assert!(orch.manager().verify_disjoint());
            assert_eq!(orch.chain_count(), live_view.chain_count());
        });

        // Replay on a fresh control plane with the same configuration.
        let fresh = control_plane(&dc, batch_size);
        let replayed = fresh.replay(&log);
        prop_assert_eq!(&*live_view, &*replayed);
        prop_assert_eq!(&live_view.chains, &replayed.chains);
        prop_assert_eq!(&live_view.instances, &replayed.instances);
        prop_assert_eq!(&live_view.link_committed_kbps, &replayed.link_committed_kbps);
        prop_assert_eq!(log, fresh.intent_log());
    }

    /// Scheduler property (no starvation): with weight-1 tenants and a
    /// batch size of at least the tenant count, DRR grants every tenant
    /// with queued work at least one slot per batch — so a light tenant's
    /// queue drains within `light_count` batches no matter how large the
    /// heavy tenant's backlog ahead of it is.
    #[test]
    fn drr_never_starves_a_light_tenant(
        heavy_count in 20usize..120,
        light_tenants in 2usize..5,
        light_count in 1usize..6,
    ) {
        let dc = dc_for(1);
        let batch_size = light_tenants + 1;
        let cp = ControlPlane::builder()
            .batch_size(batch_size)
            .scheduler(SchedulerMode::DeficitRoundRobin)
            .operator("nobody")
            .build(dc.clone());
        // All intents are operator-only reoptimizes from non-operator
        // tenants: deterministic, rejected, zero orchestrator work — the
        // property under test is purely about slot allocation.
        for _ in 0..heavy_count {
            cp.submit("heavy", Intent::Reoptimize);
        }
        let light_tickets: Vec<_> = (0..light_count)
            .flat_map(|_| {
                (0..light_tenants).map(|t| cp.submit(&format!("light-{t}"), Intent::Reoptimize))
            })
            .collect();
        for batch in 0.. {
            prop_assert!(
                batch <= light_count,
                "light tenants starved past {light_count} batches"
            );
            cp.process_batch();
            if light_tickets.iter().all(|&t| cp.outcome(t).is_some()) {
                break;
            }
        }
        // The heavy backlog still drains to completion afterwards.
        cp.process_all();
        prop_assert_eq!(
            cp.intent_log().len(),
            heavy_count + light_count * light_tenants
        );
    }

    /// Scheduler property (replay determinism): an asymmetric multi-tenant
    /// burst drained by DRR — where batch order differs wildly from
    /// submission order — still replays bit-identically from its log on a
    /// fresh control plane.
    #[test]
    fn sharded_queues_replay_bit_identically(
        seed in 0u64..50,
        batch_size in 1usize..6,
        bursts in proptest::collection::vec((0u8..3, 1usize..5), 1..8),
    ) {
        let dc = dc_for(seed);
        let vms: Vec<VmId> = dc.vm_ids().collect();
        let third = vms.len() / 3;
        let groups = [
            vms[..third].to_vec(),
            vms[third..2 * third].to_vec(),
            vms[2 * third..].to_vec(),
        ];
        let build = || {
            ControlPlane::builder()
                .batch_size(batch_size)
                .default_quota(TenantQuota::new(2, 3))
                .build(dc.clone())
        };
        let live = build();
        for &(tenant, count) in &bursts {
            let group = &groups[tenant as usize];
            for i in 0..count {
                let chain = live.view().chains_of(&format!("t{tenant}")).first().copied();
                let intent = match (i + count) % 3 {
                    0 => Intent::DeployChain {
                        vms: group.clone(),
                        spec: spec_for(tenant + i as u8, group[0], *group.last().unwrap()),
                    },
                    1 => match chain {
                        Some(chain) => Intent::TeardownChain { chain },
                        None => Intent::DeployChain {
                            vms: group.clone(),
                            spec: spec_for(tenant, group[0], *group.last().unwrap()),
                        },
                    },
                    _ => match chain {
                        Some(chain) => Intent::ScaleOut { chain, position: 0 },
                        None => Intent::DeployChain {
                            vms: group.clone(),
                            spec: spec_for(tenant + 1, group[0], *group.last().unwrap()),
                        },
                    },
                };
                live.submit(&format!("t{tenant}"), intent);
            }
            // Partial drains leave residual per-tenant queues (and DRR
            // deficit state) across submission waves.
            live.process_batch();
        }
        live.process_all();

        let fresh = build();
        let replayed = fresh.replay(&live.intent_log());
        prop_assert_eq!(&*live.view(), &*replayed);
        prop_assert_eq!(live.intent_log(), fresh.intent_log());
    }

    /// Incremental-publication property: after every batch — including
    /// batches with failures, restores, and reoptimizes that force a full
    /// capture — the published snapshot equals a from-scratch
    /// `StateView::capture` of the live orchestrator.
    #[test]
    fn incremental_view_equals_full_capture_after_every_batch(
        seed in 0u64..50,
        batch_size in 1usize..5,
        script in proptest::collection::vec((0u8..8, 0u8..4), 1..16),
    ) {
        let dc = dc_for(seed);
        let vms: Vec<VmId> = dc.vm_ids().collect();
        let half = vms.len() / 2;
        let groups = [vms[..half].to_vec(), vms[half..].to_vec()];
        let cp = control_plane(&dc, batch_size);
        let mut replicas: Vec<VnfInstanceId> = Vec::new();
        for (op, kind) in script {
            let tenant = format!("t{}", kind % 2);
            let group = &groups[(kind % 2) as usize];
            let first_chain: Option<NfcId> = cp.view().chains_of(&tenant).first().copied();
            let (tenant, intent) = match op {
                0 | 1 => (tenant, Intent::DeployChain {
                    vms: group.clone(),
                    spec: spec_for(kind, group[0], *group.last().unwrap()),
                }),
                2 => match first_chain {
                    Some(chain) => (tenant, Intent::TeardownChain { chain }),
                    None => ("operator".to_string(), Intent::Reoptimize),
                },
                3 => match first_chain {
                    Some(chain) => (tenant, Intent::ModifyChain {
                        chain,
                        spec: spec_for(kind + 1, group[0], *group.last().unwrap()),
                    }),
                    None => ("operator".to_string(), Intent::Reoptimize),
                },
                4 => match first_chain {
                    Some(chain) => (tenant, Intent::ScaleOut { chain, position: 0 }),
                    None => ("operator".to_string(), Intent::Reoptimize),
                },
                5 => match replicas.pop() {
                    Some(replica) => (tenant, Intent::ScaleIn { replica }),
                    None => ("operator".to_string(), Intent::Reoptimize),
                },
                6 => (
                    "operator".to_string(),
                    Intent::FailElement {
                        element: Element::Server(dc.server_of_vm(groups[(kind % 2) as usize][0])),
                    },
                ),
                _ => (
                    "operator".to_string(),
                    Intent::RestoreElement {
                        element: Element::Server(dc.server_of_vm(groups[(kind % 2) as usize][0])),
                    },
                ),
            };
            let id = cp.submit(&tenant, intent);
            cp.process_batch();
            if let Some(IntentOutcome::Completed(IntentEffect::ScaledOut { replica, .. })) =
                cp.outcome(id)
            {
                replicas.push(replica);
            }
            // The invariant under test: what was published incrementally
            // is exactly what a full capture of the live world yields.
            prop_assert_eq!(&*cp.view(), &*cp.recompute_view());
        }
        cp.process_all();
        prop_assert_eq!(&*cp.view(), &*cp.recompute_view());
    }
}

/// Satellite regression: an admission-rejected intent must leave zero
/// residual state — no SDN rules, no bandwidth ledger entries, no cluster,
/// no instances — exactly the world the previous batch published.
#[test]
fn admission_rejection_leaves_zero_residual_state() {
    let dc = dc_for(3);
    let vms: Vec<VmId> = dc.vm_ids().collect();
    let cp = ControlPlane::builder()
        .default_quota(TenantQuota::new(1, 8))
        .build(dc.clone());

    // Fill the tenant's quota with one real chain.
    let ok = cp.submit(
        "web",
        Intent::DeployChain {
            vms: vms.clone(),
            spec: fig5::black(vms[0], *vms.last().unwrap()),
        },
    );
    cp.process_all();
    assert!(cp.outcome(ok).unwrap().is_completed());
    let before = cp.view();

    // Every rejection family in one batch: over quota, unservable
    // bandwidth, empty group, foreign chain, operator-only.
    let mut fat = fig5::black(vms[0], *vms.last().unwrap());
    fat.bandwidth_gbps = 1e9;
    let rejected = [
        cp.submit(
            "web",
            Intent::DeployChain {
                vms: vms.clone(),
                spec: fig5::blue(vms[0], *vms.last().unwrap()),
            },
        ),
        cp.submit(
            "other",
            Intent::DeployChain {
                vms: vms.clone(),
                spec: fat,
            },
        ),
        cp.submit(
            "other",
            Intent::DeployChain {
                vms: Vec::new(),
                spec: fig5::blue(vms[0], vms[1]),
            },
        ),
        cp.submit(
            "other",
            Intent::TeardownChain {
                chain: before.chains_of("web")[0],
            },
        ),
        cp.submit("web", Intent::Reoptimize),
    ];
    cp.process_all();
    for id in rejected {
        assert!(
            matches!(cp.outcome(id).unwrap(), IntentOutcome::Rejected(_)),
            "{:?}",
            cp.outcome(id)
        );
    }

    let after = cp.view();
    assert_eq!(before.chains, after.chains);
    assert_eq!(before.instances, after.instances);
    assert_eq!(before.link_committed_kbps, after.link_committed_kbps);
    assert_eq!(before.sdn_rules, after.sdn_rules);
    assert_eq!(before.total_committed_kbps, after.total_committed_kbps);
    cp.inspect(|orch| {
        assert_eq!(orch.chain_count(), 1);
        assert_eq!(orch.manager().cluster_count(), 1);
        assert_eq!(orch.sdn().total_rules(), after.sdn_rules);
    });
}

/// Rate-limited intents are also residue-free and deterministic: the
/// batch-scoped limiter rejects the tail of a burst without touching the
/// accepted head.
#[test]
fn rate_limited_burst_executes_exactly_the_budget() {
    let dc = dc_for(7);
    let vms: Vec<VmId> = dc.vm_ids().collect();
    let half = vms.len() / 2;
    let cp = ControlPlane::builder()
        .batch_size(8)
        .default_quota(TenantQuota {
            max_live_chains: None,
            max_intents_per_batch: Some(1),
            weight: 1,
        })
        .build(dc.clone());
    let groups = [vms[..half].to_vec(), vms[half..].to_vec()];
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            let group = &groups[i % 2];
            cp.submit(
                &format!("t{}", i % 2),
                Intent::DeployChain {
                    vms: group.clone(),
                    spec: fig5::black(group[0], *group.last().unwrap()),
                },
            )
        })
        .collect();
    cp.process_batch();
    // Intent 0 and 1 (one per tenant) pass; 2 and 3 are rate-limited.
    assert!(cp.outcome(tickets[0]).unwrap().is_completed());
    assert!(cp.outcome(tickets[1]).unwrap().is_completed());
    for &t in &tickets[2..] {
        assert!(matches!(
            cp.outcome(t).unwrap(),
            IntentOutcome::Rejected(AdmissionError::RateLimited { .. })
        ));
    }
    assert_eq!(cp.view().chain_count(), 2);
}

/// Concurrent submitters against one control plane: every ticket resolves,
/// snapshots stay internally consistent, and the final state matches a
/// replay of the log.
#[test]
fn threaded_submission_is_safe_and_replayable() {
    let dc = dc_for(11);
    let vms: Vec<VmId> = dc.vm_ids().collect();
    let quarter = vms.len() / 4;
    let cp = Arc::new(control_plane(&dc, 8));

    let mut handles = Vec::new();
    for t in 0..4 {
        let cp = cp.clone();
        let group = vms[t * quarter..(t + 1) * quarter].to_vec();
        handles.push(std::thread::spawn(move || {
            let tenant = format!("t{t}");
            let mut tickets = Vec::new();
            for i in 0..6 {
                // A mix of valid deploys and intents destined for
                // rejection (foreign teardown).
                let intent = if i % 3 == 2 {
                    Intent::TeardownChain {
                        chain: NfcId(usize::MAX - t),
                    }
                } else {
                    Intent::DeployChain {
                        vms: group.clone(),
                        spec: spec_for(i as u8, group[0], *group.last().unwrap()),
                    }
                };
                tickets.push(cp.submit(&tenant, intent));
                // Snapshot reads interleave with the driver's writes.
                let view = cp.view();
                assert_eq!(
                    view.chain_count(),
                    view.chains.len(),
                    "snapshot internally consistent"
                );
            }
            tickets
        }));
    }
    // Drive batches while submitters run.
    let mut processed = 0;
    while processed < 24 {
        processed += cp.process_batch();
        std::thread::yield_now();
    }
    let tickets: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter thread"))
        .collect();
    assert_eq!(tickets.len(), 24);
    for t in tickets {
        assert!(cp.outcome(t).is_some(), "every ticket resolved");
    }
    let live_view = cp.view();
    assert_eq!(live_view.intents_processed, 24);
    cp.inspect(|orch| assert!(orch.manager().verify_disjoint()));

    // The interleaving was nondeterministic, but the recorded log replays
    // to the same state.
    let fresh = control_plane(&dc, 8);
    let replayed = fresh.replay(&cp.intent_log());
    assert_eq!(*live_view, *replayed);
}
