//! Property tests: the orchestrator's bookkeeping survives arbitrary
//! interleavings of deploy / modify / lifecycle / teardown operations.

use alvc_core::construction::PaperGreedy;
use alvc_nfv::chain::fig5;
use alvc_nfv::{ChainSpec, ElectronicOnlyPlacer, NfcId, Orchestrator, VnfSpec, VnfType};
use alvc_topology::{AlvcTopologyBuilder, DataCenter, OpsInterconnect, VmId};
use proptest::prelude::*;

fn dc_for(seed: u64) -> DataCenter {
    AlvcTopologyBuilder::new()
        .racks(6)
        .servers_per_rack(2)
        .vms_per_server(2)
        .ops_count(30)
        .tor_ops_degree(6)
        .opto_fraction(0.5)
        .interconnect(OpsInterconnect::FullMesh)
        .seed(seed)
        .build()
}

fn spec_for(kind: u8, ingress: VmId, egress: VmId) -> ChainSpec {
    match kind % 4 {
        0 => fig5::blue(ingress, egress),
        1 => fig5::black(ingress, egress),
        2 => fig5::green(ingress, egress),
        _ => ChainSpec::builder("fw-only")
            .linear([VnfSpec::of(VnfType::Firewall)])
            .ingress(ingress)
            .egress(egress)
            .build()
            .unwrap(),
    }
}

/// Invariants that must hold after every operation.
fn check_invariants(dc: &DataCenter, orch: &Orchestrator) {
    // OPS-disjoint slices.
    assert!(orch.manager().verify_disjoint());
    // One cluster per chain and vice versa.
    assert_eq!(orch.chain_count(), orch.slices().len());
    assert_eq!(orch.chain_count(), orch.manager().cluster_count());
    // Rules exactly cover deployed paths.
    let expected_rules: usize = orch.chains().map(|c| c.path().nodes().len()).sum();
    assert_eq!(orch.sdn().total_rules(), expected_rules);
    // Every deployed AL is valid for its VMs.
    for chain in orch.chains() {
        let vc = orch.manager().cluster(chain.cluster()).unwrap();
        assert!(vc.al().validate(dc, vc.vms()).is_ok());
        assert_eq!(chain.hosts().len(), chain.nfc().vnfs().len());
    }
    // Terminated instances are garbage-collected: the instance map holds
    // exactly the chain members plus live replicas.
    let expected_instances: usize = orch.chains().map(|c| c.instances().len()).sum();
    assert_eq!(
        orch.instance_count(),
        expected_instances + orch.replica_count()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn orchestrator_state_machine_is_sound(
        seed in 0u64..200,
        script in proptest::collection::vec((0u8..4, 0u8..4), 1..16),
    ) {
        let dc = dc_for(seed);
        let mut orch = Orchestrator::new();
        let vms: Vec<VmId> = dc.vm_ids().collect();
        let half = vms.len() / 2;
        let groups = [vms[..half].to_vec(), vms[half..].to_vec()];
        let mut live: Vec<NfcId> = Vec::new();
        for (op, kind) in script {
            match op {
                0 => {
                    // Deploy into whichever group is free (at most 2 live).
                    let idx = live.len().min(1);
                    let group = &groups[idx];
                    let spec = spec_for(kind, group[0], *group.last().unwrap());
                    if let Ok(id) = orch.deploy_chain(
                        &dc,
                        format!("tenant-{idx}"),
                        group.clone(),
                        spec,
                        &PaperGreedy::new(),
                        &ElectronicOnlyPlacer::new(),
                    ) {
                        live.push(id);
                    }
                }
                1 => {
                    if let Some(id) = live.pop() {
                        prop_assert!(orch.teardown_chain(id).is_ok());
                    }
                }
                2 => {
                    if let Some(&id) = live.first() {
                        let cluster = orch.chain(id).unwrap().cluster();
                        let members = orch
                            .manager()
                            .cluster(cluster)
                            .unwrap()
                            .vms()
                            .to_vec();
                        let spec = spec_for(kind, members[0], *members.last().unwrap());
                        let _ = orch.modify_chain(&dc, id, spec, &ElectronicOnlyPlacer::new());
                    }
                }
                _ => {
                    if let Some(&id) = live.first() {
                        if let Some(&iid) = orch.chain(id).unwrap().instances().first() {
                            // Scale then complete; both may legally fail if
                            // interleaved oddly, but state must stay sound.
                            let _ = orch.begin_scaling(iid);
                            let _ = orch.complete_operation(iid);
                        }
                    }
                }
            }
            check_invariants(&dc, &orch);
        }
        // Drain and verify the clean slate.
        for id in live {
            prop_assert!(orch.teardown_chain(id).is_ok());
        }
        prop_assert_eq!(orch.chain_count(), 0);
        prop_assert_eq!(orch.sdn().total_rules(), 0);
        prop_assert_eq!(orch.manager().availability().blocked_count(), 0);
        prop_assert_eq!(orch.instance_count(), 0);
        for o in dc.optoelectronic_ops() {
            prop_assert_eq!(orch.opto_usage(o).cpu, 0.0);
        }
    }

    /// Satellite of the failure-recovery issue: the bandwidth ledger must
    /// round-trip deploy/teardown *exactly* — even with fractional Gb/s
    /// figures and a background chain holding bandwidth on shared links —
    /// because committed bandwidth is tracked in integer kb/s.
    #[test]
    fn bandwidth_ledger_round_trips_exactly(
        seed in 0u64..100,
        bg_bw in 0.01f64..3.0,
        bws in proptest::collection::vec(0.01f64..3.0, 1..8),
    ) {
        let dc = dc_for(seed);
        let vms: Vec<VmId> = dc.vm_ids().collect();
        let half = vms.len() / 2;
        let (a, b) = (vms[..half].to_vec(), vms[half..].to_vec());
        let mut orch = Orchestrator::new();
        let mut bg_spec = fig5::black(a[0], *a.last().unwrap());
        bg_spec.bandwidth_gbps = bg_bw;
        let bg = orch.deploy_chain(
            &dc,
            "bg",
            a,
            bg_spec,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        // Snapshot the background chain's per-edge commitments: they must
        // be bit-identical after every foreground round trip.
        let bg_edges: Vec<(alvc_graph::EdgeId, f64)> = match bg {
            Ok(id) => orch
                .chain(id)
                .unwrap()
                .edges()
                .iter()
                .map(|&e| (e, orch.committed_bandwidth_gbps(e)))
                .collect(),
            Err(_) => Vec::new(),
        };
        for &bw in &bws {
            let mut spec = fig5::black(b[0], *b.last().unwrap());
            spec.bandwidth_gbps = bw;
            let Ok(id) = orch.deploy_chain(
                &dc,
                "fg",
                b.clone(),
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            ) else {
                continue;
            };
            let edges = orch.chain(id).unwrap().edges().to_vec();
            prop_assert!(!edges.is_empty());
            prop_assert!(orch.teardown_chain(id).is_ok());
            for &e in &edges {
                let expected = bg_edges
                    .iter()
                    .find(|&&(be, _)| be == e)
                    .map_or(0.0, |&(_, v)| v);
                prop_assert_eq!(orch.committed_bandwidth_gbps(e), expected);
            }
        }
    }
}
