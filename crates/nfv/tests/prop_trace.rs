//! Causal-tracing properties (DESIGN.md §14): every intent the control
//! plane accepts yields exactly one complete trace tree — a single root,
//! an admission span, an execute span, no orphans — and replaying the
//! same intent log reproduces the same span topology (ids excluded).
//!
//! The flight recorder and the tracing flag are process-global, so every
//! test here serializes on one lock and filters recorder contents down to
//! the trace ids the control plane under test handed out.
//!
//! Probes-off builds compile tracing to no-ops — nothing to observe, so
//! the whole suite is gated on the feature.
#![cfg(feature = "telemetry")]

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use alvc_nfv::chain::fig5;
use alvc_nfv::{ControlPlane, Intent, IntentId, TenantQuota};
use alvc_telemetry::recorder::{recorder_entries, RecorderEntry};
use alvc_telemetry::trace::set_tracing_enabled;
use alvc_telemetry::{SpanId, SpanRecord, TraceId};
use alvc_topology::{AlvcTopologyBuilder, DataCenter, OpsInterconnect, VmId};
use proptest::prelude::*;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Serializes trace tests and guarantees the flag is cleared afterwards,
/// even when an assertion unwinds.
struct TracingOn(#[allow(dead_code)] MutexGuard<'static, ()>);

impl TracingOn {
    fn acquire() -> Self {
        let guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_tracing_enabled(true);
        TracingOn(guard)
    }
}

impl Drop for TracingOn {
    fn drop(&mut self) {
        set_tracing_enabled(false);
    }
}

fn dc_for(seed: u64) -> Arc<DataCenter> {
    Arc::new(
        AlvcTopologyBuilder::new()
            .racks(6)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(30)
            .tor_ops_degree(6)
            .opto_fraction(0.5)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(seed)
            .build(),
    )
}

fn control_plane(dc: &Arc<DataCenter>, batch_size: usize) -> ControlPlane {
    ControlPlane::builder()
        .batch_size(batch_size)
        .default_quota(TenantQuota::new(2, 3))
        .build(dc.clone())
}

/// Runs `script` (one deploy intent per entry, split across two tenants)
/// and returns the executed intent ids.
fn run_script(cp: &ControlPlane, dc: &DataCenter, script: &[u8]) -> Vec<IntentId> {
    let vms: Vec<VmId> = dc.vm_ids().collect();
    let half = vms.len() / 2;
    let groups = [vms[..half].to_vec(), vms[half..].to_vec()];
    let mut ids = Vec::new();
    for &kind in script {
        let tenant = format!("t{}", kind % 2);
        let group = &groups[(kind % 2) as usize];
        let intent = match kind % 3 {
            0 => Intent::DeployChain {
                vms: group.clone(),
                spec: fig5::black(group[0], *group.last().unwrap()),
            },
            1 => Intent::DeployChain {
                vms: group.clone(),
                spec: fig5::blue(group[0], *group.last().unwrap()),
            },
            _ => {
                // Teardown of whatever the tenant owns right now — often a
                // rejection (NotOwner on a chain that never existed).
                let chain = cp.view().chains_of(&tenant).first().copied();
                match chain {
                    Some(chain) => Intent::TeardownChain { chain },
                    None => Intent::Reoptimize, // rejected: operator-only
                }
            }
        };
        ids.push(cp.submit(&tenant, intent));
    }
    cp.process_all();
    ids
}

/// All spans currently in the recorder, grouped by trace.
fn spans_by_trace() -> BTreeMap<TraceId, Vec<SpanRecord>> {
    let mut by_trace: BTreeMap<TraceId, Vec<SpanRecord>> = BTreeMap::new();
    for entry in recorder_entries() {
        if let RecorderEntry::Span(s) = entry {
            by_trace.entry(s.trace).or_default().push(s);
        }
    }
    by_trace
}

/// Canonical topology of the tree under `root`: name/status/code with
/// children recursively serialized in sorted order, all ids and
/// durations excluded.
fn canonical(spans: &[SpanRecord], root: SpanId) -> String {
    let me = spans
        .iter()
        .find(|s| s.span == root)
        .expect("root span exists");
    let mut children: Vec<String> = spans
        .iter()
        .filter(|s| s.parent == root)
        .map(|s| canonical(spans, s.span))
        .collect();
    children.sort();
    format!(
        "{}({},{})[{}]",
        me.name,
        me.status,
        me.code,
        children.join(",")
    )
}

/// Asserts intent `id`'s trace tree is complete and well-formed, and
/// returns its canonical topology.
fn check_tree(
    cp: &ControlPlane,
    by_trace: &BTreeMap<TraceId, Vec<SpanRecord>>,
    id: IntentId,
) -> String {
    let trace = cp.trace_of(id).expect("intent stamped at submission");
    let spans = by_trace.get(&trace).expect("trace recorded");
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "one root per trace, got {roots:?}");
    let root = roots[0];
    assert_eq!(root.name, "intent");
    let outcome = cp.outcome(id).expect("intent executed");
    assert_eq!(root.status, outcome.label());

    // No orphans: every non-root span's parent is in the same trace.
    for s in spans.iter() {
        if !s.parent.is_none() {
            assert!(
                spans.iter().any(|p| p.span == s.parent),
                "span {:?} has an out-of-trace parent",
                s.name
            );
        }
    }

    // All executed stages are covered: admission always runs; accepted
    // intents (completed or failed) also get an execute stage.
    let stage = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert_eq!(stage("intent.admission"), 1, "exactly one admission span");
    let executes = stage("intent.execute");
    if outcome.is_rejected() {
        assert_eq!(executes, 0, "rejected intents never execute");
    } else {
        assert_eq!(executes, 1, "accepted intents execute exactly once");
    }
    canonical(spans, root.span)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole acceptance: every intent yields exactly one trace tree
    /// covering all executed stages, with no orphan spans.
    #[test]
    fn every_intent_yields_one_complete_trace(
        seed in 0u64..50,
        batch_size in 1usize..5,
        script in proptest::collection::vec(0u8..6, 1..16),
    ) {
        let _tracing = TracingOn::acquire();
        let dc = dc_for(seed);
        let cp = control_plane(&dc, batch_size);
        let ids = run_script(&cp, &dc, &script);
        let by_trace = spans_by_trace();
        for id in ids {
            check_tree(&cp, &by_trace, id);
        }
    }

    /// Replaying the live run's intent log on a fresh control plane
    /// produces the identical span topology per intent (trace and span
    /// ids excluded — they are process-global and never repeat).
    #[test]
    fn same_seed_replay_produces_identical_span_topology(
        seed in 0u64..50,
        batch_size in 1usize..5,
        script in proptest::collection::vec(0u8..6, 1..12),
    ) {
        let _tracing = TracingOn::acquire();
        let dc = dc_for(seed);
        let live = control_plane(&dc, batch_size);
        let ids = run_script(&live, &dc, &script);
        let live_trees: Vec<String> = {
            let by_trace = spans_by_trace();
            ids.iter().map(|&id| check_tree(&live, &by_trace, id)).collect()
        };

        let replayed = control_plane(&dc, batch_size);
        replayed.replay(&live.intent_log());
        let by_trace = spans_by_trace();
        // Replay reassigns the same dense intent ids in the same order.
        let replay_trees: Vec<String> = ids
            .iter()
            .map(|&id| check_tree(&replayed, &by_trace, id))
            .collect();
        prop_assert_eq!(live_trees, replay_trees);
    }
}

/// Regression for the traces-map leak: the per-intent trace-context map
/// must drain back to empty once every submitted intent has executed —
/// the trace id moves into the completed-intent record, so `trace_of`
/// still resolves for finished work.
#[test]
fn trace_map_drains_after_process_all() {
    let _tracing = TracingOn::acquire();
    let dc = dc_for(11);
    let cp = control_plane(&dc, 3);
    let ids = run_script(&cp, &dc, &[0, 1, 2, 3, 4, 5, 0, 1]);
    assert_eq!(cp.trace_map_len(), 0, "trace contexts must not leak");
    for id in ids {
        assert!(
            cp.trace_of(id).is_some(),
            "finished intents keep a trace id"
        );
    }
}

/// Deployments coalesced into one bulk construction still attribute a
/// per-intent `intent.execute` span to every member, and the bulk span
/// lands under the first member's trace.
#[test]
fn coalesced_deploys_attribute_per_intent_spans() {
    let _tracing = TracingOn::acquire();
    let dc = dc_for(7);
    let cp = ControlPlane::builder().batch_size(8).build(dc.clone());
    let vms: Vec<VmId> = dc.vm_ids().collect();
    let half = vms.len() / 2;
    let a = cp.submit(
        "a",
        Intent::DeployChain {
            vms: vms[..half].to_vec(),
            spec: fig5::black(vms[0], vms[half - 1]),
        },
    );
    let b = cp.submit(
        "b",
        Intent::DeployChain {
            vms: vms[half..].to_vec(),
            spec: fig5::blue(vms[half], *vms.last().unwrap()),
        },
    );
    assert_eq!(cp.process_batch(), 2);
    let by_trace = spans_by_trace();
    for id in [a, b] {
        let tree = check_tree(&cp, &by_trace, id);
        assert!(tree.starts_with("intent("), "{tree}");
    }
    // The bulk span (and under it the orchestrator's construction and
    // deploy spans) is attributed to the first coalesced intent.
    let first = by_trace
        .get(&cp.trace_of(a).unwrap())
        .expect("first trace recorded");
    assert!(
        first.iter().any(|s| s.name == "intent.execute_bulk"),
        "bulk span under first intent"
    );
    assert!(
        first.iter().any(|s| s.name == "nfv.deploy"),
        "deploy spans under first intent"
    );
    let second = by_trace.get(&cp.trace_of(b).unwrap()).unwrap();
    assert!(
        second.iter().all(|s| s.name != "intent.execute_bulk"),
        "no bulk span under later members"
    );
}
