//! The cloud/NFV manager's VNF lifecycle (§IV.B).
//!
//! "[The Cloud/NFV manager] is responsible for managing the VNFs during its
//! lifetime, such as VNF creation, scaling, termination, and update events
//! during the life cycle of VNF."

use alvc_topology::{Domain, OpsId, ServerId};
use serde::{Deserialize, Serialize};

use crate::error::LifecycleError;
use crate::vnf::VnfSpec;

/// Identifier of a VNF instance, issued by the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VnfInstanceId(pub usize);

impl VnfInstanceId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for VnfInstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vnf-{}", self.0)
    }
}

/// Where a VNF instance runs: on a server (electronic domain) or on an
/// optoelectronic router (optical domain, §IV.D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostLocation {
    /// Electronic host.
    Server(ServerId),
    /// Optoelectronic router in the optical core.
    OptoRouter(OpsId),
}

impl HostLocation {
    /// The domain the instance serves traffic in.
    pub fn domain(&self) -> Domain {
        match self {
            HostLocation::Server(_) => Domain::Electronic,
            HostLocation::OptoRouter(_) => Domain::Optical,
        }
    }
}

impl std::fmt::Display for HostLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostLocation::Server(s) => write!(f, "{s}"),
            HostLocation::OptoRouter(o) => write!(f, "{o}"),
        }
    }
}

/// Lifecycle states of a VNF instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VnfState {
    /// Requested by a tenant, not yet scheduled.
    Requested,
    /// Being instantiated on its host.
    Instantiating,
    /// Serving traffic.
    Active,
    /// Scaling up/down (remains reachable).
    Scaling,
    /// Software update in progress.
    Updating,
    /// Removed; terminal state.
    Terminated,
}

impl VnfState {
    /// Static lowercase name, used as the telemetry label of
    /// `alvc_nfv.lifecycle.transitions` and by [`std::fmt::Display`].
    pub fn label(self) -> &'static str {
        match self {
            VnfState::Requested => "requested",
            VnfState::Instantiating => "instantiating",
            VnfState::Active => "active",
            VnfState::Scaling => "scaling",
            VnfState::Updating => "updating",
            VnfState::Terminated => "terminated",
        }
    }

    /// Legal direct transitions of the lifecycle state machine.
    pub fn can_transition_to(self, next: VnfState) -> bool {
        use VnfState::*;
        matches!(
            (self, next),
            (Requested, Instantiating)
                | (Requested, Terminated)
                | (Instantiating, Active)
                | (Instantiating, Terminated)
                | (Active, Scaling)
                | (Active, Updating)
                | (Active, Terminated)
                | (Scaling, Active)
                | (Scaling, Terminated)
                | (Updating, Active)
                | (Updating, Terminated)
        )
    }
}

impl std::fmt::Display for VnfState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A VNF instance with its lifecycle state and transition history.
///
/// # Example
///
/// ```
/// use alvc_nfv::{HostLocation, VnfInstance, VnfInstanceId, VnfSpec, VnfState, VnfType};
/// use alvc_topology::ServerId;
///
/// let mut inst = VnfInstance::new(
///     VnfInstanceId(0),
///     VnfSpec::of(VnfType::Firewall),
///     HostLocation::Server(ServerId(2)),
/// );
/// inst.transition(VnfState::Instantiating)?;
/// inst.transition(VnfState::Active)?;
/// assert_eq!(inst.state(), VnfState::Active);
/// assert_eq!(inst.history().len(), 3); // Requested, Instantiating, Active
/// # Ok::<(), alvc_nfv::LifecycleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VnfInstance {
    id: VnfInstanceId,
    spec: VnfSpec,
    host: HostLocation,
    state: VnfState,
    history: Vec<VnfState>,
}

impl VnfInstance {
    /// Creates an instance in [`VnfState::Requested`].
    pub fn new(id: VnfInstanceId, spec: VnfSpec, host: HostLocation) -> Self {
        VnfInstance {
            id,
            spec,
            host,
            state: VnfState::Requested,
            history: vec![VnfState::Requested],
        }
    }

    /// The instance id.
    pub fn id(&self) -> VnfInstanceId {
        self.id
    }

    /// The VNF spec.
    pub fn spec(&self) -> &VnfSpec {
        &self.spec
    }

    /// The instance's host.
    pub fn host(&self) -> HostLocation {
        self.host
    }

    /// Current lifecycle state.
    pub fn state(&self) -> VnfState {
        self.state
    }

    /// Every state the instance has been in, in order.
    pub fn history(&self) -> &[VnfState] {
        &self.history
    }

    /// Attempts a lifecycle transition.
    ///
    /// # Errors
    ///
    /// [`LifecycleError`] if the transition is not legal.
    pub fn transition(&mut self, next: VnfState) -> Result<(), LifecycleError> {
        if !self.state.can_transition_to(next) {
            return Err(LifecycleError {
                from: self.state,
                to: next,
            });
        }
        self.state = next;
        self.history.push(next);
        // One labelled series per target state, so a snapshot decomposes
        // lifecycle churn (e.g. how many instances reached `terminated`).
        alvc_telemetry::counter_with("alvc_nfv.lifecycle.transitions", next.label()).incr();
        Ok(())
    }

    /// Convenience: Requested → Instantiating → Active.
    ///
    /// # Errors
    ///
    /// Fails if the instance is not in [`VnfState::Requested`].
    pub fn activate(&mut self) -> Result<(), LifecycleError> {
        self.transition(VnfState::Instantiating)?;
        self.transition(VnfState::Active)
    }

    /// Whether the instance serves traffic (active, scaling, or updating —
    /// the paper's managers keep instances reachable during those events).
    pub fn is_serving(&self) -> bool {
        matches!(
            self.state,
            VnfState::Active | VnfState::Scaling | VnfState::Updating
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::VnfType;

    fn inst() -> VnfInstance {
        VnfInstance::new(
            VnfInstanceId(1),
            VnfSpec::of(VnfType::Dpi),
            HostLocation::Server(ServerId(0)),
        )
    }

    #[test]
    fn happy_path_lifecycle() {
        let mut i = inst();
        assert_eq!(i.state(), VnfState::Requested);
        assert!(!i.is_serving());
        i.activate().unwrap();
        assert!(i.is_serving());
        i.transition(VnfState::Scaling).unwrap();
        assert!(i.is_serving());
        i.transition(VnfState::Active).unwrap();
        i.transition(VnfState::Updating).unwrap();
        i.transition(VnfState::Active).unwrap();
        i.transition(VnfState::Terminated).unwrap();
        assert!(!i.is_serving());
        assert_eq!(i.history().len(), 8);
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut i = inst();
        let err = i.transition(VnfState::Active).unwrap_err();
        assert_eq!(err.from, VnfState::Requested);
        assert_eq!(err.to, VnfState::Active);
        // State unchanged after failure.
        assert_eq!(i.state(), VnfState::Requested);
        assert_eq!(i.history().len(), 1);
    }

    #[test]
    fn terminated_is_terminal() {
        let mut i = inst();
        i.transition(VnfState::Terminated).unwrap();
        for next in [
            VnfState::Requested,
            VnfState::Instantiating,
            VnfState::Active,
            VnfState::Scaling,
            VnfState::Updating,
            VnfState::Terminated,
        ] {
            assert!(i.transition(next).is_err(), "{next} from terminated");
        }
    }

    #[test]
    fn activate_twice_fails() {
        let mut i = inst();
        i.activate().unwrap();
        assert!(i.activate().is_err());
    }

    #[test]
    fn host_domains() {
        assert_eq!(
            HostLocation::Server(ServerId(1)).domain(),
            Domain::Electronic
        );
        assert_eq!(HostLocation::OptoRouter(OpsId(1)).domain(), Domain::Optical);
        assert_eq!(HostLocation::Server(ServerId(1)).to_string(), "srv-1");
        assert_eq!(HostLocation::OptoRouter(OpsId(2)).to_string(), "ops-2");
    }

    #[test]
    fn every_state_reaches_terminated_except_terminated() {
        use VnfState::*;
        for s in [Requested, Instantiating, Active, Scaling, Updating] {
            assert!(s.can_transition_to(Terminated), "{s}");
        }
        assert!(!Terminated.can_transition_to(Terminated));
    }

    #[test]
    fn display_strings() {
        assert_eq!(VnfState::Active.to_string(), "active");
        assert_eq!(VnfInstanceId(7).to_string(), "vnf-7");
    }
}
