//! Optical slice allocation (§IV.B–C, Figs. 6 and 7).
//!
//! "It will logically divide the optical network into virtual slices and
//! will allocate each slice to a single NFC. In AL-VC, that division is in
//! the shape of ALs." — a slice *is* a virtual cluster's abstraction layer,
//! and the one-NFC-per-VC rule makes slices single-tenant.

use std::collections::BTreeMap;

use alvc_core::ClusterId;
use serde::{Deserialize, Serialize};

use crate::chain::NfcId;

/// A slice: the binding of one NFC to one virtual cluster (whose AL is the
/// optical slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpticalSlice {
    /// The chain the slice serves.
    pub chain: NfcId,
    /// The virtual cluster providing the slice (its AL's OPSs).
    pub cluster: ClusterId,
}

/// Registry of slice bindings, enforcing one chain per cluster and one
/// cluster per chain.
///
/// # Example
///
/// ```
/// use alvc_core::ClusterId;
/// use alvc_nfv::{NfcId, SliceRegistry};
///
/// let mut reg = SliceRegistry::new();
/// reg.bind(NfcId(0), ClusterId(10)).unwrap();
/// assert_eq!(reg.cluster_of(NfcId(0)), Some(ClusterId(10)));
/// assert_eq!(reg.chain_of(ClusterId(10)), Some(NfcId(0)));
/// // A second chain cannot claim the same cluster.
/// assert!(reg.bind(NfcId(1), ClusterId(10)).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SliceRegistry {
    by_chain: BTreeMap<NfcId, ClusterId>,
    by_cluster: BTreeMap<ClusterId, NfcId>,
}

/// Error binding a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SliceError {
    /// The chain already has a slice.
    ChainAlreadyBound(NfcId),
    /// The cluster already serves another chain.
    ClusterAlreadyBound(ClusterId),
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceError::ChainAlreadyBound(c) => write!(f, "chain {c} already has a slice"),
            SliceError::ClusterAlreadyBound(c) => {
                write!(f, "cluster {c} already serves another chain")
            }
        }
    }
}

impl std::error::Error for SliceError {}

impl SliceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SliceRegistry::default()
    }

    /// Binds `chain` to `cluster`.
    ///
    /// # Errors
    ///
    /// [`SliceError`] if either side is already bound.
    pub fn bind(&mut self, chain: NfcId, cluster: ClusterId) -> Result<(), SliceError> {
        if self.by_chain.contains_key(&chain) {
            return Err(SliceError::ChainAlreadyBound(chain));
        }
        if self.by_cluster.contains_key(&cluster) {
            return Err(SliceError::ClusterAlreadyBound(cluster));
        }
        self.by_chain.insert(chain, cluster);
        self.by_cluster.insert(cluster, chain);
        Ok(())
    }

    /// Releases the binding of `chain`; returns the freed cluster if it
    /// was bound.
    pub fn unbind(&mut self, chain: NfcId) -> Option<ClusterId> {
        let cluster = self.by_chain.remove(&chain)?;
        self.by_cluster.remove(&cluster);
        Some(cluster)
    }

    /// The cluster serving `chain`.
    pub fn cluster_of(&self, chain: NfcId) -> Option<ClusterId> {
        self.by_chain.get(&chain).copied()
    }

    /// The chain a cluster serves.
    pub fn chain_of(&self, cluster: ClusterId) -> Option<NfcId> {
        self.by_cluster.get(&cluster).copied()
    }

    /// Number of live slices.
    pub fn len(&self) -> usize {
        self.by_chain.len()
    }

    /// Whether any slices exist.
    pub fn is_empty(&self) -> bool {
        self.by_chain.is_empty()
    }

    /// Iterates over live slices in chain order.
    pub fn slices(&self) -> impl Iterator<Item = OpticalSlice> + '_ {
        self.by_chain
            .iter()
            .map(|(&chain, &cluster)| OpticalSlice { chain, cluster })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup_both_directions() {
        let mut reg = SliceRegistry::new();
        reg.bind(NfcId(0), ClusterId(5)).unwrap();
        reg.bind(NfcId(1), ClusterId(6)).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.cluster_of(NfcId(1)), Some(ClusterId(6)));
        assert_eq!(reg.chain_of(ClusterId(5)), Some(NfcId(0)));
        assert_eq!(reg.cluster_of(NfcId(9)), None);
    }

    #[test]
    fn double_binding_rejected() {
        let mut reg = SliceRegistry::new();
        reg.bind(NfcId(0), ClusterId(5)).unwrap();
        assert_eq!(
            reg.bind(NfcId(0), ClusterId(6)),
            Err(SliceError::ChainAlreadyBound(NfcId(0)))
        );
        assert_eq!(
            reg.bind(NfcId(1), ClusterId(5)),
            Err(SliceError::ClusterAlreadyBound(ClusterId(5)))
        );
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn unbind_frees_both_sides() {
        let mut reg = SliceRegistry::new();
        reg.bind(NfcId(0), ClusterId(5)).unwrap();
        assert_eq!(reg.unbind(NfcId(0)), Some(ClusterId(5)));
        assert!(reg.is_empty());
        // Both sides reusable.
        reg.bind(NfcId(0), ClusterId(5)).unwrap();
        assert_eq!(reg.unbind(NfcId(3)), None);
    }

    #[test]
    fn slices_iterates_in_chain_order() {
        let mut reg = SliceRegistry::new();
        reg.bind(NfcId(2), ClusterId(0)).unwrap();
        reg.bind(NfcId(0), ClusterId(1)).unwrap();
        let order: Vec<_> = reg.slices().map(|s| s.chain).collect();
        assert_eq!(order, vec![NfcId(0), NfcId(2)]);
    }

    #[test]
    fn slice_error_display() {
        assert!(SliceError::ChainAlreadyBound(NfcId(1))
            .to_string()
            .contains("nfc-1"));
        assert!(SliceError::ClusterAlreadyBound(ClusterId(2))
            .to_string()
            .contains("vc-2"));
    }
}
