//! The VNF placement interface (§IV.D).
//!
//! Placement strategies decide, for each VNF of a chain, whether it runs on
//! an optoelectronic router of the slice's abstraction layer (optical
//! domain) or on a server (electronic domain). The concrete strategies —
//! electronic-only baseline, the paper's optical-first rule, and a
//! cost-driven variant — live in the `alvc-placement` crate; this module
//! defines the [`VnfPlacer`] trait plus the trivial
//! [`ElectronicOnlyPlacer`] used as a default and in tests.

use std::collections::HashMap;

use alvc_core::AbstractionLayer;
use alvc_topology::{DataCenter, OpsId, ServerId};

use crate::chain::ChainSpec;
use crate::error::PlacementError;
use crate::lifecycle::HostLocation;
use crate::vnf::ResourceDemand;

/// Everything a placement strategy may consult: the topology, the slice's
/// abstraction layer, current host usage, and the candidate electronic
/// servers.
#[derive(Debug)]
pub struct PlacementContext<'a> {
    /// The data center.
    pub dc: &'a DataCenter,
    /// The slice's abstraction layer (its optoelectronic OPSs are the
    /// optical hosts).
    pub al: &'a AbstractionLayer,
    /// Resources already consumed on each optoelectronic router.
    pub opto_used: &'a HashMap<OpsId, ResourceDemand>,
    /// Resources already consumed on each server.
    pub server_used: &'a HashMap<ServerId, ResourceDemand>,
    /// Servers the chain may use for electronic VNFs (the tenant's
    /// servers).
    pub servers: &'a [ServerId],
}

impl PlacementContext<'_> {
    /// The optoelectronic routers inside the slice's AL, in id order.
    pub fn opto_candidates(&self) -> Vec<OpsId> {
        self.al
            .ops()
            .iter()
            .copied()
            .filter(|&o| self.dc.opto_capacity(o).is_some())
            .collect()
    }

    /// Resources already used on optoelectronic router `ops`.
    pub fn used_on_opto(&self, ops: OpsId) -> ResourceDemand {
        self.opto_used.get(&ops).copied().unwrap_or_default()
    }

    /// Resources already used on `server`.
    pub fn used_on_server(&self, server: ServerId) -> ResourceDemand {
        self.server_used.get(&server).copied().unwrap_or_default()
    }

    /// Returns `true` if `demand` fits on optoelectronic router `ops`
    /// given current usage.
    pub fn fits_on_opto(&self, ops: OpsId, demand: &ResourceDemand) -> bool {
        match self.dc.opto_capacity(ops) {
            Some(cap) => demand.fits_in(&cap, &self.used_on_opto(ops)),
            None => false,
        }
    }
}

/// A VNF placement strategy.
pub trait VnfPlacer {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;

    /// Chooses a host for each VNF of `chain`, in order.
    ///
    /// # Errors
    ///
    /// [`PlacementError`] if some VNF cannot be hosted.
    fn place(
        &self,
        ctx: &PlacementContext<'_>,
        chain: &ChainSpec,
    ) -> Result<Vec<HostLocation>, PlacementError>;
}

/// The §IV.D "before" picture: every VNF runs in the electronic domain, so
/// each one forces the flow out of the optical core. Servers are chosen
/// least-loaded-first (by CPU) with **rack anti-affinity**: consecutive
/// VNFs of a chain avoid sharing a rack when possible, the standard
/// fault-isolation policy of NFV placement (and the reason the paper's
/// Fig. 8 shows electronic VNFs scattered, each costing its own core dip).
#[derive(Debug, Clone, Copy, Default)]
pub struct ElectronicOnlyPlacer {
    _priv: (),
}

impl ElectronicOnlyPlacer {
    /// Creates the baseline placer.
    pub fn new() -> Self {
        ElectronicOnlyPlacer::default()
    }
}

impl VnfPlacer for ElectronicOnlyPlacer {
    fn name(&self) -> &'static str {
        "electronic-only"
    }

    fn place(
        &self,
        ctx: &PlacementContext<'_>,
        chain: &ChainSpec,
    ) -> Result<Vec<HostLocation>, PlacementError> {
        if chain.vnfs.is_empty() {
            return Ok(Vec::new());
        }
        if ctx.servers.is_empty() {
            return Err(PlacementError::NoElectronicHost);
        }
        // Track incremental load locally (servers have ample capacity in
        // the model; balancing is for realism of rule/energy spread).
        let mut load: HashMap<ServerId, f64> = ctx
            .servers
            .iter()
            .map(|&s| (s, ctx.used_on_server(s).cpu))
            .collect();
        let mut hosts = Vec::with_capacity(chain.vnfs.len());
        let mut last_rack = None;
        for spec in &chain.vnfs {
            let pick = |avoid: Option<alvc_topology::RackId>| {
                ctx.servers
                    .iter()
                    .filter(|&&s| avoid != Some(ctx.dc.rack_of_server(s)))
                    .min_by(|a, b| load[a].total_cmp(&load[b]).then(a.cmp(b)))
                    .copied()
            };
            // Anti-affinity first; fall back when every server shares the
            // previous rack.
            let server = pick(last_rack)
                .or_else(|| pick(None))
                .expect("servers non-empty");
            last_rack = Some(ctx.dc.rack_of_server(server));
            *load.get_mut(&server).expect("tracked") += spec.demand.cpu;
            hosts.push(HostLocation::Server(server));
        }
        Ok(hosts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::fig5;
    use crate::vnf::{VnfSpec, VnfType};
    use alvc_core::construction::{AlConstruct, PaperGreedy};
    use alvc_core::OpsAvailability;
    use alvc_topology::{AlvcTopologyBuilder, VmId};

    fn setup() -> (DataCenter, AbstractionLayer) {
        let dc = AlvcTopologyBuilder::new()
            .racks(4)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(8)
            .opto_fraction(0.5)
            .seed(5)
            .build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let al = PaperGreedy::new()
            .construct(&dc, &vms, &OpsAvailability::all())
            .unwrap();
        (dc, al)
    }

    #[test]
    fn electronic_only_uses_servers() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &HashMap::new(),
            server_used: &HashMap::new(),
            servers: &servers,
        };
        let chain = fig5::green(VmId(0), VmId(1));
        let hosts = ElectronicOnlyPlacer::new().place(&ctx, &chain).unwrap();
        assert_eq!(hosts.len(), 4);
        assert!(hosts.iter().all(|h| matches!(h, HostLocation::Server(_))));
    }

    #[test]
    fn electronic_only_balances_load() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().take(2).collect();
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &HashMap::new(),
            server_used: &HashMap::new(),
            servers: &servers,
        };
        // Four identical firewalls over two servers: 2 + 2.
        let chain = ChainSpec::builder("fw4")
            .linear(vec![VnfSpec::of(VnfType::Firewall); 4])
            .ingress(VmId(0))
            .egress(VmId(1))
            .build()
            .unwrap();
        let hosts = ElectronicOnlyPlacer::new().place(&ctx, &chain).unwrap();
        let on_first = hosts
            .iter()
            .filter(|h| **h == HostLocation::Server(servers[0]))
            .count();
        assert_eq!(on_first, 2);
    }

    #[test]
    fn no_servers_fails() {
        let (dc, al) = setup();
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &HashMap::new(),
            server_used: &HashMap::new(),
            servers: &[],
        };
        let chain = fig5::blue(VmId(0), VmId(1));
        assert_eq!(
            ElectronicOnlyPlacer::new().place(&ctx, &chain),
            Err(PlacementError::NoElectronicHost)
        );
        // But an empty chain needs no hosts at all.
        let empty = ChainSpec::builder("fwd")
            .passthrough()
            .ingress(VmId(0))
            .egress(VmId(1))
            .build()
            .unwrap();
        assert_eq!(
            ElectronicOnlyPlacer::new().place(&ctx, &empty).unwrap(),
            vec![]
        );
    }

    #[test]
    fn context_reports_opto_candidates_and_fit() {
        let (dc, al) = setup();
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &HashMap::new(),
            server_used: &HashMap::new(),
            servers: &[],
        };
        let cands = ctx.opto_candidates();
        for o in &cands {
            assert!(al.contains_ops(*o));
            assert!(dc.opto_capacity(*o).is_some());
        }
        if let Some(&o) = cands.first() {
            assert!(ctx.fits_on_opto(o, &VnfType::Firewall.default_demand()));
            assert!(!ctx.fits_on_opto(o, &VnfType::VideoTranscoder.default_demand()));
        }
    }

    #[test]
    fn context_fit_respects_prior_usage() {
        let (dc, al) = setup();
        let cands = {
            let ctx = PlacementContext {
                dc: &dc,
                al: &al,
                opto_used: &HashMap::new(),
                server_used: &HashMap::new(),
                servers: &[],
            };
            ctx.opto_candidates()
        };
        let Some(&o) = cands.first() else {
            return;
        };
        let mut used = HashMap::new();
        used.insert(o, ResourceDemand::new(3.5, 0.0, 0.0)); // cap cpu = 4
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &used,
            server_used: &HashMap::new(),
            servers: &[],
        };
        assert!(!ctx.fits_on_opto(o, &ResourceDemand::new(1.0, 0.0, 0.0)));
        assert!(ctx.fits_on_opto(o, &ResourceDemand::new(0.5, 0.0, 0.0)));
    }
}
