//! The VNF catalog and resource demands.
//!
//! "Currently, NFs are provided in terms of middle boxes, such as
//! firewalls, Deep Packet Inspection (DPI), load balancers, etc." (§I).
//! §IV.D adds the constraint that drives placement: "some VNFs' resource
//! demand, e.g., CPU is quite large and that cannot be met by
//! optoelectronic routers. Such VNFs need to be deployed in the electronic
//! domain."

use alvc_topology::OptoCapacity;
use serde::{Deserialize, Serialize};

/// Network function families mentioned by the paper plus common middlebox
/// types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VnfType {
    /// Stateless/stateful packet filter.
    Firewall,
    /// Deep packet inspection (CPU heavy).
    Dpi,
    /// L4/L7 load balancer.
    LoadBalancer,
    /// Network address translation.
    Nat,
    /// Security gateway (the "GWs" of Fig. 5).
    SecurityGateway,
    /// Intrusion detection (CPU + memory heavy).
    Ids,
    /// WAN optimizer / dedup cache (storage heavy).
    WanOptimizer,
    /// Video transcoder (very CPU heavy).
    VideoTranscoder,
    /// Operator-defined function with an explicit demand.
    Custom(u16),
}

impl VnfType {
    /// The catalog of built-in (non-custom) types.
    pub const BUILTIN: [VnfType; 8] = [
        VnfType::Firewall,
        VnfType::Dpi,
        VnfType::LoadBalancer,
        VnfType::Nat,
        VnfType::SecurityGateway,
        VnfType::Ids,
        VnfType::WanOptimizer,
        VnfType::VideoTranscoder,
    ];

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            VnfType::Firewall => "firewall".into(),
            VnfType::Dpi => "dpi".into(),
            VnfType::LoadBalancer => "lb".into(),
            VnfType::Nat => "nat".into(),
            VnfType::SecurityGateway => "secgw".into(),
            VnfType::Ids => "ids".into(),
            VnfType::WanOptimizer => "wanopt".into(),
            VnfType::VideoTranscoder => "transcoder".into(),
            VnfType::Custom(n) => format!("custom-{n}"),
        }
    }

    /// The catalog's default resource demand for this type. Light
    /// functions (firewall, NAT, gateway, load balancer) fit
    /// [`OptoCapacity::small`]; heavy ones (DPI, IDS, WAN optimizer,
    /// transcoder) exceed it in at least one dimension.
    pub fn default_demand(&self) -> ResourceDemand {
        match self {
            VnfType::Firewall => ResourceDemand::new(1.0, 1.0, 1.0),
            VnfType::Nat => ResourceDemand::new(0.5, 0.5, 0.5),
            VnfType::SecurityGateway => ResourceDemand::new(1.5, 2.0, 2.0),
            VnfType::LoadBalancer => ResourceDemand::new(2.0, 2.0, 1.0),
            VnfType::Dpi => ResourceDemand::new(8.0, 16.0, 8.0),
            VnfType::Ids => ResourceDemand::new(6.0, 12.0, 16.0),
            VnfType::WanOptimizer => ResourceDemand::new(2.0, 8.0, 128.0),
            VnfType::VideoTranscoder => ResourceDemand::new(16.0, 16.0, 8.0),
            VnfType::Custom(_) => ResourceDemand::new(1.0, 1.0, 1.0),
        }
    }
}

impl std::fmt::Display for VnfType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Resources a VNF instance needs from its host.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceDemand {
    /// vCPU-equivalents.
    pub cpu: f64,
    /// Memory in GiB.
    pub memory_gib: f64,
    /// Storage in GiB.
    pub storage_gib: f64,
}

impl ResourceDemand {
    /// Creates a demand.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or non-finite (NaN/infinity).
    /// Rejecting non-finite demands here keeps every downstream load
    /// comparison (host selection, scaling) total-order safe.
    pub fn new(cpu: f64, memory_gib: f64, storage_gib: f64) -> Self {
        assert!(
            cpu.is_finite() && memory_gib.is_finite() && storage_gib.is_finite(),
            "resource demand components must be finite"
        );
        assert!(
            cpu >= 0.0 && memory_gib >= 0.0 && storage_gib >= 0.0,
            "resource demand components must be non-negative"
        );
        ResourceDemand {
            cpu,
            memory_gib,
            storage_gib,
        }
    }

    /// Component-wise difference, clamped at zero (used when releasing
    /// capacity on teardown).
    pub fn saturating_minus(&self, other: &ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            cpu: (self.cpu - other.cpu).max(0.0),
            memory_gib: (self.memory_gib - other.memory_gib).max(0.0),
            storage_gib: (self.storage_gib - other.storage_gib).max(0.0),
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            cpu: self.cpu + other.cpu,
            memory_gib: self.memory_gib + other.memory_gib,
            storage_gib: self.storage_gib + other.storage_gib,
        }
    }

    /// Returns `true` if this demand, added to `used`, still fits in
    /// `capacity`.
    pub fn fits_in(&self, capacity: &OptoCapacity, used: &ResourceDemand) -> bool {
        capacity.fits(
            used.cpu + self.cpu,
            used.memory_gib + self.memory_gib,
            used.storage_gib + self.storage_gib,
        )
    }
}

/// A VNF to instantiate: a type plus its (possibly overridden) demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VnfSpec {
    /// The function type.
    pub vnf_type: VnfType,
    /// Resources the instance requires.
    pub demand: ResourceDemand,
}

impl VnfSpec {
    /// Creates a spec with the catalog's default demand for `vnf_type`.
    pub fn of(vnf_type: VnfType) -> Self {
        VnfSpec {
            vnf_type,
            demand: vnf_type.default_demand(),
        }
    }

    /// Creates a spec with an explicit demand.
    pub fn with_demand(vnf_type: VnfType, demand: ResourceDemand) -> Self {
        VnfSpec { vnf_type, demand }
    }

    /// Returns `true` if the spec fits an *empty* optoelectronic router of
    /// the given capacity — the §IV.D test for "VNFs only with low resource
    /// demands need to be implemented in this domain".
    pub fn fits_optoelectronic(&self, capacity: &OptoCapacity) -> bool {
        self.demand.fits_in(capacity, &ResourceDemand::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<_> = VnfType::BUILTIN.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), VnfType::BUILTIN.len());
        assert_eq!(VnfType::Custom(7).label(), "custom-7");
    }

    #[test]
    fn light_vnfs_fit_small_opto_heavy_do_not() {
        let cap = OptoCapacity::small();
        for light in [
            VnfType::Firewall,
            VnfType::Nat,
            VnfType::SecurityGateway,
            VnfType::LoadBalancer,
        ] {
            assert!(
                VnfSpec::of(light).fits_optoelectronic(&cap),
                "{light} should fit"
            );
        }
        for heavy in [
            VnfType::Dpi,
            VnfType::Ids,
            VnfType::WanOptimizer,
            VnfType::VideoTranscoder,
        ] {
            assert!(
                !VnfSpec::of(heavy).fits_optoelectronic(&cap),
                "{heavy} should not fit"
            );
        }
    }

    #[test]
    fn demand_accumulation_respects_capacity() {
        let cap = OptoCapacity::small(); // 4 cpu
        let fw = ResourceDemand::new(1.0, 1.0, 1.0);
        let mut used = ResourceDemand::default();
        let mut placed = 0;
        while fw.fits_in(&cap, &used) {
            used = used.plus(&fw);
            placed += 1;
        }
        assert_eq!(placed, 4); // cpu is the binding constraint
    }

    #[test]
    fn plus_is_componentwise() {
        let a = ResourceDemand::new(1.0, 2.0, 3.0);
        let b = ResourceDemand::new(0.5, 0.5, 0.5);
        let c = a.plus(&b);
        assert_eq!(c, ResourceDemand::new(1.5, 2.5, 3.5));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_rejected() {
        ResourceDemand::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn with_demand_overrides_default() {
        let s = VnfSpec::with_demand(VnfType::Dpi, ResourceDemand::new(1.0, 1.0, 1.0));
        assert!(s.fits_optoelectronic(&OptoCapacity::small()));
    }
}
