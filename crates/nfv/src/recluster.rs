//! Adaptive re-clustering execution: the migration half of the
//! measure → re-cluster → migrate loop.
//!
//! `alvc_affinity` produces an approved `ReclusterPlan`
//! (`alvc_affinity::ReclusterPlan`) of VM moves; this module applies those
//! moves to the live orchestrator in three phases, mirroring what §III.A's
//! service clustering would have produced had the drifted traffic been the
//! original workload:
//!
//! 1. **Membership** — each move is validated against *current* state
//!    (plans execute asynchronously through the control plane, so the
//!    world may have changed since planning) and applied to the
//!    [`ClusterManager`](alvc_core::ClusterManager). Stale or unsafe moves
//!    are skipped, never errored: a re-clustering is an optimization, not
//!    a correctness requirement.
//! 2. **Abstraction layers** — clusters whose AL no longer covers their
//!    (new) membership are rebuilt through the same release-rebuild-or-
//!    rollback path OPS failure repair uses, preserving OPS-disjointness.
//! 3. **Chains** — chains whose slice (their cluster's AL) actually
//!    changed are rerouted through the standard recovery ladder, so flow
//!    rules and bandwidth ledgers stay consistent with the new layers.
//!
//! The whole operation is deterministic: moves are applied in plan order,
//! clusters rebuilt in id order, chains recovered in id order — replaying
//! an intent log containing a `Recluster` intent reproduces the exact
//! same state.

use std::collections::BTreeSet;

use alvc_affinity::VmMove;
use alvc_core::construction::AlConstruct;
use alvc_core::ClusterId;
use alvc_topology::{DataCenter, VmId};

use crate::chain::NfcId;
use crate::orchestrator::Orchestrator;
use crate::placement::VnfPlacer;
use crate::recovery::RecoveryOutcome;

/// What applying one re-clustering plan did. All counters are in units of
/// the plan's moves, clusters, or chains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclusterReport {
    /// Moves applied to cluster membership.
    pub applied: usize,
    /// Moves skipped: self-moves, unknown clusters, VMs no longer in the
    /// claimed source cluster, or pinned chain endpoints.
    pub skipped: usize,
    /// Abstraction layers rebuilt because membership outgrew them.
    pub als_rebuilt: usize,
    /// Rebuilds that failed (the old AL was kept; membership changes
    /// stand, so the cluster may serve some VMs sub-optimally).
    pub rebuild_failures: usize,
    /// Chains rerouted (or re-placed) inside their slice after their
    /// cluster's AL changed.
    pub chains_rerouted: usize,
    /// Chains pushed onto the full fabric because their rebuilt slice
    /// could not carry them.
    pub chains_degraded: usize,
    /// Chains lost entirely (recovery ladder exhausted).
    pub chains_lost: usize,
}

impl Orchestrator {
    /// Applies an approved re-clustering plan. See the
    /// [module docs](self) for the three phases and their invariants.
    ///
    /// Never fails: stale or unsafe moves are counted in
    /// [`ReclusterReport::skipped`] and the rest of the plan proceeds.
    pub fn apply_recluster(
        &mut self,
        dc: &DataCenter,
        moves: &[VmMove],
        constructor: &(dyn AlConstruct + Sync),
        placer: &dyn VnfPlacer,
    ) -> ReclusterReport {
        let _span = alvc_telemetry::span!("alvc_nfv.orchestrator.recluster_us");
        let mut trace_span = alvc_telemetry::trace::child_span("nfv.recluster");
        trace_span.add_field("moves", moves.len());
        self.changes.mark_full();
        let mut report = ReclusterReport::default();

        // Chain endpoints are pinned: moving one out of its cluster would
        // strand the chain's ingress/egress outside its own slice.
        let pinned: BTreeSet<VmId> = self
            .chains
            .values()
            .flat_map(|c| [c.nfc.spec().ingress, c.nfc.spec().egress])
            .collect();

        // Phase 1: membership, in plan order.
        let mut affected: BTreeSet<ClusterId> = BTreeSet::new();
        for mv in moves {
            let source_holds_vm = self
                .manager
                .cluster(mv.from)
                .is_some_and(|vc| vc.vms().contains(&mv.vm));
            let valid = mv.from != mv.to
                && !pinned.contains(&mv.vm)
                && source_holds_vm
                && self.manager.cluster(mv.to).is_some();
            if !valid {
                report.skipped += 1;
                continue;
            }
            self.manager.remove_vm(mv.from, mv.vm);
            self.manager.add_vm(mv.to, mv.vm);
            affected.insert(mv.from);
            affected.insert(mv.to);
            report.applied += 1;
        }

        // Phase 2: rebuild ALs invalidated by the new membership, in
        // cluster-id order — batched through rebuild_clusters, which runs
        // the replacement constructions shard-parallel across pods on
        // multi-pod topologies (and is a plain rebuild_cluster loop on
        // single-pod ones, bit-identical to the historical serial path, so
        // intent-log replay is unaffected). Track which clusters' OPS sets
        // actually changed — only those chains need rerouting.
        let mut changed: BTreeSet<ClusterId> = BTreeSet::new();
        let stale_clusters: Vec<ClusterId> = affected
            .iter()
            .copied()
            .filter(|&cid| {
                self.manager.cluster(cid).is_some_and(|vc| {
                    !vc.vms().is_empty() && vc.al().validate(dc, vc.vms()).is_err()
                })
            })
            .collect();
        let before: Vec<Vec<_>> = stale_clusters
            .iter()
            .map(|&cid| {
                self.manager
                    .cluster(cid)
                    .expect("filtered to live clusters")
                    .al()
                    .ops()
                    .to_vec()
            })
            .collect();
        let rebuilt = self
            .manager
            .rebuild_clusters(dc, &stale_clusters, constructor);
        for ((cid, result), before_ops) in rebuilt.into_iter().zip(before) {
            match result {
                Ok(()) => {
                    report.als_rebuilt += 1;
                    let after = self
                        .manager
                        .cluster(cid)
                        .map(|vc| vc.al().ops().to_vec())
                        .unwrap_or_default();
                    if after != before_ops {
                        changed.insert(cid);
                    }
                }
                Err(_) => report.rebuild_failures += 1,
            }
        }

        // Phase 3: reroute chains whose slice changed, in chain-id order.
        let stale: Vec<NfcId> = self
            .chains
            .iter()
            .filter(|(_, c)| changed.contains(&c.cluster))
            .map(|(&id, _)| id)
            .collect();
        for id in stale {
            match self.recover_chain(dc, id, placer) {
                RecoveryOutcome::Rerouted | RecoveryOutcome::Replaced => {
                    report.chains_rerouted += 1;
                }
                RecoveryOutcome::Degraded => report.chains_degraded += 1,
                RecoveryOutcome::Unrecoverable(_) => report.chains_lost += 1,
            }
        }

        trace_span.add_field("applied", report.applied);
        trace_span.add_field("skipped", report.skipped);
        trace_span.add_field("chains_rerouted", report.chains_rerouted);
        trace_span.add_field("chains_degraded", report.chains_degraded);
        trace_span.add_field("chains_lost", report.chains_lost);
        alvc_telemetry::counter!("alvc_nfv.orchestrator.recluster_moves_applied")
            .add(report.applied as u64);
        alvc_telemetry::counter!("alvc_nfv.orchestrator.recluster_moves_skipped")
            .add(report.skipped as u64);
        alvc_telemetry::counter!("alvc_nfv.orchestrator.recluster_als_rebuilt")
            .add(report.als_rebuilt as u64);
        if !self.quiet {
            alvc_telemetry::event!(
                "alvc_nfv.orchestrator.reclustered",
                "applied" = report.applied,
                "skipped" = report.skipped,
                "als_rebuilt" = report.als_rebuilt,
                "chains_rerouted" = report.chains_rerouted,
                "chains_degraded" = report.chains_degraded,
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::fig5;
    use crate::placement::ElectronicOnlyPlacer;
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::{AlvcTopologyBuilder, OpsInterconnect, ServiceType};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(8)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(32)
            .tor_ops_degree(8)
            .opto_fraction(0.5)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(31)
            .build()
    }

    /// Deploys one chain per service and returns (orchestrator, chain ids).
    fn deployed(dc: &DataCenter) -> (Orchestrator, Vec<NfcId>) {
        let mut orch = Orchestrator::builder().quiet(true).build();
        let mut ids = Vec::new();
        for service in [ServiceType::WebService, ServiceType::Sns] {
            let vms = dc.vms_of_service(service);
            let spec = fig5::black(vms[0], *vms.last().unwrap());
            let id = orch
                .deploy_chain(
                    dc,
                    "tenant",
                    vms,
                    spec,
                    &PaperGreedy::new(),
                    &ElectronicOnlyPlacer::new(),
                )
                .unwrap();
            ids.push(id);
        }
        (orch, ids)
    }

    /// A non-endpoint VM of `chain`'s cluster, plus the from/to clusters.
    fn movable(orch: &Orchestrator, dc: &DataCenter, a: NfcId, b: NfcId) -> VmMove {
        let from = orch.chain(a).unwrap().cluster();
        let to = orch.chain(b).unwrap().cluster();
        let spec = orch.chain(a).unwrap().nfc().spec().clone();
        let vm = orch
            .manager()
            .cluster(from)
            .unwrap()
            .vms()
            .iter()
            .copied()
            .find(|&v| v != spec.ingress && v != spec.egress)
            .expect("cluster has a non-endpoint vm");
        let _ = dc;
        VmMove { vm, from, to }
    }

    #[test]
    fn moves_apply_and_invariants_hold() {
        let dc = dc();
        let (mut orch, ids) = deployed(&dc);
        let mv = movable(&orch, &dc, ids[0], ids[1]);
        let report = orch.apply_recluster(
            &dc,
            &[mv],
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        assert_eq!(report.applied, 1);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.chains_lost, 0);
        assert!(orch
            .manager()
            .cluster(mv.to)
            .unwrap()
            .vms()
            .contains(&mv.vm));
        assert!(!orch
            .manager()
            .cluster(mv.from)
            .unwrap()
            .vms()
            .contains(&mv.vm));
        assert!(orch.manager().verify_disjoint(), "ALs stay OPS-disjoint");
        // Every cluster's AL covers its (new) membership.
        for vc in orch.manager().clusters() {
            assert!(vc.al().validate(&dc, vc.vms()).is_ok());
        }
        // All deployed chains still serve traffic.
        for id in ids {
            assert!(orch.chain(id).is_some(), "{id} survived re-clustering");
        }
    }

    #[test]
    fn stale_and_unsafe_moves_are_skipped() {
        let dc = dc();
        let (mut orch, ids) = deployed(&dc);
        let good = movable(&orch, &dc, ids[0], ids[1]);
        let ingress = orch.chain(ids[0]).unwrap().nfc().spec().ingress;
        let plan = [
            // Pinned endpoint.
            VmMove {
                vm: ingress,
                from: good.from,
                to: good.to,
            },
            // Self-move.
            VmMove {
                vm: good.vm,
                from: good.from,
                to: good.from,
            },
            // Unknown target cluster.
            VmMove {
                vm: good.vm,
                from: good.from,
                to: ClusterId(9999),
            },
            // VM not in the claimed source.
            VmMove {
                vm: good.vm,
                from: good.to,
                to: good.from,
            },
        ];
        let report = orch.apply_recluster(
            &dc,
            &plan,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        assert_eq!(report.applied, 0);
        assert_eq!(report.skipped, 4);
        assert!(orch.manager().verify_disjoint());
    }

    #[test]
    fn recluster_is_deterministic() {
        let dc = dc();
        let run = || {
            let (mut orch, ids) = deployed(&dc);
            let mv = movable(&orch, &dc, ids[0], ids[1]);
            let report = orch.apply_recluster(
                &dc,
                &[mv],
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            );
            let membership: Vec<Vec<_>> = orch
                .manager()
                .clusters()
                .map(|vc| vc.vms().to_vec())
                .collect();
            let ops: Vec<Vec<_>> = orch
                .manager()
                .clusters()
                .map(|vc| vc.al().ops().to_vec())
                .collect();
            (report, membership, ops)
        };
        assert_eq!(run(), run());
    }
}
