//! The multi-tenant NFC orchestrator (§IV.B, Fig. 6).
//!
//! "On top of this architecture, we proposed a network orchestrator for
//! multiple-tenant SDN-enabled network. It is responsible for managing
//! (provisioning, creation, modification, upgradation, and deletion) of
//! multiple NFCs. It will logically divide the optical network into virtual
//! slices and will allocate each slice to a single NFC."
//!
//! [`Orchestrator::deploy_chain`] runs the full pipeline: build a virtual
//! cluster for the tenant's VMs (one NFC ↔ one VC), place the chain's VNFs
//! via a pluggable [`crate::placement::VnfPlacer`], route the chain inside
//! its slice, install SDN flow rules, and drive every VNF instance through
//! its lifecycle.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use alvc_core::construction::{construct_layers, AlConstruct};
use alvc_core::{ClusterId, ClusterManager, LabelId};
use alvc_graph::NodeId;
use alvc_optical::routing::try_path_edges;
use alvc_optical::{route_flow_within, HybridPath, OeoCostModel, RoutingError};
use alvc_topology::{
    DataCenter, Element, ElementHealth, OpsId, PhysNode, PowerOverlay, ServerId, TorId, VmId,
};

use crate::chain::{ChainSpec, Nfc, NfcId};
use crate::changes::ChangeSet;
use crate::error::{DeployError, Error};
use crate::ledger::ShardedLedger;
use crate::lifecycle::{HostLocation, VnfInstance, VnfInstanceId, VnfState};
use crate::placement::{PlacementContext, VnfPlacer};
use crate::sdn::SdnController;
use crate::slicing::SliceRegistry;
use crate::vnf::ResourceDemand;

/// A chain the orchestrator has fully deployed.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployedChain {
    pub(crate) nfc: Nfc,
    pub(crate) cluster: ClusterId,
    pub(crate) hosts: Vec<HostLocation>,
    pub(crate) instances: Vec<VnfInstanceId>,
    pub(crate) path: HybridPath,
    pub(crate) edges: Vec<alvc_graph::EdgeId>,
}

impl DeployedChain {
    /// The chain definition.
    pub fn nfc(&self) -> &Nfc {
        &self.nfc
    }

    /// The virtual cluster serving as the chain's slice.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// The chosen host of each VNF, in chain order.
    pub fn hosts(&self) -> &[HostLocation] {
        &self.hosts
    }

    /// The lifecycle instances of each VNF, in chain order.
    pub fn instances(&self) -> &[VnfInstanceId] {
        &self.instances
    }

    /// The routed path from ingress through every VNF to egress.
    pub fn path(&self) -> &HybridPath {
        &self.path
    }

    /// The physical links the path traverses (the bandwidth-committed
    /// edges).
    pub fn edges(&self) -> &[alvc_graph::EdgeId] {
        &self.edges
    }

    /// O/E/O conversions the chain's flow incurs (§IV.D).
    pub fn oeo_conversions(&self) -> usize {
        self.path.oeo_conversions()
    }
}

/// The AL-VC orchestrator.
///
/// # Example
///
/// ```
/// use alvc_core::construction::PaperGreedy;
/// use alvc_nfv::chain::fig5;
/// use alvc_nfv::{ElectronicOnlyPlacer, Orchestrator};
/// use alvc_topology::AlvcTopologyBuilder;
///
/// let dc = AlvcTopologyBuilder::new().racks(4).ops_count(8).seed(9).build();
/// let mut orch = Orchestrator::new();
/// let vms: Vec<_> = dc.vm_ids().take(8).collect();
/// let spec = fig5::black(vms[0], vms[7]);
/// let id = orch.deploy_chain(&dc, "tenant-a", vms, spec,
///     &PaperGreedy::new(), &ElectronicOnlyPlacer::new())?;
/// let chain = orch.chain(id).unwrap();
/// assert_eq!(chain.hosts().len(), 2);
/// orch.teardown_chain(id)?;
/// # Ok::<(), alvc_nfv::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct Orchestrator {
    pub(crate) manager: ClusterManager,
    pub(crate) slices: SliceRegistry,
    pub(crate) sdn: SdnController,
    pub(crate) chains: BTreeMap<NfcId, DeployedChain>,
    pub(crate) instances: BTreeMap<VnfInstanceId, VnfInstance>,
    pub(crate) opto_used: HashMap<OpsId, ResourceDemand>,
    pub(crate) server_used: HashMap<ServerId, ResourceDemand>,
    /// Committed bandwidth per physical link, in integer kb/s: float Gb/s
    /// release math drifts around removal thresholds under churn, integer
    /// arithmetic round-trips exactly. Pod-sharded on multi-pod topologies
    /// (see [`ShardedLedger`]); unbound it behaves as one flat map.
    pub(crate) link_committed: ShardedLedger,
    pub(crate) replicas: BTreeMap<VnfInstanceId, (NfcId, usize)>,
    pub(crate) health: ElementHealth,
    pub(crate) power: PowerOverlay,
    pub(crate) degraded: BTreeSet<NfcId>,
    /// Entities mutated since the control plane last published a snapshot;
    /// drives incremental `StateView` publication (see [`crate::changes`]).
    pub(crate) changes: ChangeSet,
    oeo: OeoCostModel,
    /// Suppresses per-operation telemetry events (counters and spans still
    /// fire); set via [`OrchestratorBuilder::quiet`].
    pub(crate) quiet: bool,
    pub(crate) next_chain: usize,
    pub(crate) next_instance: usize,
}

/// Configures and builds an [`Orchestrator`].
///
/// Replaces the constructor-per-knob pattern
/// ([`Orchestrator::with_sdn_table_limit`] is deprecated in its favor):
///
/// ```
/// use alvc_nfv::Orchestrator;
/// use alvc_optical::OeoCostModel;
///
/// let orch = Orchestrator::builder()
///     .sdn_table_limit(1024)
///     .oeo_model(OeoCostModel::default())
///     .quiet(true)
///     .build();
/// assert_eq!(orch.chain_count(), 0);
/// ```
#[derive(Debug, Default)]
pub struct OrchestratorBuilder {
    sdn_table_limit: Option<usize>,
    oeo: Option<OeoCostModel>,
    quiet: bool,
}

impl OrchestratorBuilder {
    /// Starts from the defaults: unlimited SDN flow tables, the default
    /// O/E/O cost model, telemetry events on.
    pub fn new() -> Self {
        OrchestratorBuilder::default()
    }

    /// Caps every switch's flow table at `limit` rules (hardware TCAM
    /// capacity); deployments whose path would overflow a table are
    /// rejected with [`DeployError::RuleTableFull`].
    ///
    /// # Panics
    ///
    /// Panics (in [`OrchestratorBuilder::build`]) if `limit` is zero.
    pub fn sdn_table_limit(mut self, limit: usize) -> Self {
        self.sdn_table_limit = Some(limit);
        self
    }

    /// Overrides the O/E/O cost model used for latency-budget admission.
    pub fn oeo_model(mut self, model: OeoCostModel) -> Self {
        self.oeo = Some(model);
        self
    }

    /// Suppresses per-operation telemetry *events* (chain deployed, torn
    /// down, modified, recovery steps). Counters, gauges, and latency
    /// spans still fire; this only silences the high-volume event stream
    /// for hot loops like benchmarks.
    pub fn quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }

    /// Builds the orchestrator.
    pub fn build(self) -> Orchestrator {
        Orchestrator {
            sdn: match self.sdn_table_limit {
                Some(limit) => SdnController::with_table_limit(limit),
                None => SdnController::default(),
            },
            oeo: self.oeo.unwrap_or_default(),
            quiet: self.quiet,
            ..Orchestrator::default()
        }
    }
}

/// Converts a Gb/s figure to the integer kb/s unit of the bandwidth ledger.
pub(crate) fn kbps(gbps: f64) -> u64 {
    (gbps * 1e6).round() as u64
}

impl Orchestrator {
    /// Creates an empty orchestrator with unlimited SDN flow tables.
    pub fn new() -> Self {
        Orchestrator::default()
    }

    /// Starts configuring an orchestrator (SDN table limit, O/E/O cost
    /// model, telemetry opt-out).
    pub fn builder() -> OrchestratorBuilder {
        OrchestratorBuilder::new()
    }

    /// Creates an orchestrator whose switches hold at most `limit` flow
    /// rules each (hardware TCAM capacity); deployments whose path would
    /// overflow a switch's table are rejected with
    /// [`DeployError::RuleTableFull`].
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    #[deprecated(note = "use Orchestrator::builder().sdn_table_limit(limit).build()")]
    pub fn with_sdn_table_limit(limit: usize) -> Self {
        Orchestrator {
            sdn: SdnController::with_table_limit(limit),
            ..Orchestrator::default()
        }
    }

    /// The cluster manager (read access).
    pub fn manager(&self) -> &ClusterManager {
        &self.manager
    }

    /// The slice registry (read access).
    pub fn slices(&self) -> &SliceRegistry {
        &self.slices
    }

    /// The SDN controller (read access).
    pub fn sdn(&self) -> &SdnController {
        &self.sdn
    }

    /// Looks up a deployed chain.
    pub fn chain(&self, id: NfcId) -> Option<&DeployedChain> {
        self.chains.get(&id)
    }

    /// Whether a server is both healthy and powered: usable for new
    /// placements and routes.
    pub(crate) fn server_usable(&self, s: ServerId) -> bool {
        self.health.server_up(s) && self.power.is_on(Element::Server(s))
    }

    /// Whether a ToR is both healthy and powered.
    pub(crate) fn tor_usable(&self, t: TorId) -> bool {
        self.health.tor_up(t) && self.power.is_on(Element::Tor(t))
    }

    /// Whether an OPS is both healthy and powered.
    pub(crate) fn ops_usable(&self, o: OpsId) -> bool {
        self.health.ops_up(o) && self.power.is_on(Element::Ops(o))
    }

    /// Whether the element behind a graph node is healthy and powered.
    /// VM nodes inherit their server's state.
    pub(crate) fn node_usable(&self, dc: &DataCenter, n: NodeId) -> bool {
        if !self.health.node_up(dc, n) {
            return false;
        }
        match dc.graph().node_weight(n) {
            Some(PhysNode::Server(s)) => self.power.is_on(Element::Server(*s)),
            Some(PhysNode::Tor(t)) => self.power.is_on(Element::Tor(*t)),
            Some(PhysNode::Ops { id, .. }) => self.power.is_on(Element::Ops(*id)),
            None => false,
        }
    }

    /// Iterates over deployed chains in id order.
    pub fn chains(&self) -> impl Iterator<Item = &DeployedChain> {
        self.chains.values()
    }

    /// Number of deployed chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Looks up a VNF instance.
    pub fn instance(&self, id: VnfInstanceId) -> Option<&VnfInstance> {
        self.instances.get(&id)
    }

    /// Resources currently used on optoelectronic router `ops`.
    pub fn opto_usage(&self, ops: OpsId) -> ResourceDemand {
        self.opto_used.get(&ops).copied().unwrap_or_default()
    }

    /// Total O/E/O conversions across all deployed chains.
    pub fn total_oeo_conversions(&self) -> usize {
        self.chains.values().map(|c| c.oeo_conversions()).sum()
    }

    /// Bandwidth (Gb/s) currently committed on a physical link.
    pub fn committed_bandwidth_gbps(&self, edge: alvc_graph::EdgeId) -> f64 {
        self.link_committed.committed(edge) as f64 / 1e6
    }

    /// Number of VNF instances the orchestrator tracks (chain members plus
    /// scale-out replicas). Terminated instances are garbage-collected, so
    /// this reflects live state only.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of live scale-out replicas across all chains.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Overrides the O/E/O cost model used for latency-budget admission
    /// (default: [`OeoCostModel::default`]).
    pub fn set_oeo_model(&mut self, model: OeoCostModel) {
        self.oeo = model;
    }

    /// A chain path's one-way latency including conversion latency, in
    /// microseconds.
    fn path_latency_us(&self, path: &HybridPath) -> f64 {
        path.latency_us() + self.oeo.path_conversion_latency_us(path)
    }

    /// A deployed chain's predicted one-way latency (propagation +
    /// switching + O/E/O conversion), in microseconds — the same figure
    /// admission checks against the chain's latency budget. The energy
    /// plane's SLO gate reads this for every chain before approving a
    /// consolidation plan.
    pub fn chain_latency_us(&self, id: NfcId) -> Option<f64> {
        self.chain(id).map(|c| self.path_latency_us(c.path()))
    }

    /// Latency-budget admission against the spec's effective budget (the
    /// tighter of `max_latency_us` and the QoS latency SLO).
    pub(crate) fn check_latency(
        &self,
        spec: &ChainSpec,
        path: &HybridPath,
    ) -> Result<(), DeployError> {
        if let Some(budget) = spec.effective_latency_budget_us() {
            let path_us = self.path_latency_us(path);
            if path_us > budget {
                return Err(DeployError::LatencyBudgetExceeded {
                    budget_us: budget,
                    path_us,
                });
            }
        }
        Ok(())
    }

    /// Admission check: verifies `bandwidth_gbps` fits on every edge of
    /// `path` on top of `ledger`. A path hop with no corresponding link in
    /// the topology (a path computed before a switch or link failed)
    /// surfaces as [`DeployError::MissingEdge`], never a panic.
    pub(crate) fn check_bandwidth(
        dc: &DataCenter,
        ledger: &ShardedLedger,
        path: &HybridPath,
        bandwidth_gbps: f64,
    ) -> Result<Vec<alvc_graph::EdgeId>, DeployError> {
        let edges = try_path_edges(dc, path).map_err(|e| match e {
            RoutingError::MissingLink { from, to } => DeployError::MissingEdge { from, to },
            other => DeployError::Routing(other),
        })?;
        let requested = kbps(bandwidth_gbps);
        for &e in &edges {
            let capacity = kbps(
                dc.graph()
                    .edge_weight(e)
                    .expect("edge from try_path_edges exists")
                    .bandwidth_gbps,
            );
            let committed = ledger.committed(e);
            if committed + requested > capacity {
                return Err(DeployError::InsufficientBandwidth {
                    requested_gbps: bandwidth_gbps,
                    available_gbps: capacity.saturating_sub(committed) as f64 / 1e6,
                });
            }
        }
        Ok(edges)
    }

    /// Deploys `spec` for a tenant owning `vms`: creates the virtual
    /// cluster (slice), places VNFs with `placer`, routes the chain inside
    /// the slice, installs flow rules, and activates every VNF instance.
    ///
    /// # Errors
    ///
    /// [`Error::Deploy`] wrapping the [`DeployError`] cause; on error all
    /// partial state is rolled back.
    pub fn deploy_chain(
        &mut self,
        dc: &DataCenter,
        tenant: impl Into<LabelId>,
        vms: Vec<VmId>,
        spec: ChainSpec,
        constructor: &dyn AlConstruct,
        placer: &dyn VnfPlacer,
    ) -> Result<NfcId, Error> {
        let _span = alvc_telemetry::span!("alvc_nfv.orchestrator.deploy_latency_us");
        let mut trace_span = alvc_telemetry::trace::child_span("nfv.deploy");
        let tenant: LabelId = tenant.into();
        if !vms.contains(&spec.ingress) || !vms.contains(&spec.egress) {
            alvc_telemetry::counter!("alvc_nfv.orchestrator.deploys_failed").incr();
            trace_span.fail(DeployError::EndpointOutsideCluster.code());
            return Err(DeployError::EndpointOutsideCluster.into());
        }
        // Structural validation before any state is touched: specs that
        // bypassed ChainSpecBuilder (deprecated constructor, manual
        // mutation) are rejected with the same typed error the control
        // plane's admission uses.
        if let Err(reason) = spec.validate() {
            let e = DeployError::InvalidSpec(reason);
            alvc_telemetry::counter!("alvc_nfv.orchestrator.deploys_failed").incr();
            trace_span.fail(e.code());
            return Err(e.into());
        }

        // 1. One NFC ↔ one VC: build the cluster / slice.
        let cluster = {
            let mut construct_span = alvc_telemetry::trace::child_span("core.construct");
            match self
                .manager
                .create_cluster(dc, tenant, vms.clone(), constructor)
            {
                Ok(c) => c,
                Err(e) => {
                    alvc_telemetry::counter!("alvc_nfv.orchestrator.deploys_failed").incr();
                    construct_span.fail("cluster");
                    trace_span.fail("cluster");
                    return Err(e.into());
                }
            }
        };
        let result = self.deploy_into_cluster(dc, cluster, &vms, spec, placer);
        match result {
            Ok(id) => {
                alvc_telemetry::counter!("alvc_nfv.orchestrator.deploys_ok").incr();
                if !self.quiet {
                    alvc_telemetry::event!(
                        "alvc_nfv.orchestrator.chain_deployed",
                        "nfc" = id.index(),
                        "tenant" = tenant.as_str(),
                    );
                }
                Ok(id)
            }
            Err(e) => {
                self.manager.remove_cluster(cluster);
                alvc_telemetry::counter!("alvc_nfv.orchestrator.deploys_failed").incr();
                trace_span.fail(e.code());
                Err(e.into())
            }
        }
    }

    /// Deploys a batch of chains at once: abstraction layers for all
    /// tenants are constructed in bulk via [`construct_layers`] (fanned
    /// out over rayon with alvc-core's default `parallel` feature), then
    /// each chain is committed serially in request order — adopting its
    /// pre-built layer when it is still valid and conflict-free, falling
    /// back to a fresh serial construction otherwise. Placement, routing,
    /// admission, and flow-rule installation stay serial: they contend on
    /// the shared bandwidth/host ledgers and the SDN rule tables.
    ///
    /// Returns one result per request, in request order. Deterministic;
    /// failed requests roll back completely, exactly as in
    /// [`Orchestrator::deploy_chain`].
    pub fn deploy_chains<T: Into<LabelId>>(
        &mut self,
        dc: &DataCenter,
        requests: Vec<(T, Vec<VmId>, ChainSpec)>,
        constructor: &(dyn AlConstruct + Sync),
        placer: &dyn VnfPlacer,
    ) -> Vec<Result<NfcId, Error>> {
        // Same membership normalization create_cluster applies, so the
        // bulk-built layers match what the fallback path would see.
        let clusters: Vec<Vec<VmId>> = requests
            .iter()
            .map(|(_, vms, _)| {
                let mut vms = vms.clone();
                vms.sort();
                vms.dedup();
                vms
            })
            .collect();
        let layers = {
            let mut construct_span = alvc_telemetry::trace::child_span("core.construct_bulk");
            construct_span.add_field("clusters", clusters.len());
            construct_layers(dc, &clusters, constructor, self.manager.availability())
        };
        requests
            .into_iter()
            .zip(layers)
            .map(|((tenant, vms, spec), layer)| {
                let _span = alvc_telemetry::span!("alvc_nfv.orchestrator.deploy_latency_us");
                let mut trace_span = alvc_telemetry::trace::child_span("nfv.deploy");
                let tenant: LabelId = tenant.into();
                let result = (|| -> Result<NfcId, Error> {
                    if !vms.contains(&spec.ingress) || !vms.contains(&spec.egress) {
                        return Err(DeployError::EndpointOutsideCluster.into());
                    }
                    spec.validate().map_err(DeployError::InvalidSpec)?;
                    let adopted = layer
                        .ok()
                        .and_then(|al| self.manager.try_adopt_cluster(dc, tenant, vms.clone(), al));
                    let cluster = match adopted {
                        Some(id) => id,
                        None => {
                            self.manager
                                .create_cluster(dc, tenant, vms.clone(), constructor)?
                        }
                    };
                    match self.deploy_into_cluster(dc, cluster, &vms, spec, placer) {
                        Ok(id) => Ok(id),
                        Err(e) => {
                            self.manager.remove_cluster(cluster);
                            Err(e.into())
                        }
                    }
                })();
                match &result {
                    Ok(id) => {
                        alvc_telemetry::counter!("alvc_nfv.orchestrator.deploys_ok").incr();
                        if !self.quiet {
                            alvc_telemetry::event!(
                                "alvc_nfv.orchestrator.chain_deployed",
                                "nfc" = id.index(),
                                "tenant" = tenant.as_str(),
                            );
                        }
                    }
                    Err(e) => {
                        alvc_telemetry::counter!("alvc_nfv.orchestrator.deploys_failed").incr();
                        trace_span.fail(e.code());
                    }
                }
                result
            })
            .collect()
    }

    fn deploy_into_cluster(
        &mut self,
        dc: &DataCenter,
        cluster: ClusterId,
        vms: &[VmId],
        spec: ChainSpec,
        placer: &dyn VnfPlacer,
    ) -> Result<NfcId, DeployError> {
        // Idempotent: partitions the bandwidth ledger by pod the first time
        // a multi-pod topology is seen (a cheap no-op afterwards).
        self.link_committed.bind_pods(dc);
        let al = self
            .manager
            .cluster(cluster)
            .expect("cluster just created")
            .al()
            .clone();

        // A chain whose ingress/egress VM sits on a dead server cannot be
        // served no matter where its VNFs land.
        if !self.server_usable(dc.server_of_vm(spec.ingress))
            || !self.server_usable(dc.server_of_vm(spec.egress))
        {
            return Err(DeployError::EndpointFailed);
        }

        // 2. Place the VNFs (failed servers are not placement candidates).
        let mut servers: Vec<ServerId> = vms.iter().map(|&v| dc.server_of_vm(v)).collect();
        servers.sort();
        servers.dedup();
        servers.retain(|&s| self.server_usable(s));
        let hosts = {
            let mut place_span = alvc_telemetry::trace::child_span("nfv.place");
            let ctx = PlacementContext {
                dc,
                al: &al,
                opto_used: &self.opto_used,
                server_used: &self.server_used,
                servers: &servers,
            };
            match placer.place(&ctx, &spec) {
                Ok(h) => h,
                Err(e) => {
                    place_span.fail("placement");
                    return Err(e.into());
                }
            }
        };
        debug_assert_eq!(hosts.len(), spec.vnfs.len());

        // Defense in depth: whatever the placer did, a placement that
        // violates the spec's rules is rejected here — before routing,
        // admission, or any ledger commit — so rule enforcement does not
        // depend on which `VnfPlacer` the caller supplied.
        if let Some(rule) = spec.violated_rule(dc, &hosts) {
            return Err(DeployError::RuleViolated { rule });
        }

        // 3. Route ingress → VNFs → egress inside the slice, over healthy
        //    elements only.
        let mut allowed: HashSet<NodeId> = al
            .switch_nodes(dc)
            .into_iter()
            .filter(|&n| self.node_usable(dc, n))
            .collect();
        for &s in &servers {
            allowed.insert(dc.node_of_server(s));
        }
        let mut waypoints = Vec::with_capacity(hosts.len() + 2);
        waypoints.push(dc.node_of_server(dc.server_of_vm(spec.ingress)));
        for h in &hosts {
            let node = match h {
                HostLocation::Server(s) => dc.node_of_server(*s),
                HostLocation::OptoRouter(o) => dc.node_of_ops(*o),
            };
            allowed.insert(node);
            waypoints.push(node);
        }
        waypoints.push(dc.node_of_server(dc.server_of_vm(spec.egress)));
        let path = {
            let mut route_span = alvc_telemetry::trace::child_span("nfv.route");
            match route_flow_within(dc, &allowed, &waypoints) {
                Ok(p) => p,
                Err(e) => {
                    route_span.fail("routing");
                    return Err(e.into());
                }
            }
        };

        // 4. Admission ("network resource requirements (node and links)",
        //    §IV.A): per-link bandwidth and the chain's latency budget.
        let edges = {
            let mut admit_span = alvc_telemetry::trace::child_span("nfv.admit_bandwidth");
            let edges =
                match Self::check_bandwidth(dc, &self.link_committed, &path, spec.bandwidth_gbps) {
                    Ok(edges) => edges,
                    Err(e) => {
                        admit_span.fail(e.code());
                        return Err(e);
                    }
                };
            if let Err(e) = self.check_latency(&spec, &path) {
                admit_span.fail(e.code());
                return Err(e);
            }
            edges
        };

        // 5. Flow-rule installation is the last fallible step (TCAM
        //    limits); everything after it is infallible commitment.
        let id = NfcId(self.next_chain);
        {
            let mut install_span = alvc_telemetry::trace::child_span("nfv.install_rules");
            if let Err(e) = self.sdn.try_install_path(id, &path) {
                install_span.fail("rule_table_full");
                return Err(DeployError::RuleTableFull(e));
            }
        }
        self.next_chain += 1;
        for &e in &edges {
            self.link_committed.commit(e, kbps(spec.bandwidth_gbps));
        }
        for (h, v) in hosts.iter().zip(&spec.vnfs) {
            match h {
                HostLocation::Server(s) => {
                    let e = self.server_used.entry(*s).or_default();
                    *e = e.plus(&v.demand);
                }
                HostLocation::OptoRouter(o) => {
                    let e = self.opto_used.entry(*o).or_default();
                    *e = e.plus(&v.demand);
                }
            }
        }
        self.slices
            .bind(id, cluster)
            .expect("fresh chain id and cluster are unbound");
        let mut instance_ids = Vec::with_capacity(hosts.len());
        for (h, v) in hosts.iter().zip(&spec.vnfs) {
            let iid = VnfInstanceId(self.next_instance);
            self.next_instance += 1;
            let mut inst = VnfInstance::new(iid, *v, *h);
            inst.activate().expect("fresh instance activates");
            self.instances.insert(iid, inst);
            self.changes.instance(iid);
            instance_ids.push(iid);
        }
        self.changes.chain(id);
        self.changes.cluster(cluster);
        self.changes.edges(&edges);
        self.chains.insert(
            id,
            DeployedChain {
                nfc: Nfc::new(id, spec),
                cluster,
                hosts,
                instances: instance_ids,
                path,
                edges,
            },
        );
        Ok(id)
    }

    /// Tears a chain down: terminates and garbage-collects its VNFs (and
    /// any scale-out replicas), removes its flow rules, releases host
    /// capacity, unbinds the slice, and destroys the virtual cluster.
    ///
    /// # Errors
    ///
    /// [`DeployError::UnknownChain`] if the chain does not exist.
    pub fn teardown_chain(&mut self, id: NfcId) -> Result<DeployedChain, Error> {
        if !self.chains.contains_key(&id) {
            return Err(DeployError::UnknownChain(id).into());
        }
        // Replicas belong to the chain: scale them in first so their
        // capacity and map entries go with it.
        for replica in self.replicas_of(id) {
            let _ = self.scale_in(replica);
        }
        let deployed = self.chains.remove(&id).expect("checked above");
        for (&iid, (h, v)) in deployed
            .instances
            .iter()
            .zip(deployed.hosts.iter().zip(deployed.nfc.vnfs()))
        {
            self.terminate_and_collect(iid);
            match h {
                HostLocation::Server(s) => {
                    if let Some(e) = self.server_used.get_mut(s) {
                        *e = e.saturating_minus(&v.demand);
                    }
                }
                HostLocation::OptoRouter(o) => {
                    if let Some(e) = self.opto_used.get_mut(o) {
                        *e = e.saturating_minus(&v.demand);
                    }
                }
            }
        }
        self.release_edges(&deployed.edges, deployed.nfc.spec().bandwidth_gbps);
        self.sdn.remove_chain(id);
        self.slices.unbind(id);
        self.degraded.remove(&id);
        self.manager.remove_cluster(deployed.cluster);
        self.changes.chain(id);
        self.changes.cluster(deployed.cluster);
        for &iid in &deployed.instances {
            self.changes.instance(iid);
        }
        self.changes.edges(&deployed.edges);
        alvc_telemetry::counter!("alvc_nfv.orchestrator.teardowns").incr();
        if !self.quiet {
            alvc_telemetry::event!("alvc_nfv.orchestrator.chain_torn_down", "nfc" = id.index());
        }
        Ok(deployed)
    }

    /// Terminates an instance (if it is still serving) and removes it from
    /// the instance map. Keeping terminated instances around grows memory
    /// without bound under churn.
    pub(crate) fn terminate_and_collect(&mut self, iid: VnfInstanceId) {
        if let Some(mut inst) = self.instances.remove(&iid) {
            if inst.state() != VnfState::Terminated {
                inst.transition(VnfState::Terminated)
                    .expect("serving states may terminate");
            }
        }
    }

    /// Releases `bandwidth_gbps` from the ledger on every edge in `edges`,
    /// dropping entries that reach zero. Integer kb/s arithmetic makes the
    /// release exact: a deploy/teardown round trip restores the ledger
    /// bit-for-bit.
    pub(crate) fn release_edges(&mut self, edges: &[alvc_graph::EdgeId], bandwidth_gbps: f64) {
        let bw = kbps(bandwidth_gbps);
        for &e in edges {
            self.link_committed.release(e, bw);
        }
    }

    /// Modifies a deployed chain in place (§IV.B "modification,
    /// upgradation"): the slice (virtual cluster) is kept, the old VNF
    /// instances are terminated and their capacity released, the new spec
    /// is placed and routed inside the same slice, and the flow rules are
    /// replaced atomically.
    ///
    /// # Errors
    ///
    /// [`DeployError::UnknownChain`] if `id` does not exist,
    /// [`DeployError::EndpointOutsideCluster`] if the new endpoints leave
    /// the tenant's VM group, or placement/routing errors — in which case
    /// the old deployment remains untouched.
    pub fn modify_chain(
        &mut self,
        dc: &DataCenter,
        id: NfcId,
        new_spec: ChainSpec,
        placer: &dyn VnfPlacer,
    ) -> Result<(), Error> {
        let deployed = self.chains.get(&id).ok_or(DeployError::UnknownChain(id))?;
        let cluster = deployed.cluster;
        let vms = self
            .manager
            .cluster(cluster)
            .expect("slice cluster exists")
            .vms()
            .to_vec();
        if !vms.contains(&new_spec.ingress) || !vms.contains(&new_spec.egress) {
            return Err(DeployError::EndpointOutsideCluster.into());
        }
        new_spec.validate().map_err(DeployError::InvalidSpec)?;
        if !self.server_usable(dc.server_of_vm(new_spec.ingress))
            || !self.server_usable(dc.server_of_vm(new_spec.egress))
        {
            return Err(DeployError::EndpointFailed.into());
        }

        // Plan the new placement against a ledger *without* this chain's
        // current usage, so modification can reuse its own capacity.
        let mut opto_used = self.opto_used.clone();
        let mut server_used = self.server_used.clone();
        for (h, v) in deployed.hosts.iter().zip(deployed.nfc.vnfs()) {
            match h {
                HostLocation::Server(s) => {
                    if let Some(e) = server_used.get_mut(s) {
                        *e = e.saturating_minus(&v.demand);
                    }
                }
                HostLocation::OptoRouter(o) => {
                    if let Some(e) = opto_used.get_mut(o) {
                        *e = e.saturating_minus(&v.demand);
                    }
                }
            }
        }
        let al = self
            .manager
            .cluster(cluster)
            .expect("slice cluster exists")
            .al()
            .clone();
        let mut servers: Vec<ServerId> = vms.iter().map(|&v| dc.server_of_vm(v)).collect();
        servers.sort();
        servers.dedup();
        servers.retain(|&s| self.server_usable(s));
        let hosts = {
            let ctx = PlacementContext {
                dc,
                al: &al,
                opto_used: &opto_used,
                server_used: &server_used,
                servers: &servers,
            };
            placer.place(&ctx, &new_spec)?
        };
        // Same admission-time rule enforcement as the deploy path.
        if let Some(rule) = new_spec.violated_rule(dc, &hosts) {
            return Err(DeployError::RuleViolated { rule }.into());
        }
        let mut allowed: HashSet<NodeId> = al
            .switch_nodes(dc)
            .into_iter()
            .filter(|&n| self.node_usable(dc, n))
            .collect();
        for &s in &servers {
            allowed.insert(dc.node_of_server(s));
        }
        let mut waypoints = Vec::with_capacity(hosts.len() + 2);
        waypoints.push(dc.node_of_server(dc.server_of_vm(new_spec.ingress)));
        for h in &hosts {
            let node = match h {
                HostLocation::Server(s) => dc.node_of_server(*s),
                HostLocation::OptoRouter(o) => dc.node_of_ops(*o),
            };
            allowed.insert(node);
            waypoints.push(node);
        }
        waypoints.push(dc.node_of_server(dc.server_of_vm(new_spec.egress)));
        let path = route_flow_within(dc, &allowed, &waypoints)?;

        // Bandwidth admission against a ledger without this chain's own
        // commitment.
        let mut link_committed = self.link_committed.clone();
        let old_bw = kbps(deployed.nfc.spec().bandwidth_gbps);
        for &e in &deployed.edges {
            link_committed.release(e, old_bw);
        }
        let new_edges = Self::check_bandwidth(dc, &link_committed, &path, new_spec.bandwidth_gbps)?;
        self.check_latency(&new_spec, &path)?;
        for &e in &new_edges {
            link_committed.commit(e, kbps(new_spec.bandwidth_gbps));
        }

        // Commit: swap rules first (the last fallible step — the
        // controller frees this chain's own slots during the check and the
        // old rules survive a failure), then terminate old instances and
        // swap ledgers.
        let old = self.chains.remove(&id).expect("checked above");
        if let Err(e) = self.sdn.try_install_path(id, &path) {
            self.chains.insert(id, old);
            return Err(DeployError::RuleTableFull(e).into());
        }
        // The chain's VNF set changes: the old instances are
        // garbage-collected (their replicas go after the ledger swap, so
        // the release lands on the live ledgers).
        for &iid in &old.instances {
            self.terminate_and_collect(iid);
            self.changes.instance(iid);
        }
        for (h, v) in hosts.iter().zip(&new_spec.vnfs) {
            match h {
                HostLocation::Server(s) => {
                    let e = server_used.entry(*s).or_default();
                    *e = e.plus(&v.demand);
                }
                HostLocation::OptoRouter(o) => {
                    let e = opto_used.entry(*o).or_default();
                    *e = e.plus(&v.demand);
                }
            }
        }
        self.opto_used = opto_used;
        self.server_used = server_used;
        self.link_committed = link_committed;
        // Replicas mirrored the old VNF set; scale them in now that the
        // planned ledgers (which still carry their demand) are live.
        for replica in self.replicas_of(id) {
            let _ = self.scale_in(replica);
        }
        let mut instance_ids = Vec::with_capacity(hosts.len());
        for (h, v) in hosts.iter().zip(&new_spec.vnfs) {
            let iid = VnfInstanceId(self.next_instance);
            self.next_instance += 1;
            let mut inst = VnfInstance::new(iid, *v, *h);
            inst.activate().expect("fresh instance activates");
            self.instances.insert(iid, inst);
            self.changes.instance(iid);
            instance_ids.push(iid);
        }
        self.changes.chain(id);
        self.changes.edges(&old.edges);
        self.changes.edges(&new_edges);
        self.chains.insert(
            id,
            DeployedChain {
                nfc: Nfc::new(id, new_spec),
                cluster,
                hosts,
                instances: instance_ids,
                path,
                edges: new_edges,
            },
        );
        alvc_telemetry::counter!("alvc_nfv.orchestrator.modifications").incr();
        if !self.quiet {
            alvc_telemetry::event!("alvc_nfv.orchestrator.chain_modified", "nfc" = id.index());
        }
        Ok(())
    }

    /// Starts a scaling event on a VNF instance (Active → Scaling).
    ///
    /// # Errors
    ///
    /// Unknown instances are a silent no-op; lifecycle violations return
    /// [`Error::Lifecycle`].
    pub fn begin_scaling(&mut self, id: VnfInstanceId) -> Result<(), Error> {
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.transition(VnfState::Scaling)?;
            self.changes.instance(id);
        }
        Ok(())
    }

    /// Starts an update event on a VNF instance (Active → Updating).
    ///
    /// # Errors
    ///
    /// Lifecycle violations return [`Error::Lifecycle`].
    pub fn begin_update(&mut self, id: VnfInstanceId) -> Result<(), Error> {
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.transition(VnfState::Updating)?;
            self.changes.instance(id);
        }
        Ok(())
    }

    /// Completes a scaling/update event (→ Active).
    ///
    /// # Errors
    ///
    /// Lifecycle violations return [`Error::Lifecycle`].
    pub fn complete_operation(&mut self, id: VnfInstanceId) -> Result<(), Error> {
        if let Some(inst) = self.instances.get_mut(&id) {
            inst.transition(VnfState::Active)?;
            self.changes.instance(id);
        }
        Ok(())
    }

    /// The replica instances created for `chain` by
    /// [`Orchestrator::scale_out`], in creation order.
    pub fn replicas_of(&self, chain: NfcId) -> Vec<VnfInstanceId> {
        self.replicas
            .iter()
            .filter(|(_, &(c, _))| c == chain)
            .map(|(&iid, _)| iid)
            .collect()
    }

    /// The chain a live replica belongs to, `None` if `id` is not a
    /// replica (chain members and terminated replicas do not count).
    pub fn replica_chain(&self, id: VnfInstanceId) -> Option<NfcId> {
        self.replicas.get(&id).map(|&(chain, _)| chain)
    }

    /// Scales a chain VNF out (§IV.B "scaling"): allocates a *replica* of
    /// the VNF at `chain_position` on another host inside the same slice —
    /// preferring an optoelectronic router of the AL with remaining
    /// capacity, avoiding the original's host for fault isolation — and
    /// drives the original instance through Scaling → Active.
    ///
    /// Returns the replica's instance id.
    ///
    /// # Errors
    ///
    /// [`DeployError::UnknownChain`] for an unknown chain, and
    /// [`DeployError::Placement`] when no host has capacity for the
    /// replica. The original instance's state is untouched on failure.
    pub fn scale_out(
        &mut self,
        dc: &DataCenter,
        chain: NfcId,
        chain_position: usize,
    ) -> Result<VnfInstanceId, Error> {
        let deployed = self
            .chains
            .get(&chain)
            .ok_or(DeployError::UnknownChain(chain))?;
        let Some(&original_host) = deployed.hosts.get(chain_position) else {
            return Err(DeployError::Placement(crate::PlacementError::NoCapacity {
                chain_position,
            })
            .into());
        };
        let spec = deployed.nfc.vnfs()[chain_position];
        let cluster = deployed.cluster;
        let al = self
            .manager
            .cluster(cluster)
            .expect("slice cluster exists")
            .al()
            .clone();
        let vms = self
            .manager
            .cluster(cluster)
            .expect("slice cluster exists")
            .vms()
            .to_vec();

        // Prefer a different healthy optoelectronic router with capacity;
        // fall back to a different healthy least-loaded server.
        let mut replica_host = None;
        for &o in al.ops() {
            if HostLocation::OptoRouter(o) == original_host || !self.ops_usable(o) {
                continue;
            }
            let Some(cap) = dc.opto_capacity(o) else {
                continue;
            };
            let used = self.opto_used.get(&o).copied().unwrap_or_default();
            if spec.demand.fits_in(&cap, &used) {
                replica_host = Some(HostLocation::OptoRouter(o));
                break;
            }
        }
        if replica_host.is_none() {
            let mut servers: Vec<ServerId> = vms.iter().map(|&v| dc.server_of_vm(v)).collect();
            servers.sort();
            servers.dedup();
            replica_host = servers
                .iter()
                .filter(|&&s| HostLocation::Server(s) != original_host && self.server_usable(s))
                .min_by(|a, b| {
                    let la = self.server_used.get(a).map_or(0.0, |d| d.cpu);
                    let lb = self.server_used.get(b).map_or(0.0, |d| d.cpu);
                    la.total_cmp(&lb).then(a.cmp(b))
                })
                .map(|&s| HostLocation::Server(s));
        }
        let Some(host) = replica_host else {
            return Err(DeployError::Placement(crate::PlacementError::NoCapacity {
                chain_position,
            })
            .into());
        };

        // Commit capacity and lifecycle.
        match host {
            HostLocation::Server(s) => {
                let e = self.server_used.entry(s).or_default();
                *e = e.plus(&spec.demand);
            }
            HostLocation::OptoRouter(o) => {
                let e = self.opto_used.entry(o).or_default();
                *e = e.plus(&spec.demand);
            }
        }
        let original_iid = deployed.instances[chain_position];
        if let Some(inst) = self.instances.get_mut(&original_iid) {
            // Scaling event on the original; ignore if it is mid-operation.
            let _ = inst.transition(VnfState::Scaling);
            let _ = inst.transition(VnfState::Active);
        }
        let iid = VnfInstanceId(self.next_instance);
        self.next_instance += 1;
        let mut inst = VnfInstance::new(iid, spec, host);
        inst.activate().expect("fresh instance activates");
        self.instances.insert(iid, inst);
        self.replicas.insert(iid, (chain, chain_position));
        self.changes.chain(chain);
        self.changes.instance(original_iid);
        self.changes.instance(iid);
        alvc_telemetry::counter!("alvc_nfv.orchestrator.scale_outs").incr();
        Ok(iid)
    }

    /// Scales a replica in: terminates it, garbage-collects it, and
    /// releases its capacity.
    ///
    /// Only instances created by [`Orchestrator::scale_out`] can be scaled
    /// in; chain members are removed via teardown or modification.
    ///
    /// # Errors
    ///
    /// [`DeployError::UnknownChain`] if `replica` is not a live replica.
    pub fn scale_in(&mut self, replica: VnfInstanceId) -> Result<(), Error> {
        let Some((chain, _)) = self.replicas.remove(&replica) else {
            return Err(DeployError::UnknownChain(NfcId(usize::MAX)).into());
        };
        self.changes.chain(chain);
        self.changes.instance(replica);
        let mut inst = self
            .instances
            .remove(&replica)
            .expect("replica instance exists");
        let (host, demand) = (inst.host(), inst.spec().demand);
        if inst.state() != VnfState::Terminated {
            inst.transition(VnfState::Terminated)
                .expect("serving states may terminate");
        }
        match host {
            HostLocation::Server(s) => {
                if let Some(e) = self.server_used.get_mut(&s) {
                    *e = e.saturating_minus(&demand);
                }
            }
            HostLocation::OptoRouter(o) => {
                if let Some(e) = self.opto_used.get_mut(&o) {
                    *e = e.saturating_minus(&demand);
                }
            }
        }
        alvc_telemetry::counter!("alvc_nfv.orchestrator.scale_ins").incr();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::fig5;
    use crate::placement::ElectronicOnlyPlacer;
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::{AlvcTopologyBuilder, ServiceType};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(8)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(16)
            .tor_ops_degree(3)
            .opto_fraction(0.5)
            .seed(31)
            .build()
    }

    fn deploy_one(orch: &mut Orchestrator, dc: &DataCenter, tenant: &str, vms: Vec<VmId>) -> NfcId {
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        orch.deploy_chain(
            dc,
            tenant,
            vms,
            spec,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        )
        .unwrap()
    }

    #[test]
    fn deploy_binds_slice_rules_and_instances() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        let id = deploy_one(&mut orch, &dc, "web", vms);
        let chain = orch.chain(id).unwrap();
        assert_eq!(chain.hosts().len(), 2);
        assert_eq!(chain.instances().len(), 2);
        assert!(chain.path().hop_count() > 0);
        assert_eq!(orch.slices().cluster_of(id), Some(chain.cluster()));
        assert!(orch.sdn().total_rules() > 0);
        for &iid in chain.instances() {
            assert_eq!(orch.instance(iid).unwrap().state(), VnfState::Active);
        }
        assert!(orch.manager().verify_disjoint());
    }

    #[test]
    fn chain_path_stays_inside_slice() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::MapReduce);
        let id = deploy_one(&mut orch, &dc, "mr", vms.clone());
        let chain = orch.chain(id).unwrap();
        let al = orch
            .manager()
            .cluster(chain.cluster())
            .unwrap()
            .al()
            .clone();
        let mut allowed: HashSet<NodeId> = al.switch_nodes(&dc).into_iter().collect();
        for &v in &vms {
            allowed.insert(dc.node_of_server(dc.server_of_vm(v)));
        }
        for n in chain.path().nodes() {
            assert!(allowed.contains(n), "path leaked outside the slice");
        }
    }

    #[test]
    fn two_tenants_disjoint_slices() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let a = deploy_one(
            &mut orch,
            &dc,
            "web",
            dc.vms_of_service(ServiceType::WebService),
        );
        let b = deploy_one(&mut orch, &dc, "sns", dc.vms_of_service(ServiceType::Sns));
        assert_ne!(a, b);
        assert_eq!(orch.chain_count(), 2);
        assert!(orch.manager().verify_disjoint());
        let ca = orch.chain(a).unwrap().cluster();
        let cb = orch.chain(b).unwrap().cluster();
        assert_ne!(ca, cb);
    }

    #[test]
    fn endpoints_must_belong_to_tenant() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        let foreign = dc
            .vm_ids()
            .find(|v| !vms.contains(v))
            .expect("another service exists");
        let spec = fig5::blue(vms[0], foreign);
        let err = orch.deploy_chain(
            &dc,
            "web",
            vms,
            spec,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        assert_eq!(
            err.unwrap_err(),
            Error::Deploy(DeployError::EndpointOutsideCluster)
        );
        assert_eq!(orch.chain_count(), 0);
        assert_eq!(orch.manager().cluster_count(), 0);
    }

    #[test]
    fn teardown_releases_everything() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        let id = deploy_one(&mut orch, &dc, "web", vms);
        let chain = orch.chain(id).unwrap().clone();
        let removed = orch.teardown_chain(id).unwrap();
        assert_eq!(removed.nfc().id(), id);
        assert_eq!(orch.chain_count(), 0);
        assert_eq!(orch.sdn().total_rules(), 0);
        assert!(orch.slices().is_empty());
        assert_eq!(orch.manager().cluster_count(), 0);
        for &iid in chain.instances() {
            assert!(
                orch.instance(iid).is_none(),
                "terminated instances are garbage-collected"
            );
        }
        assert_eq!(orch.instance_count(), 0);
        // Server capacity fully released.
        for h in chain.hosts() {
            if let HostLocation::Server(s) = h {
                let used = orch.server_used.get(s).copied().unwrap_or_default();
                assert_eq!(used.cpu, 0.0);
            }
        }
        assert!(matches!(
            orch.teardown_chain(id),
            Err(Error::Deploy(DeployError::UnknownChain(_)))
        ));
    }

    #[test]
    fn failed_deploy_rolls_back_cluster() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        // A placer that always fails.
        struct FailingPlacer;
        impl VnfPlacer for FailingPlacer {
            fn name(&self) -> &'static str {
                "failing"
            }
            fn place(
                &self,
                _ctx: &PlacementContext<'_>,
                _chain: &ChainSpec,
            ) -> Result<Vec<HostLocation>, crate::PlacementError> {
                Err(crate::PlacementError::NoElectronicHost)
            }
        }
        let spec = fig5::blue(vms[0], vms[1]);
        let err = orch.deploy_chain(&dc, "web", vms, spec, &PaperGreedy::new(), &FailingPlacer);
        assert!(matches!(err, Err(Error::Deploy(DeployError::Placement(_)))));
        assert_eq!(orch.manager().cluster_count(), 0);
        assert_eq!(orch.manager().availability().blocked_count(), 0);
    }

    #[test]
    fn lifecycle_operations_through_orchestrator() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        let id = deploy_one(&mut orch, &dc, "web", vms);
        let iid = orch.chain(id).unwrap().instances()[0];
        orch.begin_scaling(iid).unwrap();
        assert_eq!(orch.instance(iid).unwrap().state(), VnfState::Scaling);
        orch.complete_operation(iid).unwrap();
        orch.begin_update(iid).unwrap();
        assert_eq!(orch.instance(iid).unwrap().state(), VnfState::Updating);
        orch.complete_operation(iid).unwrap();
        assert_eq!(orch.instance(iid).unwrap().state(), VnfState::Active);
        // Double-scale is a lifecycle error.
        orch.begin_scaling(iid).unwrap();
        assert!(orch.begin_scaling(iid).is_err());
    }

    #[test]
    fn empty_chain_deploys_as_pure_forwarding() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::Backup);
        let spec = ChainSpec::builder("fwd")
            .passthrough()
            .ingress(vms[0])
            .egress(*vms.last().unwrap())
            .build()
            .unwrap();
        let id = orch
            .deploy_chain(
                &dc,
                "backup",
                vms,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        let chain = orch.chain(id).unwrap();
        assert!(chain.hosts().is_empty());
        assert_eq!(chain.oeo_conversions(), 0);
    }
}

#[cfg(test)]
mod batch_deploy_tests {
    use super::*;
    use crate::chain::fig5;
    use crate::placement::ElectronicOnlyPlacer;
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::{AlvcTopologyBuilder, OpsInterconnect, ServiceType};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(12)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(24)
            .tor_ops_degree(4)
            .opto_fraction(0.5)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(47)
            .build()
    }

    fn batch_requests(dc: &DataCenter) -> Vec<(String, Vec<VmId>, ChainSpec)> {
        dc.services()
            .into_iter()
            .filter_map(|s| {
                let vms = dc.vms_of_service(s);
                if vms.len() < 2 {
                    return None;
                }
                let spec = fig5::black(vms[0], *vms.last().unwrap());
                Some((s.label().to_string(), vms, spec))
            })
            .collect()
    }

    #[test]
    fn batch_deploy_creates_disjoint_slices() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let reqs = batch_requests(&dc);
        let n = reqs.len();
        assert!(n >= 2, "need multiple tenants");
        let results =
            orch.deploy_chains(&dc, reqs, &PaperGreedy::new(), &ElectronicOnlyPlacer::new());
        assert_eq!(results.len(), n);
        let deployed = results.iter().filter(|r| r.is_ok()).count();
        assert!(deployed >= 2, "most tenants deploy on a 24-OPS mesh");
        assert_eq!(orch.chain_count(), deployed);
        assert!(orch.manager().verify_disjoint());
        for id in results.into_iter().flatten() {
            let chain = orch.chain(id).unwrap();
            assert_eq!(orch.slices().cluster_of(id), Some(chain.cluster()));
            for &iid in chain.instances() {
                assert_eq!(orch.instance(iid).unwrap().state(), VnfState::Active);
            }
        }
    }

    #[test]
    fn batch_deploy_is_deterministic() {
        let dc = dc();
        let mut a = Orchestrator::new();
        let mut b = Orchestrator::new();
        let ra = a.deploy_chains(
            &dc,
            batch_requests(&dc),
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        let rb = b.deploy_chains(
            &dc,
            batch_requests(&dc),
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        assert_eq!(ra, rb);
        let als_a: Vec<_> = a.manager().clusters().map(|vc| vc.al().clone()).collect();
        let als_b: Vec<_> = b.manager().clusters().map(|vc| vc.al().clone()).collect();
        assert_eq!(als_a, als_b);
    }

    #[test]
    fn batch_deploy_rejects_foreign_endpoints_without_state() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let web = dc.vms_of_service(ServiceType::WebService);
        let foreign = dc.vm_ids().find(|v| !web.contains(v)).unwrap();
        let bad_spec = fig5::blue(web[0], foreign);
        let good_spec = fig5::black(web[0], *web.last().unwrap());
        let results = orch.deploy_chains(
            &dc,
            vec![
                (LabelId::intern("bad"), web.clone(), bad_spec),
                (LabelId::intern("good"), web, good_spec),
            ],
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        assert_eq!(
            results[0],
            Err(Error::Deploy(DeployError::EndpointOutsideCluster))
        );
        assert!(results[1].is_ok());
        assert_eq!(orch.chain_count(), 1);
        assert!(orch.manager().cluster_by_label("bad").is_none());
        assert!(orch.manager().verify_disjoint());
    }

    #[test]
    fn batch_matches_sequential_deploys_on_full_mesh() {
        let dc = dc();
        let reqs = batch_requests(&dc);
        let mut batch = Orchestrator::new();
        let batch_results = batch.deploy_chains(
            &dc,
            reqs.clone(),
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        let mut serial = Orchestrator::new();
        let serial_results: Vec<_> = reqs
            .into_iter()
            .map(|(tenant, vms, spec)| {
                serial.deploy_chain(
                    &dc,
                    &tenant,
                    vms,
                    spec,
                    &PaperGreedy::new(),
                    &ElectronicOnlyPlacer::new(),
                )
            })
            .collect();
        assert_eq!(batch_results, serial_results);
        let als_batch: Vec<_> = batch
            .manager()
            .clusters()
            .map(|vc| vc.al().clone())
            .collect();
        let als_serial: Vec<_> = serial
            .manager()
            .clusters()
            .map(|vc| vc.al().clone())
            .collect();
        assert_eq!(als_batch, als_serial);
    }
}

#[cfg(test)]
mod modify_tests {
    use super::*;
    use crate::chain::fig5;
    use crate::placement::ElectronicOnlyPlacer;
    use crate::vnf::{VnfSpec, VnfType};
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::{AlvcTopologyBuilder, ServiceType};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(8)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(16)
            .tor_ops_degree(4)
            .opto_fraction(0.5)
            .seed(31)
            .build()
    }

    #[test]
    fn modify_chain_swaps_vnfs_in_the_same_slice() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        let id = orch
            .deploy_chain(
                &dc,
                "web",
                vms.clone(),
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        let cluster_before = orch.chain(id).unwrap().cluster();
        let old_instances = orch.chain(id).unwrap().instances().to_vec();

        // Upgrade: black (fw, lb) → blue (secgw, fw, dpi).
        let new_spec = fig5::blue(vms[0], *vms.last().unwrap());
        orch.modify_chain(&dc, id, new_spec, &ElectronicOnlyPlacer::new())
            .unwrap();
        let chain = orch.chain(id).unwrap();
        assert_eq!(chain.cluster(), cluster_before, "slice kept");
        assert_eq!(chain.nfc().vnfs().len(), 3);
        assert_eq!(chain.hosts().len(), 3);
        for &iid in &old_instances {
            assert!(
                orch.instance(iid).is_none(),
                "replaced instances are garbage-collected"
            );
        }
        for &iid in chain.instances() {
            assert_eq!(orch.instance(iid).unwrap().state(), VnfState::Active);
        }
        assert_eq!(orch.instance_count(), chain.instances().len());
        // Rules replaced, not leaked.
        assert_eq!(orch.sdn().total_rules(), chain.path().nodes().len());
        assert!(orch.manager().verify_disjoint());
    }

    #[test]
    fn modify_unknown_chain_fails() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let err = orch.modify_chain(
            &dc,
            NfcId(9),
            fig5::black(alvc_topology::VmId(0), alvc_topology::VmId(1)),
            &ElectronicOnlyPlacer::new(),
        );
        assert_eq!(err, Err(Error::Deploy(DeployError::UnknownChain(NfcId(9)))));
    }

    #[test]
    fn modify_with_foreign_endpoint_fails_and_preserves_chain() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        let foreign = dc.vm_ids().find(|v| !vms.contains(v)).unwrap();
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        let id = orch
            .deploy_chain(
                &dc,
                "web",
                vms.clone(),
                spec.clone(),
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        let before = orch.chain(id).unwrap().clone();
        let err = orch.modify_chain(
            &dc,
            id,
            fig5::blue(vms[0], foreign),
            &ElectronicOnlyPlacer::new(),
        );
        assert_eq!(err, Err(Error::Deploy(DeployError::EndpointOutsideCluster)));
        assert_eq!(orch.chain(id).unwrap(), &before, "old deployment intact");
    }

    #[test]
    fn modify_reuses_own_capacity() {
        // A chain that saturates one optoelectronic router can be modified
        // to an equally demanding chain because its own capacity is
        // released during planning.
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms: Vec<_> = dc.vm_ids().collect();
        let four_fw = |name: &str| {
            ChainSpec::builder(name)
                .linear(vec![VnfSpec::of(VnfType::Firewall); 4])
                .ingress(vms[0])
                .egress(*vms.last().unwrap())
                .build()
                .unwrap()
        };
        let id = orch
            .deploy_chain(
                &dc,
                "t",
                vms.clone(),
                four_fw("v1"),
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        orch.modify_chain(&dc, id, four_fw("v2"), &ElectronicOnlyPlacer::new())
            .unwrap();
        assert_eq!(orch.chain(id).unwrap().nfc().spec().name, "v2");
        // Ledger reflects exactly one deployment's worth of demand.
        let total_cpu: f64 = orch.server_used.values().map(|d| d.cpu).sum();
        assert!((total_cpu - 4.0).abs() < 1e-9, "cpu ledger {total_cpu}");
    }
}

#[cfg(test)]
mod bandwidth_tests {
    use super::*;
    use crate::chain::fig5;
    use crate::placement::ElectronicOnlyPlacer;
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::AlvcTopologyBuilder;

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(6)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(24)
            .tor_ops_degree(6)
            .opto_fraction(0.5)
            .seed(41)
            .build()
    }

    #[test]
    fn deploy_commits_bandwidth_and_teardown_releases() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms: Vec<_> = dc.vm_ids().collect();
        let mut spec = fig5::black(vms[0], *vms.last().unwrap());
        spec.bandwidth_gbps = 4.0;
        let id = orch
            .deploy_chain(
                &dc,
                "t",
                vms,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        let edges = orch.chain(id).unwrap().edges().to_vec();
        assert!(!edges.is_empty());
        for &e in &edges {
            assert!(orch.committed_bandwidth_gbps(e) >= 4.0);
        }
        orch.teardown_chain(id).unwrap();
        for &e in &edges {
            assert_eq!(orch.committed_bandwidth_gbps(e), 0.0);
        }
    }

    #[test]
    fn oversubscribed_access_link_rejected() {
        // Access links carry 10 Gb/s; a 25 Gb/s chain through a server
        // access link cannot be admitted.
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms: Vec<_> = dc.vm_ids().collect();
        let mut spec = fig5::black(vms[0], *vms.last().unwrap());
        spec.bandwidth_gbps = 25.0;
        let err = orch.deploy_chain(
            &dc,
            "t",
            vms,
            spec,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        assert!(
            matches!(
                err,
                Err(Error::Deploy(DeployError::InsufficientBandwidth { .. }))
            ),
            "{err:?}"
        );
        // Rollback complete: no cluster, no rules, no commitments.
        assert_eq!(orch.manager().cluster_count(), 0);
        assert_eq!(orch.sdn().total_rules(), 0);
    }

    #[test]
    fn repeated_chains_saturate_shared_access_link() {
        // Same ingress/egress servers: each chain takes 4 Gb/s of the
        // shared 10 Gb/s access links, so the third deployment must fail.
        let dc = dc();
        let vms: Vec<_> = dc.vm_ids().collect();
        // Keep the slice small so the same access links are reused; use
        // the two VMs of one server pair per tenant but the same endpoints.
        let mut admitted = 0;
        let mut orch = Orchestrator::new();
        for i in 0..3 {
            let mut spec = fig5::black(vms[0], vms[1]);
            spec.bandwidth_gbps = 4.0;
            // Distinct tenant VM groups that share endpoints are not
            // allowed (a VM belongs to one cluster), so emulate repeated
            // load by modify-free redeploys over disjoint slices sharing
            // the ingress server: use the same group and teardown in
            // between for the first two, then keep two live via groups
            // overlapping is impossible — instead just deploy/teardown to
            // confirm release, then two live chains with the same server.
            let group: Vec<_> = vms.clone();
            match orch.deploy_chain(
                &dc,
                format!("t{i}"),
                group,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            ) {
                Ok(_) => admitted += 1,
                Err(Error::Deploy(DeployError::Cluster(_))) => break, // OPS pool exhausted first
                Err(Error::Deploy(DeployError::InsufficientBandwidth { .. })) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(admitted >= 1);
    }

    #[test]
    fn modify_respects_bandwidth_and_reuses_own_commitment() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms: Vec<_> = dc.vm_ids().collect();
        let mut spec = fig5::black(vms[0], *vms.last().unwrap());
        spec.bandwidth_gbps = 8.0; // most of the 10 Gb/s access link
        let id = orch
            .deploy_chain(
                &dc,
                "t",
                vms.clone(),
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        // Same bandwidth again: only feasible because the chain's own
        // commitment is released during planning.
        let mut spec2 = fig5::blue(vms[0], *vms.last().unwrap());
        spec2.bandwidth_gbps = 8.0;
        orch.modify_chain(&dc, id, spec2, &ElectronicOnlyPlacer::new())
            .unwrap();
        // But exceeding the link is still rejected.
        let mut spec3 = fig5::black(vms[0], *vms.last().unwrap());
        spec3.bandwidth_gbps = 25.0;
        let err = orch.modify_chain(&dc, id, spec3, &ElectronicOnlyPlacer::new());
        assert!(matches!(
            err,
            Err(Error::Deploy(DeployError::InsufficientBandwidth { .. }))
        ));
        assert_eq!(orch.chain(id).unwrap().nfc().spec().bandwidth_gbps, 8.0);
    }
}

#[cfg(test)]
mod scaling_tests {
    use super::*;
    use crate::chain::fig5;
    use crate::placement::ElectronicOnlyPlacer;
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::AlvcTopologyBuilder;

    fn setup() -> (DataCenter, Orchestrator, NfcId) {
        let dc = AlvcTopologyBuilder::new()
            .racks(8)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(24)
            .tor_ops_degree(6)
            .opto_fraction(0.5)
            .seed(61)
            .build();
        let mut orch = Orchestrator::new();
        let vms: Vec<_> = dc.vm_ids().collect();
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        let id = orch
            .deploy_chain(
                &dc,
                "t",
                vms,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        (dc, orch, id)
    }

    #[test]
    fn scale_out_creates_active_replica_on_other_host() {
        let (dc, mut orch, id) = setup();
        let original_host = orch.chain(id).unwrap().hosts()[0];
        let replica = orch.scale_out(&dc, id, 0).unwrap();
        let inst = orch.instance(replica).unwrap();
        assert_eq!(inst.state(), VnfState::Active);
        assert_ne!(inst.host(), original_host, "fault isolation");
        assert_eq!(orch.replicas_of(id), vec![replica]);
        // Original went through a scaling event.
        let orig = orch
            .instance(orch.chain(id).unwrap().instances()[0])
            .unwrap();
        assert!(orig.history().contains(&VnfState::Scaling));
        assert_eq!(orig.state(), VnfState::Active);
    }

    #[test]
    fn scale_out_prefers_optoelectronic_router_with_capacity() {
        let (dc, mut orch, id) = setup();
        // The firewall is light: a replica should land on an AL opto
        // router when one exists.
        let al = orch
            .manager()
            .cluster(orch.chain(id).unwrap().cluster())
            .unwrap()
            .al()
            .clone();
        let has_opto = al.ops().iter().any(|&o| dc.opto_capacity(o).is_some());
        if has_opto {
            let replica = orch.scale_out(&dc, id, 0).unwrap();
            assert!(matches!(
                orch.instance(replica).unwrap().host(),
                HostLocation::OptoRouter(_)
            ));
        }
    }

    #[test]
    fn scale_in_releases_capacity() {
        let (dc, mut orch, id) = setup();
        let replica = orch.scale_out(&dc, id, 0).unwrap();
        let host = orch.instance(replica).unwrap().host();
        orch.scale_in(replica).unwrap();
        assert!(
            orch.instance(replica).is_none(),
            "scaled-in replicas are garbage-collected"
        );
        assert!(orch.replicas_of(id).is_empty());
        if let HostLocation::OptoRouter(o) = host {
            assert_eq!(orch.opto_usage(o).cpu, 0.0);
        }
        // Double scale-in fails.
        assert!(orch.scale_in(replica).is_err());
    }

    #[test]
    fn scale_out_bad_position_rejected() {
        let (dc, mut orch, id) = setup();
        assert!(matches!(
            orch.scale_out(&dc, id, 99),
            Err(Error::Deploy(DeployError::Placement(_)))
        ));
        assert!(matches!(
            orch.scale_out(&dc, NfcId(77), 0),
            Err(Error::Deploy(DeployError::UnknownChain(_)))
        ));
    }

    #[test]
    fn repeated_scale_out_exhausts_opto_then_uses_servers() {
        let (dc, mut orch, id) = setup();
        let mut optical = 0;
        let mut electronic = 0;
        for _ in 0..40 {
            match orch.scale_out(&dc, id, 0) {
                Ok(r) => match orch.instance(r).unwrap().host() {
                    HostLocation::OptoRouter(_) => optical += 1,
                    HostLocation::Server(_) => electronic += 1,
                },
                Err(_) => break,
            }
        }
        assert!(optical > 0, "some replicas land optically");
        assert!(electronic > 0, "overflow lands on servers");
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use crate::chain::fig5;
    use crate::placement::ElectronicOnlyPlacer;
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::AlvcTopologyBuilder;

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(6)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(18)
            .tor_ops_degree(6)
            .opto_fraction(0.5)
            .seed(71)
            .build()
    }

    #[test]
    fn generous_budget_admits() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms: Vec<_> = dc.vm_ids().collect();
        let spec = ChainSpec {
            max_latency_us: Some(10_000.0),
            ..fig5::black(vms[0], *vms.last().unwrap())
        };
        assert!(orch
            .deploy_chain(
                &dc,
                "t",
                vms,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new()
            )
            .is_ok());
    }

    #[test]
    fn impossible_budget_rejected_with_rollback() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms: Vec<_> = dc.vm_ids().collect();
        // Sub-microsecond budget: no multi-hop path can meet it.
        let spec = ChainSpec {
            max_latency_us: Some(0.5),
            ..fig5::black(vms[0], *vms.last().unwrap())
        };
        let err = orch.deploy_chain(
            &dc,
            "t",
            vms,
            spec,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        assert!(
            matches!(
                err,
                Err(Error::Deploy(DeployError::LatencyBudgetExceeded { .. }))
            ),
            "{err:?}"
        );
        assert_eq!(orch.chain_count(), 0);
        assert_eq!(orch.manager().cluster_count(), 0);
        assert_eq!(orch.sdn().total_rules(), 0);
    }

    #[test]
    fn budget_includes_conversion_latency() {
        // A chain with an electronic VNF incurs a conversion (10 µs by
        // default); budgets between raw path latency and path + conversion
        // latency must reject.
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms: Vec<_> = dc.vm_ids().collect();
        // Deploy without budget to learn the path latency.
        let probe = fig5::blue(vms[0], *vms.last().unwrap());
        let id = orch
            .deploy_chain(
                &dc,
                "probe",
                vms.clone(),
                probe.clone(),
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        let chain = orch.chain(id).unwrap();
        let raw = chain.path().latency_us();
        let conversions = chain.oeo_conversions();
        orch.teardown_chain(id).unwrap();
        if conversions == 0 {
            return; // nothing to assert on this topology
        }
        // Budget covering raw latency but not conversions.
        let spec = ChainSpec {
            max_latency_us: Some(raw + 1.0),
            ..probe
        };
        let err = orch.deploy_chain(
            &dc,
            "t",
            vms,
            spec,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        assert!(matches!(
            err,
            Err(Error::Deploy(DeployError::LatencyBudgetExceeded { .. }))
        ));
    }

    #[test]
    fn modify_respects_budget() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms: Vec<_> = dc.vm_ids().collect();
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        let id = orch
            .deploy_chain(
                &dc,
                "t",
                vms.clone(),
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        let tight = ChainSpec {
            max_latency_us: Some(0.5),
            ..fig5::green(vms[0], *vms.last().unwrap())
        };
        let err = orch.modify_chain(&dc, id, tight, &ElectronicOnlyPlacer::new());
        assert!(matches!(
            err,
            Err(Error::Deploy(DeployError::LatencyBudgetExceeded { .. }))
        ));
        // Old chain intact.
        assert_eq!(orch.chain(id).unwrap().nfc().spec().name, "fig5-black");
    }
}

#[cfg(test)]
mod tcam_tests {
    use super::*;
    use crate::chain::fig5;
    use crate::placement::ElectronicOnlyPlacer;
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::AlvcTopologyBuilder;

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(6)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(18)
            .tor_ops_degree(6)
            .opto_fraction(0.5)
            .seed(71)
            .build()
    }

    #[test]
    fn tight_table_limit_rejects_and_rolls_back() {
        let dc = dc();
        // One rule per switch: any multi-visit path overflows instantly.
        #[allow(deprecated)] // the deprecated constructor must keep working
        let mut orch = Orchestrator::with_sdn_table_limit(1);
        let vms: Vec<_> = dc.vm_ids().collect();
        let spec = fig5::green(vms[0], *vms.last().unwrap());
        let err = orch.deploy_chain(
            &dc,
            "t",
            vms,
            spec,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        );
        match err {
            Err(Error::Deploy(DeployError::RuleTableFull(_))) => {
                assert_eq!(orch.chain_count(), 0);
                assert_eq!(orch.sdn().total_rules(), 0);
                assert_eq!(orch.manager().cluster_count(), 0);
                assert_eq!(orch.manager().availability().blocked_count(), 0);
            }
            Ok(id) => {
                // The path may happen to visit each switch once; then the
                // deployment legally fits the limit.
                let chain = orch.chain(id).unwrap();
                let nodes = chain.path().nodes();
                let mut seen = std::collections::HashSet::new();
                assert!(nodes.iter().all(|n| seen.insert(*n)));
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn generous_table_limit_admits() {
        let dc = dc();
        let mut orch = Orchestrator::builder().sdn_table_limit(1024).build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        assert!(orch
            .deploy_chain(
                &dc,
                "t",
                vms,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new()
            )
            .is_ok());
    }

    #[test]
    fn modify_failure_under_table_limit_preserves_old_chain() {
        let dc = dc();
        // Enough slots for a short chain but not a long one.
        let mut orch = Orchestrator::builder().sdn_table_limit(2).build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let short = ChainSpec::builder("fwd")
            .passthrough()
            .ingress(vms[0])
            .egress(vms[1])
            .build()
            .unwrap();
        let Ok(id) = orch.deploy_chain(
            &dc,
            "t",
            vms.clone(),
            short,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        ) else {
            return; // even the short path overflowed; nothing to modify
        };
        let long = fig5::green(vms[0], *vms.last().unwrap());
        let err = orch.modify_chain(&dc, id, long, &ElectronicOnlyPlacer::new());
        if err.is_err() {
            assert!(matches!(
                err,
                Err(Error::Deploy(DeployError::RuleTableFull(_)))
            ));
            let chain = orch.chain(id).unwrap();
            assert_eq!(chain.nfc().spec().name, "fwd", "old chain preserved");
            assert_eq!(
                orch.sdn().total_rules(),
                chain.path().nodes().len(),
                "old rules intact"
            );
        }
    }
}
