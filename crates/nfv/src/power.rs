//! Orchestrator-level power management: the execution half of the energy
//! plane (the planning half lives in `alvc-energy`).
//!
//! [`Orchestrator::set_power_state`] is the single entry point. Power
//! transitions are *planned*, not failures: an element may only leave
//! [`PowerState::Active`] once nothing references it — no chain path, VNF
//! host, flow rule, or bandwidth commitment — and a powered-off element is
//! invisible to placement, routing, and AL construction until powered back
//! on. Rejection is side-effect-free, so the control plane can expose the
//! transition as a replayable operator intent
//! ([`Intent::SetPowerState`](crate::control::Intent::SetPowerState)).

use alvc_topology::{DataCenter, Element, PowerOverlay, PowerState};

use crate::error::PowerError;
use crate::orchestrator::Orchestrator;
use crate::recovery::{element_node, host_on};

impl Orchestrator {
    /// The orchestrator's power-state overlay.
    pub fn power(&self) -> &PowerOverlay {
        &self.power
    }

    /// Whether `element` carries any live orchestrator state: a flow rule
    /// on its switch node, a chain path crossing it, a VNF instance hosted
    /// on it, or a bandwidth commitment on one of its links. Elements in
    /// use must stay [`PowerState::Active`]; the consolidation planner in
    /// `alvc-energy` uses this as its safety predicate.
    pub fn element_in_use(&self, dc: &DataCenter, element: Element) -> bool {
        let node = element_node(dc, element);
        if self.sdn.rules_on_switch(node) > 0 {
            return true;
        }
        for chain in self.chains.values() {
            if chain.path.nodes().contains(&node) {
                return true;
            }
            if chain.hosts.iter().any(|&h| host_on(h, element)) {
                return true;
            }
        }
        for e in self.link_committed.edges() {
            if let Some((a, b)) = dc.graph().edge_endpoints(e) {
                if a == node || b == node {
                    return true;
                }
            }
        }
        if self.instances.values().any(|i| host_on(i.host(), element)) {
            return true;
        }
        false
    }

    /// Moves `element` to `state`, returning the previous state.
    ///
    /// Allowed transitions form `Active ⇄ Idle ⇄ PoweredOff` (plus the
    /// direct `Active ⇄ PoweredOff` edges). Leaving `Active` requires the
    /// element to be idle in fact — [`Orchestrator::element_in_use`] must
    /// be false — and powering an OPS off additionally requires that no
    /// abstraction layer owns it (recluster it away first). Re-powering is
    /// always allowed. The call is idempotent: setting the current state
    /// again is a no-op returning `Ok(state)`.
    ///
    /// # Errors
    ///
    /// [`PowerError`] if the transition is rejected; nothing is committed.
    pub fn set_power_state(
        &mut self,
        dc: &DataCenter,
        element: Element,
        state: PowerState,
    ) -> Result<PowerState, PowerError> {
        let previous = self.power.state(element);
        if previous == state {
            return Ok(previous);
        }
        if !self.health.is_up(element) {
            return Err(PowerError::Failed { element });
        }
        if state != PowerState::Active && self.element_in_use(dc, element) {
            return Err(PowerError::InUse { element });
        }
        if state == PowerState::PoweredOff {
            if let Element::Ops(ops) = element {
                // Blocks the switch in the manager's availability view so
                // no future AL construction or rebuild picks it.
                if !self.manager.power_off_ops(ops) {
                    return Err(PowerError::OpsOwned { ops });
                }
            }
        }
        if previous == PowerState::PoweredOff {
            if let Element::Ops(ops) = element {
                self.manager.power_on_ops(ops);
            }
        }
        self.power.set(element, state);
        // Powered-off elements change the usable substrate for every
        // tenant, so the next published StateView must be a full capture.
        if state == PowerState::PoweredOff || previous == PowerState::PoweredOff {
            self.changes.mark_full();
        }
        alvc_telemetry::counter_with("alvc_nfv.power.transitions", state.label()).incr();
        alvc_telemetry::gauge!("alvc_nfv.power.powered_off_elements")
            .set(self.power.powered_off_count() as f64);
        if !self.quiet {
            alvc_telemetry::event!(
                "alvc_nfv.power.transition",
                "element" = element.to_string().as_str(),
                "state" = state.label(),
            );
        }
        Ok(previous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::fig5;
    use crate::placement::ElectronicOnlyPlacer;
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::{AlvcTopologyBuilder, OpsInterconnect, ServiceType};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(8)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(24)
            .tor_ops_degree(4)
            .opto_fraction(0.5)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(31)
            .build()
    }

    #[test]
    fn idle_unused_elements_power_off_and_back_on() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let ops = dc.ops_ids().next().unwrap();
        let e = Element::Ops(ops);
        assert!(!orch.element_in_use(&dc, e));
        assert_eq!(
            orch.set_power_state(&dc, e, PowerState::Idle),
            Ok(PowerState::Active)
        );
        assert_eq!(
            orch.set_power_state(&dc, e, PowerState::PoweredOff),
            Ok(PowerState::Idle)
        );
        assert!(!orch.manager().availability().is_available(ops));
        assert_eq!(
            orch.set_power_state(&dc, e, PowerState::Active),
            Ok(PowerState::PoweredOff)
        );
        assert!(orch.manager().availability().is_available(ops));
        assert!(orch.power().all_active());
    }

    #[test]
    fn elements_in_use_refuse_to_leave_active() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        let ingress_server = dc.server_of_vm(vms[0]);
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        let id = orch
            .deploy_chain(
                &dc,
                "web",
                vms,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        let al_ops = orch
            .manager()
            .cluster(orch.chain(id).unwrap().cluster())
            .unwrap()
            .al()
            .ops()
            .to_vec();
        // The ingress server carries the chain's path.
        let e = Element::Server(ingress_server);
        assert!(orch.element_in_use(&dc, e));
        assert_eq!(
            orch.set_power_state(&dc, e, PowerState::PoweredOff),
            Err(PowerError::InUse { element: e })
        );
        // An AL-owned OPS off the path is refused as owned (if unused) or
        // busy (if routed through) — never powered off.
        for &o in &al_ops {
            let r = orch.set_power_state(&dc, Element::Ops(o), PowerState::PoweredOff);
            assert!(
                matches!(
                    r,
                    Err(PowerError::OpsOwned { .. }) | Err(PowerError::InUse { .. })
                ),
                "AL member must not power off: {r:?}"
            );
        }
        assert!(orch.power().all_active());
    }

    #[test]
    fn powered_off_ops_is_invisible_to_new_deployments() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let deploy = |orch: &mut Orchestrator| {
            let vms = dc.vms_of_service(ServiceType::WebService);
            let spec = fig5::black(vms[0], *vms.last().unwrap());
            orch.deploy_chain(
                &dc,
                "web",
                vms,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap()
        };
        // Learn which switches one web chain needs, then power down every
        // switch that can be vacated (not AL-owned, not on the path).
        let first = deploy(&mut orch);
        let mut off = std::collections::HashSet::new();
        for o in dc.ops_ids() {
            if orch
                .set_power_state(&dc, Element::Ops(o), PowerState::PoweredOff)
                .is_ok()
            {
                off.insert(o);
            }
        }
        assert!(!off.is_empty(), "some switch is vacatable");
        orch.teardown_chain(first).unwrap();
        // A fresh deployment must build its AL and route entirely on the
        // switches that remain powered.
        let id = deploy(&mut orch);
        let vc = orch
            .manager()
            .cluster(orch.chain(id).unwrap().cluster())
            .unwrap();
        assert!(vc.al().ops().iter().all(|o| !off.contains(o)));
        for &n in orch.chain(id).unwrap().path().nodes() {
            assert!(orch.node_usable(&dc, n));
        }
    }

    #[test]
    fn failed_elements_cannot_transition() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let ops = dc.ops_ids().next().unwrap();
        orch.fail_ops(&dc, ops, &PaperGreedy::new(), &ElectronicOnlyPlacer::new());
        assert_eq!(
            orch.set_power_state(&dc, Element::Ops(ops), PowerState::PoweredOff),
            Err(PowerError::Failed {
                element: Element::Ops(ops)
            })
        );
    }
}
