//! The SDN controller block of Fig. 6.
//!
//! "SDN controller provision, control, and manage the optical network and
//! provide virtual connectivity services to users between VMs hosting
//! VNFs." Concretely it installs one forwarding rule per switch along each
//! chain's path and tracks table occupancy per switch.

use std::collections::{BTreeMap, HashMap};

use alvc_graph::NodeId;
use alvc_optical::HybridPath;
use serde::{Deserialize, Serialize};

use crate::chain::NfcId;

/// A forwarding rule installed on one switch for one chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRule {
    /// The chain the rule belongs to.
    pub chain: NfcId,
    /// Switch (graph node) holding the rule.
    pub switch: NodeId,
    /// Where matched packets come from (previous hop), if any.
    pub in_port: Option<NodeId>,
    /// Where matched packets go (next hop), if any.
    pub out_port: Option<NodeId>,
}

/// Tracks installed flow rules per chain and per switch.
///
/// # Example
///
/// ```
/// use alvc_graph::NodeId;
/// use alvc_nfv::{NfcId, SdnController};
/// use alvc_optical::HybridPath;
/// use alvc_topology::Domain::Optical;
///
/// let mut ctl = SdnController::new();
/// let path = HybridPath::new(vec![NodeId(0), NodeId(1), NodeId(2)], vec![Optical; 2], 2.0);
/// let installed = ctl.install_path(NfcId(0), &path);
/// assert_eq!(installed, 3);
/// assert_eq!(ctl.rules_for_chain(NfcId(0)).len(), 3);
/// ctl.remove_chain(NfcId(0));
/// assert_eq!(ctl.total_rules(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SdnController {
    rules: BTreeMap<NfcId, Vec<FlowRule>>,
    per_switch: HashMap<NodeId, usize>,
    /// Flow-table capacity per switch (TCAM size); `None` = unlimited.
    table_limit: Option<usize>,
}

/// A switch's flow table is full (its TCAM limit would be exceeded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull {
    /// The saturated switch.
    pub switch: NodeId,
    /// The configured per-switch limit.
    pub limit: usize,
}

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flow table of switch {} is full (limit {})",
            self.switch.index(),
            self.limit
        )
    }
}

impl std::error::Error for TableFull {}

impl SdnController {
    /// Creates an empty controller with unlimited flow tables.
    pub fn new() -> Self {
        SdnController::default()
    }

    /// Creates a controller whose switches hold at most `limit` rules each
    /// (hardware TCAM capacity).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn with_table_limit(limit: usize) -> Self {
        assert!(limit > 0, "table limit must be positive");
        SdnController {
            table_limit: Some(limit),
            ..SdnController::default()
        }
    }

    /// The per-switch rule limit, if any.
    pub fn table_limit(&self) -> Option<usize> {
        self.table_limit
    }

    /// Fallible installation: like [`SdnController::install_path`], but
    /// checks the per-switch table limit first and installs nothing on
    /// overflow. (Replacing a chain's own rules frees its slots before the
    /// check.)
    ///
    /// # Errors
    ///
    /// [`TableFull`] naming the first saturated switch.
    pub fn try_install_path(
        &mut self,
        chain: NfcId,
        path: &HybridPath,
    ) -> Result<usize, TableFull> {
        if let Some(limit) = self.table_limit {
            // Slots freed by replacing this chain's old rules.
            let mut freed: HashMap<NodeId, usize> = HashMap::new();
            if let Some(old) = self.rules.get(&chain) {
                for r in old {
                    *freed.entry(r.switch).or_insert(0) += 1;
                }
            }
            let mut incoming: HashMap<NodeId, usize> = HashMap::new();
            for &n in path.nodes() {
                *incoming.entry(n).or_insert(0) += 1;
            }
            for (&n, &add) in &incoming {
                let current = self.per_switch.get(&n).copied().unwrap_or(0)
                    - freed.get(&n).copied().unwrap_or(0);
                if current + add > limit {
                    return Err(TableFull { switch: n, limit });
                }
            }
        }
        Ok(self.install_path(chain, path))
    }

    /// Installs forwarding rules for `chain` along `path` (one rule per
    /// traversed node); returns how many rules were installed.
    ///
    /// Installing a second path for the same chain *replaces* the previous
    /// rules (chain modification, §IV.B).
    pub fn install_path(&mut self, chain: NfcId, path: &HybridPath) -> usize {
        self.remove_chain(chain);
        let nodes = path.nodes();
        let mut rules = Vec::with_capacity(nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            rules.push(FlowRule {
                chain,
                switch: n,
                in_port: (i > 0).then(|| nodes[i - 1]),
                out_port: (i + 1 < nodes.len()).then(|| nodes[i + 1]),
            });
            *self.per_switch.entry(n).or_insert(0) += 1;
        }
        let count = rules.len();
        self.rules.insert(chain, rules);
        count
    }

    /// Removes every rule of `chain`; returns how many were removed.
    pub fn remove_chain(&mut self, chain: NfcId) -> usize {
        let Some(rules) = self.rules.remove(&chain) else {
            return 0;
        };
        for r in &rules {
            if let Some(c) = self.per_switch.get_mut(&r.switch) {
                *c -= 1;
                if *c == 0 {
                    self.per_switch.remove(&r.switch);
                }
            }
        }
        rules.len()
    }

    /// The rules currently installed for `chain` (empty if none).
    pub fn rules_for_chain(&self, chain: NfcId) -> &[FlowRule] {
        self.rules.get(&chain).map_or(&[], |v| v.as_slice())
    }

    /// Number of rules resident on `switch`.
    pub fn rules_on_switch(&self, switch: NodeId) -> usize {
        self.per_switch.get(&switch).copied().unwrap_or(0)
    }

    /// Total rules across all switches.
    pub fn total_rules(&self) -> usize {
        self.rules.values().map(|v| v.len()).sum()
    }

    /// Number of chains with installed paths.
    pub fn chain_count(&self) -> usize {
        self.rules.len()
    }

    /// The most-loaded switch and its rule count, if any rules exist.
    pub fn hottest_switch(&self) -> Option<(NodeId, usize)> {
        self.per_switch
            .iter()
            .max_by_key(|&(n, c)| (*c, std::cmp::Reverse(n.index())))
            .map(|(&n, &c)| (n, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_topology::Domain::Optical;

    fn path(ids: &[usize]) -> HybridPath {
        HybridPath::new(
            ids.iter().map(|&i| NodeId(i)).collect(),
            vec![Optical; ids.len() - 1],
            ids.len() as f64,
        )
    }

    #[test]
    fn install_creates_rule_per_node() {
        let mut ctl = SdnController::new();
        assert_eq!(ctl.install_path(NfcId(0), &path(&[0, 1, 2, 3])), 4);
        assert_eq!(ctl.total_rules(), 4);
        assert_eq!(ctl.chain_count(), 1);
        let rules = ctl.rules_for_chain(NfcId(0));
        assert_eq!(rules[0].in_port, None);
        assert_eq!(rules[0].out_port, Some(NodeId(1)));
        assert_eq!(rules[3].in_port, Some(NodeId(2)));
        assert_eq!(rules[3].out_port, None);
    }

    #[test]
    fn reinstall_replaces_rules() {
        let mut ctl = SdnController::new();
        ctl.install_path(NfcId(0), &path(&[0, 1, 2]));
        ctl.install_path(NfcId(0), &path(&[0, 5]));
        assert_eq!(ctl.total_rules(), 2);
        assert_eq!(ctl.rules_on_switch(NodeId(1)), 0);
        assert_eq!(ctl.rules_on_switch(NodeId(5)), 1);
    }

    #[test]
    fn shared_switch_counts_per_chain() {
        let mut ctl = SdnController::new();
        ctl.install_path(NfcId(0), &path(&[0, 1, 2]));
        ctl.install_path(NfcId(1), &path(&[3, 1, 4]));
        assert_eq!(ctl.rules_on_switch(NodeId(1)), 2);
        assert_eq!(ctl.hottest_switch(), Some((NodeId(1), 2)));
        ctl.remove_chain(NfcId(0));
        assert_eq!(ctl.rules_on_switch(NodeId(1)), 1);
        assert_eq!(ctl.rules_on_switch(NodeId(0)), 0);
    }

    #[test]
    fn remove_unknown_chain_is_zero() {
        let mut ctl = SdnController::new();
        assert_eq!(ctl.remove_chain(NfcId(9)), 0);
        assert!(ctl.rules_for_chain(NfcId(9)).is_empty());
        assert_eq!(ctl.hottest_switch(), None);
    }

    #[test]
    fn trivial_single_node_path() {
        let mut ctl = SdnController::new();
        let p = HybridPath::new(vec![NodeId(7)], vec![], 0.0);
        assert_eq!(ctl.install_path(NfcId(0), &p), 1);
        let rules = ctl.rules_for_chain(NfcId(0));
        assert_eq!(rules[0].in_port, None);
        assert_eq!(rules[0].out_port, None);
    }
}

#[cfg(test)]
mod table_limit_tests {
    use super::*;
    use alvc_topology::Domain::Optical;

    fn path(ids: &[usize]) -> HybridPath {
        HybridPath::new(
            ids.iter().map(|&i| NodeId(i)).collect(),
            vec![Optical; ids.len() - 1],
            1.0,
        )
    }

    #[test]
    fn limit_rejects_overflow_and_installs_nothing() {
        let mut ctl = SdnController::with_table_limit(2);
        assert_eq!(ctl.table_limit(), Some(2));
        ctl.try_install_path(NfcId(0), &path(&[0, 1])).unwrap();
        ctl.try_install_path(NfcId(1), &path(&[1, 2])).unwrap();
        // Switch 1 now holds 2 rules; a third chain through it must fail.
        let err = ctl
            .try_install_path(NfcId(2), &path(&[3, 1, 4]))
            .unwrap_err();
        assert_eq!(err.switch, NodeId(1));
        assert_eq!(err.limit, 2);
        assert!(err.to_string().contains("full"));
        // Nothing partially installed.
        assert!(ctl.rules_for_chain(NfcId(2)).is_empty());
        assert_eq!(ctl.rules_on_switch(NodeId(3)), 0);
    }

    #[test]
    fn replacing_own_rules_frees_slots() {
        let mut ctl = SdnController::with_table_limit(1);
        ctl.try_install_path(NfcId(0), &path(&[0, 1])).unwrap();
        // Same chain re-routes through switch 1 again: its old slot frees.
        ctl.try_install_path(NfcId(0), &path(&[1, 2])).unwrap();
        assert_eq!(ctl.rules_on_switch(NodeId(1)), 1);
        assert_eq!(ctl.rules_on_switch(NodeId(0)), 0);
        // But a different chain cannot use switch 1.
        assert!(ctl.try_install_path(NfcId(1), &path(&[1, 3])).is_err());
    }

    #[test]
    fn unlimited_controller_never_rejects() {
        let mut ctl = SdnController::new();
        assert_eq!(ctl.table_limit(), None);
        for i in 0..100 {
            ctl.try_install_path(NfcId(i), &path(&[0, 1])).unwrap();
        }
        assert_eq!(ctl.rules_on_switch(NodeId(0)), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_rejected() {
        SdnController::with_table_limit(0);
    }
}
