//! The intent taxonomy: what tenants may ask the control plane to do.
//!
//! An [`Intent`] is a *declarative request* — "run this chain", "retire
//! that replica" — not a method call. The control plane decides when to
//! execute it (batching), whether to execute it (admission), and records
//! what happened ([`IntentOutcome`]) in a deterministic, replayable
//! [`IntentLog`].

use alvc_affinity::VmMove;
use alvc_topology::{Element, PowerState, VmId};

use crate::chain::{ChainSpec, NfcId};
use crate::control::AdmissionError;
use crate::error::Error;
use crate::lifecycle::VnfInstanceId;

/// Identifier of one submitted intent, unique per control plane and
/// assigned in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntentId(pub u64);

impl IntentId {
    /// The raw submission index.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for IntentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "intent-{}", self.0)
    }
}

/// A declarative request covering the full chain lifecycle (§IV.B:
/// "provisioning, creation, modification, upgradation, and deletion of
/// multiple NFCs"), plus the operator-side failure workflow.
///
/// Tenant attribution lives in the submission envelope
/// ([`crate::ControlPlane::submit`]), not in the intent itself.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Intent {
    /// Deploy a new chain over the tenant's VM group.
    DeployChain {
        /// The tenant's VMs (the future virtual cluster / slice).
        vms: Vec<VmId>,
        /// The chain to run.
        spec: ChainSpec,
    },
    /// Tear a deployed chain down, releasing all of its state.
    TeardownChain {
        /// The chain to retire.
        chain: NfcId,
    },
    /// Replace a deployed chain's VNF set in place, keeping its slice.
    ModifyChain {
        /// The chain to modify.
        chain: NfcId,
        /// The replacement spec.
        spec: ChainSpec,
    },
    /// Add a replica of one chain VNF on another host in the slice.
    ScaleOut {
        /// The chain owning the VNF.
        chain: NfcId,
        /// Index of the VNF within the chain.
        position: usize,
    },
    /// Retire a replica created by a previous [`Intent::ScaleOut`].
    ScaleIn {
        /// The replica instance to retire.
        replica: VnfInstanceId,
    },
    /// Operator-only: fail a substrate element and run the recovery
    /// ladder over every affected chain.
    FailElement {
        /// The element that failed.
        element: Element,
    },
    /// Operator-only: restore a previously failed element.
    RestoreElement {
        /// The element to restore.
        element: Element,
    },
    /// Operator-only: re-run recovery for degraded chains, pulling them
    /// back into their slices where possible.
    Reoptimize,
    /// Operator-only: apply an approved adaptive re-clustering plan —
    /// move VMs between virtual clusters, rebuild invalidated abstraction
    /// layers, and reroute chains whose AL changed. The moves are carried
    /// as data (not recomputed at execution time) so replaying the intent
    /// log reproduces the exact same migration.
    Recluster {
        /// The planned VM migrations, typically from an approved
        /// `alvc_affinity::ReclusterPlan`.
        moves: Vec<VmMove>,
    },
    /// Operator-only: move a substrate element between power states
    /// (`Active ⇄ Idle ⇄ PoweredOff`). Leaving `Active` requires the
    /// element to carry no live flows or hosts; powering an OPS off
    /// additionally requires that no abstraction layer owns it. Rejection
    /// is side-effect-free, so the energy plane's consolidation loop can
    /// submit speculative power-downs safely.
    SetPowerState {
        /// The element to transition.
        element: Element,
        /// The requested power state.
        state: PowerState,
    },
}

/// Coarse classification of an [`Intent`], used for telemetry labels and
/// admission rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IntentKind {
    /// [`Intent::DeployChain`].
    DeployChain,
    /// [`Intent::TeardownChain`].
    TeardownChain,
    /// [`Intent::ModifyChain`].
    ModifyChain,
    /// [`Intent::ScaleOut`].
    ScaleOut,
    /// [`Intent::ScaleIn`].
    ScaleIn,
    /// [`Intent::FailElement`].
    FailElement,
    /// [`Intent::RestoreElement`].
    RestoreElement,
    /// [`Intent::Reoptimize`].
    Reoptimize,
    /// [`Intent::Recluster`].
    Recluster,
    /// [`Intent::SetPowerState`].
    SetPowerState,
}

impl IntentKind {
    /// Short label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            IntentKind::DeployChain => "deploy_chain",
            IntentKind::TeardownChain => "teardown_chain",
            IntentKind::ModifyChain => "modify_chain",
            IntentKind::ScaleOut => "scale_out",
            IntentKind::ScaleIn => "scale_in",
            IntentKind::FailElement => "fail_element",
            IntentKind::RestoreElement => "restore_element",
            IntentKind::Reoptimize => "reoptimize",
            IntentKind::Recluster => "recluster",
            IntentKind::SetPowerState => "set_power_state",
        }
    }

    /// Whether only the operator tenant may submit this kind.
    pub fn operator_only(self) -> bool {
        matches!(
            self,
            IntentKind::FailElement
                | IntentKind::RestoreElement
                | IntentKind::Reoptimize
                | IntentKind::Recluster
                | IntentKind::SetPowerState
        )
    }
}

impl Intent {
    /// This intent's [`IntentKind`].
    pub fn kind(&self) -> IntentKind {
        match self {
            Intent::DeployChain { .. } => IntentKind::DeployChain,
            Intent::TeardownChain { .. } => IntentKind::TeardownChain,
            Intent::ModifyChain { .. } => IntentKind::ModifyChain,
            Intent::ScaleOut { .. } => IntentKind::ScaleOut,
            Intent::ScaleIn { .. } => IntentKind::ScaleIn,
            Intent::FailElement { .. } => IntentKind::FailElement,
            Intent::RestoreElement { .. } => IntentKind::RestoreElement,
            Intent::Reoptimize => IntentKind::Reoptimize,
            Intent::Recluster { .. } => IntentKind::Recluster,
            Intent::SetPowerState { .. } => IntentKind::SetPowerState,
        }
    }

    /// The chain this intent targets, when it targets exactly one
    /// *existing* chain ([`Intent::DeployChain`] creates its own).
    pub fn target_chain(&self) -> Option<NfcId> {
        match self {
            Intent::TeardownChain { chain }
            | Intent::ModifyChain { chain, .. }
            | Intent::ScaleOut { chain, .. } => Some(*chain),
            _ => None,
        }
    }
}

/// What an executed intent did to the data center.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IntentEffect {
    /// A chain was deployed.
    Deployed {
        /// The new chain's id.
        chain: NfcId,
    },
    /// A chain was torn down.
    TornDown {
        /// The retired chain's id.
        chain: NfcId,
    },
    /// A chain's VNF set was replaced in place.
    Modified {
        /// The modified chain's id.
        chain: NfcId,
    },
    /// A replica was created.
    ScaledOut {
        /// The chain owning the replicated VNF.
        chain: NfcId,
        /// The new replica instance.
        replica: VnfInstanceId,
    },
    /// A replica was retired.
    ScaledIn {
        /// The retired replica instance.
        replica: VnfInstanceId,
    },
    /// An element failed and recovery ran.
    Recovered {
        /// Chains the failure touched.
        affected: usize,
        /// Affected chains still serving traffic afterwards.
        serving: usize,
    },
    /// An element restore was attempted.
    Restored {
        /// Whether the element was actually failed before the restore.
        was_failed: bool,
    },
    /// Degraded chains were re-optimized.
    Reoptimized {
        /// Degraded chains re-examined.
        examined: usize,
        /// Chains still degraded afterwards.
        still_degraded: usize,
    },
    /// An adaptive re-clustering plan was applied.
    Reclustered {
        /// VM moves actually applied.
        applied: usize,
        /// Planned moves skipped as stale or invalid (pinned endpoint,
        /// VM no longer in the source cluster, unknown cluster).
        skipped: usize,
        /// Abstraction layers rebuilt for the affected clusters.
        als_rebuilt: usize,
        /// Chains rerouted because their cluster's AL changed.
        chains_rerouted: usize,
    },
    /// An element's power state was set.
    PowerStateSet {
        /// The state the element was in before the transition (equal to
        /// the requested state when the intent was an idempotent no-op).
        previous: PowerState,
    },
}

/// How one intent fared.
#[derive(Debug, Clone, PartialEq)]
pub enum IntentOutcome {
    /// The intent executed and changed (or verified) state.
    Completed(IntentEffect),
    /// Admission control rejected the intent *before any state was
    /// touched* — no cluster, rule, ledger entry, or instance exists
    /// because of it.
    Rejected(AdmissionError),
    /// The intent passed admission but the orchestrator could not execute
    /// it; partial state was rolled back.
    Failed(Error),
}

impl IntentOutcome {
    /// `true` for [`IntentOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, IntentOutcome::Completed(_))
    }

    /// `true` for [`IntentOutcome::Rejected`].
    pub fn is_rejected(&self) -> bool {
        matches!(self, IntentOutcome::Rejected(_))
    }

    /// Short label for telemetry and reports.
    pub fn label(&self) -> &'static str {
        match self {
            IntentOutcome::Completed(_) => "completed",
            IntentOutcome::Rejected(_) => "rejected",
            IntentOutcome::Failed(_) => "failed",
        }
    }
}

/// One replayable log entry: who asked for what, in which batch, and what
/// happened.
#[derive(Debug, Clone, PartialEq)]
pub struct IntentRecord {
    /// The intent's id (submission order).
    pub id: IntentId,
    /// The submitting tenant.
    pub tenant: String,
    /// Index of the batch that executed the intent. Replay preserves
    /// batch boundaries because admission (rate limits) is batch-scoped.
    pub batch: u64,
    /// The intent itself.
    pub intent: Intent,
    /// What happened.
    pub outcome: IntentOutcome,
}

/// The deterministic intent log: every intent the control plane executed,
/// in execution order, with its batch index and outcome.
///
/// Feeding a log back through [`crate::ControlPlane::replay`] on a fresh
/// control plane with the same configuration and data center reproduces
/// the live run bit-for-bit (same [`crate::StateView`], same outcomes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntentLog {
    records: Vec<IntentRecord>,
}

impl IntentLog {
    /// An empty log.
    pub fn new() -> Self {
        IntentLog::default()
    }

    pub(crate) fn push(&mut self, record: IntentRecord) {
        self.records.push(record);
    }

    /// All records, in execution order.
    pub fn records(&self) -> &[IntentRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been executed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records with the given outcome label (`"completed"`,
    /// `"rejected"`, `"failed"`).
    pub fn count_of(&self, label: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome.label() == label)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_labels_cover_the_taxonomy() {
        let intents = [
            (
                Intent::DeployChain {
                    vms: vec![],
                    spec: ChainSpec::builder("c")
                        .passthrough()
                        .ingress(VmId(0))
                        .egress(VmId(1))
                        .build()
                        .unwrap(),
                },
                "deploy_chain",
                false,
            ),
            (
                Intent::TeardownChain { chain: NfcId(0) },
                "teardown_chain",
                false,
            ),
            (
                Intent::ModifyChain {
                    chain: NfcId(0),
                    spec: ChainSpec::builder("c")
                        .passthrough()
                        .ingress(VmId(0))
                        .egress(VmId(1))
                        .build()
                        .unwrap(),
                },
                "modify_chain",
                false,
            ),
            (
                Intent::ScaleOut {
                    chain: NfcId(0),
                    position: 0,
                },
                "scale_out",
                false,
            ),
            (
                Intent::ScaleIn {
                    replica: VnfInstanceId(0),
                },
                "scale_in",
                false,
            ),
            (
                Intent::FailElement {
                    element: Element::Ops(alvc_topology::OpsId(0)),
                },
                "fail_element",
                true,
            ),
            (
                Intent::RestoreElement {
                    element: Element::Ops(alvc_topology::OpsId(0)),
                },
                "restore_element",
                true,
            ),
            (Intent::Reoptimize, "reoptimize", true),
            (Intent::Recluster { moves: vec![] }, "recluster", true),
            (
                Intent::SetPowerState {
                    element: Element::Ops(alvc_topology::OpsId(0)),
                    state: PowerState::PoweredOff,
                },
                "set_power_state",
                true,
            ),
        ];
        for (intent, label, operator_only) in intents {
            assert_eq!(intent.kind().label(), label);
            assert_eq!(intent.kind().operator_only(), operator_only, "{label}");
        }
    }

    #[test]
    fn target_chain_only_for_existing_chain_intents() {
        assert_eq!(
            Intent::TeardownChain { chain: NfcId(4) }.target_chain(),
            Some(NfcId(4))
        );
        assert_eq!(Intent::Reoptimize.target_chain(), None);
        assert_eq!(
            Intent::ScaleIn {
                replica: VnfInstanceId(1)
            }
            .target_chain(),
            None,
            "replica ownership is resolved by the control plane"
        );
    }

    #[test]
    fn log_counts_by_outcome() {
        let mut log = IntentLog::new();
        assert!(log.is_empty());
        log.push(IntentRecord {
            id: IntentId(0),
            tenant: "a".into(),
            batch: 0,
            intent: Intent::Reoptimize,
            outcome: IntentOutcome::Completed(IntentEffect::Reoptimized {
                examined: 0,
                still_degraded: 0,
            }),
        });
        log.push(IntentRecord {
            id: IntentId(1),
            tenant: "b".into(),
            batch: 0,
            intent: Intent::Reoptimize,
            outcome: IntentOutcome::Rejected(AdmissionError::NotAuthorized { tenant: "b".into() }),
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.count_of("completed"), 1);
        assert_eq!(log.count_of("rejected"), 1);
        assert_eq!(log.count_of("failed"), 0);
    }
}
