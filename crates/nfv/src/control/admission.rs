//! Admission control: every intent is checked *before* any state is
//! mutated, so a rejection is free — no rollback, no residual SDN rules,
//! no ledger entries (the regression tests in `tests/prop_control.rs`
//! assert exactly that).
//!
//! Three rule families, all deterministic so that replaying an intent log
//! reproduces every decision:
//!
//! 1. **Rate limits** — at most `max_intents_per_batch` intents per tenant
//!    per executed batch (batch boundaries are recorded in the log).
//!    **Only admitted intents consume budget**: a rejection — including the
//!    `RateLimited` rejection itself — never decrements the tenant's
//!    remaining allowance, so garbage submissions cannot crowd a tenant's
//!    valid intents out of its own budget. Rejections still occupy the
//!    batch slot the scheduler granted them; the budget is about executed
//!    work, the slot is about drain order.
//! 2. **Quotas** — at most `max_live_chains` deployed chains per tenant,
//!    counting chains admitted earlier in the same batch. The live count
//!    is maintained incrementally (per-tenant counters bumped on deploy
//!    and teardown), so the check is O(1) rather than a scan of every
//!    deployed chain.
//! 3. **Capacity & authority pre-checks** — structurally unservable
//!    requests (empty VM group, endpoints outside the group, non-finite or
//!    unservable bandwidth), intents against chains the tenant does not
//!    own, and operator-only intents from ordinary tenants.
//!
//! Quotas also carry the tenant's scheduling [`TenantQuota::weight`],
//! consumed by the control plane's deficit-round-robin scheduler (see
//! `control::scheduler`): a tenant with weight *w* receives *w* batch
//! slots per scheduling round relative to weight-1 tenants.

use std::collections::BTreeMap;
use std::error::Error as StdError;
use std::fmt;

use crate::chain::{ChainSpecError, NfcId};
use crate::lifecycle::VnfInstanceId;

/// Per-tenant limits. `None` means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum simultaneously deployed chains.
    pub max_live_chains: Option<usize>,
    /// Maximum intents executed per batch (a deterministic rate limit:
    /// the batch is the control plane's clock tick).
    pub max_intents_per_batch: Option<usize>,
    /// Deficit-round-robin scheduling weight: batch slots granted per
    /// scheduling round relative to weight-1 tenants. `0` (the `Default`)
    /// is treated as `1`.
    pub weight: u32,
}

impl TenantQuota {
    /// No limits at all (scheduling weight 1).
    pub fn unlimited() -> Self {
        TenantQuota::default()
    }

    /// Limits both live chains and per-batch intent rate, at scheduling
    /// weight 1.
    pub fn new(max_live_chains: usize, max_intents_per_batch: usize) -> Self {
        TenantQuota {
            max_live_chains: Some(max_live_chains),
            max_intents_per_batch: Some(max_intents_per_batch),
            weight: 1,
        }
    }

    /// Sets the deficit-round-robin scheduling weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// The weight the scheduler actually uses (`0` reads as `1`).
    pub(crate) fn effective_weight(&self) -> u64 {
        u64::from(self.weight.max(1))
    }
}

/// The control plane's admission configuration: a default quota, optional
/// per-tenant overrides, and the operator tenant allowed to submit
/// failure-workflow intents.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionPolicy {
    pub(crate) default_quota: TenantQuota,
    pub(crate) overrides: BTreeMap<String, TenantQuota>,
    pub(crate) operator: String,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            default_quota: TenantQuota::unlimited(),
            overrides: BTreeMap::new(),
            operator: "operator".to_string(),
        }
    }
}

impl AdmissionPolicy {
    /// The default policy: unlimited quotas, operator tenant `"operator"`.
    pub fn new() -> Self {
        AdmissionPolicy::default()
    }

    /// The quota applying to `tenant` (override or default).
    pub fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.overrides
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }

    /// The tenant allowed to submit operator-only intents.
    pub fn operator(&self) -> &str {
        &self.operator
    }
}

/// Why admission control rejected an intent. Rejections are guaranteed
/// side-effect free.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The tenant already runs its maximum number of live chains.
    QuotaExceeded {
        /// The limited tenant.
        tenant: String,
        /// Live chains (including ones admitted earlier in this batch).
        live_chains: usize,
        /// The configured maximum.
        limit: usize,
    },
    /// The tenant exceeded its per-batch intent budget; resubmit in a
    /// later batch.
    RateLimited {
        /// The limited tenant.
        tenant: String,
        /// The configured per-batch maximum.
        limit: usize,
    },
    /// An operator-only intent came from an ordinary tenant.
    NotAuthorized {
        /// The submitting tenant.
        tenant: String,
    },
    /// The intent targets a chain the tenant does not own (or that does
    /// not exist — the distinction is deliberately not leaked).
    NotOwner {
        /// The submitting tenant.
        tenant: String,
        /// The foreign chain.
        chain: NfcId,
    },
    /// The intent targets a replica that does not exist or belongs to
    /// another tenant's chain.
    UnknownReplica {
        /// The submitting tenant.
        tenant: String,
        /// The unknown replica.
        replica: VnfInstanceId,
    },
    /// A deployment over an empty VM group can never succeed.
    EmptyVmGroup,
    /// A chain endpoint is not a member of the submitted VM group; the
    /// deployment would be rejected after cluster construction, so it is
    /// refused before.
    EndpointOutsideGroup,
    /// The requested bandwidth is not a positive finite number.
    InvalidBandwidth {
        /// The nonsensical figure.
        requested_gbps: f64,
    },
    /// No link in the data center can carry the requested bandwidth even
    /// when idle, so no path ever admits the chain.
    BandwidthUnservable {
        /// The requested bandwidth.
        requested_gbps: f64,
        /// The fattest link in the fabric.
        max_link_gbps: f64,
    },
    /// A plan-carrying intent (re-clustering) arrived with no moves; a
    /// no-op plan is rejected so the log never records phantom work.
    EmptyPlan,
    /// The chain specification failed structural validation (bad placement
    /// rules, a stage-less loop, an invalid latency budget, …).
    InvalidSpec {
        /// What exactly is wrong with the spec.
        reason: ChainSpecError,
    },
}

impl AdmissionError {
    /// A stable machine-readable reason code, used as the `code` field of
    /// rejection trace spans and flight-recorder dumps.
    pub fn code(&self) -> &'static str {
        match self {
            AdmissionError::QuotaExceeded { .. } => "quota_exceeded",
            AdmissionError::RateLimited { .. } => "rate_limited",
            AdmissionError::NotAuthorized { .. } => "not_authorized",
            AdmissionError::NotOwner { .. } => "not_owner",
            AdmissionError::UnknownReplica { .. } => "unknown_replica",
            AdmissionError::EmptyVmGroup => "empty_vm_group",
            AdmissionError::EndpointOutsideGroup => "endpoint_outside_group",
            AdmissionError::InvalidBandwidth { .. } => "invalid_bandwidth",
            AdmissionError::BandwidthUnservable { .. } => "bandwidth_unservable",
            AdmissionError::EmptyPlan => "empty_plan",
            AdmissionError::InvalidSpec { .. } => "invalid_spec",
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QuotaExceeded {
                tenant,
                live_chains,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' runs {live_chains} chains, at its limit of {limit}"
            ),
            AdmissionError::RateLimited { tenant, limit } => write!(
                f,
                "tenant '{tenant}' exceeded its budget of {limit} intents per batch"
            ),
            AdmissionError::NotAuthorized { tenant } => {
                write!(f, "tenant '{tenant}' may not submit operator-only intents")
            }
            AdmissionError::NotOwner { tenant, chain } => {
                write!(f, "tenant '{tenant}' does not own chain {chain}")
            }
            AdmissionError::UnknownReplica { tenant, replica } => {
                write!(f, "tenant '{tenant}' has no live replica {replica}")
            }
            AdmissionError::EmptyVmGroup => {
                write!(f, "a chain cannot be deployed over an empty vm group")
            }
            AdmissionError::EndpointOutsideGroup => {
                write!(f, "chain endpoints must belong to the submitted vm group")
            }
            AdmissionError::InvalidBandwidth { requested_gbps } => {
                write!(
                    f,
                    "requested bandwidth {requested_gbps} Gb/s is not a positive finite number"
                )
            }
            AdmissionError::BandwidthUnservable {
                requested_gbps,
                max_link_gbps,
            } => write!(
                f,
                "requested {requested_gbps} Gb/s exceeds the fattest link ({max_link_gbps} Gb/s)"
            ),
            AdmissionError::EmptyPlan => {
                write!(f, "a re-clustering plan with no moves is a no-op")
            }
            AdmissionError::InvalidSpec { reason } => {
                write!(f, "chain spec is invalid: {reason}")
            }
        }
    }
}

impl StdError for AdmissionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_resolves_overrides_then_default() {
        let mut policy = AdmissionPolicy::new();
        policy.default_quota = TenantQuota::new(4, 2);
        policy
            .overrides
            .insert("big".to_string(), TenantQuota::unlimited());
        assert_eq!(policy.quota_for("small"), TenantQuota::new(4, 2));
        assert_eq!(policy.quota_for("big"), TenantQuota::unlimited());
        assert_eq!(policy.operator(), "operator");
    }

    #[test]
    fn rejections_display_lowercase() {
        let errs = [
            AdmissionError::QuotaExceeded {
                tenant: "t".into(),
                live_chains: 3,
                limit: 3,
            },
            AdmissionError::RateLimited {
                tenant: "t".into(),
                limit: 2,
            },
            AdmissionError::NotAuthorized { tenant: "t".into() },
            AdmissionError::NotOwner {
                tenant: "t".into(),
                chain: NfcId(1),
            },
            AdmissionError::UnknownReplica {
                tenant: "t".into(),
                replica: VnfInstanceId(1),
            },
            AdmissionError::EmptyVmGroup,
            AdmissionError::EndpointOutsideGroup,
            AdmissionError::InvalidBandwidth {
                requested_gbps: f64::NAN,
            },
            AdmissionError::BandwidthUnservable {
                requested_gbps: 1000.0,
                max_link_gbps: 400.0,
            },
            AdmissionError::EmptyPlan,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }
}
