//! Fair submission scheduling: per-tenant queues drained by a
//! deterministic deficit-round-robin (DRR) scheduler.
//!
//! The original control plane kept one global FIFO, so a tenant
//! submitting a large burst ahead of everyone else owned every slot of
//! every batch until its burst drained — first-come-first-starved. Here
//! each tenant gets its own queue, and batch slots are granted by DRR:
//! tenants sit in a round-robin ring, each visit tops the tenant's
//! deficit counter up by its [`TenantQuota::weight`], and the tenant
//! dequeues one intent per deficit unit until the deficit or its queue
//! runs out. A tenant with weight *w* therefore receives *w* slots per
//! round relative to weight-1 tenants, independent of arrival order.
//!
//! Everything is deterministic — ring order is arrival order of the
//! first queued intent per tenant, costs are integral — so the drain
//! order is a pure function of the submission sequence. The control
//! plane records that drain order in the [`IntentLog`] as the batch
//! order, which is what keeps replay bit-identical without re-running
//! the scheduler (replay executes recorded batches directly).
//!
//! [`TenantQuota::weight`]: super::TenantQuota
//! [`IntentLog`]: super::IntentLog

use std::collections::{BTreeMap, VecDeque};

use super::Submission;

/// How queued submissions are drained into batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SchedulerMode {
    /// One global queue, strict submission order (the legacy behavior;
    /// susceptible to starvation under asymmetric load).
    Fifo,
    /// Per-tenant queues drained by deficit round-robin with weights
    /// from [`TenantQuota::weight`](super::TenantQuota::weight).
    #[default]
    DeficitRoundRobin,
}

/// One tenant's submission queue plus its DRR bookkeeping.
#[derive(Debug, Default)]
struct TenantQueue {
    queue: VecDeque<Submission>,
    /// Unspent batch slots carried into the tenant's next ring visit.
    deficit: u64,
    /// Slots granted per ring visit (cached from the tenant's quota at
    /// submission time, so scheduling never needs the policy).
    weight: u64,
    /// Whether the tenant currently sits in the ring.
    in_ring: bool,
    /// The tenant was cut off mid-quantum by the batch limit and pushed
    /// back to the ring front: its next visit spends the remaining
    /// deficit instead of refilling.
    resumed: bool,
}

/// The control plane's submission buffer: a FIFO or a set of per-tenant
/// queues, depending on [`SchedulerMode`].
#[derive(Debug)]
pub(crate) struct SubmissionQueues {
    mode: SchedulerMode,
    /// [`SchedulerMode::Fifo`] storage.
    fifo: VecDeque<Submission>,
    /// [`SchedulerMode::DeficitRoundRobin`] storage.
    tenants: BTreeMap<String, TenantQueue>,
    /// Round-robin ring of tenants with queued submissions.
    ring: VecDeque<String>,
    /// Total queued submissions across all queues.
    len: usize,
}

impl SubmissionQueues {
    pub(crate) fn new(mode: SchedulerMode) -> Self {
        SubmissionQueues {
            mode,
            fifo: VecDeque::new(),
            tenants: BTreeMap::new(),
            ring: VecDeque::new(),
            len: 0,
        }
    }

    /// Total queued submissions.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Enqueues a submission; `weight` is the tenant's current quota
    /// weight (re-read on every push, so policy changes apply to the
    /// tenant's next ring visit).
    pub(crate) fn push(&mut self, sub: Submission, weight: u64) {
        self.len += 1;
        match self.mode {
            SchedulerMode::Fifo => self.fifo.push_back(sub),
            SchedulerMode::DeficitRoundRobin => {
                let tenant = sub.tenant.clone();
                let t = self.tenants.entry(tenant.clone()).or_default();
                t.queue.push_back(sub);
                t.weight = weight.max(1);
                if !t.in_ring {
                    t.in_ring = true;
                    self.ring.push_back(tenant);
                }
            }
        }
    }

    /// Drains up to `limit` submissions in scheduling order.
    pub(crate) fn drain(&mut self, limit: usize) -> Vec<Submission> {
        let mut out = Vec::with_capacity(limit.min(self.len));
        match self.mode {
            SchedulerMode::Fifo => {
                while out.len() < limit {
                    let Some(sub) = self.fifo.pop_front() else {
                        break;
                    };
                    out.push(sub);
                }
            }
            SchedulerMode::DeficitRoundRobin => {
                while out.len() < limit {
                    let Some(tenant) = self.ring.pop_front() else {
                        break;
                    };
                    let t = self
                        .tenants
                        .get_mut(&tenant)
                        .expect("ring members have queues");
                    if t.resumed {
                        t.resumed = false;
                    } else {
                        t.deficit += t.weight;
                    }
                    while t.deficit > 0 && out.len() < limit {
                        let Some(sub) = t.queue.pop_front() else {
                            break;
                        };
                        t.deficit -= 1;
                        out.push(sub);
                    }
                    if t.queue.is_empty() {
                        // Idle tenants leave the ring and forfeit their
                        // deficit: DRR credit never accumulates while a
                        // tenant has nothing queued.
                        t.deficit = 0;
                        t.in_ring = false;
                    } else if t.deficit > 0 {
                        // Cut off mid-quantum by the batch limit: resume
                        // this tenant first next batch, without a refill.
                        t.resumed = true;
                        self.ring.push_front(tenant);
                    } else {
                        self.ring.push_back(tenant);
                    }
                }
            }
        }
        self.len -= out.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Intent, IntentId};
    use super::*;

    fn sub(id: u64, tenant: &str) -> Submission {
        Submission {
            id: IntentId(id),
            tenant: tenant.to_string(),
            intent: Intent::Reoptimize,
        }
    }

    fn order(subs: &[Submission]) -> Vec<(u64, &str)> {
        subs.iter().map(|s| (s.id.0, s.tenant.as_str())).collect()
    }

    #[test]
    fn fifo_preserves_submission_order() {
        let mut q = SubmissionQueues::new(SchedulerMode::Fifo);
        for (i, t) in ["a", "a", "b", "a"].iter().enumerate() {
            q.push(sub(i as u64, t), 1);
        }
        assert_eq!(q.len(), 4);
        assert_eq!(
            order(&q.drain(10)),
            vec![(0, "a"), (1, "a"), (2, "b"), (3, "a")]
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn drr_interleaves_a_burst_with_later_arrivals() {
        let mut q = SubmissionQueues::new(SchedulerMode::DeficitRoundRobin);
        // Tenant "noisy" floods first; "quiet" arrives after.
        for i in 0..6 {
            q.push(sub(i, "noisy"), 1);
        }
        q.push(sub(6, "quiet"), 1);
        q.push(sub(7, "quiet"), 1);
        // One slot each per round: noisy, quiet, noisy, quiet, ...
        assert_eq!(
            order(&q.drain(4)),
            vec![(0, "noisy"), (6, "quiet"), (1, "noisy"), (7, "quiet")]
        );
        // Quiet drained; noisy gets the whole batch again.
        assert_eq!(
            order(&q.drain(4)),
            vec![(2, "noisy"), (3, "noisy"), (4, "noisy"), (5, "noisy")]
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn drr_weights_scale_slots_per_round() {
        let mut q = SubmissionQueues::new(SchedulerMode::DeficitRoundRobin);
        for i in 0..4 {
            q.push(sub(i, "heavy"), 2);
        }
        for i in 4..8 {
            q.push(sub(i, "light"), 1);
        }
        // heavy spends 2 slots per visit, light 1.
        assert_eq!(
            order(&q.drain(6)),
            vec![
                (0, "heavy"),
                (1, "heavy"),
                (4, "light"),
                (2, "heavy"),
                (3, "heavy"),
                (5, "light"),
            ]
        );
    }

    #[test]
    fn drr_resumes_a_cut_off_quantum_without_refill() {
        let mut q = SubmissionQueues::new(SchedulerMode::DeficitRoundRobin);
        for i in 0..4 {
            q.push(sub(i, "w3"), 3);
        }
        for i in 4..8 {
            q.push(sub(i, "w1"), 1);
        }
        // Batch of 2 cuts w3 off mid-quantum (deficit 1 left).
        assert_eq!(order(&q.drain(2)), vec![(0, "w3"), (1, "w3")]);
        // Next batch: w3 resumes its remaining 1 slot (no refill), then w1.
        assert_eq!(order(&q.drain(2)), vec![(2, "w3"), (4, "w1")]);
        // Fresh round: w3 refills to 3 but only one intent remains; its
        // leftover deficit is forfeited when it leaves the ring.
        assert_eq!(
            order(&q.drain(4)),
            vec![(3, "w3"), (5, "w1"), (6, "w1"), (7, "w1")]
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn idle_tenants_accumulate_no_credit() {
        let mut q = SubmissionQueues::new(SchedulerMode::DeficitRoundRobin);
        q.push(sub(0, "a"), 1);
        assert_eq!(order(&q.drain(8)), vec![(0, "a")]);
        // "a" was idle for a while; on return it gets exactly one fresh
        // quantum, not banked credit from the idle rounds.
        q.push(sub(1, "a"), 1);
        q.push(sub(2, "a"), 1);
        q.push(sub(3, "b"), 1);
        assert_eq!(order(&q.drain(3)), vec![(1, "a"), (3, "b"), (2, "a")]);
    }
}
