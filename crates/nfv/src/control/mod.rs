//! The intent-based control plane (the public face of Fig. 6's
//! multi-tenant orchestrator).
//!
//! The raw [`Orchestrator`] is a single-threaded `&mut self` object: one
//! caller pokes it directly. Scaling past one caller — the paper's
//! "multiple-tenant SDN-enabled network" — needs an asynchronous
//! request/response protocol with admission control in front of it. That
//! is the [`ControlPlane`]:
//!
//! * **Intents, not method calls.** Tenants [`ControlPlane::submit`]
//!   typed [`Intent`]s (deploy, teardown, modify, scale, fail, restore,
//!   reoptimize) and get an [`IntentId`] ticket back immediately.
//! * **Fair deterministic batches.** A driver calls
//!   [`ControlPlane::process_batch`]; queued intents are drained from
//!   per-tenant queues by a deterministic deficit-round-robin scheduler
//!   ([`SchedulerMode`], weights from [`TenantQuota::weight`]), so one
//!   tenant's burst cannot starve everyone else's queue slots. Within a
//!   batch, maximal runs of consecutive deployments coalesce into
//!   [`Orchestrator::deploy_chains`] bulk construction (rayon-parallel
//!   under the `parallel` feature).
//! * **Admission control.** Per-tenant rate and quota limits plus
//!   capacity pre-checks reject hopeless or over-budget intents *before*
//!   any state is touched ([`AdmissionError`]); a rejected intent leaves
//!   zero residual SDN or ledger state and consumes none of the tenant's
//!   per-batch rate budget.
//! * **Lock-free snapshot reads.** [`ControlPlane::view`] hands out an
//!   `Arc<StateView>` published at the last batch boundary; readers never
//!   block the write path and always see a consistent world. Publication
//!   is incremental: each batch patches only the entities it touched into
//!   the previous snapshot (global operations fall back to a full
//!   capture).
//! * **Replayable log.** Every executed intent lands in the
//!   [`IntentLog`] with its batch index and outcome — the scheduler's
//!   drain order *is* the recorded batch order, so
//!   [`ControlPlane::replay`] re-executes the recorded batches directly
//!   on a fresh control plane and reproduces the live run's
//!   [`StateView`] bit-for-bit.
//! * **Bounded bookkeeping.** Trace contexts are dropped when an
//!   intent's root span closes, and the outcome map can be bounded with
//!   [`ControlPlaneBuilder::outcome_retention`], so a sustained
//!   million-intent stream runs in bounded memory.
//!
//! ```
//! use std::sync::Arc;
//! use alvc_core::construction::PaperGreedy;
//! use alvc_nfv::chain::fig5;
//! use alvc_nfv::{ControlPlane, Intent, IntentOutcome, TenantQuota};
//! use alvc_topology::AlvcTopologyBuilder;
//!
//! let dc = Arc::new(AlvcTopologyBuilder::new().racks(4).ops_count(12).seed(9).build());
//! let cp = ControlPlane::builder()
//!     .batch_size(8)
//!     .default_quota(TenantQuota::new(4, 8))
//!     .build(dc.clone());
//! let vms: Vec<_> = dc.vm_ids().take(8).collect();
//! let spec = fig5::black(vms[0], vms[7]);
//! let ticket = cp.submit("tenant-a", Intent::DeployChain { vms, spec });
//! cp.process_batch();
//! assert!(cp.outcome(ticket).unwrap().is_completed());
//! assert_eq!(cp.view().chain_count(), 1);
//! ```

mod admission;
mod intent;
mod scheduler;
mod view;

pub use admission::{AdmissionError, AdmissionPolicy, TenantQuota};
pub use intent::{
    Intent, IntentEffect, IntentId, IntentKind, IntentLog, IntentOutcome, IntentRecord,
};
pub use scheduler::SchedulerMode;
pub use view::{ChainView, ClusterSliceView, InstanceView, StateView, TenantView};

use scheduler::SubmissionQueues;

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use alvc_core::construction::{AlConstruct, PaperGreedy};
use alvc_telemetry::{FieldValue, TraceCtx, TraceId};
use alvc_topology::{DataCenter, Element, VmId};

use crate::chain::{ChainSpec, NfcId};
use crate::error::Error;
use crate::orchestrator::{kbps, Orchestrator};
use crate::placement::{ElectronicOnlyPlacer, VnfPlacer};

/// One queued submission.
#[derive(Debug, Clone)]
struct Submission {
    id: IntentId,
    tenant: String,
    intent: Intent,
}

/// State guarded by the write-path lock: the orchestrator plus the
/// bookkeeping only intent execution touches.
struct Inner {
    orch: Orchestrator,
    /// Live chain → owning tenant; maintained here because the control
    /// plane executes every mutation.
    owners: BTreeMap<NfcId, String>,
    /// Live chains per tenant — the `owners` multiset inverted, so the
    /// quota check is O(1) instead of a scan over every deployed chain.
    live_chains: BTreeMap<String, usize>,
    log: IntentLog,
    batches: u64,
    intents_processed: u64,
}

/// An executed intent's published record: its outcome plus the causal
/// trace it was stamped with at submission (when tracing was on).
struct CompletedIntent {
    outcome: IntentOutcome,
    trace: Option<TraceId>,
}

/// Configures and builds a [`ControlPlane`].
///
/// Defaults: batch size 32, unlimited quotas, operator tenant
/// `"operator"`, a fresh [`Orchestrator`], the paper's greedy AL
/// constructor, and the electronic-only placer.
pub struct ControlPlaneBuilder {
    batch_size: usize,
    policy: AdmissionPolicy,
    orchestrator: Orchestrator,
    constructor: Box<dyn AlConstruct + Send + Sync>,
    placer: Box<dyn VnfPlacer + Send + Sync>,
    scheduler: SchedulerMode,
    outcome_retention: Option<usize>,
}

impl Default for ControlPlaneBuilder {
    fn default() -> Self {
        ControlPlaneBuilder {
            batch_size: 32,
            policy: AdmissionPolicy::default(),
            orchestrator: Orchestrator::new(),
            constructor: Box::new(PaperGreedy::new()),
            placer: Box::new(ElectronicOnlyPlacer::new()),
            scheduler: SchedulerMode::default(),
            outcome_retention: None,
        }
    }
}

impl ControlPlaneBuilder {
    /// Starts from the defaults.
    pub fn new() -> Self {
        ControlPlaneBuilder::default()
    }

    /// Maximum intents executed per [`ControlPlane::process_batch`] call.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn batch_size(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        self.batch_size = n;
        self
    }

    /// The quota applying to tenants without an explicit override.
    pub fn default_quota(mut self, quota: TenantQuota) -> Self {
        self.policy.default_quota = quota;
        self
    }

    /// An explicit quota for one tenant.
    pub fn tenant_quota(mut self, tenant: &str, quota: TenantQuota) -> Self {
        self.policy.overrides.insert(tenant.to_string(), quota);
        self
    }

    /// The tenant allowed to submit operator-only intents
    /// (default `"operator"`).
    pub fn operator(mut self, tenant: &str) -> Self {
        self.policy.operator = tenant.to_string();
        self
    }

    /// Brings a pre-configured orchestrator (SDN table limits, O/E/O cost
    /// model — see [`crate::OrchestratorBuilder`]).
    pub fn orchestrator(mut self, orch: Orchestrator) -> Self {
        self.orchestrator = orch;
        self
    }

    /// The abstraction-layer constructor used for deployments and OPS
    /// failure repair (default: [`PaperGreedy`]).
    pub fn constructor(mut self, c: impl AlConstruct + Send + Sync + 'static) -> Self {
        self.constructor = Box::new(c);
        self
    }

    /// The VNF placement strategy (default: [`ElectronicOnlyPlacer`]).
    pub fn placer(mut self, p: impl VnfPlacer + Send + Sync + 'static) -> Self {
        self.placer = Box::new(p);
        self
    }

    /// How queued submissions are drained into batches (default:
    /// [`SchedulerMode::DeficitRoundRobin`]).
    pub fn scheduler(mut self, mode: SchedulerMode) -> Self {
        self.scheduler = mode;
        self
    }

    /// Keeps at most `n` executed-intent outcomes; older tickets are
    /// evicted (their [`ControlPlane::outcome`] returns `None`). The
    /// default retains every outcome, which matches the historical
    /// behavior but grows without bound on sustained streams.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero — a batch's own outcomes must survive its
    /// publication.
    pub fn outcome_retention(mut self, n: usize) -> Self {
        assert!(n > 0, "outcome retention must be positive");
        self.outcome_retention = Some(n);
        self
    }

    /// Builds the control plane over `dc`.
    pub fn build(self, dc: Arc<DataCenter>) -> ControlPlane {
        let max_link_kbps = dc
            .graph()
            .edges()
            .map(|(_, _, _, link)| kbps(link.bandwidth_gbps))
            .max()
            .unwrap_or(0);
        let inner = Inner {
            orch: self.orchestrator,
            owners: BTreeMap::new(),
            live_chains: BTreeMap::new(),
            log: IntentLog::new(),
            batches: 0,
            intents_processed: 0,
        };
        let view = StateView::capture(0, 0, &inner.orch, &inner.owners);
        ControlPlane {
            dc,
            batch_size: self.batch_size,
            policy: self.policy,
            constructor: self.constructor,
            placer: self.placer,
            max_link_kbps,
            outcome_retention: self.outcome_retention,
            next_id: AtomicU64::new(0),
            queue: Mutex::new(SubmissionQueues::new(self.scheduler)),
            inner: Mutex::new(inner),
            completed: Mutex::new(BTreeMap::new()),
            view: RwLock::new(Arc::new(view)),
            traces: Mutex::new(HashMap::new()),
        }
    }
}

/// The intent-based control-plane service: a concurrent multi-tenant
/// frontend over one [`Orchestrator`]. See the [module docs](self) for
/// the full model and an example.
///
/// All methods take `&self`; share the control plane across submitter
/// threads with `Arc<ControlPlane>` while one driver thread calls
/// [`ControlPlane::process_batch`].
pub struct ControlPlane {
    dc: Arc<DataCenter>,
    batch_size: usize,
    policy: AdmissionPolicy,
    constructor: Box<dyn AlConstruct + Send + Sync>,
    placer: Box<dyn VnfPlacer + Send + Sync>,
    /// Capacity of the fattest link, for the unservable-bandwidth
    /// pre-check.
    max_link_kbps: u64,
    /// Maximum retained outcomes; `None` keeps everything.
    outcome_retention: Option<usize>,
    next_id: AtomicU64,
    queue: Mutex<SubmissionQueues>,
    inner: Mutex<Inner>,
    completed: Mutex<BTreeMap<IntentId, CompletedIntent>>,
    view: RwLock<Arc<StateView>>,
    /// Root trace context and submission timestamp per *pending* intent,
    /// populated only while causal tracing is enabled (see
    /// [`alvc_telemetry::trace::set_tracing_enabled`]). Entries move into
    /// the `completed` store when the intent's root span closes, so this
    /// map is bounded by the queue depth. Kept out of the [`IntentLog`]
    /// so replayed logs stay bit-identical to live runs.
    traces: Mutex<HashMap<IntentId, (TraceCtx, u64)>>,
}

impl ControlPlane {
    /// Starts configuring a control plane.
    pub fn builder() -> ControlPlaneBuilder {
        ControlPlaneBuilder::new()
    }

    /// A control plane over `dc` with all defaults (see
    /// [`ControlPlaneBuilder`]).
    pub fn new(dc: Arc<DataCenter>) -> ControlPlane {
        ControlPlaneBuilder::new().build(dc)
    }

    /// The data center this control plane manages.
    pub fn data_center(&self) -> &Arc<DataCenter> {
        &self.dc
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The admission policy.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Enqueues an intent on behalf of `tenant` and returns its ticket.
    /// The intent executes during a later [`ControlPlane::process_batch`]
    /// call; poll [`ControlPlane::outcome`] with the ticket.
    pub fn submit(&self, tenant: &str, intent: Intent) -> IntentId {
        let id = IntentId(self.next_id.fetch_add(1, Ordering::Relaxed));
        if alvc_telemetry::trace::tracing_enabled() {
            let ctx = alvc_telemetry::trace::new_root_ctx();
            self.traces
                .lock()
                .insert(id, (ctx, alvc_telemetry::now_monotonic_us()));
        }
        let weight = self.policy.quota_for(tenant).effective_weight();
        let depth = {
            let mut queue = self.queue.lock();
            queue.push(
                Submission {
                    id,
                    tenant: tenant.to_string(),
                    intent,
                },
                weight,
            );
            queue.len()
        };
        alvc_telemetry::counter!("alvc_nfv.control.intents_submitted").incr();
        alvc_telemetry::gauge!("alvc_nfv.control.queue_depth").set(depth as f64);
        id
    }

    /// The causal trace stamped on intent `id` at submission; `None` when
    /// the intent is unknown (or evicted) or tracing was off when it was
    /// submitted.
    pub fn trace_of(&self, id: IntentId) -> Option<TraceId> {
        if let Some(trace) = self.traces.lock().get(&id).map(|(ctx, _)| ctx.trace) {
            return Some(trace);
        }
        self.completed.lock().get(&id).and_then(|c| c.trace)
    }

    /// Serializes the flight recorder's current contents as JSON lines
    /// (oldest surviving entry first) — an explicit post-mortem dump for
    /// offline analysis with `alvc-trace`. Empty when tracing never ran.
    pub fn dump_flight_recorder(&self) -> String {
        alvc_telemetry::recorder::recorder_dump_jsonl()
    }

    fn trace_ctx_of(&self, id: IntentId) -> TraceCtx {
        self.traces
            .lock()
            .get(&id)
            .map_or(TraceCtx::NONE, |(ctx, _)| *ctx)
    }

    /// Intents queued but not yet executed.
    pub fn queue_depth(&self) -> usize {
        self.queue.lock().len()
    }

    /// The outcome of an executed intent, `None` while it is still
    /// queued, after it was evicted by the retention window (see
    /// [`ControlPlaneBuilder::outcome_retention`]), or if it was never
    /// submitted.
    pub fn outcome(&self, id: IntentId) -> Option<IntentOutcome> {
        self.completed.lock().get(&id).map(|c| c.outcome.clone())
    }

    /// Number of pending trace contexts (bounded by the queue depth —
    /// entries move into the outcome store when an intent completes).
    pub fn trace_map_len(&self) -> usize {
        self.traces.lock().len()
    }

    /// Number of retained outcomes (bounded by
    /// [`ControlPlaneBuilder::outcome_retention`] when set).
    pub fn outcome_map_len(&self) -> usize {
        self.completed.lock().len()
    }

    /// The current snapshot. A cheap `Arc` clone: readers never block
    /// intent execution and see the consistent state as of the last
    /// batch boundary.
    pub fn view(&self) -> Arc<StateView> {
        self.view.read().clone()
    }

    /// A copy of the intent log so far (execution order, with batch
    /// indices and outcomes).
    pub fn intent_log(&self) -> IntentLog {
        self.inner.lock().log.clone()
    }

    /// Runs a read-only closure against the live orchestrator (blocks
    /// intent execution; meant for tests and invariant checks, not for
    /// read traffic — use [`ControlPlane::view`] for that).
    pub fn inspect<R>(&self, f: impl FnOnce(&Orchestrator) -> R) -> R {
        f(&self.inner.lock().orch)
    }

    /// Executes up to [`ControlPlane::batch_size`] queued intents in
    /// submission order and publishes a fresh [`StateView`]. Returns the
    /// number executed (0 when the queue was empty).
    pub fn process_batch(&self) -> usize {
        self.process_n(self.batch_size)
    }

    /// Drains the queue completely, batch by batch. Returns the total
    /// number of intents executed.
    pub fn process_all(&self) -> usize {
        let mut total = 0;
        loop {
            let n = self.process_batch();
            if n == 0 {
                return total;
            }
            total += n;
        }
    }

    /// Re-executes `log` on this control plane, preserving the recorded
    /// batch boundaries (admission is batch-scoped, so they are part of
    /// the run's identity). The scheduler is bypassed: the recorded drain
    /// order *is* the batch order, with the live run's intent ids
    /// reassigned verbatim — DRR deficit state depends on queue contents
    /// that no longer exist at replay time, so re-scheduling would
    /// diverge. Because every execution stage — admission, construction,
    /// placement, routing, id assignment — is deterministic, the final
    /// [`StateView`] and the regenerated log are bit-identical to the
    /// live run's.
    ///
    /// # Panics
    ///
    /// Panics if this control plane has already executed intents or has
    /// queued submissions: replay needs the same initial state the live
    /// run started from.
    pub fn replay(&self, log: &IntentLog) -> Arc<StateView> {
        assert_eq!(
            self.inner.lock().intents_processed,
            0,
            "replay requires a fresh control plane"
        );
        assert_eq!(
            self.queue_depth(),
            0,
            "replay requires an empty submission queue"
        );
        let records = log.records();
        let mut next_id = 0u64;
        let mut i = 0;
        while i < records.len() {
            let batch_index = records[i].batch;
            let mut batch = Vec::new();
            while i < records.len() && records[i].batch == batch_index {
                let r = &records[i];
                next_id = next_id.max(r.id.0 + 1);
                if alvc_telemetry::trace::tracing_enabled() {
                    let ctx = alvc_telemetry::trace::new_root_ctx();
                    self.traces
                        .lock()
                        .insert(r.id, (ctx, alvc_telemetry::now_monotonic_us()));
                }
                batch.push(Submission {
                    id: r.id,
                    tenant: r.tenant.clone(),
                    intent: r.intent.clone(),
                });
                i += 1;
            }
            self.execute_batch(&batch);
        }
        // Fresh submissions after a replay continue the id sequence.
        self.next_id.store(next_id, Ordering::Relaxed);
        self.view()
    }

    /// Executes up to `limit` queued intents as one batch, in scheduler
    /// drain order.
    fn process_n(&self, limit: usize) -> usize {
        let batch: Vec<Submission> = self.queue.lock().drain(limit);
        if batch.is_empty() {
            return 0;
        }
        self.execute_batch(&batch)
    }

    /// Executes `batch` as one batch: admission, coalesced execution,
    /// logging, and snapshot publication.
    fn execute_batch(&self, batch: &[Submission]) -> usize {
        let _span = alvc_telemetry::span!("alvc_nfv.control.batch_latency_us");
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let batch_index = inner.batches;

        // Per-slot outcomes, filled in submission order; consecutive
        // admitted deployments coalesce into one bulk construction.
        let mut outcomes: Vec<Option<IntentOutcome>> = vec![None; batch.len()];
        let mut run: Vec<(usize, String, Vec<VmId>, ChainSpec)> = Vec::new();
        // Deterministic batch-scoped admission state.
        let mut rate_used: BTreeMap<&str, usize> = BTreeMap::new();
        let mut pending_chains: BTreeMap<&str, usize> = BTreeMap::new();

        for (slot, sub) in batch.iter().enumerate() {
            let admit_start = Instant::now();
            let quota = self.policy.quota_for(&sub.tenant);
            // The rate budget counts *admitted* intents only — rejections
            // (including this one) never consume it, so garbage cannot
            // crowd a tenant's valid intents out of its own budget (see
            // the `admission` module docs).
            if let Some(cap) = quota.max_intents_per_batch {
                let used = rate_used.get(sub.tenant.as_str()).copied().unwrap_or(0);
                if used >= cap {
                    let rej = AdmissionError::RateLimited {
                        tenant: sub.tenant.clone(),
                        limit: cap,
                    };
                    self.note_admission(sub, admit_start, Some(&rej));
                    outcomes[slot] = Some(IntentOutcome::Rejected(rej));
                    continue;
                }
            }
            match &sub.intent {
                Intent::DeployChain { vms, spec } => {
                    match self.admit_deploy(inner, &sub.tenant, vms, spec, &pending_chains) {
                        Err(rej) => {
                            self.note_admission(sub, admit_start, Some(&rej));
                            outcomes[slot] = Some(IntentOutcome::Rejected(rej));
                        }
                        Ok(()) => {
                            self.note_admission(sub, admit_start, None);
                            *rate_used.entry(sub.tenant.as_str()).or_insert(0) += 1;
                            *pending_chains.entry(sub.tenant.as_str()).or_insert(0) += 1;
                            run.push((slot, sub.tenant.clone(), vms.clone(), spec.clone()));
                        }
                    }
                }
                other => {
                    match self.admit_other(inner, &sub.tenant, other) {
                        Err(rej) => {
                            // Rejections have no side effects, so the
                            // pending deployment run stays intact.
                            self.note_admission(sub, admit_start, Some(&rej));
                            outcomes[slot] = Some(IntentOutcome::Rejected(rej));
                        }
                        Ok(()) => {
                            // A mutating intent: everything admitted
                            // before it must be committed first.
                            self.note_admission(sub, admit_start, None);
                            *rate_used.entry(sub.tenant.as_str()).or_insert(0) += 1;
                            self.flush_deploys(inner, batch, &mut run, &mut outcomes);
                            let _g = alvc_telemetry::trace::enter(self.trace_ctx_of(sub.id));
                            let mut exec_span = alvc_telemetry::trace::child_span("intent.execute");
                            let start = Instant::now();
                            let outcome = self.execute_other(inner, &sub.tenant, other);
                            record_latency(start.elapsed().as_secs_f64() * 1e6);
                            exec_span.set_status(outcome.label());
                            if let IntentOutcome::Failed(e) = &outcome {
                                exec_span.set_code(e.code());
                            }
                            outcomes[slot] = Some(outcome);
                        }
                    }
                }
            }
        }
        self.flush_deploys(inner, batch, &mut run, &mut outcomes);

        // Log, publish outcomes, bump counters, swap the snapshot.
        let mut completed = self.completed.lock();
        for (sub, outcome) in batch.iter().zip(outcomes) {
            if outcome.is_none() {
                // Admission-invariant breach: snapshot the causal history
                // before the panic below destroys the evidence.
                alvc_telemetry::recorder::postmortem("admission_invariant");
            }
            let outcome = outcome.expect("every slot decided");
            let trace = self.close_intent_root(sub, &outcome);
            alvc_telemetry::counter_with("alvc_nfv.control.intents", sub.intent.kind().label())
                .incr();
            alvc_telemetry::counter_with("alvc_nfv.control.outcomes", outcome.label()).incr();
            inner.log.push(IntentRecord {
                id: sub.id,
                tenant: sub.tenant.clone(),
                batch: batch_index,
                intent: sub.intent.clone(),
                outcome: outcome.clone(),
            });
            completed.insert(sub.id, CompletedIntent { outcome, trace });
        }
        if let Some(cap) = self.outcome_retention {
            while completed.len() > cap {
                completed.pop_first();
            }
        }
        drop(completed);
        inner.batches += 1;
        inner.intents_processed += batch.len() as u64;
        alvc_telemetry::counter!("alvc_nfv.control.batches").incr();
        alvc_telemetry::gauge!("alvc_nfv.control.queue_depth").set(self.queue.lock().len() as f64);
        // Publish incrementally: patch the entities this batch touched
        // into the previous snapshot; global operations marked the whole
        // world dirty and fall back to a full capture.
        let changes = inner.orch.changes.take();
        let view = if changes.full {
            StateView::capture(
                inner.batches,
                inner.intents_processed,
                &inner.orch,
                &inner.owners,
            )
        } else {
            let prev = self.view.read().clone();
            StateView::apply_delta(
                &prev,
                inner.batches,
                inner.intents_processed,
                &inner.orch,
                &inner.owners,
                &changes,
            )
        };
        *self.view.write() = Arc::new(view);
        batch.len()
    }

    /// Recomputes a full [`StateView`] capture of the live orchestrator,
    /// without publishing it. Meant for tests and invariant checks — the
    /// incremental-publication property test asserts this equals
    /// [`ControlPlane::view`] after every batch.
    pub fn recompute_view(&self) -> Arc<StateView> {
        let inner = self.inner.lock();
        Arc::new(StateView::capture(
            inner.batches,
            inner.intents_processed,
            &inner.orch,
            &inner.owners,
        ))
    }

    /// Bumps per-tenant admission counters and records the synthetic
    /// `intent.admission` span (and, on rejection, the admission-path
    /// latency) for one decided slot.
    fn note_admission(
        &self,
        sub: &Submission,
        started: Instant,
        rejected: Option<&AdmissionError>,
    ) {
        let us = started.elapsed().as_secs_f64() * 1e6;
        alvc_telemetry::counter_with("alvc_nfv.control.tenant_intents", &sub.tenant).incr();
        if rejected.is_some() {
            // Rejections never reach the execution path, so the shared
            // intent-latency histogram misses them; this one does not.
            alvc_telemetry::histogram!("alvc_nfv.control.reject_latency_us").record(us);
            alvc_telemetry::counter_with("alvc_nfv.control.tenant_rejections", &sub.tenant).incr();
        }
        alvc_telemetry::trace::record_span(
            self.trace_ctx_of(sub.id),
            "intent.admission",
            us,
            if rejected.is_some() { "rejected" } else { "ok" },
            rejected.map_or("", |r| r.code()),
            Vec::new(),
        );
    }

    /// Closes intent `sub`'s root span with its final outcome, measuring
    /// submission → outcome publication, and retires the pending trace
    /// entry (the id lives on in the outcome store). Returns the trace id
    /// for that store; `None` when tracing was off at submission time.
    fn close_intent_root(&self, sub: &Submission, outcome: &IntentOutcome) -> Option<TraceId> {
        let (ctx, start_us) = self.traces.lock().remove(&sub.id)?;
        let code = match outcome {
            IntentOutcome::Completed(_) => "",
            IntentOutcome::Rejected(e) => e.code(),
            IntentOutcome::Failed(e) => e.code(),
        };
        let duration_us = alvc_telemetry::now_monotonic_us().saturating_sub(start_us) as f64;
        alvc_telemetry::trace::record_root(
            ctx,
            "intent",
            start_us,
            duration_us,
            outcome.label(),
            code,
            vec![
                ("tenant", FieldValue::from(sub.tenant.as_str())),
                // Not "kind": that key is the record tag in JSON dumps.
                ("intent_kind", FieldValue::from(sub.intent.kind().label())),
                ("intent_id", FieldValue::from(sub.id.0)),
            ],
        );
        Some(ctx.trace)
    }

    /// Pre-checks a deployment without touching any state.
    fn admit_deploy(
        &self,
        inner: &Inner,
        tenant: &str,
        vms: &[VmId],
        spec: &ChainSpec,
        pending_chains: &BTreeMap<&str, usize>,
    ) -> Result<(), AdmissionError> {
        if vms.is_empty() {
            return Err(AdmissionError::EmptyVmGroup);
        }
        if !vms.contains(&spec.ingress) || !vms.contains(&spec.egress) {
            return Err(AdmissionError::EndpointOutsideGroup);
        }
        if !spec.bandwidth_gbps.is_finite() || spec.bandwidth_gbps <= 0.0 {
            return Err(AdmissionError::InvalidBandwidth {
                requested_gbps: spec.bandwidth_gbps,
            });
        }
        if kbps(spec.bandwidth_gbps) > self.max_link_kbps {
            return Err(AdmissionError::BandwidthUnservable {
                requested_gbps: spec.bandwidth_gbps,
                max_link_gbps: self.max_link_kbps as f64 / 1e6,
            });
        }
        // Structural validation (placement-rule sanity, stage-less loops,
        // latency budgets); like every other check here, a zero-side-effect
        // rejection. Bandwidth was already vetted above, so any error maps
        // to the spec itself.
        spec.validate()
            .map_err(|reason| AdmissionError::InvalidSpec { reason })?;
        if let Some(limit) = self.policy.quota_for(tenant).max_live_chains {
            // Chains admitted earlier in this batch count even though they
            // have not executed yet (optimistic, deterministic). O(1):
            // the per-tenant counter is maintained on deploy/teardown.
            let live = inner.live_chains.get(tenant).copied().unwrap_or(0)
                + pending_chains.get(tenant).copied().unwrap_or(0);
            if live >= limit {
                return Err(AdmissionError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    live_chains: live,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Pre-checks authority and ownership for non-deployment intents.
    fn admit_other(
        &self,
        inner: &Inner,
        tenant: &str,
        intent: &Intent,
    ) -> Result<(), AdmissionError> {
        if intent.kind().operator_only() && tenant != self.policy.operator {
            return Err(AdmissionError::NotAuthorized {
                tenant: tenant.to_string(),
            });
        }
        if let Some(chain) = intent.target_chain() {
            if inner.owners.get(&chain).map(String::as_str) != Some(tenant) {
                return Err(AdmissionError::NotOwner {
                    tenant: tenant.to_string(),
                    chain,
                });
            }
        }
        if let Intent::ScaleIn { replica } = intent {
            let owned = inner
                .orch
                .replica_chain(*replica)
                .and_then(|chain| inner.owners.get(&chain))
                .is_some_and(|t| t == tenant);
            if !owned {
                return Err(AdmissionError::UnknownReplica {
                    tenant: tenant.to_string(),
                    replica: *replica,
                });
            }
        }
        if let Intent::Recluster { moves } = intent {
            if moves.is_empty() {
                return Err(AdmissionError::EmptyPlan);
            }
        }
        if let Intent::ModifyChain { spec, .. } = intent {
            if !spec.bandwidth_gbps.is_finite() || spec.bandwidth_gbps <= 0.0 {
                return Err(AdmissionError::InvalidBandwidth {
                    requested_gbps: spec.bandwidth_gbps,
                });
            }
            if kbps(spec.bandwidth_gbps) > self.max_link_kbps {
                return Err(AdmissionError::BandwidthUnservable {
                    requested_gbps: spec.bandwidth_gbps,
                    max_link_gbps: self.max_link_kbps as f64 / 1e6,
                });
            }
            spec.validate()
                .map_err(|reason| AdmissionError::InvalidSpec { reason })?;
        }
        Ok(())
    }

    /// Commits the pending run of admitted deployments: a single
    /// deployment goes through [`Orchestrator::deploy_chain`], longer
    /// runs through [`Orchestrator::deploy_chains`] bulk construction.
    fn flush_deploys(
        &self,
        inner: &mut Inner,
        batch: &[Submission],
        run: &mut Vec<(usize, String, Vec<VmId>, ChainSpec)>,
        outcomes: &mut [Option<IntentOutcome>],
    ) {
        if run.is_empty() {
            return;
        }
        let start = Instant::now();
        let drained = std::mem::take(run);
        let coalesced = drained.len();
        // Bulk construction work (cluster building, placement, routing)
        // is attributed to the first coalesced intent's trace; every
        // intent then gets its own synthetic `intent.execute` span
        // carrying its amortized share of the run.
        let _g = alvc_telemetry::trace::enter(self.trace_ctx_of(batch[drained[0].0].id));
        let mut bulk_span = alvc_telemetry::trace::child_span("intent.execute_bulk");
        bulk_span.add_field("coalesced", coalesced);
        let results: Vec<(usize, &str, Result<NfcId, Error>)> = if drained.len() == 1 {
            let (slot, tenant, vms, spec) = &drained[0];
            let result = inner.orch.deploy_chain(
                &self.dc,
                tenant,
                vms.clone(),
                spec.clone(),
                &*self.constructor,
                &*self.placer,
            );
            vec![(*slot, tenant.as_str(), result)]
        } else {
            let requests: Vec<(String, Vec<VmId>, ChainSpec)> = drained
                .iter()
                .map(|(_, tenant, vms, spec)| (tenant.clone(), vms.clone(), spec.clone()))
                .collect();
            let results =
                inner
                    .orch
                    .deploy_chains(&self.dc, requests, &*self.constructor, &*self.placer);
            drained
                .iter()
                .zip(results)
                .map(|((slot, tenant, _, _), result)| (*slot, tenant.as_str(), result))
                .collect()
        };
        let per_intent_us = start.elapsed().as_secs_f64() * 1e6 / drained.len() as f64;
        for (slot, tenant, result) in results {
            record_latency(per_intent_us);
            let (status, code) = match &result {
                Ok(_) => ("completed", ""),
                Err(e) => ("failed", e.code()),
            };
            alvc_telemetry::trace::record_span(
                self.trace_ctx_of(batch[slot].id),
                "intent.execute",
                per_intent_us,
                status,
                code,
                vec![("coalesced", FieldValue::from(coalesced))],
            );
            outcomes[slot] = Some(match result {
                Ok(chain) => {
                    inner.owners.insert(chain, tenant.to_string());
                    *inner.live_chains.entry(tenant.to_string()).or_insert(0) += 1;
                    IntentOutcome::Completed(IntentEffect::Deployed { chain })
                }
                Err(e) => IntentOutcome::Failed(e),
            });
        }
    }

    /// Executes one admitted non-deployment intent.
    fn execute_other(&self, inner: &mut Inner, tenant: &str, intent: &Intent) -> IntentOutcome {
        let _ = tenant; // attribution already checked by admission
        match intent {
            Intent::DeployChain { .. } => unreachable!("deployments go through flush_deploys"),
            Intent::TeardownChain { chain } => match inner.orch.teardown_chain(*chain) {
                Ok(_) => {
                    if let Some(owner) = inner.owners.remove(chain) {
                        if let Some(count) = inner.live_chains.get_mut(&owner) {
                            *count -= 1;
                            if *count == 0 {
                                inner.live_chains.remove(&owner);
                            }
                        }
                    }
                    IntentOutcome::Completed(IntentEffect::TornDown { chain: *chain })
                }
                Err(e) => IntentOutcome::Failed(e),
            },
            Intent::ModifyChain { chain, spec } => {
                match inner
                    .orch
                    .modify_chain(&self.dc, *chain, spec.clone(), &*self.placer)
                {
                    Ok(()) => IntentOutcome::Completed(IntentEffect::Modified { chain: *chain }),
                    Err(e) => IntentOutcome::Failed(e),
                }
            }
            Intent::ScaleOut { chain, position } => {
                match inner.orch.scale_out(&self.dc, *chain, *position) {
                    Ok(replica) => IntentOutcome::Completed(IntentEffect::ScaledOut {
                        chain: *chain,
                        replica,
                    }),
                    Err(e) => IntentOutcome::Failed(e),
                }
            }
            Intent::ScaleIn { replica } => match inner.orch.scale_in(*replica) {
                Ok(()) => IntentOutcome::Completed(IntentEffect::ScaledIn { replica: *replica }),
                Err(e) => IntentOutcome::Failed(e),
            },
            Intent::FailElement { element } => {
                let report = match *element {
                    Element::Ops(ops) => {
                        inner
                            .orch
                            .fail_ops(&self.dc, ops, &*self.constructor, &*self.placer)
                    }
                    Element::Server(server) => {
                        inner.orch.fail_server(&self.dc, server, &*self.placer)
                    }
                    Element::Tor(tor) => inner.orch.fail_tor(&self.dc, tor, &*self.placer),
                };
                IntentOutcome::Completed(IntentEffect::Recovered {
                    affected: report.affected_count(),
                    serving: report.serving_count(),
                })
            }
            Intent::RestoreElement { element } => {
                let was_failed = match *element {
                    Element::Ops(ops) => inner.orch.restore_ops(ops),
                    Element::Server(server) => inner.orch.restore_server(server),
                    Element::Tor(tor) => inner.orch.restore_tor(tor),
                };
                IntentOutcome::Completed(IntentEffect::Restored { was_failed })
            }
            Intent::Reoptimize => {
                let outcomes = inner.orch.reoptimize_degraded(&self.dc, &*self.placer);
                IntentOutcome::Completed(IntentEffect::Reoptimized {
                    examined: outcomes.len(),
                    still_degraded: inner.orch.degraded_chains().len(),
                })
            }
            Intent::Recluster { moves } => {
                let report =
                    inner
                        .orch
                        .apply_recluster(&self.dc, moves, &*self.constructor, &*self.placer);
                IntentOutcome::Completed(IntentEffect::Reclustered {
                    applied: report.applied,
                    skipped: report.skipped,
                    als_rebuilt: report.als_rebuilt,
                    chains_rerouted: report.chains_rerouted,
                })
            }
            Intent::SetPowerState { element, state } => {
                match inner.orch.set_power_state(&self.dc, *element, *state) {
                    Ok(previous) => {
                        IntentOutcome::Completed(IntentEffect::PowerStateSet { previous })
                    }
                    Err(e) => IntentOutcome::Failed(e.into()),
                }
            }
        }
    }
}

/// Records one intent's execution latency.
fn record_latency(us: f64) {
    alvc_telemetry::histogram!("alvc_nfv.control.intent_latency_us").record(us);
}

// The whole point of the control plane: it is shareable across submitter
// threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ControlPlane>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::fig5;
    use alvc_topology::{AlvcTopologyBuilder, OpsInterconnect, ServiceType};

    fn dc() -> Arc<DataCenter> {
        Arc::new(
            AlvcTopologyBuilder::new()
                .racks(8)
                .servers_per_rack(2)
                .vms_per_server(2)
                .ops_count(24)
                .tor_ops_degree(4)
                .opto_fraction(0.5)
                .interconnect(OpsInterconnect::FullMesh)
                .seed(31)
                .build(),
        )
    }

    fn deploy_intent(dc: &DataCenter, service: ServiceType) -> Intent {
        let vms = dc.vms_of_service(service);
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        Intent::DeployChain { vms, spec }
    }

    #[test]
    fn submit_then_batch_deploys_and_publishes_view() {
        let dc = dc();
        let cp = ControlPlane::new(dc.clone());
        assert_eq!(cp.view().version, 0);
        let a = cp.submit("web", deploy_intent(&dc, ServiceType::WebService));
        let b = cp.submit("sns", deploy_intent(&dc, ServiceType::Sns));
        assert_eq!(cp.queue_depth(), 2);
        assert!(cp.outcome(a).is_none(), "not executed yet");
        assert_eq!(cp.process_batch(), 2);
        assert_eq!(cp.queue_depth(), 0);
        let (oa, ob) = (cp.outcome(a).unwrap(), cp.outcome(b).unwrap());
        assert!(oa.is_completed(), "{oa:?}");
        assert!(ob.is_completed(), "{ob:?}");
        let view = cp.view();
        assert_eq!(view.version, 1);
        assert_eq!(view.intents_processed, 2);
        assert_eq!(view.chain_count(), 2);
        assert_eq!(view.tenant("web").live_chains, 1);
        assert_eq!(view.chains_of("sns").len(), 1);
        assert!(view.total_committed_kbps > 0);
        assert!(view.sdn_rules > 0);
    }

    #[test]
    fn views_are_immutable_snapshots() {
        let dc = dc();
        let cp = ControlPlane::new(dc.clone());
        let before = cp.view();
        cp.submit("web", deploy_intent(&dc, ServiceType::WebService));
        cp.process_all();
        assert_eq!(before.chain_count(), 0, "old snapshot untouched");
        assert_eq!(cp.view().chain_count(), 1);
    }

    #[test]
    fn full_lifecycle_through_intents() {
        let dc = dc();
        let cp = ControlPlane::new(dc.clone());
        let vms = dc.vms_of_service(ServiceType::WebService);
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        let t = cp.submit(
            "web",
            Intent::DeployChain {
                vms: vms.clone(),
                spec,
            },
        );
        cp.process_all();
        let IntentOutcome::Completed(IntentEffect::Deployed { chain }) = cp.outcome(t).unwrap()
        else {
            panic!("deploy failed");
        };
        // Modify, scale out, scale in, tear down.
        let modify = cp.submit(
            "web",
            Intent::ModifyChain {
                chain,
                spec: fig5::blue(vms[0], *vms.last().unwrap()),
            },
        );
        cp.process_all();
        assert!(cp.outcome(modify).unwrap().is_completed());
        assert_eq!(cp.view().chains[&chain].vnf_count, 3);
        let out = cp.submit("web", Intent::ScaleOut { chain, position: 0 });
        cp.process_all();
        let IntentOutcome::Completed(IntentEffect::ScaledOut { replica, .. }) =
            cp.outcome(out).unwrap()
        else {
            panic!("scale-out failed");
        };
        assert_eq!(cp.view().tenant("web").replicas, 1);
        let scale_in = cp.submit("web", Intent::ScaleIn { replica });
        let teardown = cp.submit("web", Intent::TeardownChain { chain });
        cp.process_all();
        assert!(cp.outcome(scale_in).unwrap().is_completed());
        assert!(cp.outcome(teardown).unwrap().is_completed());
        let view = cp.view();
        assert_eq!(view.chain_count(), 0);
        assert_eq!(view.instance_count(), 0);
        assert_eq!(view.total_committed_kbps, 0);
        assert_eq!(view.sdn_rules, 0);
    }

    #[test]
    fn quota_rejects_before_touching_state() {
        let dc = dc();
        let cp = ControlPlane::builder()
            .default_quota(TenantQuota {
                max_live_chains: Some(1),
                max_intents_per_batch: None,
                weight: 1,
            })
            .build(dc.clone());
        let a = cp.submit("web", deploy_intent(&dc, ServiceType::WebService));
        cp.process_all();
        assert!(cp.outcome(a).unwrap().is_completed());
        let view_before = cp.view();
        let b = cp.submit("web", deploy_intent(&dc, ServiceType::WebService));
        cp.process_all();
        assert!(matches!(
            cp.outcome(b).unwrap(),
            IntentOutcome::Rejected(AdmissionError::QuotaExceeded { .. })
        ));
        let view_after = cp.view();
        // Nothing but the version counters moved.
        assert_eq!(view_before.chains, view_after.chains);
        assert_eq!(
            view_before.link_committed_kbps,
            view_after.link_committed_kbps
        );
        assert_eq!(view_before.sdn_rules, view_after.sdn_rules);
        cp.inspect(|orch| assert_eq!(orch.manager().cluster_count(), 1));
    }

    #[test]
    fn rate_limit_is_per_batch() {
        let dc = dc();
        let cp = ControlPlane::builder()
            .batch_size(8)
            .default_quota(TenantQuota {
                max_live_chains: None,
                max_intents_per_batch: Some(1),
                weight: 1,
            })
            .operator("ops-team")
            .build(dc.clone());
        // Two intents from one tenant in one batch: second is rate-limited
        // even though both are operator-only rejections otherwise… use two
        // harmless reoptimizes from the operator.
        let a = cp.submit("ops-team", Intent::Reoptimize);
        let b = cp.submit("ops-team", Intent::Reoptimize);
        cp.process_batch();
        assert!(cp.outcome(a).unwrap().is_completed());
        assert!(matches!(
            cp.outcome(b).unwrap(),
            IntentOutcome::Rejected(AdmissionError::RateLimited { .. })
        ));
        // Resubmitted in a fresh batch it passes.
        let c = cp.submit("ops-team", Intent::Reoptimize);
        cp.process_batch();
        assert!(cp.outcome(c).unwrap().is_completed());
    }

    #[test]
    fn tenants_cannot_touch_foreign_chains_or_operator_intents() {
        let dc = dc();
        let cp = ControlPlane::new(dc.clone());
        let a = cp.submit("web", deploy_intent(&dc, ServiceType::WebService));
        cp.process_all();
        let IntentOutcome::Completed(IntentEffect::Deployed { chain }) = cp.outcome(a).unwrap()
        else {
            panic!("deploy failed");
        };
        let steal = cp.submit("mallory", Intent::TeardownChain { chain });
        let fail = cp.submit(
            "mallory",
            Intent::FailElement {
                element: Element::Ops(alvc_topology::OpsId(0)),
            },
        );
        cp.process_all();
        assert!(matches!(
            cp.outcome(steal).unwrap(),
            IntentOutcome::Rejected(AdmissionError::NotOwner { .. })
        ));
        assert!(matches!(
            cp.outcome(fail).unwrap(),
            IntentOutcome::Rejected(AdmissionError::NotAuthorized { .. })
        ));
        assert_eq!(cp.view().chain_count(), 1, "chain survived");
    }

    #[test]
    fn capacity_prechecks_reject_unservable_deploys() {
        let dc = dc();
        let cp = ControlPlane::new(dc.clone());
        let vms = dc.vms_of_service(ServiceType::WebService);
        let mut fat = fig5::black(vms[0], *vms.last().unwrap());
        fat.bandwidth_gbps = 100_000.0;
        let a = cp.submit(
            "web",
            Intent::DeployChain {
                vms: vms.clone(),
                spec: fat,
            },
        );
        let b = cp.submit(
            "web",
            Intent::DeployChain {
                vms: vec![],
                spec: fig5::black(vms[0], vms[1]),
            },
        );
        let mut nan = fig5::black(vms[0], *vms.last().unwrap());
        nan.bandwidth_gbps = f64::INFINITY;
        let c = cp.submit(
            "web",
            Intent::DeployChain {
                vms: vms.clone(),
                spec: nan,
            },
        );
        cp.process_all();
        assert!(matches!(
            cp.outcome(a).unwrap(),
            IntentOutcome::Rejected(AdmissionError::BandwidthUnservable { .. })
        ));
        assert!(matches!(
            cp.outcome(b).unwrap(),
            IntentOutcome::Rejected(AdmissionError::EmptyVmGroup)
        ));
        assert!(matches!(
            cp.outcome(c).unwrap(),
            IntentOutcome::Rejected(AdmissionError::InvalidBandwidth { .. })
        ));
        let view = cp.view();
        assert_eq!(view.chain_count(), 0);
        assert_eq!(view.sdn_rules, 0);
        assert!(view.link_committed_kbps.is_empty());
    }

    #[test]
    fn operator_failure_workflow_round_trips() {
        let dc = dc();
        let cp = ControlPlane::new(dc.clone());
        cp.submit("web", deploy_intent(&dc, ServiceType::WebService));
        cp.process_all();
        let chain_view = cp.view();
        let ops = {
            // Fail an OPS inside the deployed chain's slice.
            let chain = chain_view.chains.values().next().unwrap();
            cp.inspect(|orch| {
                orch.manager()
                    .cluster(chain.cluster)
                    .unwrap()
                    .al()
                    .ops()
                    .first()
                    .copied()
            })
        };
        let Some(ops) = ops else { return };
        let fail = cp.submit(
            "operator",
            Intent::FailElement {
                element: Element::Ops(ops),
            },
        );
        cp.process_all();
        assert!(cp.outcome(fail).unwrap().is_completed());
        assert!(cp.view().failed_elements.contains(&Element::Ops(ops)));
        cp.inspect(|orch| assert!(orch.verify_no_failed_references(&dc)));
        let restore = cp.submit(
            "operator",
            Intent::RestoreElement {
                element: Element::Ops(ops),
            },
        );
        let reopt = cp.submit("operator", Intent::Reoptimize);
        cp.process_all();
        assert!(matches!(
            cp.outcome(restore).unwrap(),
            IntentOutcome::Completed(IntentEffect::Restored { was_failed: true })
        ));
        assert!(cp.outcome(reopt).unwrap().is_completed());
        assert!(cp.view().failed_elements.is_empty());
    }

    #[test]
    fn coalesced_and_singleton_deploys_fill_in_submission_order() {
        let dc = dc();
        let cp = ControlPlane::builder().batch_size(16).build(dc.clone());
        let services = [
            ServiceType::WebService,
            ServiceType::Sns,
            ServiceType::MapReduce,
        ];
        let tickets: Vec<_> = services
            .iter()
            .enumerate()
            .map(|(i, &s)| cp.submit(&format!("t{i}"), deploy_intent(&dc, s)))
            .collect();
        // Interleave a non-deploy intent to split the run.
        cp.submit("operator", Intent::Reoptimize);
        assert_eq!(cp.process_batch(), 4);
        let mut deployed = Vec::new();
        for t in tickets {
            if let IntentOutcome::Completed(IntentEffect::Deployed { chain }) =
                cp.outcome(t).unwrap()
            {
                deployed.push(chain);
            }
        }
        assert!(deployed.len() >= 2, "mesh fits several tenants");
        let view = cp.view();
        assert_eq!(view.chain_count(), deployed.len());
        cp.inspect(|orch| assert!(orch.manager().verify_disjoint()));
    }

    #[test]
    fn replay_reproduces_the_view() {
        let dc = dc();
        let build = || {
            ControlPlane::builder()
                .batch_size(3)
                .default_quota(TenantQuota::new(2, 3))
                .build(dc.clone())
        };
        let live = build();
        let vms = dc.vms_of_service(ServiceType::WebService);
        live.submit("web", deploy_intent(&dc, ServiceType::WebService));
        live.submit("sns", deploy_intent(&dc, ServiceType::Sns));
        live.process_batch();
        let chain = live.view().chains_of("web")[0];
        live.submit(
            "web",
            Intent::ModifyChain {
                chain,
                spec: fig5::blue(vms[0], *vms.last().unwrap()),
            },
        );
        live.submit("web", Intent::ScaleOut { chain, position: 0 });
        live.submit("mallory", Intent::TeardownChain { chain });
        live.process_batch();
        let (live_view, log) = (live.view(), live.intent_log());
        assert!(!log.is_empty());

        let fresh = build();
        let replayed = fresh.replay(&log);
        assert_eq!(*live_view, *replayed);
        assert_eq!(log, fresh.intent_log(), "outcomes replay identically too");
    }

    #[test]
    fn recluster_intent_admission_execution_and_replay() {
        let dc = dc();
        let build = || ControlPlane::builder().batch_size(4).build(dc.clone());
        let live = build();
        live.submit("web", deploy_intent(&dc, ServiceType::WebService));
        live.submit("sns", deploy_intent(&dc, ServiceType::Sns));
        live.process_batch();
        assert_eq!(live.view().chain_count(), 2);

        // A valid move: a non-endpoint VM from web's cluster to sns's.
        let mv = live.inspect(|orch| {
            let chains: Vec<_> = orch.chains().collect();
            let (from, to) = (chains[0].cluster(), chains[1].cluster());
            let spec = chains[0].nfc().spec();
            let vm = orch
                .manager()
                .cluster(from)
                .unwrap()
                .vms()
                .iter()
                .copied()
                .find(|&v| v != spec.ingress && v != spec.egress)
                .unwrap();
            alvc_affinity::VmMove { vm, from, to }
        });

        // Ordinary tenants may not recluster; empty plans are no-ops.
        let not_op = live.submit("web", Intent::Recluster { moves: vec![mv] });
        let empty = live.submit("operator", Intent::Recluster { moves: vec![] });
        let good = live.submit("operator", Intent::Recluster { moves: vec![mv] });
        live.process_batch();
        assert!(matches!(
            live.outcome(not_op).unwrap(),
            IntentOutcome::Rejected(AdmissionError::NotAuthorized { .. })
        ));
        assert!(matches!(
            live.outcome(empty).unwrap(),
            IntentOutcome::Rejected(AdmissionError::EmptyPlan)
        ));
        let IntentOutcome::Completed(IntentEffect::Reclustered {
            applied, skipped, ..
        }) = live.outcome(good).unwrap()
        else {
            panic!("recluster failed: {:?}", live.outcome(good));
        };
        assert_eq!((applied, skipped), (1, 0));
        // The view exposes the new membership.
        let view = live.view();
        assert!(view.clusters[&mv.to].vms.contains(&mv.vm));
        assert!(!view.clusters[&mv.from].vms.contains(&mv.vm));
        live.inspect(|orch| assert!(orch.manager().verify_disjoint()));

        // Replay (moves travel as data in the log) is bit-identical.
        let fresh = build();
        let replayed = fresh.replay(&live.intent_log());
        assert_eq!(*live.view(), *replayed);
        assert_eq!(live.intent_log(), fresh.intent_log());
    }

    #[test]
    #[should_panic(expected = "fresh control plane")]
    fn replay_refuses_a_used_control_plane() {
        let dc = dc();
        let cp = ControlPlane::new(dc.clone());
        cp.submit("operator", Intent::Reoptimize);
        cp.process_all();
        let log = cp.intent_log();
        cp.replay(&log);
    }

    /// Satellite regression: a rejected intent must not consume the
    /// tenant's per-batch rate budget — garbage submissions ahead of a
    /// valid one cannot crowd it out.
    #[test]
    fn rejected_intents_consume_no_rate_budget() {
        let dc = dc();
        let cp = ControlPlane::builder()
            .batch_size(8)
            .default_quota(TenantQuota {
                max_live_chains: None,
                max_intents_per_batch: Some(1),
                weight: 1,
            })
            .build(dc.clone());
        // Two structurally hopeless deploys ahead of one valid deploy,
        // all from the same tenant, all in one batch.
        let vms = dc.vms_of_service(ServiceType::WebService);
        let garbage1 = cp.submit(
            "web",
            Intent::DeployChain {
                vms: vec![],
                spec: fig5::black(vms[0], vms[1]),
            },
        );
        let garbage2 = cp.submit(
            "web",
            Intent::DeployChain {
                vms: vec![],
                spec: fig5::black(vms[0], vms[1]),
            },
        );
        let valid = cp.submit("web", deploy_intent(&dc, ServiceType::WebService));
        assert_eq!(cp.process_batch(), 3);
        assert!(matches!(
            cp.outcome(garbage1).unwrap(),
            IntentOutcome::Rejected(AdmissionError::EmptyVmGroup)
        ));
        assert!(matches!(
            cp.outcome(garbage2).unwrap(),
            IntentOutcome::Rejected(AdmissionError::EmptyVmGroup)
        ));
        assert!(
            cp.outcome(valid).unwrap().is_completed(),
            "the budget of 1 belongs to the valid intent: {:?}",
            cp.outcome(valid)
        );

        // And replay reproduces the same decisions bit-for-bit.
        let fresh = ControlPlane::builder()
            .batch_size(8)
            .default_quota(TenantQuota {
                max_live_chains: None,
                max_intents_per_batch: Some(1),
                weight: 1,
            })
            .build(dc.clone());
        let replayed = fresh.replay(&cp.intent_log());
        assert_eq!(*cp.view(), *replayed);
        assert_eq!(cp.intent_log(), fresh.intent_log());
    }

    /// Satellite regression: outcomes beyond the retention window are
    /// evicted and poll as `None`.
    #[test]
    fn outcome_retention_evicts_old_tickets() {
        let dc = dc();
        let cp = ControlPlane::builder()
            .batch_size(2)
            .outcome_retention(2)
            .build(dc.clone());
        let tickets: Vec<IntentId> = (0..6)
            .map(|_| cp.submit("operator", Intent::Reoptimize))
            .collect();
        cp.process_all();
        assert_eq!(cp.outcome_map_len(), 2);
        for &old in &tickets[..4] {
            assert!(cp.outcome(old).is_none(), "{old} evicted");
        }
        for &recent in &tickets[4..] {
            assert!(cp.outcome(recent).unwrap().is_completed());
        }
        // The log still remembers everything: retention bounds the poll
        // window, not the run's replayable identity.
        assert_eq!(cp.intent_log().len(), 6);
    }

    #[test]
    #[should_panic(expected = "outcome retention must be positive")]
    fn zero_outcome_retention_is_refused() {
        let _ = ControlPlane::builder().outcome_retention(0);
    }

    /// Tentpole: under DRR a tenant that floods the queue first no longer
    /// owns every slot of the next batch; under FIFO it does.
    #[test]
    fn drr_shares_batch_slots_under_asymmetric_load() {
        let dc = dc();
        for (mode, expect_quiet_in_first_batch) in [
            (SchedulerMode::DeficitRoundRobin, true),
            (SchedulerMode::Fifo, false),
        ] {
            let cp = ControlPlane::builder()
                .batch_size(4)
                .scheduler(mode)
                .operator("op")
                .build(dc.clone());
            for _ in 0..8 {
                cp.submit("noisy", Intent::Reoptimize); // rejected: not operator
            }
            let quiet = cp.submit("op", Intent::Reoptimize);
            assert_eq!(cp.process_batch(), 4);
            assert_eq!(
                cp.outcome(quiet).is_some(),
                expect_quiet_in_first_batch,
                "{mode:?}"
            );
            cp.process_all();
            assert!(cp.outcome(quiet).unwrap().is_completed());
        }
    }
}
