//! Lock-free snapshot reads: the immutable [`StateView`].
//!
//! After every executed batch the control plane captures the entire
//! observable orchestrator state into one immutable [`StateView`] and
//! swaps it behind an `Arc`. Readers clone the `Arc` (a reference-count
//! bump) and then read freely — chain status, slice usage, committed
//! bandwidth — while the write path executes the next batch on the live
//! orchestrator. Read traffic therefore never blocks intent execution,
//! and a reader always sees a *consistent* state: exactly the world as of
//! some batch boundary, never a half-applied intent.
//!
//! Every collection is a `BTreeMap`/`BTreeSet` so two views compare
//! field-for-field deterministically; the replay property test leans on
//! this (`replay(log)` must produce a `StateView` equal to the live one).

use std::collections::{BTreeMap, BTreeSet};

use alvc_core::ClusterId;
use alvc_topology::{Element, OpsId, VmId};

use crate::chain::NfcId;
use crate::lifecycle::{HostLocation, VnfInstanceId, VnfState};
use crate::orchestrator::Orchestrator;

/// One deployed chain as seen by readers.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainView {
    /// The owning tenant.
    pub tenant: String,
    /// The virtual cluster serving as the chain's slice.
    pub cluster: ClusterId,
    /// The chain spec's name.
    pub name: String,
    /// Number of VNFs in the chain.
    pub vnf_count: usize,
    /// Requested bandwidth, in the ledger's integer kb/s unit.
    pub bandwidth_kbps: u64,
    /// Hops of the routed path.
    pub hop_count: usize,
    /// O/E/O conversions the chain's flow incurs.
    pub oeo_conversions: usize,
    /// The chain's VNF instances, in chain order.
    pub instances: Vec<VnfInstanceId>,
    /// `true` while the chain runs outside its slice after a failure.
    pub degraded: bool,
}

/// One VNF instance (chain member or scale-out replica) as seen by
/// readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceView {
    /// Lifecycle state.
    pub state: VnfState,
    /// Where the instance runs.
    pub host: HostLocation,
}

/// One virtual cluster (and its abstraction layer) as seen by readers.
/// Captured so that replay equality covers cluster membership — adaptive
/// re-clustering moves VMs between clusters without touching any chain,
/// and two runs only match if those moves match too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSliceView {
    /// The cluster's human-readable label.
    pub label: String,
    /// Member VMs, sorted.
    pub vms: Vec<VmId>,
    /// The abstraction layer's OPS switches, sorted.
    pub ops: Vec<OpsId>,
}

/// Per-tenant aggregate usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantView {
    /// Live deployed chains.
    pub live_chains: usize,
    /// Bandwidth committed across the tenant's chains, integer kb/s.
    pub committed_kbps: u64,
    /// Live scale-out replicas across the tenant's chains.
    pub replicas: usize,
}

/// An immutable, internally consistent snapshot of everything the control
/// plane exposes to readers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateView {
    /// Number of batches executed when the snapshot was taken (the
    /// snapshot's version: strictly increasing).
    pub version: u64,
    /// Total intents executed (completed, rejected, or failed).
    pub intents_processed: u64,
    /// Deployed chains by id.
    pub chains: BTreeMap<NfcId, ChainView>,
    /// Live VNF instances (chain members and replicas) by id.
    pub instances: BTreeMap<VnfInstanceId, InstanceView>,
    /// Virtual clusters (slices) by id, including their membership and
    /// abstraction layers.
    pub clusters: BTreeMap<ClusterId, ClusterSliceView>,
    /// Committed bandwidth per physical link, integer kb/s.
    pub link_committed_kbps: BTreeMap<alvc_graph::EdgeId, u64>,
    /// Per-tenant aggregates (only tenants with live chains appear).
    pub tenants: BTreeMap<String, TenantView>,
    /// Substrate elements currently failed.
    pub failed_elements: BTreeSet<Element>,
    /// Chains currently running outside their slice.
    pub degraded_chains: BTreeSet<NfcId>,
    /// Flow rules installed across all switches.
    pub sdn_rules: usize,
    /// Sum of `link_committed_kbps` (total network commitment).
    pub total_committed_kbps: u64,
}

impl StateView {
    /// Captures the orchestrator's observable state. `owners` maps each
    /// live chain to its tenant (maintained by the control plane, which
    /// executes every mutation).
    pub(crate) fn capture(
        version: u64,
        intents_processed: u64,
        orch: &Orchestrator,
        owners: &BTreeMap<NfcId, String>,
    ) -> StateView {
        let mut chains = BTreeMap::new();
        let mut tenants: BTreeMap<String, TenantView> = BTreeMap::new();
        for (&id, deployed) in &orch.chains {
            let tenant = owners.get(&id).cloned().unwrap_or_default();
            let bandwidth_kbps = crate::orchestrator::kbps(deployed.nfc().spec().bandwidth_gbps);
            let entry = tenants.entry(tenant.clone()).or_default();
            entry.live_chains += 1;
            entry.committed_kbps += bandwidth_kbps;
            chains.insert(
                id,
                ChainView {
                    tenant,
                    cluster: deployed.cluster(),
                    name: deployed.nfc().spec().name.clone(),
                    vnf_count: deployed.nfc().vnfs().len(),
                    bandwidth_kbps,
                    hop_count: deployed.path().hop_count(),
                    oeo_conversions: deployed.oeo_conversions(),
                    instances: deployed.instances().to_vec(),
                    degraded: orch.degraded.contains(&id),
                },
            );
        }
        for (chain, _) in orch.replicas.values() {
            if let Some(tenant) = owners.get(chain) {
                if let Some(entry) = tenants.get_mut(tenant) {
                    entry.replicas += 1;
                }
            }
        }
        let instances = orch
            .instances
            .iter()
            .map(|(&id, inst)| {
                (
                    id,
                    InstanceView {
                        state: inst.state(),
                        host: inst.host(),
                    },
                )
            })
            .collect();
        let clusters = orch
            .manager
            .clusters()
            .map(|vc| {
                (
                    vc.id(),
                    ClusterSliceView {
                        label: vc.label().to_string(),
                        vms: vc.vms().to_vec(),
                        ops: vc.al().ops().to_vec(),
                    },
                )
            })
            .collect();
        let link_committed_kbps: BTreeMap<_, _> = orch.link_committed.iter().collect();
        let total_committed_kbps = link_committed_kbps.values().sum();
        StateView {
            version,
            intents_processed,
            chains,
            instances,
            clusters,
            link_committed_kbps,
            tenants,
            failed_elements: orch.health.failed().into_iter().collect(),
            degraded_chains: orch.degraded.iter().copied().collect(),
            sdn_rules: orch.sdn.total_rules(),
            total_committed_kbps,
        }
    }

    /// Number of deployed chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Number of live VNF instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Bandwidth (Gb/s) committed on a physical link.
    pub fn committed_bandwidth_gbps(&self, edge: alvc_graph::EdgeId) -> f64 {
        self.link_committed_kbps.get(&edge).copied().unwrap_or(0) as f64 / 1e6
    }

    /// The chains owned by `tenant`, in id order.
    pub fn chains_of(&self, tenant: &str) -> Vec<NfcId> {
        self.chains
            .iter()
            .filter(|(_, c)| c.tenant == tenant)
            .map(|(&id, _)| id)
            .collect()
    }

    /// The aggregate usage of `tenant`, zero if it runs nothing.
    pub fn tenant(&self, tenant: &str) -> TenantView {
        self.tenants.get(tenant).copied().unwrap_or_default()
    }
}
