//! Lock-free snapshot reads: the immutable [`StateView`].
//!
//! After every executed batch the control plane publishes an immutable
//! [`StateView`] behind an `Arc`. Readers clone the `Arc` (a
//! reference-count bump) and then read freely — chain status, slice
//! usage, committed bandwidth — while the write path executes the next
//! batch on the live orchestrator. Read traffic therefore never blocks
//! intent execution, and a reader always sees a *consistent* state:
//! exactly the world as of some batch boundary, never a half-applied
//! intent.
//!
//! Publication is **incremental**: the orchestrator marks every entity a
//! batch mutated (see [`crate::changes`]), and
//! [`StateView::apply_delta`] patches only those entries into a clone of
//! the previous snapshot — per-entry `Arc`s make the clone a pile of
//! reference-count bumps, so publication cost tracks the batch's blast
//! radius, not the size of the data center. Global operations (failure
//! recovery, re-optimization, re-clustering) fall back to a full
//! [`StateView::capture`]. A property test pins `apply_delta` ≡
//! `capture` after every batch.
//!
//! Every collection is a `BTreeMap`/`BTreeSet` so two views compare
//! field-for-field deterministically; the replay property test leans on
//! this (`replay(log)` must produce a `StateView` equal to the live one).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use alvc_core::ClusterId;
use alvc_topology::{Element, OpsId, VmId};

use crate::chain::NfcId;
use crate::changes::ChangeSet;
use crate::lifecycle::{HostLocation, VnfInstanceId, VnfState};
use crate::orchestrator::{DeployedChain, Orchestrator};

/// One deployed chain as seen by readers.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainView {
    /// The owning tenant.
    pub tenant: String,
    /// The virtual cluster serving as the chain's slice.
    pub cluster: ClusterId,
    /// The chain spec's name.
    pub name: String,
    /// Number of VNFs in the chain.
    pub vnf_count: usize,
    /// Requested bandwidth, in the ledger's integer kb/s unit.
    pub bandwidth_kbps: u64,
    /// Hops of the routed path.
    pub hop_count: usize,
    /// O/E/O conversions the chain's flow incurs.
    pub oeo_conversions: usize,
    /// The chain's VNF instances, in chain order.
    pub instances: Vec<VnfInstanceId>,
    /// `true` while the chain runs outside its slice after a failure.
    pub degraded: bool,
}

/// One VNF instance (chain member or scale-out replica) as seen by
/// readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceView {
    /// Lifecycle state.
    pub state: VnfState,
    /// Where the instance runs.
    pub host: HostLocation,
}

/// One virtual cluster (and its abstraction layer) as seen by readers.
/// Captured so that replay equality covers cluster membership — adaptive
/// re-clustering moves VMs between clusters without touching any chain,
/// and two runs only match if those moves match too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSliceView {
    /// The cluster's human-readable label.
    pub label: String,
    /// Member VMs, sorted.
    pub vms: Vec<VmId>,
    /// The abstraction layer's OPS switches, sorted.
    pub ops: Vec<OpsId>,
}

/// Per-tenant aggregate usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantView {
    /// Live deployed chains.
    pub live_chains: usize,
    /// Bandwidth committed across the tenant's chains, integer kb/s.
    pub committed_kbps: u64,
    /// Live scale-out replicas across the tenant's chains.
    pub replicas: usize,
}

/// An immutable, internally consistent snapshot of everything the control
/// plane exposes to readers.
///
/// Chain and cluster entries sit behind per-entry `Arc`s so incremental
/// publication can clone the previous snapshot cheaply; `Arc`
/// dereferences transparently, so field access reads the same as before
/// (`view.chains[&id].vnf_count`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateView {
    /// Number of batches executed when the snapshot was taken (the
    /// snapshot's version: strictly increasing).
    pub version: u64,
    /// Total intents executed (completed, rejected, or failed).
    pub intents_processed: u64,
    /// Deployed chains by id.
    pub chains: BTreeMap<NfcId, Arc<ChainView>>,
    /// Live VNF instances (chain members and replicas) by id.
    pub instances: BTreeMap<VnfInstanceId, InstanceView>,
    /// Virtual clusters (slices) by id, including their membership and
    /// abstraction layers.
    pub clusters: BTreeMap<ClusterId, Arc<ClusterSliceView>>,
    /// Committed bandwidth per physical link, integer kb/s.
    pub link_committed_kbps: BTreeMap<alvc_graph::EdgeId, u64>,
    /// Per-tenant aggregates (only tenants with live chains appear).
    pub tenants: BTreeMap<String, TenantView>,
    /// Substrate elements currently failed.
    pub failed_elements: BTreeSet<Element>,
    /// Chains currently running outside their slice.
    pub degraded_chains: BTreeSet<NfcId>,
    /// Flow rules installed across all switches.
    pub sdn_rules: usize,
    /// Sum of `link_committed_kbps` (total network commitment).
    pub total_committed_kbps: u64,
}

/// Builds the reader-facing view of one deployed chain.
fn chain_view(
    orch: &Orchestrator,
    owners: &BTreeMap<NfcId, String>,
    id: NfcId,
    deployed: &DeployedChain,
) -> ChainView {
    ChainView {
        tenant: owners.get(&id).cloned().unwrap_or_default(),
        cluster: deployed.cluster(),
        name: deployed.nfc().spec().name.clone(),
        vnf_count: deployed.nfc().vnfs().len(),
        bandwidth_kbps: crate::orchestrator::kbps(deployed.nfc().spec().bandwidth_gbps),
        hop_count: deployed.path().hop_count(),
        oeo_conversions: deployed.oeo_conversions(),
        instances: deployed.instances().to_vec(),
        degraded: orch.degraded.contains(&id),
    }
}

/// Rebuilds the per-tenant aggregates from a (possibly patched) chain
/// map. O(live chains + replicas) — independent of topology size.
fn tenant_aggregates(
    chains: &BTreeMap<NfcId, Arc<ChainView>>,
    orch: &Orchestrator,
    owners: &BTreeMap<NfcId, String>,
) -> BTreeMap<String, TenantView> {
    let mut tenants: BTreeMap<String, TenantView> = BTreeMap::new();
    for chain in chains.values() {
        let entry = tenants.entry(chain.tenant.clone()).or_default();
        entry.live_chains += 1;
        entry.committed_kbps += chain.bandwidth_kbps;
    }
    for (chain, _) in orch.replicas.values() {
        if let Some(tenant) = owners.get(chain) {
            if let Some(entry) = tenants.get_mut(tenant) {
                entry.replicas += 1;
            }
        }
    }
    tenants
}

impl StateView {
    /// Captures the orchestrator's observable state. `owners` maps each
    /// live chain to its tenant (maintained by the control plane, which
    /// executes every mutation).
    pub(crate) fn capture(
        version: u64,
        intents_processed: u64,
        orch: &Orchestrator,
        owners: &BTreeMap<NfcId, String>,
    ) -> StateView {
        let chains: BTreeMap<NfcId, Arc<ChainView>> = orch
            .chains
            .iter()
            .map(|(&id, deployed)| (id, Arc::new(chain_view(orch, owners, id, deployed))))
            .collect();
        let tenants = tenant_aggregates(&chains, orch, owners);
        let instances = orch
            .instances
            .iter()
            .map(|(&id, inst)| {
                (
                    id,
                    InstanceView {
                        state: inst.state(),
                        host: inst.host(),
                    },
                )
            })
            .collect();
        let clusters = orch
            .manager
            .clusters()
            .map(|vc| {
                (
                    vc.id(),
                    Arc::new(ClusterSliceView {
                        label: vc.label().to_string(),
                        vms: vc.vms().to_vec(),
                        ops: vc.al().ops().to_vec(),
                    }),
                )
            })
            .collect();
        let link_committed_kbps: BTreeMap<_, _> = orch.link_committed.iter().collect();
        let total_committed_kbps = link_committed_kbps.values().sum();
        StateView {
            version,
            intents_processed,
            chains,
            instances,
            clusters,
            link_committed_kbps,
            tenants,
            failed_elements: orch.health.failed().into_iter().collect(),
            degraded_chains: orch.degraded.iter().copied().collect(),
            sdn_rules: orch.sdn.total_rules(),
            total_committed_kbps,
        }
    }

    /// Builds the next snapshot by patching `changes` into a clone of
    /// `prev` — the incremental twin of [`StateView::capture`], used for
    /// every batch whose blast radius the orchestrator could enumerate.
    ///
    /// The caller must hand in a `ChangeSet` with
    /// [`full`](ChangeSet::full) unset; global operations go through
    /// `capture` instead.
    pub(crate) fn apply_delta(
        prev: &StateView,
        version: u64,
        intents_processed: u64,
        orch: &Orchestrator,
        owners: &BTreeMap<NfcId, String>,
        changes: &ChangeSet,
    ) -> StateView {
        debug_assert!(!changes.full, "full change sets go through capture");
        let mut view = prev.clone();
        view.version = version;
        view.intents_processed = intents_processed;

        for &id in &changes.chains {
            match orch.chains.get(&id) {
                Some(deployed) => {
                    view.chains
                        .insert(id, Arc::new(chain_view(orch, owners, id, deployed)));
                }
                None => {
                    view.chains.remove(&id);
                }
            }
        }
        for &iid in &changes.instances {
            match orch.instances.get(&iid) {
                Some(inst) => {
                    view.instances.insert(
                        iid,
                        InstanceView {
                            state: inst.state(),
                            host: inst.host(),
                        },
                    );
                }
                None => {
                    view.instances.remove(&iid);
                }
            }
        }
        for &cid in &changes.clusters {
            match orch.manager.cluster(cid) {
                Some(vc) => {
                    view.clusters.insert(
                        cid,
                        Arc::new(ClusterSliceView {
                            label: vc.label().to_string(),
                            vms: vc.vms().to_vec(),
                            ops: vc.al().ops().to_vec(),
                        }),
                    );
                }
                None => {
                    view.clusters.remove(&cid);
                }
            }
        }
        for &edge in &changes.edges {
            let now = orch.link_committed.committed(edge);
            let before = if now == 0 {
                view.link_committed_kbps.remove(&edge).unwrap_or(0)
            } else {
                view.link_committed_kbps.insert(edge, now).unwrap_or(0)
            };
            view.total_committed_kbps = view.total_committed_kbps - before + now;
        }
        // Cheap wholesale rebuilds: aggregates over live chains/replicas
        // and the (small) global sets. Everything here is O(live state),
        // not O(topology).
        view.tenants = tenant_aggregates(&view.chains, orch, owners);
        view.failed_elements = orch.health.failed().into_iter().collect();
        view.degraded_chains = orch.degraded.iter().copied().collect();
        view.sdn_rules = orch.sdn.total_rules();
        view
    }

    /// Number of deployed chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Number of live VNF instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Bandwidth (Gb/s) committed on a physical link.
    pub fn committed_bandwidth_gbps(&self, edge: alvc_graph::EdgeId) -> f64 {
        self.link_committed_kbps.get(&edge).copied().unwrap_or(0) as f64 / 1e6
    }

    /// The chains owned by `tenant`, in id order.
    pub fn chains_of(&self, tenant: &str) -> Vec<NfcId> {
        self.chains
            .iter()
            .filter(|(_, c)| c.tenant == tenant)
            .map(|(&id, _)| id)
            .collect()
    }

    /// The aggregate usage of `tenant`, zero if it runs nothing.
    pub fn tenant(&self, tenant: &str) -> TenantView {
        self.tenants.get(tenant).copied().unwrap_or_default()
    }
}
