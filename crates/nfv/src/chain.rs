//! Network function chains (§IV.A, Fig. 5).
//!
//! "An NFC is defined as a set of Network Functions (NFs), packet
//! processing order (simple or complex), network resource requirements
//! (node and links), and network forwarding graph." The paper considers
//! per-user/per-application chains, which are linear paths; the
//! [`ForwardingGraph`] type additionally supports the "complex" (branching)
//! processing order and linearizes it for deployment.
//!
//! Chains are built through [`ChainSpec::builder`], which accepts either a
//! linear stage list ([`ChainSpecBuilder::linear`]) or a partial-order DAG
//! ([`ChainSpecBuilder::stage`] + [`ChainSpecBuilder::dependency`]),
//! attaches typed [`PlacementRule`]s, and validates the whole specification
//! at build time — malformed chains are a [`ChainSpecError`], not a
//! deployment-time surprise.

use alvc_graph::{DiGraph, NodeId};
use alvc_topology::{DataCenter, PodId, VmId};
use serde::{Deserialize, Serialize};

use crate::lifecycle::HostLocation;
use crate::vnf::VnfSpec;

/// Identifier of a deployed chain, issued by the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NfcId(pub usize);

impl NfcId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NfcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "nfc-{}", self.0)
    }
}

/// Handle to a stage added to a [`ChainSpecBuilder`], used to declare
/// dependencies and attach [`PlacementRule`]s before the builder decides
/// the final linear order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(usize);

impl StageId {
    /// Returns the raw insertion index within the builder.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A placement constraint attached to a [`ChainSpec`].
///
/// Stage indices refer to positions in the chain's final linear VNF order
/// (`ChainSpec::vnfs`); [`ChainSpecBuilder`] translates [`StageId`] handles
/// into those positions when it linearizes the forwarding DAG. Rules are
/// enforced at admission: a placement that violates any rule is rejected
/// with a typed error before any state is committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PlacementRule {
    /// Stages `a` and `b` must run on distinct hosts (fault isolation).
    AntiAffinity {
        /// First stage position.
        a: usize,
        /// Second stage position.
        b: usize,
    },
    /// Stages `a` and `b` must run in the same pod (latency locality),
    /// though not necessarily on the same host.
    Affinity {
        /// First stage position.
        a: usize,
        /// Second stage position.
        b: usize,
    },
    /// Stages `a` and `b` must share one host (zero-hop hand-off).
    Colocate {
        /// First stage position.
        a: usize,
        /// Second stage position.
        b: usize,
    },
    /// Stage `stage` must be hosted inside pod `pod` (data residency /
    /// hardware locality).
    PinToPod {
        /// Constrained stage position.
        stage: usize,
        /// Required pod.
        pod: PodId,
    },
}

/// The pod a host belongs to.
pub(crate) fn host_pod(dc: &DataCenter, host: HostLocation) -> PodId {
    match host {
        HostLocation::Server(s) => dc.pod_of_server(s),
        HostLocation::OptoRouter(o) => dc.pod_of_ops(o),
    }
}

impl PlacementRule {
    /// Short machine-readable label for reports and error payloads.
    pub fn code(&self) -> &'static str {
        match self {
            PlacementRule::AntiAffinity { .. } => "anti_affinity",
            PlacementRule::Affinity { .. } => "affinity",
            PlacementRule::Colocate { .. } => "colocate",
            PlacementRule::PinToPod { .. } => "pin_to_pod",
        }
    }

    /// Returns `true` if `hosts` (one per chain position) satisfies this
    /// rule. Positions beyond `hosts` count as unsatisfied.
    pub fn satisfied_by(&self, dc: &DataCenter, hosts: &[HostLocation]) -> bool {
        let host = |i: usize| hosts.get(i).copied();
        match *self {
            PlacementRule::AntiAffinity { a, b } => match (host(a), host(b)) {
                (Some(ha), Some(hb)) => ha != hb,
                _ => false,
            },
            PlacementRule::Affinity { a, b } => match (host(a), host(b)) {
                (Some(ha), Some(hb)) => host_pod(dc, ha) == host_pod(dc, hb),
                _ => false,
            },
            PlacementRule::Colocate { a, b } => match (host(a), host(b)) {
                (Some(ha), Some(hb)) => ha == hb,
                _ => false,
            },
            PlacementRule::PinToPod { stage, pod } => {
                host(stage).is_some_and(|h| host_pod(dc, h) == pod)
            }
        }
    }

    /// The stage positions this rule mentions.
    pub fn stages(&self) -> (usize, Option<usize>) {
        match *self {
            PlacementRule::AntiAffinity { a, b }
            | PlacementRule::Affinity { a, b }
            | PlacementRule::Colocate { a, b } => (a, Some(b)),
            PlacementRule::PinToPod { stage, .. } => (stage, None),
        }
    }
}

impl std::fmt::Display for PlacementRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PlacementRule::AntiAffinity { a, b } => write!(f, "anti-affinity({a}, {b})"),
            PlacementRule::Affinity { a, b } => write!(f, "affinity({a}, {b})"),
            PlacementRule::Colocate { a, b } => write!(f, "colocate({a}, {b})"),
            PlacementRule::PinToPod { stage, pod } => write!(f, "pin({stage} -> {pod})"),
        }
    }
}

/// Why a chain specification failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ChainSpecError {
    /// The chain name is empty.
    EmptyName,
    /// The chain has no stages and was not declared a pure-forwarding
    /// passthrough ([`ChainSpecBuilder::passthrough`]).
    EmptyChain,
    /// Ingress and egress are the same VM but the chain has no stage to
    /// hairpin through — the flow would be a zero-length loop.
    LoopWithoutStage,
    /// No ingress VM was set.
    MissingIngress,
    /// No egress VM was set.
    MissingEgress,
    /// The requested bandwidth is not a finite positive number.
    InvalidBandwidth {
        /// The offending value.
        requested_gbps: f64,
    },
    /// The latency budget is not a finite positive number.
    InvalidLatencyBudget {
        /// The offending value.
        budget_us: f64,
    },
    /// The forwarding DAG has a dependency cycle and cannot linearize.
    CyclicDag,
    /// A placement rule names a stage the chain does not have.
    UnknownStage {
        /// The out-of-range stage position.
        stage: usize,
        /// How many stages the chain has.
        stages: usize,
    },
    /// A two-stage placement rule names the same stage twice.
    SelfReferentialRule {
        /// The repeated stage position.
        stage: usize,
    },
    /// The same stage pair is both anti-affine and colocated — no
    /// placement can satisfy both.
    ConflictingRules {
        /// First stage position.
        a: usize,
        /// Second stage position.
        b: usize,
    },
    /// The QoS latency SLO is not a finite positive number.
    InvalidSlo {
        /// The offending value.
        slo_us: f64,
    },
    /// The QoS weight is not a finite positive number.
    InvalidQosWeight {
        /// The offending value.
        weight: f64,
    },
}

impl ChainSpecError {
    /// Stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            ChainSpecError::EmptyName => "empty_name",
            ChainSpecError::EmptyChain => "empty_chain",
            ChainSpecError::LoopWithoutStage => "loop_without_stage",
            ChainSpecError::MissingIngress => "missing_ingress",
            ChainSpecError::MissingEgress => "missing_egress",
            ChainSpecError::InvalidBandwidth { .. } => "invalid_bandwidth",
            ChainSpecError::InvalidLatencyBudget { .. } => "invalid_latency_budget",
            ChainSpecError::CyclicDag => "cyclic_dag",
            ChainSpecError::UnknownStage { .. } => "unknown_stage",
            ChainSpecError::SelfReferentialRule { .. } => "self_referential_rule",
            ChainSpecError::ConflictingRules { .. } => "conflicting_rules",
            ChainSpecError::InvalidSlo { .. } => "invalid_slo",
            ChainSpecError::InvalidQosWeight { .. } => "invalid_qos_weight",
        }
    }
}

impl std::fmt::Display for ChainSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ChainSpecError::EmptyName => write!(f, "chain name is empty"),
            ChainSpecError::EmptyChain => {
                write!(
                    f,
                    "chain has no stages (use passthrough() for pure forwarding)"
                )
            }
            ChainSpecError::LoopWithoutStage => {
                write!(f, "ingress equals egress but the chain has no stage")
            }
            ChainSpecError::MissingIngress => write!(f, "no ingress VM set"),
            ChainSpecError::MissingEgress => write!(f, "no egress VM set"),
            ChainSpecError::InvalidBandwidth { requested_gbps } => {
                write!(
                    f,
                    "bandwidth {requested_gbps} Gb/s is not finite and positive"
                )
            }
            ChainSpecError::InvalidLatencyBudget { budget_us } => {
                write!(
                    f,
                    "latency budget {budget_us} us is not finite and positive"
                )
            }
            ChainSpecError::CyclicDag => write!(f, "forwarding DAG has a cycle"),
            ChainSpecError::UnknownStage { stage, stages } => {
                write!(
                    f,
                    "rule names stage {stage} but the chain has {stages} stages"
                )
            }
            ChainSpecError::SelfReferentialRule { stage } => {
                write!(f, "rule names stage {stage} on both sides")
            }
            ChainSpecError::ConflictingRules { a, b } => {
                write!(f, "stages {a} and {b} are both anti-affine and colocated")
            }
            ChainSpecError::InvalidSlo { slo_us } => {
                write!(f, "latency SLO {slo_us} us is not finite and positive")
            }
            ChainSpecError::InvalidQosWeight { weight } => {
                write!(f, "QoS weight {weight} is not finite and positive")
            }
        }
    }
}

impl std::error::Error for ChainSpecError {}

/// A chain's quality-of-service class: the latency objective the energy
/// plane must preserve, and its relative importance.
///
/// Where [`ChainSpec::max_latency_us`] is a *deploy-time* budget (exceed it
/// and admission fails), the QoS class is a *standing* objective: the
/// orchestrator also refuses any reroute or re-placement whose predicted
/// path latency exceeds `latency_slo_us`, and the `alvc-energy`
/// consolidation planner never proposes a power-down whose predicted p99
/// would violate it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosClass {
    /// One-way p99 latency objective for the chain's path, in
    /// microseconds.
    pub latency_slo_us: f64,
    /// Relative weight of this chain when objectives conflict (e.g. which
    /// chains the consolidation planner protects first). Default 1.0.
    pub weight: f64,
}

impl QosClass {
    /// A class with the given latency SLO and weight 1.0.
    pub fn new(latency_slo_us: f64) -> Self {
        QosClass {
            latency_slo_us,
            weight: 1.0,
        }
    }

    /// Sets the relative weight (builder style).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Checks the class's numeric invariants.
    ///
    /// # Errors
    ///
    /// [`ChainSpecError::InvalidSlo`] or
    /// [`ChainSpecError::InvalidQosWeight`].
    pub fn validate(&self) -> Result<(), ChainSpecError> {
        if !self.latency_slo_us.is_finite() || self.latency_slo_us <= 0.0 {
            return Err(ChainSpecError::InvalidSlo {
                slo_us: self.latency_slo_us,
            });
        }
        if !self.weight.is_finite() || self.weight <= 0.0 {
            return Err(ChainSpecError::InvalidQosWeight {
                weight: self.weight,
            });
        }
        Ok(())
    }
}

/// A chain to deploy: what the tenant hands the orchestrator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// Human-readable chain name.
    pub name: String,
    /// The VNFs in processing order.
    pub vnfs: Vec<VnfSpec>,
    /// VM originating the chain's traffic.
    pub ingress: VmId,
    /// VM terminating the chain's traffic.
    pub egress: VmId,
    /// Requested bandwidth.
    pub bandwidth_gbps: f64,
    /// Optional one-way latency budget for the chain's path (propagation +
    /// switching + O/E/O conversion latency), in microseconds. Admission
    /// rejects deployments whose routed path exceeds it.
    pub max_latency_us: Option<f64>,
    /// Placement constraints over stage positions, enforced at admission.
    #[serde(default)]
    pub rules: Vec<PlacementRule>,
    /// Optional QoS class: a standing latency SLO (enforced at admission
    /// and on every reroute) plus a relative weight.
    #[serde(default)]
    pub qos: Option<QosClass>,
}

impl ChainSpec {
    /// Starts a validating builder — the primary way to construct a spec.
    ///
    /// # Example
    ///
    /// ```
    /// use alvc_nfv::{ChainSpec, VnfSpec, VnfType};
    /// use alvc_topology::VmId;
    ///
    /// let spec = ChainSpec::builder("edge")
    ///     .linear([
    ///         VnfSpec::of(VnfType::Firewall),
    ///         VnfSpec::of(VnfType::Dpi),
    ///     ])
    ///     .ingress(VmId(0))
    ///     .egress(VmId(1))
    ///     .bandwidth_gbps(2.0)
    ///     .anti_affine(0, 1)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(spec.len(), 2);
    /// assert_eq!(spec.rules.len(), 1);
    /// ```
    pub fn builder(name: impl Into<String>) -> ChainSpecBuilder {
        ChainSpecBuilder::new(name)
    }

    /// Creates a chain spec without a latency budget.
    #[deprecated(
        since = "0.9.0",
        note = "use `ChainSpec::builder(..)`, which validates the spec and supports DAGs and placement rules"
    )]
    pub fn new(
        name: impl Into<String>,
        vnfs: Vec<VnfSpec>,
        ingress: VmId,
        egress: VmId,
        bandwidth_gbps: f64,
    ) -> Self {
        ChainSpec {
            name: name.into(),
            vnfs,
            ingress,
            egress,
            bandwidth_gbps,
            max_latency_us: None,
            rules: Vec::new(),
            qos: None,
        }
    }

    /// Sets a one-way latency budget (builder style).
    #[deprecated(
        since = "0.9.0",
        note = "use `ChainSpecBuilder::max_latency_us` on `ChainSpec::builder(..)`"
    )]
    pub fn with_max_latency_us(mut self, budget: f64) -> Self {
        self.max_latency_us = Some(budget);
        self
    }

    /// Number of VNFs in the chain.
    pub fn len(&self) -> usize {
        self.vnfs.len()
    }

    /// A chain with no VNFs is pure forwarding.
    pub fn is_empty(&self) -> bool {
        self.vnfs.is_empty()
    }

    /// Re-checks the invariants [`ChainSpecBuilder::build`] establishes, on
    /// an already-constructed spec (e.g. one that arrived through the
    /// deprecated constructor, deserialization, or hand-mutation).
    ///
    /// Pure-forwarding chains (no stages) are accepted here — they were
    /// always a legal input to the orchestrator — but a stage-less loop
    /// (ingress == egress) is not.
    ///
    /// # Errors
    ///
    /// The first [`ChainSpecError`] found.
    pub fn validate(&self) -> Result<(), ChainSpecError> {
        if self.name.is_empty() {
            return Err(ChainSpecError::EmptyName);
        }
        if !self.bandwidth_gbps.is_finite() || self.bandwidth_gbps <= 0.0 {
            return Err(ChainSpecError::InvalidBandwidth {
                requested_gbps: self.bandwidth_gbps,
            });
        }
        if let Some(budget) = self.max_latency_us {
            if !budget.is_finite() || budget <= 0.0 {
                return Err(ChainSpecError::InvalidLatencyBudget { budget_us: budget });
            }
        }
        if self.ingress == self.egress && self.vnfs.is_empty() {
            return Err(ChainSpecError::LoopWithoutStage);
        }
        if let Some(qos) = &self.qos {
            qos.validate()?;
        }
        validate_rules(&self.rules, self.vnfs.len())?;
        Ok(())
    }

    /// The effective one-way latency budget: the tighter of the deploy-time
    /// budget and the QoS latency SLO, if either is set. Admission and
    /// every subsequent reroute check the routed path against this.
    pub fn effective_latency_budget_us(&self) -> Option<f64> {
        match (self.max_latency_us, self.qos.map(|q| q.latency_slo_us)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The first rule `hosts` violates, if any (one host per stage).
    pub fn violated_rule(&self, dc: &DataCenter, hosts: &[HostLocation]) -> Option<PlacementRule> {
        self.rules
            .iter()
            .copied()
            .find(|r| !r.satisfied_by(dc, hosts))
    }
}

/// Checks rule positions against the stage count: bounds, self-references,
/// and anti-affinity/colocation conflicts.
fn validate_rules(rules: &[PlacementRule], stages: usize) -> Result<(), ChainSpecError> {
    let check = |stage: usize| {
        if stage >= stages {
            Err(ChainSpecError::UnknownStage { stage, stages })
        } else {
            Ok(())
        }
    };
    for rule in rules {
        let (a, b) = rule.stages();
        check(a)?;
        if let Some(b) = b {
            check(b)?;
            if a == b {
                return Err(ChainSpecError::SelfReferentialRule { stage: a });
            }
        }
    }
    let pair = |a: usize, b: usize| (a.min(b), a.max(b));
    for (i, ri) in rules.iter().enumerate() {
        for rj in &rules[i + 1..] {
            let conflict = match (*ri, *rj) {
                (PlacementRule::AntiAffinity { a, b }, PlacementRule::Colocate { a: c, b: d })
                | (PlacementRule::Colocate { a, b }, PlacementRule::AntiAffinity { a: c, b: d }) => {
                    pair(a, b) == pair(c, d)
                }
                _ => false,
            };
            if conflict {
                let (a, b) = ri.stages();
                return Err(ChainSpecError::ConflictingRules {
                    a,
                    b: b.expect("pair rule"),
                });
            }
        }
    }
    Ok(())
}

/// Rule drafted against builder [`StageId`]s, remapped to linear positions
/// at build time.
#[derive(Debug, Clone, Copy)]
enum DraftRule {
    AntiAffinity(StageId, StageId),
    Affinity(StageId, StageId),
    Colocate(StageId, StageId),
    PinToPod(StageId, PodId),
}

/// Validating builder for [`ChainSpec`]: linear stage lists or partial-order
/// DAGs, typed placement rules, and build-time error reporting.
///
/// Stages are added with [`ChainSpecBuilder::linear`] (each stage depends on
/// the previous one in the list) or [`ChainSpecBuilder::stage`] +
/// [`ChainSpecBuilder::dependency`] for branching ("complex") processing
/// orders; the two compose. [`ChainSpecBuilder::build`] linearizes the DAG
/// with a stable topological sort (ties broken by insertion order), so the
/// resulting spec is a pure function of the declared structure.
#[derive(Debug, Clone, Default)]
pub struct ChainSpecBuilder {
    name: String,
    graph: ForwardingGraph,
    ingress: Option<VmId>,
    egress: Option<VmId>,
    bandwidth_gbps: f64,
    max_latency_us: Option<f64>,
    rules: Vec<DraftRule>,
    qos: Option<QosClass>,
    passthrough: bool,
}

impl ChainSpecBuilder {
    fn new(name: impl Into<String>) -> Self {
        ChainSpecBuilder {
            name: name.into(),
            bandwidth_gbps: 1.0,
            ..ChainSpecBuilder::default()
        }
    }

    /// Adds one unordered stage and returns its handle.
    pub fn stage(&mut self, spec: VnfSpec) -> StageId {
        StageId(self.graph.add_vnf(spec).index())
    }

    /// Declares that `before` must process packets before `after`.
    pub fn dependency(&mut self, before: StageId, after: StageId) -> &mut Self {
        self.graph.add_dependency(NodeId(before.0), NodeId(after.0));
        self
    }

    /// Appends `stages` as a linear run: each depends on its predecessor in
    /// the list. Composes with [`ChainSpecBuilder::stage`]-built structure.
    pub fn linear(mut self, stages: impl IntoIterator<Item = VnfSpec>) -> Self {
        let mut prev: Option<StageId> = None;
        for spec in stages {
            let id = self.stage(spec);
            if let Some(p) = prev {
                self.dependency(p, id);
            }
            prev = Some(id);
        }
        self
    }

    /// Absorbs a prebuilt [`ForwardingGraph`]; its [`NodeId`]s become
    /// [`StageId`]s offset by the number of stages already added.
    pub fn graph(mut self, graph: &ForwardingGraph) -> Self {
        let offset = self.graph.len();
        for n in graph.graph.node_ids() {
            self.graph
                .add_vnf(*graph.graph.node_weight(n).expect("node exists"));
        }
        for (_, from, to, ()) in graph.graph.edges() {
            self.graph
                .add_dependency(NodeId(from.index() + offset), NodeId(to.index() + offset));
        }
        self
    }

    /// Sets the VM originating the chain's traffic.
    pub fn ingress(mut self, vm: VmId) -> Self {
        self.ingress = Some(vm);
        self
    }

    /// Sets the VM terminating the chain's traffic.
    pub fn egress(mut self, vm: VmId) -> Self {
        self.egress = Some(vm);
        self
    }

    /// Sets the requested bandwidth (default 1 Gb/s).
    pub fn bandwidth_gbps(mut self, gbps: f64) -> Self {
        self.bandwidth_gbps = gbps;
        self
    }

    /// Sets the one-way latency budget in microseconds.
    pub fn max_latency_us(mut self, budget: f64) -> Self {
        self.max_latency_us = Some(budget);
        self
    }

    /// Attaches a QoS class: a standing latency SLO (checked at admission
    /// and on every reroute) and a relative weight.
    pub fn qos(mut self, qos: QosClass) -> Self {
        self.qos = Some(qos);
        self
    }

    /// Declares an intentionally stage-less, pure-forwarding chain.
    pub fn passthrough(mut self) -> Self {
        self.passthrough = true;
        self
    }

    /// Requires stages `a` and `b` on distinct hosts.
    pub fn anti_affine(mut self, a: impl Into<StageId>, b: impl Into<StageId>) -> Self {
        self.rules.push(DraftRule::AntiAffinity(a.into(), b.into()));
        self
    }

    /// Requires stages `a` and `b` in the same pod.
    pub fn affine(mut self, a: impl Into<StageId>, b: impl Into<StageId>) -> Self {
        self.rules.push(DraftRule::Affinity(a.into(), b.into()));
        self
    }

    /// Requires stages `a` and `b` on one shared host.
    pub fn colocate(mut self, a: impl Into<StageId>, b: impl Into<StageId>) -> Self {
        self.rules.push(DraftRule::Colocate(a.into(), b.into()));
        self
    }

    /// Pins `stage` into pod `pod`.
    pub fn pin_to_pod(mut self, stage: impl Into<StageId>, pod: PodId) -> Self {
        self.rules.push(DraftRule::PinToPod(stage.into(), pod));
        self
    }

    /// Validates and produces the [`ChainSpec`].
    ///
    /// # Errors
    ///
    /// The first [`ChainSpecError`] found — nothing is partially built.
    pub fn build(self) -> Result<ChainSpec, ChainSpecError> {
        if self.name.is_empty() {
            return Err(ChainSpecError::EmptyName);
        }
        let ingress = self.ingress.ok_or(ChainSpecError::MissingIngress)?;
        let egress = self.egress.ok_or(ChainSpecError::MissingEgress)?;
        if self.graph.is_empty() {
            if ingress == egress {
                return Err(ChainSpecError::LoopWithoutStage);
            }
            if !self.passthrough {
                return Err(ChainSpecError::EmptyChain);
            }
        }
        let order = self
            .graph
            .linearized_ids()
            .ok_or(ChainSpecError::CyclicDag)?;
        let mut position = vec![0usize; order.len()];
        for (pos, node) in order.iter().enumerate() {
            position[node.index()] = pos;
        }
        // Range-check rule stages before remapping: `position` is indexed
        // by the raw builder stage id, so an unknown stage must surface as
        // a typed error, not an out-of-bounds panic.
        let stages = order.len();
        for rule in &self.rules {
            let (x, y) = match *rule {
                DraftRule::AntiAffinity(a, b)
                | DraftRule::Affinity(a, b)
                | DraftRule::Colocate(a, b) => (a, b),
                DraftRule::PinToPod(s, _) => (s, s),
            };
            for s in [x, y] {
                if s.0 >= stages {
                    return Err(ChainSpecError::UnknownStage { stage: s.0, stages });
                }
            }
        }
        let at = |s: StageId| position[s.0];
        let sorted = |a: StageId, b: StageId| {
            let (pa, pb) = (at(a), at(b));
            (pa.min(pb), pa.max(pb))
        };
        let rules: Vec<PlacementRule> = self
            .rules
            .iter()
            .map(|r| match *r {
                DraftRule::AntiAffinity(a, b) => {
                    let (a, b) = sorted(a, b);
                    PlacementRule::AntiAffinity { a, b }
                }
                DraftRule::Affinity(a, b) => {
                    let (a, b) = sorted(a, b);
                    PlacementRule::Affinity { a, b }
                }
                DraftRule::Colocate(a, b) => {
                    let (a, b) = sorted(a, b);
                    PlacementRule::Colocate { a, b }
                }
                DraftRule::PinToPod(s, pod) => PlacementRule::PinToPod { stage: at(s), pod },
            })
            .collect();
        let vnfs: Vec<VnfSpec> = order
            .iter()
            .map(|&n| *self.graph.graph.node_weight(n).expect("node exists"))
            .collect();
        let spec = ChainSpec {
            name: self.name,
            vnfs,
            ingress,
            egress,
            bandwidth_gbps: self.bandwidth_gbps,
            max_latency_us: self.max_latency_us,
            rules,
            qos: self.qos,
        };
        spec.validate()?;
        Ok(spec)
    }
}

impl From<usize> for StageId {
    /// Positions of a [`ChainSpecBuilder::linear`] list double as stage
    /// handles: stage `i` of the list is `StageId(i)`.
    fn from(i: usize) -> Self {
        StageId(i)
    }
}

/// A deployed chain (spec plus its orchestrator-assigned id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nfc {
    id: NfcId,
    spec: ChainSpec,
}

impl Nfc {
    /// Wraps a spec under its assigned id (called by the orchestrator).
    pub fn new(id: NfcId, spec: ChainSpec) -> Self {
        Nfc { id, spec }
    }

    /// The chain id.
    pub fn id(&self) -> NfcId {
        self.id
    }

    /// The underlying spec.
    pub fn spec(&self) -> &ChainSpec {
        &self.spec
    }

    /// The VNFs in processing order.
    pub fn vnfs(&self) -> &[VnfSpec] {
        &self.spec.vnfs
    }
}

/// A branching forwarding graph over VNFs ("complex" processing order).
///
/// Deployment requires an order, obtained by a stable topological sort
/// (ties broken by smallest [`NodeId`], so the order is a pure function of
/// the graph's structure); cyclic graphs are rejected.
///
/// # Example
///
/// ```
/// use alvc_nfv::{ForwardingGraph, VnfSpec, VnfType};
///
/// let mut g = ForwardingGraph::new();
/// let fw = g.add_vnf(VnfSpec::of(VnfType::Firewall));
/// let dpi = g.add_vnf(VnfSpec::of(VnfType::Dpi));
/// let lb = g.add_vnf(VnfSpec::of(VnfType::LoadBalancer));
/// g.add_dependency(fw, dpi);
/// g.add_dependency(fw, lb);
/// let order = g.linearize().unwrap();
/// assert_eq!(order.len(), 3);
/// assert_eq!(order[0].vnf_type, VnfType::Firewall);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ForwardingGraph {
    graph: DiGraph<VnfSpec, ()>,
}

impl ForwardingGraph {
    /// Creates an empty forwarding graph.
    pub fn new() -> Self {
        ForwardingGraph::default()
    }

    /// Adds a VNF node.
    pub fn add_vnf(&mut self, spec: VnfSpec) -> NodeId {
        self.graph.add_node(spec)
    }

    /// Declares that `before` must process packets before `after`.
    ///
    /// # Panics
    ///
    /// Panics if either node is not in the graph.
    pub fn add_dependency(&mut self, before: NodeId, after: NodeId) {
        self.graph.add_edge(before, after, ());
    }

    /// Number of VNFs.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// The stable linear order as node ids, or `None` if cyclic.
    pub fn linearized_ids(&self) -> Option<Vec<NodeId>> {
        self.graph.stable_topological_order()
    }

    /// Produces a linear processing order respecting every dependency, or
    /// `None` if the graph is cyclic. Ties between independent branches are
    /// broken deterministically by insertion order.
    pub fn linearize(&self) -> Option<Vec<VnfSpec>> {
        let order = self.linearized_ids()?;
        Some(
            order
                .into_iter()
                .map(|n| *self.graph.node_weight(n).expect("node exists"))
                .collect(),
        )
    }

    /// Builds a linear spec from this graph.
    ///
    /// Returns `None` if the graph is cyclic.
    pub fn into_chain_spec(
        &self,
        name: impl Into<String>,
        ingress: VmId,
        egress: VmId,
        bandwidth_gbps: f64,
    ) -> Option<ChainSpec> {
        Some(ChainSpec {
            name: name.into(),
            vnfs: self.linearize()?,
            ingress,
            egress,
            bandwidth_gbps,
            max_latency_us: None,
            rules: Vec::new(),
            qos: None,
        })
    }
}

/// Convenience constructors for the three chains drawn in Fig. 5 (blue,
/// black, green service chains through security gateways, firewalls and
/// DPIs). Each requests 2 Gb/s — a per-user/per-application share of the
/// 10 Gb/s access links, so several chains can coexist on one server under
/// the orchestrator's bandwidth admission.
pub mod fig5 {
    use super::*;
    use crate::vnf::VnfType;

    fn chain(name: &str, vnfs: Vec<VnfSpec>, ingress: VmId, egress: VmId) -> ChainSpec {
        ChainSpec::builder(name)
            .linear(vnfs)
            .ingress(ingress)
            .egress(egress)
            .bandwidth_gbps(2.0)
            .build()
            .expect("fig5 chains are valid")
    }

    /// The "blue" chain: security gateway → firewall → DPI.
    pub fn blue(ingress: VmId, egress: VmId) -> ChainSpec {
        chain(
            "fig5-blue",
            vec![
                VnfSpec::of(VnfType::SecurityGateway),
                VnfSpec::of(VnfType::Firewall),
                VnfSpec::of(VnfType::Dpi),
            ],
            ingress,
            egress,
        )
    }

    /// The "black" chain: firewall → load balancer.
    pub fn black(ingress: VmId, egress: VmId) -> ChainSpec {
        chain(
            "fig5-black",
            vec![
                VnfSpec::of(VnfType::Firewall),
                VnfSpec::of(VnfType::LoadBalancer),
            ],
            ingress,
            egress,
        )
    }

    /// The "green" chain: NAT → security gateway → IDS → load balancer.
    pub fn green(ingress: VmId, egress: VmId) -> ChainSpec {
        chain(
            "fig5-green",
            vec![
                VnfSpec::of(VnfType::Nat),
                VnfSpec::of(VnfType::SecurityGateway),
                VnfSpec::of(VnfType::Ids),
                VnfSpec::of(VnfType::LoadBalancer),
            ],
            ingress,
            egress,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::VnfType;

    #[test]
    fn chain_spec_basics() {
        let spec = fig5::blue(VmId(0), VmId(1));
        assert_eq!(spec.len(), 3);
        assert!(!spec.is_empty());
        assert_eq!(spec.vnfs[0].vnf_type, VnfType::SecurityGateway);
        let empty = ChainSpec::builder("fwd")
            .passthrough()
            .ingress(VmId(0))
            .egress(VmId(1))
            .build()
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn deprecated_constructor_still_compiles_and_matches_builder() {
        #[allow(deprecated)]
        let legacy = ChainSpec::new(
            "edge",
            vec![VnfSpec::of(VnfType::Firewall), VnfSpec::of(VnfType::Dpi)],
            VmId(0),
            VmId(1),
            2.0,
        );
        #[allow(deprecated)]
        let legacy = legacy.with_max_latency_us(80.0);
        let built = ChainSpec::builder("edge")
            .linear([VnfSpec::of(VnfType::Firewall), VnfSpec::of(VnfType::Dpi)])
            .ingress(VmId(0))
            .egress(VmId(1))
            .bandwidth_gbps(2.0)
            .max_latency_us(80.0)
            .build()
            .unwrap();
        assert_eq!(legacy, built);
    }

    #[test]
    fn builder_rejects_malformed_specs() {
        let base = || {
            ChainSpec::builder("c")
                .linear([VnfSpec::of(VnfType::Firewall)])
                .ingress(VmId(0))
                .egress(VmId(1))
        };
        assert_eq!(
            ChainSpec::builder("")
                .linear([VnfSpec::of(VnfType::Firewall)])
                .ingress(VmId(0))
                .egress(VmId(1))
                .build()
                .unwrap_err(),
            ChainSpecError::EmptyName
        );
        assert_eq!(
            ChainSpec::builder("c").egress(VmId(1)).build().unwrap_err(),
            ChainSpecError::MissingIngress
        );
        assert_eq!(
            ChainSpec::builder("c")
                .ingress(VmId(0))
                .build()
                .unwrap_err(),
            ChainSpecError::MissingEgress
        );
        assert_eq!(
            ChainSpec::builder("c")
                .ingress(VmId(0))
                .egress(VmId(1))
                .build()
                .unwrap_err(),
            ChainSpecError::EmptyChain
        );
        assert_eq!(
            ChainSpec::builder("c")
                .passthrough()
                .ingress(VmId(3))
                .egress(VmId(3))
                .build()
                .unwrap_err(),
            ChainSpecError::LoopWithoutStage
        );
        assert_eq!(
            base().bandwidth_gbps(f64::NAN).build().unwrap_err().code(),
            "invalid_bandwidth"
        );
        assert_eq!(
            base().bandwidth_gbps(0.0).build().unwrap_err().code(),
            "invalid_bandwidth"
        );
        assert_eq!(
            base()
                .max_latency_us(f64::INFINITY)
                .build()
                .unwrap_err()
                .code(),
            "invalid_latency_budget"
        );
    }

    #[test]
    fn builder_rejects_bad_rules() {
        let two = || {
            ChainSpec::builder("c")
                .linear([VnfSpec::of(VnfType::Firewall), VnfSpec::of(VnfType::Dpi)])
                .ingress(VmId(0))
                .egress(VmId(1))
        };
        assert_eq!(
            two().anti_affine(0, 5).build().unwrap_err(),
            ChainSpecError::UnknownStage {
                stage: 5,
                stages: 2
            }
        );
        assert_eq!(
            two().colocate(1, 1).build().unwrap_err(),
            ChainSpecError::SelfReferentialRule { stage: 1 }
        );
        assert_eq!(
            two().anti_affine(0, 1).colocate(1, 0).build().unwrap_err(),
            ChainSpecError::ConflictingRules { a: 0, b: 1 }
        );
        // Anti-affinity plus same-pod affinity is satisfiable.
        assert!(two().anti_affine(0, 1).affine(0, 1).build().is_ok());
    }

    #[test]
    fn builder_rejects_cyclic_dag() {
        let mut b = ChainSpec::builder("cyc");
        let a = b.stage(VnfSpec::of(VnfType::Firewall));
        let c = b.stage(VnfSpec::of(VnfType::Nat));
        b.dependency(a, c);
        b.dependency(c, a);
        assert_eq!(
            b.ingress(VmId(0)).egress(VmId(1)).build().unwrap_err(),
            ChainSpecError::CyclicDag
        );
    }

    #[test]
    fn dag_builder_remaps_rules_to_linear_positions() {
        // Diamond fw -> {dpi, nat} -> lb with a rule on the two branches.
        let mut b = ChainSpec::builder("diamond");
        let fw = b.stage(VnfSpec::of(VnfType::Firewall));
        let dpi = b.stage(VnfSpec::of(VnfType::Dpi));
        let nat = b.stage(VnfSpec::of(VnfType::Nat));
        let lb = b.stage(VnfSpec::of(VnfType::LoadBalancer));
        b.dependency(fw, dpi);
        b.dependency(fw, nat);
        b.dependency(dpi, lb);
        b.dependency(nat, lb);
        let spec = b
            .anti_affine(dpi, nat)
            .ingress(VmId(0))
            .egress(VmId(1))
            .bandwidth_gbps(2.0)
            .build()
            .unwrap();
        // Stable order: fw, dpi, nat, lb (insertion-order tie-break).
        let types: Vec<_> = spec.vnfs.iter().map(|v| v.vnf_type).collect();
        assert_eq!(
            types,
            vec![
                VnfType::Firewall,
                VnfType::Dpi,
                VnfType::Nat,
                VnfType::LoadBalancer
            ]
        );
        assert_eq!(spec.rules, vec![PlacementRule::AntiAffinity { a: 1, b: 2 }]);
    }

    #[test]
    fn same_structure_linearizes_identically_regardless_of_edge_order() {
        // Same DAG, dependency declarations in different orders: the
        // linearization (and thus the deployed chain) must be identical.
        let build = |edge_order_flipped: bool| {
            let mut b = ChainSpec::builder("det");
            let a = b.stage(VnfSpec::of(VnfType::Firewall));
            let x = b.stage(VnfSpec::of(VnfType::Dpi));
            let y = b.stage(VnfSpec::of(VnfType::Nat));
            let z = b.stage(VnfSpec::of(VnfType::LoadBalancer));
            if edge_order_flipped {
                b.dependency(a, y);
                b.dependency(a, x);
            } else {
                b.dependency(a, x);
                b.dependency(a, y);
            }
            b.dependency(x, z);
            b.dependency(y, z);
            b.ingress(VmId(0)).egress(VmId(1)).build().unwrap()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn builder_absorbs_forwarding_graph() {
        let mut g = ForwardingGraph::new();
        let fw = g.add_vnf(VnfSpec::of(VnfType::Firewall));
        let lb = g.add_vnf(VnfSpec::of(VnfType::LoadBalancer));
        g.add_dependency(fw, lb);
        let spec = ChainSpec::builder("absorbed")
            .graph(&g)
            .ingress(VmId(0))
            .egress(VmId(1))
            .build()
            .unwrap();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.vnfs[0].vnf_type, VnfType::Firewall);
    }

    #[test]
    fn validate_checks_legacy_specs() {
        #[allow(deprecated)]
        let mut spec = ChainSpec::new(
            "x",
            vec![VnfSpec::of(VnfType::Firewall)],
            VmId(0),
            VmId(1),
            1.0,
        );
        assert!(spec.validate().is_ok());
        spec.rules.push(PlacementRule::PinToPod {
            stage: 9,
            pod: PodId(0),
        });
        assert_eq!(
            spec.validate().unwrap_err(),
            ChainSpecError::UnknownStage {
                stage: 9,
                stages: 1
            }
        );
    }

    #[test]
    fn nfc_wraps_spec() {
        let nfc = Nfc::new(NfcId(4), fig5::black(VmId(2), VmId(3)));
        assert_eq!(nfc.id(), NfcId(4));
        assert_eq!(nfc.vnfs().len(), 2);
        assert_eq!(nfc.id().to_string(), "nfc-4");
        assert_eq!(nfc.spec().name, "fig5-black");
    }

    #[test]
    fn forwarding_graph_linearizes_diamond() {
        let mut g = ForwardingGraph::new();
        let a = g.add_vnf(VnfSpec::of(VnfType::Firewall));
        let b = g.add_vnf(VnfSpec::of(VnfType::Dpi));
        let c = g.add_vnf(VnfSpec::of(VnfType::Nat));
        let d = g.add_vnf(VnfSpec::of(VnfType::LoadBalancer));
        g.add_dependency(a, b);
        g.add_dependency(a, c);
        g.add_dependency(b, d);
        g.add_dependency(c, d);
        let order = g.linearize().unwrap();
        let pos = |t: VnfType| order.iter().position(|s| s.vnf_type == t).unwrap();
        assert!(pos(VnfType::Firewall) < pos(VnfType::Dpi));
        assert!(pos(VnfType::Firewall) < pos(VnfType::Nat));
        assert!(pos(VnfType::Dpi) < pos(VnfType::LoadBalancer));
        assert!(pos(VnfType::Nat) < pos(VnfType::LoadBalancer));
    }

    #[test]
    fn linearization_is_stable_under_edge_insertion_order() {
        // Regression: the old linearization used an unstable Kahn queue, so
        // tie ordering depended on edge insertion order.
        let build = |flip: bool| {
            let mut g = ForwardingGraph::new();
            let a = g.add_vnf(VnfSpec::of(VnfType::Firewall));
            let b = g.add_vnf(VnfSpec::of(VnfType::Dpi));
            let c = g.add_vnf(VnfSpec::of(VnfType::Nat));
            let d = g.add_vnf(VnfSpec::of(VnfType::LoadBalancer));
            if flip {
                g.add_dependency(a, c);
                g.add_dependency(a, b);
            } else {
                g.add_dependency(a, b);
                g.add_dependency(a, c);
            }
            g.add_dependency(b, d);
            g.add_dependency(c, d);
            g.linearize().unwrap()
        };
        let order = build(false);
        assert_eq!(order, build(true));
        let types: Vec<_> = order.iter().map(|s| s.vnf_type).collect();
        assert_eq!(
            types,
            vec![
                VnfType::Firewall,
                VnfType::Dpi,
                VnfType::Nat,
                VnfType::LoadBalancer
            ]
        );
    }

    #[test]
    fn cyclic_forwarding_graph_rejected() {
        let mut g = ForwardingGraph::new();
        let a = g.add_vnf(VnfSpec::of(VnfType::Firewall));
        let b = g.add_vnf(VnfSpec::of(VnfType::Nat));
        g.add_dependency(a, b);
        g.add_dependency(b, a);
        assert!(g.linearize().is_none());
        assert!(g.into_chain_spec("x", VmId(0), VmId(1), 1.0).is_none());
    }

    #[test]
    fn forwarding_graph_to_chain_spec() {
        let mut g = ForwardingGraph::new();
        g.add_vnf(VnfSpec::of(VnfType::Firewall));
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
        let spec = g.into_chain_spec("solo", VmId(5), VmId(6), 4.0).unwrap();
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.bandwidth_gbps, 4.0);
        assert_eq!(spec.ingress, VmId(5));
    }

    #[test]
    fn fig5_chains_have_documented_shapes() {
        assert_eq!(fig5::blue(VmId(0), VmId(1)).len(), 3);
        assert_eq!(fig5::black(VmId(0), VmId(1)).len(), 2);
        assert_eq!(fig5::green(VmId(0), VmId(1)).len(), 4);
    }
}
