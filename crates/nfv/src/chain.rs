//! Network function chains (§IV.A, Fig. 5).
//!
//! "An NFC is defined as a set of Network Functions (NFs), packet
//! processing order (simple or complex), network resource requirements
//! (node and links), and network forwarding graph." The paper considers
//! per-user/per-application chains, which are linear paths; the
//! [`ForwardingGraph`] type additionally supports the "complex" (branching)
//! processing order and linearizes it for deployment.

use alvc_graph::{DiGraph, NodeId};
use alvc_topology::VmId;
use serde::{Deserialize, Serialize};

use crate::vnf::VnfSpec;

/// Identifier of a deployed chain, issued by the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NfcId(pub usize);

impl NfcId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NfcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "nfc-{}", self.0)
    }
}

/// A chain to deploy: what the tenant hands the orchestrator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainSpec {
    /// Human-readable chain name.
    pub name: String,
    /// The VNFs in processing order.
    pub vnfs: Vec<VnfSpec>,
    /// VM originating the chain's traffic.
    pub ingress: VmId,
    /// VM terminating the chain's traffic.
    pub egress: VmId,
    /// Requested bandwidth.
    pub bandwidth_gbps: f64,
    /// Optional one-way latency budget for the chain's path (propagation +
    /// switching + O/E/O conversion latency), in microseconds. Admission
    /// rejects deployments whose routed path exceeds it.
    pub max_latency_us: Option<f64>,
}

impl ChainSpec {
    /// Creates a chain spec without a latency budget.
    pub fn new(
        name: impl Into<String>,
        vnfs: Vec<VnfSpec>,
        ingress: VmId,
        egress: VmId,
        bandwidth_gbps: f64,
    ) -> Self {
        ChainSpec {
            name: name.into(),
            vnfs,
            ingress,
            egress,
            bandwidth_gbps,
            max_latency_us: None,
        }
    }

    /// Sets a one-way latency budget (builder style).
    pub fn with_max_latency_us(mut self, budget: f64) -> Self {
        self.max_latency_us = Some(budget);
        self
    }

    /// Number of VNFs in the chain.
    pub fn len(&self) -> usize {
        self.vnfs.len()
    }

    /// A chain with no VNFs is pure forwarding.
    pub fn is_empty(&self) -> bool {
        self.vnfs.is_empty()
    }
}

/// A deployed chain (spec plus its orchestrator-assigned id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nfc {
    id: NfcId,
    spec: ChainSpec,
}

impl Nfc {
    /// Wraps a spec under its assigned id (called by the orchestrator).
    pub fn new(id: NfcId, spec: ChainSpec) -> Self {
        Nfc { id, spec }
    }

    /// The chain id.
    pub fn id(&self) -> NfcId {
        self.id
    }

    /// The underlying spec.
    pub fn spec(&self) -> &ChainSpec {
        &self.spec
    }

    /// The VNFs in processing order.
    pub fn vnfs(&self) -> &[VnfSpec] {
        &self.spec.vnfs
    }
}

/// A branching forwarding graph over VNFs ("complex" processing order).
///
/// Deployment requires an order, obtained by topological sort; cyclic
/// graphs are rejected.
///
/// # Example
///
/// ```
/// use alvc_nfv::{ForwardingGraph, VnfSpec, VnfType};
///
/// let mut g = ForwardingGraph::new();
/// let fw = g.add_vnf(VnfSpec::of(VnfType::Firewall));
/// let dpi = g.add_vnf(VnfSpec::of(VnfType::Dpi));
/// let lb = g.add_vnf(VnfSpec::of(VnfType::LoadBalancer));
/// g.add_dependency(fw, dpi);
/// g.add_dependency(fw, lb);
/// let order = g.linearize().unwrap();
/// assert_eq!(order.len(), 3);
/// assert_eq!(order[0].vnf_type, VnfType::Firewall);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ForwardingGraph {
    graph: DiGraph<VnfSpec, ()>,
}

impl ForwardingGraph {
    /// Creates an empty forwarding graph.
    pub fn new() -> Self {
        ForwardingGraph::default()
    }

    /// Adds a VNF node.
    pub fn add_vnf(&mut self, spec: VnfSpec) -> NodeId {
        self.graph.add_node(spec)
    }

    /// Declares that `before` must process packets before `after`.
    ///
    /// # Panics
    ///
    /// Panics if either node is not in the graph.
    pub fn add_dependency(&mut self, before: NodeId, after: NodeId) {
        self.graph.add_edge(before, after, ());
    }

    /// Number of VNFs.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Produces a linear processing order respecting every dependency, or
    /// `None` if the graph is cyclic.
    pub fn linearize(&self) -> Option<Vec<VnfSpec>> {
        let order = self.graph.topological_order()?;
        Some(
            order
                .into_iter()
                .map(|n| *self.graph.node_weight(n).expect("node exists"))
                .collect(),
        )
    }

    /// Builds a linear spec from this graph.
    ///
    /// Returns `None` if the graph is cyclic.
    pub fn into_chain_spec(
        &self,
        name: impl Into<String>,
        ingress: VmId,
        egress: VmId,
        bandwidth_gbps: f64,
    ) -> Option<ChainSpec> {
        Some(ChainSpec::new(
            name,
            self.linearize()?,
            ingress,
            egress,
            bandwidth_gbps,
        ))
    }
}

/// Convenience constructors for the three chains drawn in Fig. 5 (blue,
/// black, green service chains through security gateways, firewalls and
/// DPIs). Each requests 2 Gb/s — a per-user/per-application share of the
/// 10 Gb/s access links, so several chains can coexist on one server under
/// the orchestrator's bandwidth admission.
pub mod fig5 {
    use super::*;
    use crate::vnf::VnfType;

    /// The "blue" chain: security gateway → firewall → DPI.
    pub fn blue(ingress: VmId, egress: VmId) -> ChainSpec {
        ChainSpec::new(
            "fig5-blue",
            vec![
                VnfSpec::of(VnfType::SecurityGateway),
                VnfSpec::of(VnfType::Firewall),
                VnfSpec::of(VnfType::Dpi),
            ],
            ingress,
            egress,
            2.0,
        )
    }

    /// The "black" chain: firewall → load balancer.
    pub fn black(ingress: VmId, egress: VmId) -> ChainSpec {
        ChainSpec::new(
            "fig5-black",
            vec![
                VnfSpec::of(VnfType::Firewall),
                VnfSpec::of(VnfType::LoadBalancer),
            ],
            ingress,
            egress,
            2.0,
        )
    }

    /// The "green" chain: NAT → security gateway → IDS → load balancer.
    pub fn green(ingress: VmId, egress: VmId) -> ChainSpec {
        ChainSpec::new(
            "fig5-green",
            vec![
                VnfSpec::of(VnfType::Nat),
                VnfSpec::of(VnfType::SecurityGateway),
                VnfSpec::of(VnfType::Ids),
                VnfSpec::of(VnfType::LoadBalancer),
            ],
            ingress,
            egress,
            2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::VnfType;

    #[test]
    fn chain_spec_basics() {
        let spec = fig5::blue(VmId(0), VmId(1));
        assert_eq!(spec.len(), 3);
        assert!(!spec.is_empty());
        assert_eq!(spec.vnfs[0].vnf_type, VnfType::SecurityGateway);
        let empty = ChainSpec::new("fwd", vec![], VmId(0), VmId(1), 1.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn nfc_wraps_spec() {
        let nfc = Nfc::new(NfcId(4), fig5::black(VmId(2), VmId(3)));
        assert_eq!(nfc.id(), NfcId(4));
        assert_eq!(nfc.vnfs().len(), 2);
        assert_eq!(nfc.id().to_string(), "nfc-4");
        assert_eq!(nfc.spec().name, "fig5-black");
    }

    #[test]
    fn forwarding_graph_linearizes_diamond() {
        let mut g = ForwardingGraph::new();
        let a = g.add_vnf(VnfSpec::of(VnfType::Firewall));
        let b = g.add_vnf(VnfSpec::of(VnfType::Dpi));
        let c = g.add_vnf(VnfSpec::of(VnfType::Nat));
        let d = g.add_vnf(VnfSpec::of(VnfType::LoadBalancer));
        g.add_dependency(a, b);
        g.add_dependency(a, c);
        g.add_dependency(b, d);
        g.add_dependency(c, d);
        let order = g.linearize().unwrap();
        let pos = |t: VnfType| order.iter().position(|s| s.vnf_type == t).unwrap();
        assert!(pos(VnfType::Firewall) < pos(VnfType::Dpi));
        assert!(pos(VnfType::Firewall) < pos(VnfType::Nat));
        assert!(pos(VnfType::Dpi) < pos(VnfType::LoadBalancer));
        assert!(pos(VnfType::Nat) < pos(VnfType::LoadBalancer));
    }

    #[test]
    fn cyclic_forwarding_graph_rejected() {
        let mut g = ForwardingGraph::new();
        let a = g.add_vnf(VnfSpec::of(VnfType::Firewall));
        let b = g.add_vnf(VnfSpec::of(VnfType::Nat));
        g.add_dependency(a, b);
        g.add_dependency(b, a);
        assert!(g.linearize().is_none());
        assert!(g.into_chain_spec("x", VmId(0), VmId(1), 1.0).is_none());
    }

    #[test]
    fn forwarding_graph_to_chain_spec() {
        let mut g = ForwardingGraph::new();
        g.add_vnf(VnfSpec::of(VnfType::Firewall));
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
        let spec = g.into_chain_spec("solo", VmId(5), VmId(6), 4.0).unwrap();
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.bandwidth_gbps, 4.0);
        assert_eq!(spec.ingress, VmId(5));
    }

    #[test]
    fn fig5_chains_have_documented_shapes() {
        assert_eq!(fig5::blue(VmId(0), VmId(1)).len(), 3);
        assert_eq!(fig5::black(VmId(0), VmId(1)).len(), 2);
        assert_eq!(fig5::green(VmId(0), VmId(1)).len(), 4);
    }
}
