//! Orchestrator-level failure recovery (§IV flexibility claim, completed).
//!
//! [`ClusterManager::fail_ops`](alvc_core::ClusterManager::fail_ops) repairs
//! the abstraction layer around a failed switch, but a repair the layers
//! above never hear about leaves deployed chains serving stale state: routes
//! through the dead switch, flow rules on it, bandwidth ledger entries over
//! its links. This module lifts the failure entry points to the
//! orchestrator — [`Orchestrator::fail_ops`], [`Orchestrator::fail_server`],
//! [`Orchestrator::fail_tor`] — so a substrate failure propagates through
//! every ledger in one step.
//!
//! # The recovery ladder
//!
//! For every affected chain the orchestrator first releases the chain's
//! network state (flow rules and bandwidth commitments — whatever the
//! ladder decides, nothing may keep referencing the dead element), then
//! climbs:
//!
//! 1. **Reroute** — all VNF hosts survived: route the same hosts inside the
//!    (repaired) slice, avoiding failed elements.
//! 2. **Replace** — some host died or the reroute failed: re-place the
//!    VNFs on healthy hosts inside the slice and route fresh.
//! 3. **Degrade** — the slice cannot carry the chain: place and route over
//!    the full healthy fabric, abandoning slice isolation until
//!    [`Orchestrator::reoptimize_degraded`] pulls the chain back in.
//! 4. **Unrecoverable** — nothing works (or an endpoint server died): the
//!    chain's remains are torn down and the error reported.
//!
//! Each rung returns a [`RecoveryOutcome`]; [`RecoveryReport`] collects the
//! per-chain outcomes of one failure event.

use std::collections::{BTreeMap, HashSet};

use alvc_core::construction::AlConstruct;
use alvc_core::{AbstractionLayer, ClusterId};
use alvc_graph::NodeId;
use alvc_optical::route_flow_within;
use alvc_topology::{DataCenter, Element, ElementHealth, OpsId, ServerId, TorId};

use crate::chain::NfcId;
use crate::error::DeployError;
use crate::lifecycle::{HostLocation, VnfInstance, VnfInstanceId};
use crate::orchestrator::{kbps, Orchestrator};
use crate::placement::{PlacementContext, VnfPlacer};

/// How a chain fared through one recovery attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome {
    /// The chain's hosts survived; only its path and rules were rebuilt
    /// inside the slice.
    Rerouted,
    /// One or more VNFs were re-placed on healthy hosts inside the slice
    /// and the chain rerouted.
    Replaced,
    /// The slice could not carry the chain: it now runs over the full
    /// healthy fabric, outside its slice, until reoptimized.
    Degraded,
    /// The chain could not be recovered; its remains were torn down. The
    /// error is the last failure on the ladder.
    Unrecoverable(DeployError),
}

impl RecoveryOutcome {
    /// `true` while the chain still carries traffic (anything but
    /// [`RecoveryOutcome::Unrecoverable`]).
    pub fn is_serving(&self) -> bool {
        !matches!(self, RecoveryOutcome::Unrecoverable(_))
    }

    /// A short label for telemetry and reports.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryOutcome::Rerouted => "rerouted",
            RecoveryOutcome::Replaced => "replaced",
            RecoveryOutcome::Degraded => "degraded",
            RecoveryOutcome::Unrecoverable(_) => "unrecoverable",
        }
    }
}

impl std::fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryOutcome::Unrecoverable(e) => write!(f, "unrecoverable ({e})"),
            other => f.write_str(other.label()),
        }
    }
}

/// The per-chain outcomes of one element failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    element: Element,
    outcomes: BTreeMap<NfcId, RecoveryOutcome>,
}

impl RecoveryReport {
    /// The element whose failure triggered this report.
    pub fn element(&self) -> Element {
        self.element
    }

    /// Outcome per affected chain, in chain-id order. Empty when the
    /// element was already failed or carried no chain state.
    pub fn outcomes(&self) -> &BTreeMap<NfcId, RecoveryOutcome> {
        &self.outcomes
    }

    /// Number of chains the failure touched.
    pub fn affected_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of affected chains still serving traffic.
    pub fn serving_count(&self) -> usize {
        self.outcomes.values().filter(|o| o.is_serving()).count()
    }

    /// Number of affected chains with the given outcome label
    /// (`"rerouted"`, `"replaced"`, `"degraded"`, `"unrecoverable"`).
    pub fn count_of(&self, label: &str) -> usize {
        self.outcomes
            .values()
            .filter(|o| o.label() == label)
            .count()
    }
}

/// Which node set a recovery rung may route over.
#[derive(Clone, Copy, PartialEq)]
enum RecoveryScope {
    /// The chain's (repaired) slice: its AL switches plus tenant servers.
    Slice,
    /// Every healthy node in the data center (graceful degradation).
    FullFabric,
}

impl Orchestrator {
    /// The orchestrator's element-health overlay.
    pub fn health(&self) -> &ElementHealth {
        &self.health
    }

    /// Chains currently running outside their slice
    /// ([`RecoveryOutcome::Degraded`]), in id order.
    pub fn degraded_chains(&self) -> Vec<NfcId> {
        self.degraded.iter().copied().collect()
    }

    /// Fails an optical packet switch: the AL layer repairs affected slices
    /// (shrink-first, then rebuild), then every chain whose path, hosts, or
    /// slice touched the switch is taken through the recovery ladder.
    pub fn fail_ops(
        &mut self,
        dc: &DataCenter,
        ops: OpsId,
        constructor: &dyn AlConstruct,
        placer: &dyn VnfPlacer,
    ) -> RecoveryReport {
        self.changes.mark_full();
        self.fail_element(dc, Element::Ops(ops), Some(constructor), placer)
    }

    /// Fails a server: chains whose VNFs, ingress, or egress lived on it
    /// are taken through the recovery ladder (a dead endpoint server makes
    /// a chain [`RecoveryOutcome::Unrecoverable`]).
    pub fn fail_server(
        &mut self,
        dc: &DataCenter,
        server: ServerId,
        placer: &dyn VnfPlacer,
    ) -> RecoveryReport {
        self.changes.mark_full();
        self.fail_element(dc, Element::Server(server), None, placer)
    }

    /// Fails a ToR switch: ALs that can spare it are shrunk at the AL
    /// layer, then every chain whose path crossed it is taken through the
    /// recovery ladder (dual-homed servers reach the fabric through their
    /// other ToR).
    pub fn fail_tor(
        &mut self,
        dc: &DataCenter,
        tor: TorId,
        placer: &dyn VnfPlacer,
    ) -> RecoveryReport {
        self.changes.mark_full();
        self.fail_element(dc, Element::Tor(tor), None, placer)
    }

    /// Restores a failed OPS at both the orchestrator and AL layer.
    /// Returns `true` if it was failed.
    pub fn restore_ops(&mut self, ops: OpsId) -> bool {
        let was_failed = self.health.restore(Element::Ops(ops));
        if was_failed {
            self.manager.restore_ops(ops);
            self.changes.mark_full();
            alvc_telemetry::counter!("alvc_nfv.recovery.element_restores").incr();
        }
        was_failed
    }

    /// Restores a failed server. Returns `true` if it was failed.
    pub fn restore_server(&mut self, server: ServerId) -> bool {
        let was_failed = self.health.restore(Element::Server(server));
        if was_failed {
            self.changes.mark_full();
            alvc_telemetry::counter!("alvc_nfv.recovery.element_restores").incr();
        }
        was_failed
    }

    /// Restores a failed ToR at both the orchestrator and AL layer.
    /// Returns `true` if it was failed.
    pub fn restore_tor(&mut self, tor: TorId) -> bool {
        let was_failed = self.health.restore(Element::Tor(tor));
        if was_failed {
            self.manager.restore_tor(tor);
            self.changes.mark_full();
            alvc_telemetry::counter!("alvc_nfv.recovery.element_restores").incr();
        }
        was_failed
    }

    /// Re-runs the recovery ladder for every degraded chain — typically
    /// after restores — pulling chains back into their slices where
    /// possible. Returns the new outcome per previously-degraded chain.
    pub fn reoptimize_degraded(
        &mut self,
        dc: &DataCenter,
        placer: &dyn VnfPlacer,
    ) -> BTreeMap<NfcId, RecoveryOutcome> {
        let ids: Vec<NfcId> = self.degraded.iter().copied().collect();
        if !ids.is_empty() {
            self.changes.mark_full();
        }
        let mut outcomes = BTreeMap::new();
        for id in ids {
            let outcome = self.recover_chain(dc, id, placer);
            alvc_telemetry::counter_with("alvc_nfv.recovery.outcomes", outcome.label()).incr();
            outcomes.insert(id, outcome);
        }
        alvc_telemetry::gauge!("alvc_nfv.recovery.degraded_chains").set(self.degraded.len() as f64);
        outcomes
    }

    /// Global invariant: no chain path, flow rule, bandwidth-ledger entry,
    /// VNF host, or replica references a currently-failed element. The
    /// chaos test asserts this after every step.
    ///
    /// A violation snapshots the flight recorder (post-mortem reason
    /// `verify_no_failed_references`) before returning `false`, so the
    /// causal history leading up to the breach survives for diagnosis.
    pub fn verify_no_failed_references(&self, dc: &DataCenter) -> bool {
        let ok = self.no_failed_references(dc);
        if !ok {
            alvc_telemetry::recorder::postmortem("verify_no_failed_references");
        }
        ok
    }

    fn no_failed_references(&self, dc: &DataCenter) -> bool {
        for element in self.health.failed() {
            let node = element_node(dc, element);
            if self.sdn.rules_on_switch(node) > 0 {
                return false;
            }
            for chain in self.chains.values() {
                if chain.path.nodes().contains(&node) {
                    return false;
                }
                if chain.hosts.iter().any(|&h| host_on(h, element)) {
                    return false;
                }
            }
            for e in self.link_committed.edges() {
                if let Some((a, b)) = dc.graph().edge_endpoints(e) {
                    if a == node || b == node {
                        return false;
                    }
                }
            }
            if self.instances.values().any(|i| host_on(i.host(), element)) {
                return false;
            }
        }
        true
    }

    fn fail_element(
        &mut self,
        dc: &DataCenter,
        element: Element,
        constructor: Option<&dyn AlConstruct>,
        placer: &dyn VnfPlacer,
    ) -> RecoveryReport {
        if !self.health.fail(element) {
            // Already down: the first failure did the work.
            return RecoveryReport {
                element,
                outcomes: BTreeMap::new(),
            };
        }
        let _span = alvc_telemetry::span!("alvc_nfv.recovery.repair_latency_us");
        alvc_telemetry::counter!("alvc_nfv.recovery.element_failures").incr();
        if !self.quiet {
            alvc_telemetry::event!(
                "alvc_nfv.recovery.element_failed",
                "element" = element.to_string().as_str(),
            );
        }

        // Mirror into the AL layer; it repairs slices where it can.
        let mut repaired: Vec<ClusterId> = Vec::new();
        match element {
            Element::Ops(o) => {
                let ctor = constructor.expect("fail_ops passes a constructor");
                match self.manager.fail_ops(dc, o, ctor) {
                    Ok(Some(c)) => repaired.push(c),
                    Ok(None) => {}
                    Err(_) => {
                        // Rebuild failed: the owner keeps its degraded AL;
                        // its chains still need chain-level recovery.
                        if let Some(c) = self
                            .manager
                            .clusters()
                            .find(|vc| vc.al().contains_ops(o))
                            .map(|vc| vc.id())
                        {
                            repaired.push(c);
                        }
                    }
                }
            }
            Element::Tor(t) => repaired = self.manager.fail_tor(dc, t),
            Element::Server(_) => {}
        }

        // Replicas on dead elements are force-scaled-in before chain
        // recovery runs, so no instance survives on a failed host.
        let dead_replicas: Vec<VnfInstanceId> = self
            .replicas
            .keys()
            .copied()
            .filter(|iid| {
                self.instances
                    .get(iid)
                    .is_some_and(|i| !self.host_up(i.host()))
            })
            .collect();
        for replica in dead_replicas {
            let _ = self.scale_in(replica);
        }

        // Affected: path crosses the dead node (endpoints included — a
        // path starts and ends at the endpoint servers), a VNF host died,
        // or the chain's slice was repaired out from under its route.
        let node = element_node(dc, element);
        let repaired: HashSet<ClusterId> = repaired.into_iter().collect();
        let affected = self.affected_chains(dc, node, &repaired);

        let mut outcomes = BTreeMap::new();
        for id in affected {
            let outcome = self.recover_chain(dc, id, placer);
            alvc_telemetry::counter_with("alvc_nfv.recovery.outcomes", outcome.label()).incr();
            if !self.quiet {
                alvc_telemetry::event!(
                    "alvc_nfv.recovery.chain_recovered",
                    "nfc" = id.index(),
                    "outcome" = outcome.label(),
                );
            }
            outcomes.insert(id, outcome);
        }
        alvc_telemetry::gauge!("alvc_nfv.recovery.degraded_chains").set(self.degraded.len() as f64);
        RecoveryReport { element, outcomes }
    }

    /// The chains a failure at `node` touches: path crosses the node, a
    /// VNF host died, or the chain's slice is in `repaired`. The scan is
    /// read-only, so on multi-pod topologies it fans out over the rayon
    /// pool; output is in chain-id order either way, keeping the recovery
    /// ladder (and hence intent-log replay) deterministic.
    fn affected_chains(
        &self,
        dc: &DataCenter,
        node: NodeId,
        repaired: &HashSet<ClusterId>,
    ) -> Vec<NfcId> {
        let hit = |c: &crate::orchestrator::DeployedChain| {
            c.path.nodes().contains(&node)
                || c.hosts.iter().any(|&h| !self.host_up(h))
                || repaired.contains(&c.cluster)
        };
        #[cfg(feature = "parallel")]
        if dc.pod_count() > 1 {
            use rayon::prelude::*;
            let entries: Vec<_> = self.chains.iter().map(|(&id, c)| (id, c)).collect();
            let hits: Vec<Option<NfcId>> = entries
                .par_iter()
                .map(|&(id, c)| if hit(c) { Some(id) } else { None })
                .collect();
            return hits.into_iter().flatten().collect();
        }
        #[cfg(not(feature = "parallel"))]
        let _ = dc;
        self.chains
            .iter()
            .filter(|(_, c)| hit(c))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Climbs the recovery ladder for one chain. The chain's flow rules
    /// and bandwidth commitments are released up front: no exit path —
    /// including failure — leaves state referencing a dead element.
    /// Shared with adaptive re-clustering, which reroutes chains whose
    /// cluster's abstraction layer was rebuilt under them.
    pub(crate) fn recover_chain(
        &mut self,
        dc: &DataCenter,
        id: NfcId,
        placer: &dyn VnfPlacer,
    ) -> RecoveryOutcome {
        let mut trace_span = alvc_telemetry::trace::child_span("nfv.recover_chain");
        trace_span.add_field("nfc", id.index());
        let outcome = self.recover_chain_inner(dc, id, placer);
        trace_span.set_status(outcome.label());
        if let RecoveryOutcome::Unrecoverable(e) = &outcome {
            trace_span.set_code(e.code());
        }
        outcome
    }

    fn recover_chain_inner(
        &mut self,
        dc: &DataCenter,
        id: NfcId,
        placer: &dyn VnfPlacer,
    ) -> RecoveryOutcome {
        let (old_edges, bandwidth_gbps, ingress, egress, hosts) = {
            let chain = self.chains.get(&id).expect("affected chain exists");
            (
                chain.edges.clone(),
                chain.nfc.spec().bandwidth_gbps,
                chain.nfc.spec().ingress,
                chain.nfc.spec().egress,
                chain.hosts.clone(),
            )
        };
        self.sdn.remove_chain(id);
        self.release_edges(&old_edges, bandwidth_gbps);
        {
            let chain = self.chains.get_mut(&id).expect("affected chain exists");
            chain.edges.clear();
        }

        if !self.server_usable(dc.server_of_vm(ingress))
            || !self.server_usable(dc.server_of_vm(egress))
        {
            self.discard_chain(id);
            return RecoveryOutcome::Unrecoverable(DeployError::EndpointFailed);
        }

        // Rung 1: same hosts, new route inside the slice.
        if hosts.iter().all(|&h| self.host_up(h))
            && self
                .try_reroute(dc, id, &hosts, RecoveryScope::Slice)
                .is_ok()
        {
            self.degraded.remove(&id);
            return RecoveryOutcome::Rerouted;
        }

        // Rung 2: re-place on healthy hosts inside the slice.
        let replace_err = match self.try_replace(dc, id, placer, RecoveryScope::Slice) {
            Ok(()) => {
                self.degraded.remove(&id);
                return RecoveryOutcome::Replaced;
            }
            Err(e) => e,
        };

        // Rung 3: graceful degradation over the full healthy fabric.
        if self
            .try_replace(dc, id, placer, RecoveryScope::FullFabric)
            .is_ok()
        {
            self.degraded.insert(id);
            return RecoveryOutcome::Degraded;
        }

        // Rung 4: tear the remains down.
        self.discard_chain(id);
        RecoveryOutcome::Unrecoverable(replace_err)
    }

    fn host_up(&self, host: HostLocation) -> bool {
        match host {
            HostLocation::Server(s) => self.server_usable(s),
            HostLocation::OptoRouter(o) => self.ops_usable(o),
        }
    }

    /// Nodes a recovery route may traverse. Waypoints (endpoint servers
    /// and VNF hosts) are added by the caller.
    fn allowed_nodes(
        &self,
        dc: &DataCenter,
        cluster: ClusterId,
        scope: RecoveryScope,
    ) -> HashSet<NodeId> {
        match scope {
            RecoveryScope::Slice => {
                let vc = self.manager.cluster(cluster).expect("slice cluster exists");
                let mut allowed: HashSet<NodeId> = vc
                    .al()
                    .switch_nodes(dc)
                    .into_iter()
                    .filter(|&n| self.node_usable(dc, n))
                    .collect();
                for &v in vc.vms() {
                    let s = dc.server_of_vm(v);
                    if self.server_usable(s) {
                        allowed.insert(dc.node_of_server(s));
                    }
                }
                allowed
            }
            RecoveryScope::FullFabric => {
                let mut allowed = HashSet::new();
                for s in dc.server_ids().filter(|&s| self.server_usable(s)) {
                    allowed.insert(dc.node_of_server(s));
                }
                for t in dc.tor_ids().filter(|&t| self.tor_usable(t)) {
                    allowed.insert(dc.node_of_tor(t));
                }
                for o in dc.ops_ids().filter(|&o| self.ops_usable(o)) {
                    allowed.insert(dc.node_of_ops(o));
                }
                allowed
            }
        }
    }

    /// Rung 1: route the chain's existing hosts over `scope`, commit rules
    /// and bandwidth. The chain's own network state must already be
    /// released.
    fn try_reroute(
        &mut self,
        dc: &DataCenter,
        id: NfcId,
        hosts: &[HostLocation],
        scope: RecoveryScope,
    ) -> Result<(), DeployError> {
        let chain = self.chains.get(&id).expect("chain exists");
        let spec = chain.nfc.spec().clone();
        let cluster = chain.cluster;
        let mut allowed = self.allowed_nodes(dc, cluster, scope);
        let mut waypoints = Vec::with_capacity(hosts.len() + 2);
        waypoints.push(dc.node_of_server(dc.server_of_vm(spec.ingress)));
        for &h in hosts {
            let node = match h {
                HostLocation::Server(s) => dc.node_of_server(s),
                HostLocation::OptoRouter(o) => dc.node_of_ops(o),
            };
            allowed.insert(node);
            waypoints.push(node);
        }
        waypoints.push(dc.node_of_server(dc.server_of_vm(spec.egress)));
        let path = route_flow_within(dc, &allowed, &waypoints)?;
        let edges = Self::check_bandwidth(dc, &self.link_committed, &path, spec.bandwidth_gbps)?;
        self.check_latency(&spec, &path)?;
        self.sdn
            .try_install_path(id, &path)
            .map_err(DeployError::RuleTableFull)?;
        for &e in &edges {
            self.link_committed.commit(e, kbps(spec.bandwidth_gbps));
        }
        let chain = self.chains.get_mut(&id).expect("chain exists");
        chain.path = path;
        chain.edges = edges;
        Ok(())
    }

    /// Rungs 2–3: re-place the chain's VNFs on healthy hosts, route over
    /// `scope`, and swap instances. The chain's own network state must
    /// already be released; its host capacity is reused during planning.
    fn try_replace(
        &mut self,
        dc: &DataCenter,
        id: NfcId,
        placer: &dyn VnfPlacer,
        scope: RecoveryScope,
    ) -> Result<(), DeployError> {
        let chain = self.chains.get(&id).expect("chain exists");
        let spec = chain.nfc.spec().clone();
        let cluster = chain.cluster;
        let old_hosts = chain.hosts.clone();
        let old_instances = chain.instances.clone();

        let vc = self.manager.cluster(cluster).expect("slice cluster exists");
        let vms = vc.vms().to_vec();
        // Placement sees only the healthy part of the AL.
        let al_view = AbstractionLayer::new(
            vc.al()
                .tors()
                .iter()
                .copied()
                .filter(|&t| self.tor_usable(t))
                .collect(),
            vc.al()
                .ops()
                .iter()
                .copied()
                .filter(|&o| self.ops_usable(o))
                .collect(),
        );
        let mut servers: Vec<ServerId> = vms.iter().map(|&v| dc.server_of_vm(v)).collect();
        servers.sort();
        servers.dedup();
        servers.retain(|&s| self.server_usable(s));

        // Plan against ledgers without this chain's current host usage.
        let mut opto_used = self.opto_used.clone();
        let mut server_used = self.server_used.clone();
        for (h, v) in old_hosts.iter().zip(spec.vnfs.iter()) {
            match h {
                HostLocation::Server(s) => {
                    if let Some(e) = server_used.get_mut(s) {
                        *e = e.saturating_minus(&v.demand);
                    }
                }
                HostLocation::OptoRouter(o) => {
                    if let Some(e) = opto_used.get_mut(o) {
                        *e = e.saturating_minus(&v.demand);
                    }
                }
            }
        }
        let hosts = {
            let ctx = PlacementContext {
                dc,
                al: &al_view,
                opto_used: &opto_used,
                server_used: &server_used,
                servers: &servers,
            };
            placer.place(&ctx, &spec)?
        };
        // Re-placement must honor the spec's placement rules just like the
        // original deployment did; a rule-oblivious placer can otherwise
        // silently undo anti-affinity during recovery.
        if let Some(rule) = spec.violated_rule(dc, &hosts) {
            return Err(DeployError::RuleViolated { rule });
        }

        let mut allowed = self.allowed_nodes(dc, cluster, scope);
        let mut waypoints = Vec::with_capacity(hosts.len() + 2);
        waypoints.push(dc.node_of_server(dc.server_of_vm(spec.ingress)));
        for h in &hosts {
            let node = match h {
                HostLocation::Server(s) => dc.node_of_server(*s),
                HostLocation::OptoRouter(o) => dc.node_of_ops(*o),
            };
            allowed.insert(node);
            waypoints.push(node);
        }
        waypoints.push(dc.node_of_server(dc.server_of_vm(spec.egress)));
        let path = route_flow_within(dc, &allowed, &waypoints)?;
        let edges = Self::check_bandwidth(dc, &self.link_committed, &path, spec.bandwidth_gbps)?;
        self.check_latency(&spec, &path)?;
        self.sdn
            .try_install_path(id, &path)
            .map_err(DeployError::RuleTableFull)?;

        // Commit: bandwidth, host capacity, fresh instances.
        for &e in &edges {
            self.link_committed.commit(e, kbps(spec.bandwidth_gbps));
        }
        for (h, v) in hosts.iter().zip(spec.vnfs.iter()) {
            match h {
                HostLocation::Server(s) => {
                    let e = server_used.entry(*s).or_default();
                    *e = e.plus(&v.demand);
                }
                HostLocation::OptoRouter(o) => {
                    let e = opto_used.entry(*o).or_default();
                    *e = e.plus(&v.demand);
                }
            }
        }
        self.opto_used = opto_used;
        self.server_used = server_used;
        for &iid in &old_instances {
            self.terminate_and_collect(iid);
        }
        let mut instance_ids = Vec::with_capacity(hosts.len());
        for (h, v) in hosts.iter().zip(spec.vnfs.iter()) {
            let iid = VnfInstanceId(self.next_instance);
            self.next_instance += 1;
            let mut inst = VnfInstance::new(iid, *v, *h);
            inst.activate().expect("fresh instance activates");
            self.instances.insert(iid, inst);
            instance_ids.push(iid);
        }
        let chain = self.chains.get_mut(&id).expect("chain exists");
        chain.hosts = hosts;
        chain.instances = instance_ids;
        chain.path = path;
        chain.edges = edges;
        Ok(())
    }

    /// Removes what is left of an unrecoverable chain: instances,
    /// replicas, host capacity, slice binding, and the virtual cluster.
    /// Flow rules and bandwidth were already released by the ladder.
    fn discard_chain(&mut self, id: NfcId) {
        for replica in self.replicas_of(id) {
            let _ = self.scale_in(replica);
        }
        let chain = self.chains.remove(&id).expect("chain exists");
        for (&iid, (h, v)) in chain
            .instances
            .iter()
            .zip(chain.hosts.iter().zip(chain.nfc.vnfs()))
        {
            self.terminate_and_collect(iid);
            match h {
                HostLocation::Server(s) => {
                    if let Some(e) = self.server_used.get_mut(s) {
                        *e = e.saturating_minus(&v.demand);
                    }
                }
                HostLocation::OptoRouter(o) => {
                    if let Some(e) = self.opto_used.get_mut(o) {
                        *e = e.saturating_minus(&v.demand);
                    }
                }
            }
        }
        self.slices.unbind(id);
        self.degraded.remove(&id);
        self.manager.remove_cluster(chain.cluster);
        alvc_telemetry::counter!("alvc_nfv.recovery.chains_lost").incr();
        if !self.quiet {
            alvc_telemetry::event!("alvc_nfv.recovery.chain_lost", "nfc" = id.index());
        }
    }
}

pub(crate) fn element_node(dc: &DataCenter, element: Element) -> NodeId {
    match element {
        Element::Server(s) => dc.node_of_server(s),
        Element::Tor(t) => dc.node_of_tor(t),
        Element::Ops(o) => dc.node_of_ops(o),
    }
}

pub(crate) fn host_on(host: HostLocation, element: Element) -> bool {
    match (host, element) {
        (HostLocation::Server(s), Element::Server(fs)) => s == fs,
        (HostLocation::OptoRouter(o), Element::Ops(fo)) => o == fo,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::fig5;
    use crate::placement::ElectronicOnlyPlacer;
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::{AlvcTopologyBuilder, OpsInterconnect, ServiceType, VmId};

    fn dc() -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(8)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(24)
            .tor_ops_degree(4)
            .opto_fraction(0.5)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(31)
            .build()
    }

    fn deploy(orch: &mut Orchestrator, dc: &DataCenter, tenant: &str, vms: Vec<VmId>) -> NfcId {
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        orch.deploy_chain(
            dc,
            tenant,
            vms,
            spec,
            &PaperGreedy::new(),
            &ElectronicOnlyPlacer::new(),
        )
        .unwrap()
    }

    /// The headline regression: fail an AL switch carrying a live chain
    /// and assert no surviving route, flow rule, or ledger entry
    /// references it.
    #[test]
    fn fail_ops_on_al_switch_leaves_no_stale_state() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let id = deploy(
            &mut orch,
            &dc,
            "web",
            dc.vms_of_service(ServiceType::WebService),
        );
        // An AL switch actually on the chain's path.
        let al = orch
            .manager()
            .cluster(orch.chain(id).unwrap().cluster())
            .unwrap()
            .al()
            .clone();
        let path_nodes: HashSet<NodeId> = orch
            .chain(id)
            .unwrap()
            .path()
            .nodes()
            .iter()
            .copied()
            .collect();
        let dead = al
            .ops()
            .iter()
            .copied()
            .find(|&o| path_nodes.contains(&dc.node_of_ops(o)))
            .expect("slice path crosses an AL OPS");

        let report = orch.fail_ops(&dc, dead, &PaperGreedy::new(), &ElectronicOnlyPlacer::new());
        assert_eq!(report.element(), Element::Ops(dead));
        let outcome = report.outcomes().get(&id).expect("chain was affected");
        assert!(
            outcome.is_serving(),
            "chain recoverable on a 24-OPS mesh: {outcome}"
        );

        // No stale state anywhere.
        assert!(orch.verify_no_failed_references(&dc));
        let dead_node = dc.node_of_ops(dead);
        assert_eq!(orch.sdn().rules_on_switch(dead_node), 0);
        let chain = orch.chain(id).unwrap();
        assert!(!chain.path().nodes().contains(&dead_node));
        for &e in chain.edges() {
            let (a, b) = dc.graph().edge_endpoints(e).unwrap();
            assert_ne!(a, dead_node);
            assert_ne!(b, dead_node);
            assert!(orch.committed_bandwidth_gbps(e) > 0.0);
        }
        // Rules exactly cover the new path.
        assert_eq!(orch.sdn().total_rules(), chain.path().nodes().len());
        assert!(orch.manager().verify_disjoint());
    }

    #[test]
    fn fail_server_hosting_vnf_replaces_it() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        let ingress_server = dc.server_of_vm(vms[0]);
        let egress_server = dc.server_of_vm(*vms.last().unwrap());
        let id = deploy(&mut orch, &dc, "web", vms);
        // A VNF host that is not an endpoint server (so recovery can win).
        let Some(dead) = orch
            .chain(id)
            .unwrap()
            .hosts()
            .iter()
            .find_map(|h| match h {
                HostLocation::Server(s) if *s != ingress_server && *s != egress_server => Some(*s),
                _ => None,
            })
        else {
            return; // anti-affinity put every VNF on an endpoint server
        };
        let report = orch.fail_server(&dc, dead, &ElectronicOnlyPlacer::new());
        let outcome = report.outcomes().get(&id).expect("chain was affected");
        assert!(
            matches!(
                outcome,
                RecoveryOutcome::Replaced | RecoveryOutcome::Degraded
            ),
            "dead host forces re-placement: {outcome}"
        );
        assert!(orch.verify_no_failed_references(&dc));
        for h in orch.chain(id).unwrap().hosts() {
            assert_ne!(*h, HostLocation::Server(dead));
        }
        // Exactly the chain's instances survive, all active.
        assert_eq!(
            orch.instance_count(),
            orch.chain(id).unwrap().instances().len()
        );
    }

    #[test]
    fn fail_ingress_server_is_unrecoverable() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        let ingress_server = dc.server_of_vm(vms[0]);
        let id = deploy(&mut orch, &dc, "web", vms);
        let report = orch.fail_server(&dc, ingress_server, &ElectronicOnlyPlacer::new());
        assert_eq!(
            report.outcomes().get(&id),
            Some(&RecoveryOutcome::Unrecoverable(DeployError::EndpointFailed))
        );
        assert_eq!(report.serving_count(), 0);
        // The chain is gone and everything it held is released.
        assert!(orch.chain(id).is_none());
        assert_eq!(orch.chain_count(), 0);
        assert_eq!(orch.sdn().total_rules(), 0);
        assert_eq!(orch.instance_count(), 0);
        assert!(orch.slices().is_empty());
        assert_eq!(orch.manager().cluster_count(), 0);
        assert!(orch.verify_no_failed_references(&dc));
    }

    #[test]
    fn unaffected_chains_are_untouched() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let web = deploy(
            &mut orch,
            &dc,
            "web",
            dc.vms_of_service(ServiceType::WebService),
        );
        let sns = deploy(&mut orch, &dc, "sns", dc.vms_of_service(ServiceType::Sns));
        // Fail an OPS on web's path; slices are OPS-disjoint, so sns's
        // path cannot cross it.
        let web_path: HashSet<NodeId> = orch
            .chain(web)
            .unwrap()
            .path()
            .nodes()
            .iter()
            .copied()
            .collect();
        let al = orch
            .manager()
            .cluster(orch.chain(web).unwrap().cluster())
            .unwrap()
            .al()
            .clone();
        let Some(dead) = al
            .ops()
            .iter()
            .copied()
            .find(|&o| web_path.contains(&dc.node_of_ops(o)))
        else {
            return;
        };
        let sns_before = orch.chain(sns).unwrap().clone();
        let report = orch.fail_ops(&dc, dead, &PaperGreedy::new(), &ElectronicOnlyPlacer::new());
        assert!(report.outcomes().contains_key(&web));
        assert!(!report.outcomes().contains_key(&sns));
        assert_eq!(orch.chain(sns).unwrap(), &sns_before);
    }

    #[test]
    fn double_failure_is_noop_and_restore_round_trips() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let id = deploy(
            &mut orch,
            &dc,
            "web",
            dc.vms_of_service(ServiceType::WebService),
        );
        let al = orch
            .manager()
            .cluster(orch.chain(id).unwrap().cluster())
            .unwrap()
            .al()
            .clone();
        let dead = al.ops()[0];
        let first = orch.fail_ops(&dc, dead, &PaperGreedy::new(), &ElectronicOnlyPlacer::new());
        let second = orch.fail_ops(&dc, dead, &PaperGreedy::new(), &ElectronicOnlyPlacer::new());
        assert_eq!(second.affected_count(), 0, "second failure is a no-op");
        let _ = first;
        assert!(orch.restore_ops(dead));
        assert!(!orch.restore_ops(dead), "already restored");
        assert!(orch.health().all_healthy());
        // The restored switch is usable again: a fresh deployment works.
        let vms = dc.vms_of_service(ServiceType::MapReduce);
        let spec = fig5::black(vms[0], *vms.last().unwrap());
        assert!(orch
            .deploy_chain(
                &dc,
                "mr",
                vms,
                spec,
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new()
            )
            .is_ok());
    }

    /// Starve the slice so recovery must degrade to the full fabric, then
    /// restore and reoptimize the chain back into its slice.
    #[test]
    fn degraded_chain_reoptimizes_back_into_slice() {
        // Two OPSs, both reachable from every ToR; two tenants own one
        // each, so a failed AL switch cannot be replaced.
        let dc = AlvcTopologyBuilder::new()
            .racks(4)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(2)
            .tor_ops_degree(2)
            .opto_fraction(0.0)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(13)
            .build();
        let mut orch = Orchestrator::new();
        let vms: Vec<VmId> = dc.vm_ids().collect();
        let half = vms.len() / 2;
        let a = deploy(&mut orch, &dc, "a", vms[..half].to_vec());
        let _b = deploy(&mut orch, &dc, "b", vms[half..].to_vec());
        let al_a = orch
            .manager()
            .cluster(orch.chain(a).unwrap().cluster())
            .unwrap()
            .al()
            .clone();
        assert_eq!(al_a.ops_count(), 1, "minimal AL on a 2-OPS core");
        let dead = al_a.ops()[0];
        let report = orch.fail_ops(&dc, dead, &PaperGreedy::new(), &ElectronicOnlyPlacer::new());
        let outcome = report.outcomes().get(&a).expect("chain a affected");
        assert_eq!(
            outcome,
            &RecoveryOutcome::Degraded,
            "no spare OPS: the chain must leave its slice"
        );
        assert_eq!(orch.degraded_chains(), vec![a]);
        assert!(orch.verify_no_failed_references(&dc));
        // The degraded path borrows the other tenant's switch.
        let other_ops_node =
            dc.node_of_ops(dc.ops_ids().find(|&o| o != dead).expect("two OPSs exist"));
        assert!(orch
            .chain(a)
            .unwrap()
            .path()
            .nodes()
            .contains(&other_ops_node));

        // Restore and pull the chain back into its slice.
        assert!(orch.restore_ops(dead));
        let outcomes = orch.reoptimize_degraded(&dc, &ElectronicOnlyPlacer::new());
        assert!(outcomes.get(&a).expect("reoptimized").is_serving());
        assert!(orch.degraded_chains().is_empty());
        let path_nodes = orch.chain(a).unwrap().path().nodes().to_vec();
        assert!(
            path_nodes.contains(&dc.node_of_ops(dead)),
            "back on the slice's own switch"
        );
    }

    #[test]
    fn fail_tor_reroutes_or_degrades_crossing_chains() {
        let dc = dc();
        let mut orch = Orchestrator::new();
        let id = deploy(
            &mut orch,
            &dc,
            "web",
            dc.vms_of_service(ServiceType::WebService),
        );
        // A ToR on the chain's path that is not an endpoint rack's only
        // uplink: fail the last ToR the path crosses before egress.
        let path_tors: Vec<TorId> = orch
            .chain(id)
            .unwrap()
            .path()
            .nodes()
            .iter()
            .filter_map(|&n| match dc.graph().node_weight(n) {
                Some(alvc_topology::PhysNode::Tor(t)) => Some(*t),
                _ => None,
            })
            .collect();
        assert!(!path_tors.is_empty(), "chain path crosses ToRs");
        let dead = path_tors[0];
        let report = orch.fail_tor(&dc, dead, &ElectronicOnlyPlacer::new());
        let outcome = report.outcomes().get(&id).expect("chain was affected");
        // Single-homed servers behind the dead ToR make their VMs
        // unreachable, so any outcome is legal — but state must be clean.
        assert!(orch.verify_no_failed_references(&dc));
        if outcome.is_serving() {
            assert!(!orch
                .chain(id)
                .unwrap()
                .path()
                .nodes()
                .contains(&dc.node_of_tor(dead)));
        } else {
            assert!(orch.chain(id).is_none());
        }
        assert!(orch.restore_tor(dead));
    }

    /// Regression: re-placement during recovery (and hence
    /// `reoptimize_degraded`) must re-check the spec's placement rules. A
    /// rule-oblivious placer that colocates anti-affine stages must never
    /// "recover" a chain into a rule-violating layout.
    #[test]
    fn replace_rechecks_placement_rules() {
        use crate::chain::{ChainSpec, PlacementRule};
        use crate::error::PlacementError;

        /// Pathological placer: every VNF on the first candidate server.
        struct ColocatingPlacer;
        impl VnfPlacer for ColocatingPlacer {
            fn name(&self) -> &'static str {
                "colocating"
            }
            fn place(
                &self,
                ctx: &PlacementContext<'_>,
                chain: &ChainSpec,
            ) -> Result<Vec<HostLocation>, PlacementError> {
                let s = *ctx
                    .servers
                    .first()
                    .ok_or(PlacementError::NoElectronicHost)?;
                Ok(vec![HostLocation::Server(s); chain.vnfs.len()])
            }
        }

        let dc = dc();
        let mut orch = Orchestrator::new();
        let vms = dc.vms_of_service(ServiceType::WebService);
        let ingress_server = dc.server_of_vm(vms[0]);
        let egress_server = dc.server_of_vm(*vms.last().unwrap());
        let mut spec = fig5::black(vms[0], *vms.last().unwrap());
        spec.rules.push(PlacementRule::AntiAffinity { a: 0, b: 1 });
        let id = orch
            .deploy_chain(
                &dc,
                "web",
                vms,
                spec.clone(),
                &PaperGreedy::new(),
                &ElectronicOnlyPlacer::new(),
            )
            .unwrap();
        assert!(
            spec.violated_rule(&dc, orch.chain(id).unwrap().hosts())
                .is_none(),
            "deployment honors the rule"
        );
        // Kill a VNF host that is not an endpoint, forcing the replace rung.
        let Some(dead) = orch
            .chain(id)
            .unwrap()
            .hosts()
            .iter()
            .find_map(|h| match h {
                HostLocation::Server(s) if *s != ingress_server && *s != egress_server => Some(*s),
                _ => None,
            })
        else {
            return; // every VNF landed on an endpoint server
        };
        let report = orch.fail_server(&dc, dead, &ColocatingPlacer);
        let outcome = report.outcomes().get(&id).expect("chain was affected");
        // The colocating placer cannot satisfy anti-affinity, so the chain
        // either survives with its rules intact (it cannot) or is torn
        // down with the violated rule as the reason — but it must never
        // serve from a violating layout.
        match orch.chain(id) {
            Some(chain) => {
                assert!(
                    spec.violated_rule(&dc, chain.hosts()).is_none(),
                    "surviving chain must satisfy its placement rules"
                );
            }
            None => {
                assert_eq!(
                    outcome,
                    &RecoveryOutcome::Unrecoverable(DeployError::RuleViolated {
                        rule: PlacementRule::AntiAffinity { a: 0, b: 1 }
                    })
                );
            }
        }
        assert!(orch.verify_no_failed_references(&dc));
    }
}
