//! Batch-scoped dirty tracking for incremental [`StateView`] publication.
//!
//! Every orchestrator mutation marks the entities it touched; after each
//! batch the control plane takes the accumulated [`ChangeSet`] and patches
//! only those entries into the previous snapshot instead of re-capturing
//! the whole world (see `StateView::apply_delta`). Operations whose blast
//! radius is not cheaply enumerable — element failures, restores,
//! re-optimization, re-clustering — set [`ChangeSet::full`] and fall back
//! to a full `StateView::capture` for that batch.
//!
//! [`StateView`]: crate::control::StateView

use std::collections::BTreeSet;

use alvc_core::ClusterId;

use crate::chain::NfcId;
use crate::lifecycle::VnfInstanceId;

/// The entities mutated since the last snapshot was published.
///
/// Once [`ChangeSet::full`] is set, fine-grained marks stop accumulating:
/// the next publication rebuilds everything anyway.
#[derive(Debug, Default)]
pub(crate) struct ChangeSet {
    /// A global operation ran; the next snapshot must be a full capture.
    pub(crate) full: bool,
    /// Chains deployed, modified, scaled, or torn down.
    pub(crate) chains: BTreeSet<NfcId>,
    /// Virtual clusters created or destroyed.
    pub(crate) clusters: BTreeSet<ClusterId>,
    /// VNF instances created, transitioned, or garbage-collected.
    pub(crate) instances: BTreeSet<VnfInstanceId>,
    /// Physical links whose committed bandwidth changed.
    pub(crate) edges: BTreeSet<alvc_graph::EdgeId>,
}

impl ChangeSet {
    /// Marks the whole world dirty (global operations: failure recovery,
    /// re-optimization, re-clustering).
    pub(crate) fn mark_full(&mut self) {
        self.full = true;
        self.chains.clear();
        self.clusters.clear();
        self.instances.clear();
        self.edges.clear();
    }

    /// Marks one chain dirty (present, changed, or removed).
    pub(crate) fn chain(&mut self, id: NfcId) {
        if !self.full {
            self.chains.insert(id);
        }
    }

    /// Marks one virtual cluster dirty.
    pub(crate) fn cluster(&mut self, id: ClusterId) {
        if !self.full {
            self.clusters.insert(id);
        }
    }

    /// Marks one VNF instance dirty.
    pub(crate) fn instance(&mut self, id: VnfInstanceId) {
        if !self.full {
            self.instances.insert(id);
        }
    }

    /// Marks a set of physical links dirty.
    pub(crate) fn edges(&mut self, edges: &[alvc_graph::EdgeId]) {
        if !self.full {
            self.edges.extend(edges.iter().copied());
        }
    }

    /// Takes the accumulated changes, leaving an empty set behind.
    pub(crate) fn take(&mut self) -> ChangeSet {
        std::mem::take(self)
    }
}
