//! NFV environment for AL-VC (§IV of the paper).
//!
//! Implements the functional blocks of Fig. 6 and the chain model of
//! Fig. 5:
//!
//! * [`vnf`] — the VNF catalog (firewall, DPI, load balancer, security
//!   gateway, …) with resource demands; small demands fit optoelectronic
//!   routers, large ones must stay electronic (§IV.D);
//! * [`chain`] — network function chains: "a set of Network Functions,
//!   packet processing order (simple or complex), network resource
//!   requirements, and network forwarding graph";
//! * [`lifecycle`] — the cloud/NFV manager's VNF lifecycle: "creation,
//!   scaling, termination, and update events during the life cycle of VNF";
//! * [`sdn`] — the SDN controller: provisions connectivity by installing
//!   per-chain flow rules along computed paths;
//! * [`slicing`] — optical slice accounting: "divide the optical network
//!   into virtual slices and allocate each slice to a single NFC. In AL-VC,
//!   that division is in the shape of ALs";
//! * [`placement`] — the [`placement::VnfPlacer`] trait implemented by the
//!   strategies in the `alvc-placement` crate;
//! * [`orchestrator`] — the network orchestrator for multi-tenant
//!   SDN-enabled networks, "responsible for managing (provisioning,
//!   creation, modification, upgradation, and deletion) of multiple NFCs",
//!   mapping **one NFC to one virtual cluster**;
//! * [`recovery`] — the failure-recovery subsystem: element failures enter
//!   at the orchestrator, the AL layer repairs slices, and every affected
//!   chain climbs the reroute → replace → degrade ladder;
//! * [`recluster`] — adaptive re-clustering execution: applies an
//!   `alvc_affinity` migration plan to live cluster membership, rebuilds
//!   invalidated abstraction layers, and reroutes the chains they carried;
//! * [`control`] — the intent-based control plane: a concurrent
//!   multi-tenant frontend over the orchestrator with typed [`Intent`]s,
//!   deterministic batch execution, admission control, lock-free
//!   [`StateView`] snapshot reads, and a replayable intent log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library crates report progress through alvc-telemetry events, never the
// process's stdout/stderr (enforced under cargo clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod chain;
mod changes;
pub mod control;
pub mod error;
pub mod ledger;
pub mod lifecycle;
pub mod orchestrator;
pub mod placement;
pub mod power;
pub mod recluster;
pub mod recovery;
pub mod sdn;
pub mod slicing;
pub mod vnf;

pub use chain::{
    ChainSpec, ChainSpecBuilder, ChainSpecError, ForwardingGraph, Nfc, NfcId, PlacementRule,
    QosClass, StageId,
};
pub use control::{
    AdmissionError, AdmissionPolicy, ChainView, ClusterSliceView, ControlPlane,
    ControlPlaneBuilder, InstanceView, Intent, IntentEffect, IntentId, IntentKind, IntentLog,
    IntentOutcome, IntentRecord, SchedulerMode, StateView, TenantQuota, TenantView,
};
pub use error::{DeployError, Error, ErrorKind, LifecycleError, PlacementError, PowerError};
pub use ledger::ShardedLedger;
pub use lifecycle::{HostLocation, VnfInstance, VnfInstanceId, VnfState};
pub use orchestrator::{DeployedChain, Orchestrator, OrchestratorBuilder};
pub use placement::{ElectronicOnlyPlacer, PlacementContext, VnfPlacer};
pub use recluster::ReclusterReport;
pub use recovery::{RecoveryOutcome, RecoveryReport};
pub use sdn::{FlowRule, SdnController, TableFull};
pub use slicing::{OpticalSlice, SliceRegistry};
pub use vnf::{ResourceDemand, VnfSpec, VnfType};
