//! Error types for the NFV layer.
//!
//! The fine-grained enums ([`DeployError`], [`LifecycleError`],
//! [`PlacementError`]) describe exactly what went wrong inside one
//! subsystem; the unified [`enum@Error`] wraps them (plus routing and
//! control-plane admission failures) so every [`crate::Orchestrator`] and
//! [`crate::ControlPlane`] entry point returns a single type. Match on
//! [`Error::kind`] for stable coarse dispatch, or destructure the wrapped
//! enum when the detail matters.

use std::error::Error as StdError;
use std::fmt;

use alvc_core::ConstructionError;
use alvc_graph::NodeId;
use alvc_optical::RoutingError;
use alvc_topology::{Element, OpsId};

use crate::chain::{ChainSpecError, NfcId, PlacementRule};
use crate::control::AdmissionError;
use crate::lifecycle::VnfState;

/// Why a VNF could not be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// No host (optoelectronic router or server) had remaining capacity for
    /// the VNF at `chain_position`.
    NoCapacity {
        /// Index of the VNF within its chain.
        chain_position: usize,
    },
    /// The slice contains no electronic hosts although one was required.
    NoElectronicHost,
    /// Every host with capacity for the VNF at `chain_position` would
    /// violate `rule` given the stages already placed.
    RuleUnsatisfiable {
        /// Index of the VNF within its chain.
        chain_position: usize,
        /// The placement rule that could not be satisfied.
        rule: PlacementRule,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoCapacity { chain_position } => {
                write!(
                    f,
                    "no host has capacity for the VNF at chain position {chain_position}"
                )
            }
            PlacementError::NoElectronicHost => {
                write!(f, "the slice offers no electronic host for a heavy VNF")
            }
            PlacementError::RuleUnsatisfiable {
                chain_position,
                rule,
            } => {
                write!(
                    f,
                    "no host for the VNF at chain position {chain_position} satisfies {rule}"
                )
            }
        }
    }
}

impl StdError for PlacementError {}

/// Why a lifecycle transition was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleError {
    /// State the instance was in.
    pub from: VnfState,
    /// State that was requested.
    pub to: VnfState,
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal VNF lifecycle transition {} -> {}",
            self.from, self.to
        )
    }
}

impl StdError for LifecycleError {}

/// Why a chain deployment failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeployError {
    /// The virtual cluster / abstraction layer could not be built.
    Cluster(ConstructionError),
    /// VNF placement failed.
    Placement(PlacementError),
    /// The chain path could not be routed inside the slice.
    Routing(RoutingError),
    /// The referenced chain does not exist.
    UnknownChain(NfcId),
    /// The chain's ingress/egress VM is not a member of the tenant's VM
    /// group.
    EndpointOutsideCluster,
    /// A link on the chain's path cannot carry the requested bandwidth on
    /// top of what is already committed to other chains.
    InsufficientBandwidth {
        /// Bandwidth the chain requested.
        requested_gbps: f64,
        /// Bandwidth still available on the bottleneck link.
        available_gbps: f64,
    },
    /// A switch on the chain's path has no free flow-table (TCAM) slots.
    RuleTableFull(crate::sdn::TableFull),
    /// The routed path's one-way latency exceeds the chain's budget.
    LatencyBudgetExceeded {
        /// Budget from the chain spec, in microseconds.
        budget_us: f64,
        /// Latency of the routed path (including O/E/O conversion
        /// latency), in microseconds.
        path_us: f64,
    },
    /// A path references a link that does not exist in the topology graph
    /// (e.g. the path was computed before a switch failed).
    MissingEdge {
        /// Upstream node of the missing hop.
        from: NodeId,
        /// Downstream node of the missing hop.
        to: NodeId,
    },
    /// The chain's ingress or egress VM sits on a failed server, so the
    /// chain cannot be served at all until the server is restored.
    EndpointFailed,
    /// The chain specification itself is malformed (caught for specs that
    /// bypassed [`crate::ChainSpecBuilder`] validation).
    InvalidSpec(ChainSpecError),
    /// The proposed placement violates one of the chain's
    /// [`PlacementRule`]s; nothing was committed.
    RuleViolated {
        /// The violated rule.
        rule: PlacementRule,
    },
}

impl DeployError {
    /// A stable machine-readable reason code, used as the `code` field of
    /// trace spans and flight-recorder dumps.
    pub fn code(&self) -> &'static str {
        match self {
            DeployError::Cluster(_) => "cluster",
            DeployError::Placement(_) => "placement",
            DeployError::Routing(_) => "routing",
            DeployError::UnknownChain(_) => "unknown_chain",
            DeployError::EndpointOutsideCluster => "endpoint_outside_cluster",
            DeployError::InsufficientBandwidth { .. } => "insufficient_bandwidth",
            DeployError::RuleTableFull(_) => "rule_table_full",
            DeployError::LatencyBudgetExceeded { .. } => "latency_budget_exceeded",
            DeployError::MissingEdge { .. } => "missing_edge",
            DeployError::EndpointFailed => "endpoint_failed",
            DeployError::InvalidSpec(_) => "invalid_spec",
            DeployError::RuleViolated { .. } => "rule_violated",
        }
    }
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Cluster(e) => write!(f, "cluster construction failed: {e}"),
            DeployError::Placement(e) => write!(f, "vnf placement failed: {e}"),
            DeployError::Routing(e) => write!(f, "chain routing failed: {e}"),
            DeployError::UnknownChain(id) => write!(f, "unknown chain {id}"),
            DeployError::EndpointOutsideCluster => {
                write!(f, "chain endpoints must belong to the tenant's vm group")
            }
            DeployError::InsufficientBandwidth {
                requested_gbps,
                available_gbps,
            } => write!(
                f,
                "requested {requested_gbps} Gb/s but only {available_gbps} Gb/s remain on the bottleneck link"
            ),
            DeployError::RuleTableFull(e) => write!(f, "flow rule installation failed: {e}"),
            DeployError::LatencyBudgetExceeded { budget_us, path_us } => write!(
                f,
                "routed path takes {path_us} µs, exceeding the {budget_us} µs budget"
            ),
            DeployError::MissingEdge { from, to } => write!(
                f,
                "chain path references a missing link between node {} and node {}",
                from.index(),
                to.index()
            ),
            DeployError::EndpointFailed => {
                write!(f, "chain endpoint vm sits on a failed server")
            }
            DeployError::InvalidSpec(e) => write!(f, "chain spec is invalid: {e}"),
            DeployError::RuleViolated { rule } => {
                write!(f, "placement violates rule {rule}")
            }
        }
    }
}

impl StdError for DeployError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            DeployError::Cluster(e) => Some(e),
            DeployError::Placement(e) => Some(e),
            DeployError::Routing(e) => Some(e),
            DeployError::InvalidSpec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConstructionError> for DeployError {
    fn from(e: ConstructionError) -> Self {
        DeployError::Cluster(e)
    }
}

impl From<PlacementError> for DeployError {
    fn from(e: PlacementError) -> Self {
        DeployError::Placement(e)
    }
}

impl From<RoutingError> for DeployError {
    fn from(e: RoutingError) -> Self {
        DeployError::Routing(e)
    }
}

/// Why a power-state transition was rejected. Nothing is committed on any
/// of these: rejection is side-effect-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PowerError {
    /// The element carries live state — a chain path, VNF host, bandwidth
    /// commitment, or flow rule — so it must stay active.
    InUse {
        /// The busy element.
        element: Element,
    },
    /// The element is failed; restore it before managing its power state.
    Failed {
        /// The failed element.
        element: Element,
    },
    /// The OPS still belongs to a virtual cluster's abstraction layer;
    /// recluster it away before powering it down.
    OpsOwned {
        /// The owned switch.
        ops: OpsId,
    },
}

impl PowerError {
    /// A stable machine-readable reason code.
    pub fn code(&self) -> &'static str {
        match self {
            PowerError::InUse { .. } => "element_in_use",
            PowerError::Failed { .. } => "element_failed",
            PowerError::OpsOwned { .. } => "ops_owned",
        }
    }
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InUse { element } => {
                write!(
                    f,
                    "{element} carries live flows or hosts and must stay active"
                )
            }
            PowerError::Failed { element } => {
                write!(
                    f,
                    "{element} is failed; restore it before a power transition"
                )
            }
            PowerError::OpsOwned { ops } => {
                write!(
                    f,
                    "ops-{} still belongs to an abstraction layer",
                    ops.index()
                )
            }
        }
    }
}

impl StdError for PowerError {}

/// The unified NFV error: every fallible [`crate::Orchestrator`] and
/// [`crate::ControlPlane`] entry point returns this one type.
///
/// The old fine-grained enums survive as variants, so existing matches
/// keep working one level down:
///
/// ```
/// use alvc_nfv::{DeployError, Error, ErrorKind, NfcId};
///
/// let e = Error::from(DeployError::UnknownChain(NfcId(7)));
/// assert_eq!(e.kind(), ErrorKind::UnknownChain);
/// match e {
///     Error::Deploy(DeployError::UnknownChain(id)) => assert_eq!(id, NfcId(7)),
///     other => panic!("unexpected {other}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A chain deployment / modification / teardown / scaling failure.
    Deploy(DeployError),
    /// An illegal VNF lifecycle transition.
    Lifecycle(LifecycleError),
    /// A routing failure outside a deployment (deployment-time routing
    /// failures arrive as [`DeployError::Routing`]).
    Routing(RoutingError),
    /// The control plane rejected the request before touching any state.
    Admission(AdmissionError),
    /// A power-state transition was rejected.
    Power(PowerError),
}

/// Coarse, stable classification of an [`enum@Error`]; use it to dispatch
/// without matching the wrapped enums exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Virtual cluster / abstraction layer construction failed.
    Cluster,
    /// VNF placement failed.
    Placement,
    /// Path routing failed.
    Routing,
    /// A referenced chain does not exist.
    UnknownChain,
    /// Chain endpoints left the tenant's VM group.
    EndpointOutsideCluster,
    /// A link cannot carry the requested bandwidth.
    InsufficientBandwidth,
    /// A switch flow table is full.
    RuleTableFull,
    /// The routed path exceeds the chain's latency budget.
    LatencyBudgetExceeded,
    /// A path references a link missing from the topology.
    MissingEdge,
    /// A chain endpoint VM sits on a failed server.
    EndpointFailed,
    /// The chain specification is malformed.
    InvalidSpec,
    /// The placement violates one of the chain's placement rules.
    RuleViolated,
    /// An illegal VNF lifecycle transition.
    Lifecycle,
    /// The control plane's admission checks rejected the request.
    Admission,
    /// A power-state transition was rejected.
    Power,
}

impl ErrorKind {
    /// A stable machine-readable reason code, used as the `code` field of
    /// trace spans and flight-recorder dumps.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::Cluster => "cluster",
            ErrorKind::Placement => "placement",
            ErrorKind::Routing => "routing",
            ErrorKind::UnknownChain => "unknown_chain",
            ErrorKind::EndpointOutsideCluster => "endpoint_outside_cluster",
            ErrorKind::InsufficientBandwidth => "insufficient_bandwidth",
            ErrorKind::RuleTableFull => "rule_table_full",
            ErrorKind::LatencyBudgetExceeded => "latency_budget_exceeded",
            ErrorKind::MissingEdge => "missing_edge",
            ErrorKind::EndpointFailed => "endpoint_failed",
            ErrorKind::InvalidSpec => "invalid_spec",
            ErrorKind::RuleViolated => "rule_violated",
            ErrorKind::Lifecycle => "lifecycle",
            ErrorKind::Admission => "admission",
            ErrorKind::Power => "power",
        }
    }
}

impl Error {
    /// A stable machine-readable reason code: admission rejections and
    /// deploy failures report their specific variant's code, everything
    /// else the [`ErrorKind::code`].
    pub fn code(&self) -> &'static str {
        match self {
            Error::Admission(e) => e.code(),
            Error::Deploy(e) => e.code(),
            Error::Power(e) => e.code(),
            other => other.kind().code(),
        }
    }

    /// The coarse, stable classification of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Deploy(e) => match e {
                DeployError::Cluster(_) => ErrorKind::Cluster,
                DeployError::Placement(_) => ErrorKind::Placement,
                DeployError::Routing(_) => ErrorKind::Routing,
                DeployError::UnknownChain(_) => ErrorKind::UnknownChain,
                DeployError::EndpointOutsideCluster => ErrorKind::EndpointOutsideCluster,
                DeployError::InsufficientBandwidth { .. } => ErrorKind::InsufficientBandwidth,
                DeployError::RuleTableFull(_) => ErrorKind::RuleTableFull,
                DeployError::LatencyBudgetExceeded { .. } => ErrorKind::LatencyBudgetExceeded,
                DeployError::MissingEdge { .. } => ErrorKind::MissingEdge,
                DeployError::EndpointFailed => ErrorKind::EndpointFailed,
                DeployError::InvalidSpec(_) => ErrorKind::InvalidSpec,
                DeployError::RuleViolated { .. } => ErrorKind::RuleViolated,
            },
            Error::Lifecycle(_) => ErrorKind::Lifecycle,
            Error::Routing(_) => ErrorKind::Routing,
            Error::Admission(_) => ErrorKind::Admission,
            Error::Power(_) => ErrorKind::Power,
        }
    }

    /// The wrapped [`DeployError`], if that is what this is.
    pub fn as_deploy(&self) -> Option<&DeployError> {
        match self {
            Error::Deploy(e) => Some(e),
            _ => None,
        }
    }

    /// The wrapped [`AdmissionError`], if that is what this is.
    pub fn as_admission(&self) -> Option<&AdmissionError> {
        match self {
            Error::Admission(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Deploy(e) => e.fmt(f),
            Error::Lifecycle(e) => e.fmt(f),
            Error::Routing(e) => write!(f, "routing failed: {e}"),
            Error::Admission(e) => write!(f, "admission rejected: {e}"),
            Error::Power(e) => write!(f, "power transition rejected: {e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Deploy(e) => Some(e),
            Error::Lifecycle(e) => Some(e),
            Error::Routing(e) => Some(e),
            Error::Admission(e) => Some(e),
            Error::Power(e) => Some(e),
        }
    }
}

impl From<DeployError> for Error {
    fn from(e: DeployError) -> Self {
        Error::Deploy(e)
    }
}

impl From<LifecycleError> for Error {
    fn from(e: LifecycleError) -> Self {
        Error::Lifecycle(e)
    }
}

impl From<RoutingError> for Error {
    fn from(e: RoutingError) -> Self {
        Error::Routing(e)
    }
}

impl From<AdmissionError> for Error {
    fn from(e: AdmissionError) -> Self {
        Error::Admission(e)
    }
}

impl From<PowerError> for Error {
    fn from(e: PowerError) -> Self {
        Error::Power(e)
    }
}

impl From<ConstructionError> for Error {
    fn from(e: ConstructionError) -> Self {
        Error::Deploy(DeployError::Cluster(e))
    }
}

impl From<PlacementError> for Error {
    fn from(e: PlacementError) -> Self {
        Error::Deploy(DeployError::Placement(e))
    }
}

impl From<ChainSpecError> for Error {
    fn from(e: ChainSpecError) -> Self {
        Error::Deploy(DeployError::InvalidSpec(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        let errs: Vec<Box<dyn StdError>> = vec![
            Box::new(PlacementError::NoCapacity { chain_position: 2 }),
            Box::new(PlacementError::NoElectronicHost),
            Box::new(LifecycleError {
                from: VnfState::Active,
                to: VnfState::Requested,
            }),
            Box::new(DeployError::EndpointOutsideCluster),
            Box::new(DeployError::MissingEdge {
                from: NodeId(4),
                to: NodeId(9),
            }),
            Box::new(DeployError::EndpointFailed),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn deploy_error_sources_chain() {
        let e = DeployError::from(PlacementError::NoElectronicHost);
        assert!(e.source().is_some());
        let e = DeployError::UnknownChain(NfcId(3));
        assert!(e.source().is_none());
        assert!(e.to_string().contains("nfc-3"));
    }

    #[test]
    fn conversions_from_layer_errors() {
        let c: DeployError = ConstructionError::EmptyCluster.into();
        assert!(matches!(c, DeployError::Cluster(_)));
        let r: DeployError = RoutingError::TooFewWaypoints.into();
        assert!(matches!(r, DeployError::Routing(_)));
    }

    #[test]
    fn unified_error_kinds_are_stable() {
        let cases: Vec<(Error, ErrorKind)> = vec![
            (
                DeployError::EndpointOutsideCluster.into(),
                ErrorKind::EndpointOutsideCluster,
            ),
            (
                DeployError::UnknownChain(NfcId(1)).into(),
                ErrorKind::UnknownChain,
            ),
            (
                LifecycleError {
                    from: VnfState::Active,
                    to: VnfState::Requested,
                }
                .into(),
                ErrorKind::Lifecycle,
            ),
            (RoutingError::TooFewWaypoints.into(), ErrorKind::Routing),
            (ConstructionError::EmptyCluster.into(), ErrorKind::Cluster),
            (
                PlacementError::NoElectronicHost.into(),
                ErrorKind::Placement,
            ),
        ];
        for (e, kind) in cases {
            assert_eq!(e.kind(), kind, "{e:?}");
            assert!(e.source().is_some() || !e.to_string().is_empty());
        }
    }

    #[test]
    fn unified_error_preserves_wrapped_enum() {
        let e = Error::from(DeployError::InsufficientBandwidth {
            requested_gbps: 5.0,
            available_gbps: 1.0,
        });
        assert_eq!(e.kind(), ErrorKind::InsufficientBandwidth);
        assert!(matches!(
            e.as_deploy(),
            Some(DeployError::InsufficientBandwidth { .. })
        ));
        assert!(e.as_admission().is_none());
        assert!(e.to_string().contains("Gb/s"));
    }
}
