//! Error types for the NFV layer.

use std::error::Error;
use std::fmt;

use alvc_core::ConstructionError;
use alvc_graph::NodeId;
use alvc_optical::RoutingError;

use crate::chain::NfcId;
use crate::lifecycle::VnfState;

/// Why a VNF could not be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// No host (optoelectronic router or server) had remaining capacity for
    /// the VNF at `chain_position`.
    NoCapacity {
        /// Index of the VNF within its chain.
        chain_position: usize,
    },
    /// The slice contains no electronic hosts although one was required.
    NoElectronicHost,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoCapacity { chain_position } => {
                write!(
                    f,
                    "no host has capacity for the VNF at chain position {chain_position}"
                )
            }
            PlacementError::NoElectronicHost => {
                write!(f, "the slice offers no electronic host for a heavy VNF")
            }
        }
    }
}

impl Error for PlacementError {}

/// Why a lifecycle transition was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleError {
    /// State the instance was in.
    pub from: VnfState,
    /// State that was requested.
    pub to: VnfState,
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal VNF lifecycle transition {} -> {}",
            self.from, self.to
        )
    }
}

impl Error for LifecycleError {}

/// Why a chain deployment failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeployError {
    /// The virtual cluster / abstraction layer could not be built.
    Cluster(ConstructionError),
    /// VNF placement failed.
    Placement(PlacementError),
    /// The chain path could not be routed inside the slice.
    Routing(RoutingError),
    /// The referenced chain does not exist.
    UnknownChain(NfcId),
    /// The chain's ingress/egress VM is not a member of the tenant's VM
    /// group.
    EndpointOutsideCluster,
    /// A link on the chain's path cannot carry the requested bandwidth on
    /// top of what is already committed to other chains.
    InsufficientBandwidth {
        /// Bandwidth the chain requested.
        requested_gbps: f64,
        /// Bandwidth still available on the bottleneck link.
        available_gbps: f64,
    },
    /// A switch on the chain's path has no free flow-table (TCAM) slots.
    RuleTableFull(crate::sdn::TableFull),
    /// The routed path's one-way latency exceeds the chain's budget.
    LatencyBudgetExceeded {
        /// Budget from the chain spec, in microseconds.
        budget_us: f64,
        /// Latency of the routed path (including O/E/O conversion
        /// latency), in microseconds.
        path_us: f64,
    },
    /// A path references a link that does not exist in the topology graph
    /// (e.g. the path was computed before a switch failed).
    MissingEdge {
        /// Upstream node of the missing hop.
        from: NodeId,
        /// Downstream node of the missing hop.
        to: NodeId,
    },
    /// The chain's ingress or egress VM sits on a failed server, so the
    /// chain cannot be served at all until the server is restored.
    EndpointFailed,
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Cluster(e) => write!(f, "cluster construction failed: {e}"),
            DeployError::Placement(e) => write!(f, "vnf placement failed: {e}"),
            DeployError::Routing(e) => write!(f, "chain routing failed: {e}"),
            DeployError::UnknownChain(id) => write!(f, "unknown chain {id}"),
            DeployError::EndpointOutsideCluster => {
                write!(f, "chain endpoints must belong to the tenant's vm group")
            }
            DeployError::InsufficientBandwidth {
                requested_gbps,
                available_gbps,
            } => write!(
                f,
                "requested {requested_gbps} Gb/s but only {available_gbps} Gb/s remain on the bottleneck link"
            ),
            DeployError::RuleTableFull(e) => write!(f, "flow rule installation failed: {e}"),
            DeployError::LatencyBudgetExceeded { budget_us, path_us } => write!(
                f,
                "routed path takes {path_us} µs, exceeding the {budget_us} µs budget"
            ),
            DeployError::MissingEdge { from, to } => write!(
                f,
                "chain path references a missing link between node {} and node {}",
                from.index(),
                to.index()
            ),
            DeployError::EndpointFailed => {
                write!(f, "chain endpoint vm sits on a failed server")
            }
        }
    }
}

impl Error for DeployError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeployError::Cluster(e) => Some(e),
            DeployError::Placement(e) => Some(e),
            DeployError::Routing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConstructionError> for DeployError {
    fn from(e: ConstructionError) -> Self {
        DeployError::Cluster(e)
    }
}

impl From<PlacementError> for DeployError {
    fn from(e: PlacementError) -> Self {
        DeployError::Placement(e)
    }
}

impl From<RoutingError> for DeployError {
    fn from(e: RoutingError) -> Self {
        DeployError::Routing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        let errs: Vec<Box<dyn Error>> = vec![
            Box::new(PlacementError::NoCapacity { chain_position: 2 }),
            Box::new(PlacementError::NoElectronicHost),
            Box::new(LifecycleError {
                from: VnfState::Active,
                to: VnfState::Requested,
            }),
            Box::new(DeployError::EndpointOutsideCluster),
            Box::new(DeployError::MissingEdge {
                from: NodeId(4),
                to: NodeId(9),
            }),
            Box::new(DeployError::EndpointFailed),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn deploy_error_sources_chain() {
        let e = DeployError::from(PlacementError::NoElectronicHost);
        assert!(e.source().is_some());
        let e = DeployError::UnknownChain(NfcId(3));
        assert!(e.source().is_none());
        assert!(e.to_string().contains("nfc-3"));
    }

    #[test]
    fn conversions_from_layer_errors() {
        let c: DeployError = ConstructionError::EmptyCluster.into();
        assert!(matches!(c, DeployError::Cluster(_)));
        let r: DeployError = RoutingError::TooFewWaypoints.into();
        assert!(matches!(r, DeployError::Routing(_)));
    }
}
