//! Pod-sharded bandwidth ledger.
//!
//! The orchestrator tracks committed bandwidth per physical link in integer
//! kb/s (float Gb/s release math drifts around removal thresholds under
//! churn; integer arithmetic round-trips exactly). At hyperscale that
//! ledger is the orchestrator's largest map, and recovery sweeps walk it
//! end to end. [`ShardedLedger`] partitions the entries by **pod** (see
//! [`alvc_topology::PodId`]): each shard holds the edges whose endpoints
//! live in one pod (a boundary-ring edge belongs to the lower of its two
//! pods), so per-pod scans touch one shard and per-shard footprints can be
//! reported to the scale benchmarks.
//!
//! An unbound ledger (the [`Default`]) has a single shard and behaves
//! exactly like the flat `HashMap` it replaces; [`ShardedLedger::bind_pods`]
//! re-partitions in place and is idempotent, so callers invoke it whenever
//! a `DataCenter` is in scope.

use std::collections::HashMap;

use alvc_graph::EdgeId;
use alvc_topology::DataCenter;

/// Committed bandwidth per physical link, in integer kb/s, partitioned by
/// pod.
///
/// # Example
///
/// ```
/// use alvc_graph::EdgeId;
/// use alvc_nfv::ShardedLedger;
///
/// let mut ledger = ShardedLedger::default();
/// ledger.commit(EdgeId(3), 1_000_000);
/// ledger.release(EdgeId(3), 400_000);
/// assert_eq!(ledger.committed(EdgeId(3)), 600_000);
/// ledger.release(EdgeId(3), 600_000);
/// assert!(ledger.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedLedger {
    /// Edge index → shard. Empty while unbound (single shard 0).
    edge_shard: Vec<u32>,
    /// Per-pod entry maps; index 0 doubles as the unbound flat shard.
    shards: Vec<HashMap<EdgeId, u64>>,
}

impl ShardedLedger {
    fn shard_of(&self, e: EdgeId) -> usize {
        self.edge_shard.get(e.index()).copied().unwrap_or(0) as usize
    }

    /// Partitions the ledger by the pods of `dc`, moving existing entries
    /// into their home shards. Idempotent: re-binding against the same
    /// topology shape is a cheap no-op. Edges bridging two pods are
    /// assigned to the lower pod.
    pub fn bind_pods(&mut self, dc: &DataCenter) {
        let pods = dc.pod_count();
        let edge_count = dc.graph().edge_count();
        if self.shards.len() == pods && self.edge_shard.len() == edge_count {
            return;
        }
        let mut edge_shard = vec![0u32; edge_count];
        for (e, a, b, _) in dc.graph().edges() {
            let pod = dc.pod_of_node(a).min(dc.pod_of_node(b));
            edge_shard[e.index()] = pod.index() as u32;
        }
        let mut shards: Vec<HashMap<EdgeId, u64>> = vec![HashMap::new(); pods.max(1)];
        for shard in &self.shards {
            for (&e, &kb) in shard {
                let s = edge_shard.get(e.index()).copied().unwrap_or(0) as usize;
                *shards[s].entry(e).or_insert(0) += kb;
            }
        }
        self.edge_shard = edge_shard;
        self.shards = shards;
    }

    /// Committed kb/s on `e` (0 if absent).
    pub fn committed(&self, e: EdgeId) -> u64 {
        if self.shards.is_empty() {
            return 0;
        }
        self.shards[self.shard_of(e)].get(&e).copied().unwrap_or(0)
    }

    /// Adds `kb` kb/s of commitment on `e`.
    pub fn commit(&mut self, e: EdgeId, kb: u64) {
        if self.shards.is_empty() {
            self.shards.push(HashMap::new());
        }
        let s = self.shard_of(e);
        *self.shards[s].entry(e).or_insert(0) += kb;
    }

    /// Releases `kb` kb/s from `e` (saturating), dropping the entry when it
    /// reaches zero so teardown round-trips restore the ledger bit-for-bit.
    pub fn release(&mut self, e: EdgeId, kb: u64) {
        if self.shards.is_empty() {
            return;
        }
        let s = self.shard_of(e);
        if let Some(b) = self.shards[s].get_mut(&e) {
            *b = b.saturating_sub(kb);
            if *b == 0 {
                self.shards[s].remove(&e);
            }
        }
    }

    /// Number of edges with live commitments.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Whether no edge has a live commitment.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }

    /// Iterates over `(edge, kb/s)` entries, shard by shard. Order within a
    /// shard is unspecified; collect into a `BTreeMap` for deterministic
    /// snapshots.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, u64)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.iter().map(|(&e, &b)| (e, b)))
    }

    /// Iterates over edges with live commitments (same order caveat as
    /// [`ShardedLedger::iter`]).
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.iter().map(|(e, _)| e)
    }

    /// Number of shards (1 while unbound).
    pub fn shard_count(&self) -> usize {
        self.shards.len().max(1)
    }

    /// Live entries per shard, in pod order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(HashMap::len).collect()
    }

    /// Estimated resident bytes per shard (entries × key+value size, with
    /// ~2× hash-table slot overhead), in pod order.
    pub fn shard_memory_bytes(&self) -> Vec<usize> {
        let entry = std::mem::size_of::<(EdgeId, u64)>();
        self.shards.iter().map(|s| s.len() * entry * 2).collect()
    }

    /// Largest per-shard estimated footprint in bytes.
    pub fn peak_shard_bytes(&self) -> usize {
        self.shard_memory_bytes().into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_topology::AlvcTopologyBuilder;

    #[test]
    fn unbound_ledger_is_flat() {
        let mut ledger = ShardedLedger::default();
        assert_eq!(ledger.committed(EdgeId(7)), 0);
        ledger.commit(EdgeId(7), 100);
        ledger.commit(EdgeId(7), 50);
        assert_eq!(ledger.committed(EdgeId(7)), 150);
        assert_eq!(ledger.shard_count(), 1);
        assert_eq!(ledger.len(), 1);
        ledger.release(EdgeId(7), 150);
        assert!(ledger.is_empty());
        assert_eq!(ledger.peak_shard_bytes(), 0);
    }

    #[test]
    fn release_saturates_and_prunes() {
        let mut ledger = ShardedLedger::default();
        ledger.commit(EdgeId(1), 10);
        ledger.release(EdgeId(1), 25);
        assert_eq!(ledger.committed(EdgeId(1)), 0);
        assert!(ledger.is_empty(), "zeroed entries are pruned");
        ledger.release(EdgeId(2), 5); // releasing an absent edge is a no-op
        assert!(ledger.is_empty());
    }

    #[test]
    fn bind_pods_partitions_and_preserves_entries() {
        let dc = AlvcTopologyBuilder::new()
            .racks(2)
            .ops_count(3)
            .pods(3)
            .seed(5)
            .build();
        let mut ledger = ShardedLedger::default();
        let edges: Vec<EdgeId> = dc.graph().edges().map(|(e, _, _, _)| e).collect();
        for (i, &e) in edges.iter().enumerate() {
            ledger.commit(e, (i as u64 + 1) * 10);
        }
        let before: std::collections::BTreeMap<_, _> = ledger.iter().collect();
        ledger.bind_pods(&dc);
        assert_eq!(ledger.shard_count(), 3);
        let after: std::collections::BTreeMap<_, _> = ledger.iter().collect();
        assert_eq!(before, after, "binding moves entries, never loses them");
        // Every edge now lives in the shard of its lower-pod endpoint.
        for (e, a, b, _) in dc.graph().edges() {
            let pod = dc.pod_of_node(a).min(dc.pod_of_node(b));
            ledger.release(e, ledger.committed(e));
            ledger.commit(e, 1);
            let lens = ledger.shard_lens();
            assert!(lens[pod.index()] >= 1);
        }
        assert!(ledger.shard_memory_bytes().iter().sum::<usize>() > 0);
    }

    #[test]
    fn bind_pods_is_idempotent() {
        let dc = AlvcTopologyBuilder::new()
            .racks(2)
            .ops_count(2)
            .pods(2)
            .seed(1)
            .build();
        let mut ledger = ShardedLedger::default();
        ledger.bind_pods(&dc);
        ledger.commit(EdgeId(0), 42);
        let snapshot = ledger.clone();
        ledger.bind_pods(&dc);
        assert_eq!(ledger, snapshot);
    }
}
