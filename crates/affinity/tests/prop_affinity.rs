//! Property tests for the adaptive-clustering subsystem: on every random
//! traffic trace the clusterer's proposal is a permutation-free partition
//! of the current VM universe, planning is seed-deterministic, and
//! applying an approved plan through the cluster manager never breaks the
//! paper's OPS-disjointness invariant.

use std::collections::BTreeSet;

use alvc_affinity::{
    AffinityClusterer, ClustererConfig, CollectorConfig, HysteresisPolicy, MigrationPlanner,
    TrafficCollector,
};
use alvc_core::construction::PaperGreedy;
use alvc_core::{service_clusters, ClusterManager, ClusterSpec};
use alvc_topology::{AlvcTopologyBuilder, DataCenter, VmId};
use proptest::prelude::*;

/// A topology on which every built-in service cluster constructs (the
/// same shape the planner's unit tests use).
fn dc() -> DataCenter {
    AlvcTopologyBuilder::new()
        .racks(8)
        .servers_per_rack(2)
        .vms_per_server(2)
        .ops_count(32)
        .tor_ops_degree(8)
        .opto_fraction(0.5)
        .seed(31)
        .build()
}

fn manager(dc: &DataCenter) -> ClusterManager {
    let mut mgr = ClusterManager::new();
    for spec in service_clusters(dc) {
        mgr.create_cluster(dc, spec.label, spec.vms, &PaperGreedy::new())
            .expect("service clusters construct on the fixed topology");
    }
    mgr
}

/// Strategy: a random traffic trace as (src index, dst index, bytes,
/// timestamp) tuples; indices are reduced modulo the VM count.
fn trace_strategy() -> impl Strategy<Value = Vec<(usize, usize, u64, u64)>> {
    proptest::collection::vec(
        (
            0usize..1000,
            0usize..1000,
            1u64..2_000_000,
            0u64..30_000_000_000,
        ),
        0..200,
    )
}

/// Feeds `trace` into a fresh collector over the topology's VM universe.
fn collect(dc: &DataCenter, trace: &[(usize, usize, u64, u64)]) -> TrafficCollector {
    let vms: Vec<VmId> = dc.vm_ids().collect();
    let mut collector = TrafficCollector::new(CollectorConfig {
        capacity: 256,
        half_life_s: 30.0,
    });
    for &(a, b, bytes, at) in trace {
        collector.observe(vms[a % vms.len()], vms[b % vms.len()], bytes, at);
    }
    collector
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The proposal is a partition of exactly the current VM universe:
    /// same cluster count, every VM in exactly one cluster, nothing
    /// invented, nothing dropped.
    #[test]
    fn proposal_partitions_the_universe(
        trace in trace_strategy(),
        seed in 0u64..1000,
    ) {
        let dc = dc();
        let mgr = manager(&dc);
        let stats = collect(&dc, &trace).snapshot();
        let current = MigrationPlanner::current_specs(&mgr);
        let specs: Vec<ClusterSpec> = current.iter().map(|(_, s)| s.clone()).collect();
        let clusterer = AffinityClusterer::new(ClustererConfig {
            max_cluster_size: 0,
            max_rounds: 8,
            seed,
        });
        let proposed = clusterer.propose(&specs, &stats);
        prop_assert_eq!(proposed.len(), specs.len());
        let before: BTreeSet<VmId> = specs.iter().flat_map(|s| s.vms.iter().copied()).collect();
        let mut seen: BTreeSet<VmId> = BTreeSet::new();
        for spec in &proposed {
            for &vm in &spec.vms {
                prop_assert!(seen.insert(vm), "{vm:?} proposed into two clusters");
            }
        }
        prop_assert_eq!(seen, before);
    }

    /// Proposing and planning from identical inputs (same trace, same
    /// seed) is bit-deterministic, end to end.
    #[test]
    fn same_seed_yields_identical_plans(
        trace in trace_strategy(),
        seed in 0u64..1000,
    ) {
        let dc = dc();
        let mgr = manager(&dc);
        let stats = collect(&dc, &trace).snapshot();
        let current = MigrationPlanner::current_specs(&mgr);
        let specs: Vec<ClusterSpec> = current.iter().map(|(_, s)| s.clone()).collect();
        let run = || {
            let clusterer = AffinityClusterer::new(ClustererConfig {
                max_cluster_size: 0,
                max_rounds: 8,
                seed,
            });
            let proposed = clusterer.propose(&specs, &stats);
            let plan = MigrationPlanner::new(HysteresisPolicy::default())
                .plan(&dc, &mgr, &current, &proposed, &stats);
            (proposed, plan)
        };
        prop_assert_eq!(run(), run());
    }

    /// Applying a plan's moves to the manager — membership first, then
    /// rebuilding any AL the new membership invalidates, exactly the
    /// orchestrator's phases 1–2 — keeps all abstraction layers
    /// OPS-disjoint and covering their members.
    #[test]
    fn applied_plans_keep_als_disjoint(
        trace in trace_strategy(),
        seed in 0u64..1000,
    ) {
        let dc = dc();
        let mut mgr = manager(&dc);
        let stats = collect(&dc, &trace).snapshot();
        let current = MigrationPlanner::current_specs(&mgr);
        let specs: Vec<ClusterSpec> = current.iter().map(|(_, s)| s.clone()).collect();
        let clusterer = AffinityClusterer::new(ClustererConfig {
            max_cluster_size: 0,
            max_rounds: 8,
            seed,
        });
        let proposed = clusterer.propose(&specs, &stats);
        let plan = MigrationPlanner::new(HysteresisPolicy::default())
            .plan(&dc, &mgr, &current, &proposed, &stats);
        for mv in &plan.moves {
            mgr.remove_vm(mv.from, mv.vm);
            mgr.add_vm(mv.to, mv.vm);
        }
        let ids: Vec<_> = mgr.clusters().map(|vc| vc.id()).collect();
        for cid in ids {
            let vc = mgr.cluster(cid).expect("cluster exists");
            if vc.vms().is_empty() || vc.al().validate(&dc, vc.vms()).is_ok() {
                continue;
            }
            // A rebuild may legitimately fail (OPS pool exhausted); the old
            // AL stays and must still be disjoint from the others.
            let _ = mgr.rebuild_cluster(&dc, cid, &PaperGreedy::new());
        }
        prop_assert!(mgr.verify_disjoint(), "ALs must stay OPS-disjoint");
        for vc in mgr.clusters() {
            if !vc.vms().is_empty() && vc.al().validate(&dc, vc.vms()).is_ok() {
                prop_assert!(
                    vc.al().covers_vms(&dc, vc.vms()).is_ok(),
                    "valid AL covers every member VM"
                );
            }
        }
    }
}
