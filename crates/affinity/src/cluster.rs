//! Size-constrained label propagation over the VM affinity graph.
//!
//! The clusterer starts from the *current* assignment (one label per
//! existing cluster) and lets each VM adopt the label where its decayed
//! traffic weight concentrates, subject to a hard cluster-size cap. Two
//! properties fall out of that seeding:
//!
//! * **Stability** — on a stationary workload whose traffic already
//!   matches the clustering, no VM finds a better label, the fixed point
//!   is reached in one round, and the proposal equals the input (zero
//!   churn before the planner even looks).
//! * **Determinism** — the visit order is a seeded Fisher–Yates shuffle
//!   and every tie breaks toward the smaller label index, so one seed and
//!   one [`TrafficStats`] trace always reproduce the same proposal.

use std::collections::BTreeMap;

use alvc_core::ClusterSpec;
use alvc_topology::VmId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::collector::TrafficStats;

/// Label-propagation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClustererConfig {
    /// Hard cap on proposed cluster size. `0` derives the cap as one more
    /// than the largest current cluster — the single slot of headroom lets
    /// swap-style drift resolve (a strict cap would deadlock two full
    /// clusters that want to exchange members) while still bounding
    /// growth.
    pub max_cluster_size: usize,
    /// Maximum propagation rounds (each round visits every VM once); the
    /// loop stops earlier at a fixed point.
    pub max_rounds: usize,
    /// Seed for the per-round visit order.
    pub seed: u64,
}

impl Default for ClustererConfig {
    fn default() -> Self {
        ClustererConfig {
            max_cluster_size: 0,
            max_rounds: 8,
            seed: 0,
        }
    }
}

/// The affinity-graph clusterer. See the [module docs](self).
///
/// # Example
///
/// ```
/// use alvc_affinity::{AffinityClusterer, ClustererConfig, CollectorConfig, TrafficCollector};
/// use alvc_core::ClusterSpec;
/// use alvc_topology::VmId;
///
/// // Two 2-VM clusters, but all traffic flows 0↔2 and 1↔3.
/// let current = vec![
///     ClusterSpec::new("a", vec![VmId(0), VmId(1)]),
///     ClusterSpec::new("b", vec![VmId(2), VmId(3)]),
/// ];
/// let mut c = TrafficCollector::new(CollectorConfig::default());
/// c.observe(VmId(0), VmId(2), 1_000, 0);
/// c.observe(VmId(1), VmId(3), 1_000, 0);
/// let proposal = AffinityClusterer::new(ClustererConfig::default())
///     .propose(&current, &c.snapshot());
/// // Correlated VMs end up co-clustered.
/// let find = |vm| proposal.iter().position(|s| s.vms.contains(&vm)).unwrap();
/// assert_eq!(find(VmId(0)), find(VmId(2)));
/// assert_eq!(find(VmId(1)), find(VmId(3)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AffinityClusterer {
    config: ClustererConfig,
}

impl AffinityClusterer {
    /// Creates a clusterer.
    pub fn new(config: ClustererConfig) -> Self {
        AffinityClusterer { config }
    }

    /// The configuration.
    pub fn config(&self) -> ClustererConfig {
        self.config
    }

    /// Proposes a re-clustering of the VMs in `current`, guided by
    /// `stats`. The result has exactly one spec per input spec, in the
    /// same order and with the same labels — only membership moves. VMs
    /// absent from `stats` (no observed traffic) never move; pairs in
    /// `stats` involving unmanaged VMs are ignored.
    pub fn propose(&self, current: &[ClusterSpec], stats: &TrafficStats) -> Vec<ClusterSpec> {
        let _span = alvc_telemetry::span!("alvc_affinity.clusterer.propose_us");
        // Universe and initial assignment.
        let mut label: BTreeMap<VmId, usize> = BTreeMap::new();
        for (i, spec) in current.iter().enumerate() {
            for &vm in &spec.vms {
                label.entry(vm).or_insert(i);
            }
        }
        let cap = if self.config.max_cluster_size == 0 {
            current.iter().map(|s| s.vms.len()).max().unwrap_or(0) + 1
        } else {
            self.config.max_cluster_size
        };
        let mut sizes: Vec<usize> = vec![0; current.len()];
        for &l in label.values() {
            sizes[l] += 1;
        }

        // Adjacency restricted to managed VMs.
        let mut adj: BTreeMap<VmId, Vec<(VmId, f64)>> = BTreeMap::new();
        for p in &stats.pairs {
            if p.weight <= 0.0 || !label.contains_key(&p.a) || !label.contains_key(&p.b) {
                continue;
            }
            adj.entry(p.a).or_default().push((p.b, p.weight));
            adj.entry(p.b).or_default().push((p.a, p.weight));
        }

        let mut order: Vec<VmId> = label.keys().copied().collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        for _ in 0..self.config.max_rounds {
            order.shuffle(&mut rng);
            let mut moved = false;
            for &vm in &order {
                let Some(neighbors) = adj.get(&vm) else {
                    continue; // no observed traffic: stay put
                };
                let here = label[&vm];
                // Affinity mass per candidate label.
                let mut mass: Vec<f64> = vec![0.0; current.len()];
                for &(peer, w) in neighbors {
                    mass[label[&peer]] += w;
                }
                // Best admissible label: highest mass, ties to the
                // smaller index; staying is always admissible, joining a
                // full cluster is not.
                let mut best = here;
                for (l, &m) in mass.iter().enumerate() {
                    let admissible = l == here || sizes[l] < cap;
                    let better = m > mass[best] || (m == mass[best] && l < best);
                    if admissible && better {
                        best = l;
                    }
                }
                if best != here && mass[best] > mass[here] {
                    sizes[here] -= 1;
                    sizes[best] += 1;
                    *label.get_mut(&vm).expect("vm in universe") = best;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }

        let mut members: Vec<Vec<VmId>> = vec![Vec::new(); current.len()];
        for (&vm, &l) in &label {
            members[l].push(vm);
        }
        current
            .iter()
            .zip(members)
            .map(|(spec, vms)| ClusterSpec::new(spec.label, vms))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{CollectorConfig, TrafficCollector};

    fn specs(groups: &[&[usize]]) -> Vec<ClusterSpec> {
        groups
            .iter()
            .enumerate()
            .map(|(i, g)| ClusterSpec::new(format!("c{i}"), g.iter().map(|&v| VmId(v)).collect()))
            .collect()
    }

    fn assignment(proposal: &[ClusterSpec]) -> BTreeMap<VmId, usize> {
        proposal
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.vms.iter().map(move |&v| (v, i)))
            .collect()
    }

    #[test]
    fn stationary_traffic_proposes_identity() {
        let current = specs(&[&[0, 1, 2], &[3, 4, 5]]);
        let mut c = TrafficCollector::new(CollectorConfig::default());
        // Traffic already matches the clustering.
        c.observe(VmId(0), VmId(1), 1000, 0);
        c.observe(VmId(1), VmId(2), 1000, 0);
        c.observe(VmId(3), VmId(4), 1000, 0);
        c.observe(VmId(4), VmId(5), 1000, 0);
        let proposal = AffinityClusterer::default().propose(&current, &c.snapshot());
        assert_eq!(proposal, current, "no gain, no movement");
    }

    #[test]
    fn drifted_traffic_regroups_vms() {
        // 0,1 ↔ 4,5 talk across the cluster boundary.
        let current = specs(&[&[0, 1, 2, 3], &[4, 5, 6, 7]]);
        let mut c = TrafficCollector::new(CollectorConfig::default());
        c.observe(VmId(0), VmId(4), 10_000, 0);
        c.observe(VmId(1), VmId(5), 10_000, 0);
        c.observe(VmId(2), VmId(3), 10_000, 0);
        c.observe(VmId(6), VmId(7), 10_000, 0);
        let proposal = AffinityClusterer::default().propose(&current, &c.snapshot());
        let a = assignment(&proposal);
        assert_eq!(a[&VmId(0)], a[&VmId(4)]);
        assert_eq!(a[&VmId(1)], a[&VmId(5)]);
        assert_eq!(a[&VmId(2)], a[&VmId(3)]);
        assert_eq!(a[&VmId(6)], a[&VmId(7)]);
    }

    #[test]
    fn every_vm_lands_in_exactly_one_cluster() {
        let current = specs(&[&[0, 1, 2, 3, 4], &[5, 6, 7], &[8, 9]]);
        let mut c = TrafficCollector::new(CollectorConfig::default());
        for i in 0..10usize {
            c.observe(VmId(i), VmId((i + 3) % 10), 100 * (i as u64 + 1), 0);
        }
        let proposal = AffinityClusterer::default().propose(&current, &c.snapshot());
        let total: usize = proposal.iter().map(|s| s.vms.len()).sum();
        assert_eq!(total, 10);
        let mut all: Vec<VmId> = proposal.iter().flat_map(|s| s.vms.clone()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 10, "no VM duplicated across clusters");
    }

    #[test]
    fn size_cap_is_respected() {
        let current = specs(&[&[0, 1, 2], &[3, 4, 5]]);
        let mut c = TrafficCollector::new(CollectorConfig::default());
        // Everyone wants to join cluster 0's VM 0.
        for i in 1..6usize {
            c.observe(VmId(0), VmId(i), 10_000, 0);
        }
        let clusterer = AffinityClusterer::new(ClustererConfig {
            max_cluster_size: 3,
            ..ClustererConfig::default()
        });
        let proposal = clusterer.propose(&current, &c.snapshot());
        assert!(proposal.iter().all(|s| s.vms.len() <= 3));
    }

    #[test]
    fn deterministic_per_seed() {
        let current = specs(&[&[0, 1, 2, 3], &[4, 5, 6, 7], &[8, 9, 10, 11]]);
        let mut c = TrafficCollector::new(CollectorConfig::default());
        for i in 0..12usize {
            for j in (i + 1)..12usize {
                c.observe(VmId(i), VmId(j), ((i * 7 + j * 13) % 50) as u64 * 100, 0);
            }
        }
        let stats = c.snapshot();
        let mk = |seed| {
            AffinityClusterer::new(ClustererConfig {
                seed,
                ..ClustererConfig::default()
            })
            .propose(&current, &stats)
        };
        assert_eq!(mk(5), mk(5));
        assert_eq!(mk(9), mk(9));
    }

    #[test]
    fn unmanaged_vms_in_stats_are_ignored() {
        let current = specs(&[&[0, 1]]);
        let mut c = TrafficCollector::new(CollectorConfig::default());
        c.observe(VmId(0), VmId(99), 1_000_000, 0);
        let proposal = AffinityClusterer::default().propose(&current, &c.snapshot());
        assert_eq!(proposal, current);
    }
}
