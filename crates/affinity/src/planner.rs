//! The migration planner: diff, price, gate.
//!
//! Given the live [`ClusterManager`] state and a clusterer proposal, the
//! planner emits the [`VmMove`] list turning one into the other, prices it
//! with [`alvc_core::update_cost`]'s switch-touch accounting, predicts the
//! intra-cluster traffic share before and after, and applies a
//! **hysteresis gate**: a plan is only approved when the predicted
//! locality gain clears [`HysteresisPolicy::min_gain`] and the move count
//! stays under [`HysteresisPolicy::max_moves`]. Marginal plans are still
//! returned — callers can inspect them — but flagged suppressed, so a
//! stationary workload produces zero churn.

use std::collections::BTreeMap;

use alvc_core::{ClusterId, ClusterManager, ClusterSpec, UpdateCostModel};
use alvc_topology::{DataCenter, VmId};
use serde::{Deserialize, Serialize};

use crate::collector::TrafficStats;

/// One VM changing clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmMove {
    /// The moving VM.
    pub vm: VmId,
    /// The cluster it leaves.
    pub from: ClusterId,
    /// The cluster it joins.
    pub to: ClusterId,
}

/// Aggregate predicted price of a plan, summed over per-move
/// [`alvc_core::UpdateCost`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCost {
    /// ToR switches whose tables change.
    pub tors_updated: usize,
    /// OPS switches whose tables change.
    pub ops_updated: usize,
    /// Moves that force an AL rebuild (target ToR outside the target AL).
    pub al_rebuilds: usize,
}

impl PlanCost {
    /// Total switch touches.
    pub fn total(&self) -> usize {
        self.tors_updated + self.ops_updated
    }
}

/// The hysteresis gate's thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HysteresisPolicy {
    /// Minimum predicted intra-cluster share gain (absolute, 0..=1) for a
    /// plan to be approved.
    pub min_gain: f64,
    /// Maximum moves per plan; larger plans are suppressed outright.
    pub max_moves: usize,
}

impl Default for HysteresisPolicy {
    fn default() -> Self {
        HysteresisPolicy {
            min_gain: 0.02,
            max_moves: 256,
        }
    }
}

/// A priced, gated re-clustering plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReclusterPlan {
    /// Membership moves, in VM order (deterministic).
    pub moves: Vec<VmMove>,
    /// Predicted switch-touch price.
    pub cost: PlanCost,
    /// Intra-cluster share of the observed traffic under the current
    /// assignment.
    pub intra_before: f64,
    /// Intra-cluster share under the proposed assignment.
    pub intra_after: f64,
    /// Whether the plan cleared the hysteresis gate.
    pub approved: bool,
}

impl ReclusterPlan {
    /// Predicted locality gain (may be negative for a degenerate plan).
    pub fn gain(&self) -> f64 {
        self.intra_after - self.intra_before
    }

    /// `true` when the plan moves nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Produces [`ReclusterPlan`]s. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct MigrationPlanner {
    policy: HysteresisPolicy,
    cost_model: UpdateCostModel,
}

/// The intra-cluster share of `stats`' weight under `assignment`
/// (VM → cluster). Pairs with an unassigned endpoint count as
/// inter-cluster; an empty trace scores 0.
pub fn intra_share(assignment: &BTreeMap<VmId, ClusterId>, stats: &TrafficStats) -> f64 {
    let mut intra = 0.0;
    let mut total = 0.0;
    for p in &stats.pairs {
        total += p.weight;
        if let (Some(a), Some(b)) = (assignment.get(&p.a), assignment.get(&p.b)) {
            if a == b {
                intra += p.weight;
            }
        }
    }
    if total == 0.0 {
        0.0
    } else {
        intra / total
    }
}

impl MigrationPlanner {
    /// A planner with the given gate.
    pub fn new(policy: HysteresisPolicy) -> Self {
        MigrationPlanner {
            policy,
            cost_model: UpdateCostModel::new(),
        }
    }

    /// The gate thresholds.
    pub fn policy(&self) -> HysteresisPolicy {
        self.policy
    }

    /// Snapshots `manager`'s live clusters as `(id, spec)` pairs in id
    /// order — the `current` input for
    /// [`AffinityClusterer::propose`](crate::AffinityClusterer::propose)
    /// and [`MigrationPlanner::plan`].
    pub fn current_specs(manager: &ClusterManager) -> Vec<(ClusterId, ClusterSpec)> {
        manager
            .clusters()
            .map(|vc| (vc.id(), ClusterSpec::new(vc.label(), vc.vms().to_vec())))
            .collect()
    }

    /// Diffs `proposed` against `current` (parallel slices: `proposed[i]`
    /// is the new membership of `current[i].0`), prices the moves, and
    /// applies the hysteresis gate.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ.
    pub fn plan(
        &self,
        dc: &DataCenter,
        manager: &ClusterManager,
        current: &[(ClusterId, ClusterSpec)],
        proposed: &[ClusterSpec],
        stats: &TrafficStats,
    ) -> ReclusterPlan {
        assert_eq!(
            current.len(),
            proposed.len(),
            "proposal must cover every current cluster"
        );
        let _span = alvc_telemetry::span!("alvc_affinity.planner.plan_latency_us");
        let before: BTreeMap<VmId, ClusterId> = current
            .iter()
            .flat_map(|(id, s)| s.vms.iter().map(move |&v| (v, *id)))
            .collect();
        let after: BTreeMap<VmId, ClusterId> = current
            .iter()
            .zip(proposed)
            .flat_map(|((id, _), s)| s.vms.iter().map(move |&v| (v, *id)))
            .collect();

        let mut moves = Vec::new();
        let mut cost = PlanCost::default();
        for (&vm, &from) in &before {
            let Some(&to) = after.get(&vm) else { continue };
            if to == from {
                continue;
            }
            let c = self.cost_model.recluster_cost(dc, manager, from, to, vm);
            cost.tors_updated += c.tors_updated;
            cost.ops_updated += c.ops_updated;
            cost.al_rebuilds += usize::from(c.al_rebuilt);
            moves.push(VmMove { vm, from, to });
        }

        let intra_before = intra_share(&before, stats);
        let intra_after = intra_share(&after, stats);
        let gain = intra_after - intra_before;
        let approved = !moves.is_empty()
            && gain >= self.policy.min_gain
            && moves.len() <= self.policy.max_moves;

        alvc_telemetry::counter!("alvc_affinity.planner.plans").incr();
        alvc_telemetry::gauge!("alvc_affinity.planner.predicted_gain").set(gain);
        // Probes-off builds expand both counters to the same no-op.
        #[allow(clippy::if_same_then_else)]
        if approved {
            alvc_telemetry::counter!("alvc_affinity.planner.moves_proposed")
                .add(moves.len() as u64);
        } else {
            alvc_telemetry::counter!("alvc_affinity.planner.moves_suppressed")
                .add(moves.len() as u64);
        }

        ReclusterPlan {
            moves,
            cost,
            intra_before,
            intra_after,
            approved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::AffinityClusterer;
    use crate::collector::{CollectorConfig, TrafficCollector};
    use alvc_core::construction::PaperGreedy;
    use alvc_topology::{AlvcTopologyBuilder, DataCenter};

    fn setup() -> (DataCenter, ClusterManager) {
        let dc = AlvcTopologyBuilder::new()
            .racks(8)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(32)
            .tor_ops_degree(8)
            .seed(31)
            .build();
        let mut mgr = ClusterManager::new();
        for spec in alvc_core::service_clusters(&dc) {
            mgr.create_cluster(&dc, spec.label, spec.vms, &PaperGreedy::new())
                .unwrap();
        }
        (dc, mgr)
    }

    #[test]
    fn stationary_trace_yields_empty_suppressed_plan() {
        let (dc, mgr) = setup();
        let current = MigrationPlanner::current_specs(&mgr);
        let mut c = TrafficCollector::new(CollectorConfig::default());
        for (_, spec) in &current {
            for w in spec.vms.windows(2) {
                c.observe(w[0], w[1], 10_000, 0);
            }
        }
        let stats = c.snapshot();
        let specs: Vec<ClusterSpec> = current.iter().map(|(_, s)| s.clone()).collect();
        let proposed = AffinityClusterer::default().propose(&specs, &stats);
        let plan = MigrationPlanner::new(HysteresisPolicy::default())
            .plan(&dc, &mgr, &current, &proposed, &stats);
        assert!(plan.is_empty(), "stationary workload moves nothing");
        assert!(!plan.approved, "empty plans never clear the gate");
        assert_eq!(plan.cost.total(), 0);
    }

    #[test]
    fn cross_cluster_traffic_yields_approved_priced_plan() {
        let (dc, mgr) = setup();
        let current = MigrationPlanner::current_specs(&mgr);
        assert!(current.len() >= 2, "setup makes several service clusters");
        let (a_vms, b_vms) = (&current[0].1.vms, &current[1].1.vms);
        let mut c = TrafficCollector::new(CollectorConfig::default());
        // Cluster 0's first VM talks exclusively to cluster 1.
        for &b in b_vms {
            c.observe(a_vms[0], b, 100_000, 0);
        }
        for w in b_vms.windows(2) {
            c.observe(w[0], w[1], 100_000, 0);
        }
        let stats = c.snapshot();
        let specs: Vec<ClusterSpec> = current.iter().map(|(_, s)| s.clone()).collect();
        let proposed = AffinityClusterer::default().propose(&specs, &stats);
        let plan = MigrationPlanner::new(HysteresisPolicy {
            min_gain: 0.01,
            max_moves: 64,
        })
        .plan(&dc, &mgr, &current, &proposed, &stats);
        assert!(!plan.is_empty());
        assert!(plan.approved, "large gain clears the gate: {plan:?}");
        assert!(plan.gain() > 0.0);
        assert!(plan.cost.total() > 0, "moves touch switches");
    }

    #[test]
    fn gate_suppresses_marginal_gains() {
        let (dc, mgr) = setup();
        let current = MigrationPlanner::current_specs(&mgr);
        let (a_vms, b_vms) = (&current[0].1.vms, &current[1].1.vms);
        let mut c = TrafficCollector::new(CollectorConfig::default());
        // Mostly conforming traffic with one weak stray edge.
        for (_, spec) in &current {
            for w in spec.vms.windows(2) {
                c.observe(w[0], w[1], 100_000, 0);
            }
        }
        c.observe(a_vms[0], b_vms[0], 101_000, 0);
        let stats = c.snapshot();
        let specs: Vec<ClusterSpec> = current.iter().map(|(_, s)| s.clone()).collect();
        let proposed = AffinityClusterer::default().propose(&specs, &stats);
        let strict = MigrationPlanner::new(HysteresisPolicy {
            min_gain: 0.5,
            max_moves: 64,
        })
        .plan(&dc, &mgr, &current, &proposed, &stats);
        if !strict.is_empty() {
            assert!(!strict.approved, "tiny gain must not clear a 0.5 gate");
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let (dc, mgr) = setup();
        let current = MigrationPlanner::current_specs(&mgr);
        let mut c = TrafficCollector::new(CollectorConfig::default());
        let vms: Vec<VmId> = current.iter().flat_map(|(_, s)| s.vms.clone()).collect();
        for (i, &v) in vms.iter().enumerate() {
            c.observe(v, vms[(i + 5) % vms.len()], 1_000 * (i as u64 + 1), 0);
        }
        let stats = c.snapshot();
        let specs: Vec<ClusterSpec> = current.iter().map(|(_, s)| s.clone()).collect();
        let run = || {
            let proposed = AffinityClusterer::default().propose(&specs, &stats);
            MigrationPlanner::new(HysteresisPolicy::default())
                .plan(&dc, &mgr, &current, &proposed, &stats)
        };
        assert_eq!(run(), run());
    }
}
