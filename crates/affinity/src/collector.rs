//! The streaming traffic-stats collector: bounded memory, exponential
//! decay, heavy-hitter eviction.
//!
//! The collector maintains one weight per *unordered* VM pair. A weight is
//! an exponentially-decayed byte count with half-life `half_life_s`: a
//! contribution of `b` bytes observed `Δt` seconds ago counts as
//! `b · 2^(−Δt / half_life_s)` today. Decay is applied lazily — each
//! counter stores its last-update timestamp and is brought forward only
//! when touched or snapshotted — so an observation costs `O(log n)` and no
//! background timer exists.
//!
//! Memory is bounded by `capacity` pairs. When a new pair arrives at
//! capacity, the minimum-weight pair is evicted Space-Saving style: the
//! newcomer inherits the evicted weight as its starting estimate, and the
//! largest weight ever evicted is tracked as [`TrafficStats::error_bound`]
//! — every reported weight is correct within `+error_bound`, which keeps
//! the heavy hitters (the pairs clustering actually cares about) honest.

use std::collections::BTreeMap;

use alvc_topology::VmId;
use serde::{Deserialize, Serialize};

/// Collector sizing and decay parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectorConfig {
    /// Maximum VM pairs tracked at once (the memory bound).
    pub capacity: usize,
    /// Half-life of the exponential decay, in seconds: a byte observed one
    /// half-life ago weighs half a byte now.
    pub half_life_s: f64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            capacity: 4096,
            half_life_s: 60.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PairCounter {
    weight: f64,
    last_ns: u64,
}

/// Bounded-memory streaming collector of per-VM-pair traffic weights.
///
/// Feed it flow completions — from
/// [`FlowSim::run_observed`](https://docs.rs/alvc-sim) hooks, from an
/// aggregated traffic matrix via [`TrafficCollector::observe_pairs`], or
/// from any other byte-count source — then take a [`TrafficStats`]
/// snapshot for the clusterer.
///
/// # Example
///
/// ```
/// use alvc_affinity::{CollectorConfig, TrafficCollector};
/// use alvc_topology::VmId;
///
/// let mut c = TrafficCollector::new(CollectorConfig::default());
/// c.observe(VmId(0), VmId(1), 1_000, 0);
/// c.observe(VmId(1), VmId(0), 500, 1_000_000_000); // direction ignored
/// let stats = c.snapshot();
/// assert_eq!(stats.pair_count(), 1);
/// assert!(stats.weight_between(VmId(0), VmId(1)) > 500.0);
/// ```
#[derive(Debug, Clone)]
pub struct TrafficCollector {
    config: CollectorConfig,
    pairs: BTreeMap<(VmId, VmId), PairCounter>,
    /// Monotone high-water clock across observations.
    now_ns: u64,
    /// Largest weight ever evicted (the Space-Saving error bound).
    error_bound: f64,
    observations: u64,
    evictions: u64,
}

impl TrafficCollector {
    /// Creates an empty collector.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `half_life_s` is not positive.
    pub fn new(config: CollectorConfig) -> Self {
        assert!(config.capacity > 0, "collector capacity must be positive");
        assert!(
            config.half_life_s > 0.0 && config.half_life_s.is_finite(),
            "half-life must be positive and finite"
        );
        TrafficCollector {
            config,
            pairs: BTreeMap::new(),
            now_ns: 0,
            error_bound: 0.0,
            observations: 0,
            evictions: 0,
        }
    }

    /// The configuration the collector was built with.
    pub fn config(&self) -> CollectorConfig {
        self.config
    }

    /// VM pairs currently tracked (bounded by `capacity`).
    pub fn tracked_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Total observations fed in so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Decay factor from `last_ns` to `now_ns` for a given half-life.
    fn decay_factor(half_life_s: f64, last_ns: u64, now_ns: u64) -> f64 {
        let dt_s = now_ns.saturating_sub(last_ns) as f64 / 1e9;
        (2.0f64).powf(-dt_s / half_life_s)
    }

    /// Records `bytes` of traffic between `a` and `b` at time `now_ns`.
    /// Direction is ignored (affinity is symmetric) and self-traffic is
    /// dropped. Time never runs backwards: an out-of-order timestamp is
    /// clamped to the collector's high-water clock.
    pub fn observe(&mut self, a: VmId, b: VmId, bytes: u64, now_ns: u64) {
        if a == b {
            return;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        self.now_ns = self.now_ns.max(now_ns);
        let now = self.now_ns;
        self.observations += 1;
        alvc_telemetry::counter!("alvc_affinity.collector.observations").incr();
        if let Some(c) = self.pairs.get_mut(&key) {
            c.weight = c.weight * Self::decay_factor(self.config.half_life_s, c.last_ns, now)
                + bytes as f64;
            c.last_ns = now;
            return;
        }
        let mut start = bytes as f64;
        if self.pairs.len() >= self.config.capacity {
            // Space-Saving eviction: drop the minimum decayed weight and
            // let the newcomer inherit it as its error-bounded estimate.
            let victim = self
                .pairs
                .iter()
                .map(|(&k, c)| {
                    (
                        k,
                        c.weight * Self::decay_factor(self.config.half_life_s, c.last_ns, now),
                    )
                })
                .min_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
            if let Some((k, w)) = victim {
                self.pairs.remove(&k);
                self.error_bound = self.error_bound.max(w);
                start += w;
                self.evictions += 1;
                alvc_telemetry::counter!("alvc_affinity.collector.evictions").incr();
            }
        }
        self.pairs.insert(
            key,
            PairCounter {
                weight: start,
                last_ns: now,
            },
        );
    }

    /// Feeds a batch of aggregated `(src, dst, bytes)` demands observed at
    /// `now_ns` — the shape produced by
    /// `alvc_sim::TrafficMatrix::pair_demands`.
    pub fn observe_pairs(
        &mut self,
        demands: impl IntoIterator<Item = (VmId, VmId, u64)>,
        now_ns: u64,
    ) {
        for (src, dst, bytes) in demands {
            self.observe(src, dst, bytes, now_ns);
        }
    }

    /// Captures a [`TrafficStats`] snapshot with every weight decayed to
    /// the collector's current clock. The snapshot is deterministic: pairs
    /// are ordered by VM id.
    pub fn snapshot(&self) -> TrafficStats {
        let now = self.now_ns;
        let pairs: Vec<PairTraffic> = self
            .pairs
            .iter()
            .map(|(&(a, b), c)| PairTraffic {
                a,
                b,
                weight: c.weight * Self::decay_factor(self.config.half_life_s, c.last_ns, now),
            })
            .collect();
        TrafficStats {
            now_ns: now,
            pairs,
            error_bound: self.error_bound,
            observations: self.observations,
            evictions: self.evictions,
        }
    }
}

/// One VM pair's decayed traffic weight (unordered: `a <= b`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairTraffic {
    /// The smaller endpoint.
    pub a: VmId,
    /// The larger endpoint.
    pub b: VmId,
    /// Exponentially-decayed byte weight as of [`TrafficStats::now_ns`].
    pub weight: f64,
}

/// An immutable snapshot of the collector: every tracked pair's decayed
/// weight at one instant, ordered by VM id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// The snapshot instant (the collector's high-water clock).
    pub now_ns: u64,
    /// Tracked pairs in `(a, b)` order.
    pub pairs: Vec<PairTraffic>,
    /// Space-Saving error bound: any weight may over-count by at most
    /// this much (0 while the collector never evicted).
    pub error_bound: f64,
    /// Observations fed into the collector over its lifetime.
    pub observations: u64,
    /// Evictions performed over the collector's lifetime.
    pub evictions: u64,
}

impl TrafficStats {
    /// Number of tracked pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Sum of all pair weights.
    pub fn total_weight(&self) -> f64 {
        self.pairs.iter().map(|p| p.weight).sum()
    }

    /// The decayed weight between two VMs (0 if untracked). Direction is
    /// ignored.
    pub fn weight_between(&self, x: VmId, y: VmId) -> f64 {
        let key = if x <= y { (x, y) } else { (y, x) };
        self.pairs
            .binary_search_by(|p| (p.a, p.b).cmp(&key))
            .map(|i| self.pairs[i].weight)
            .unwrap_or(0.0)
    }

    /// The `k` heaviest pairs, weight-descending (ties broken by VM id for
    /// determinism).
    pub fn top_k(&self, k: usize) -> Vec<PairTraffic> {
        let mut sorted: Vec<PairTraffic> = self.pairs.clone();
        sorted.sort_by(|x, y| {
            y.weight
                .total_cmp(&x.weight)
                .then((x.a, x.b).cmp(&(y.a, y.b)))
        });
        sorted.truncate(k);
        sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(i: usize) -> VmId {
        VmId(i)
    }

    #[test]
    fn weights_accumulate_and_direction_is_ignored() {
        let mut c = TrafficCollector::new(CollectorConfig::default());
        c.observe(vm(1), vm(2), 100, 0);
        c.observe(vm(2), vm(1), 50, 0);
        let s = c.snapshot();
        assert_eq!(s.pair_count(), 1);
        assert!((s.weight_between(vm(1), vm(2)) - 150.0).abs() < 1e-9);
        assert!((s.weight_between(vm(2), vm(1)) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn self_traffic_is_dropped() {
        let mut c = TrafficCollector::new(CollectorConfig::default());
        c.observe(vm(3), vm(3), 1000, 0);
        assert_eq!(c.snapshot().pair_count(), 0);
    }

    #[test]
    fn decay_halves_at_half_life() {
        let mut c = TrafficCollector::new(CollectorConfig {
            capacity: 16,
            half_life_s: 10.0,
        });
        c.observe(vm(0), vm(1), 1000, 0);
        // Advance the clock one half-life via another pair.
        c.observe(vm(2), vm(3), 1, 10_000_000_000);
        let s = c.snapshot();
        assert!((s.weight_between(vm(0), vm(1)) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn out_of_order_timestamps_are_clamped() {
        let mut c = TrafficCollector::new(CollectorConfig::default());
        c.observe(vm(0), vm(1), 100, 5_000_000_000);
        c.observe(vm(0), vm(1), 100, 1_000_000_000); // earlier: clamped
        let s = c.snapshot();
        assert_eq!(s.now_ns, 5_000_000_000);
        assert!(s.weight_between(vm(0), vm(1)) >= 199.0);
    }

    #[test]
    fn capacity_is_a_hard_bound_with_error_tracking() {
        let mut c = TrafficCollector::new(CollectorConfig {
            capacity: 4,
            half_life_s: 60.0,
        });
        for i in 0..10 {
            c.observe(vm(i), vm(100 + i), (i as u64 + 1) * 100, 0);
        }
        assert!(c.tracked_pairs() <= 4);
        let s = c.snapshot();
        assert!(s.evictions >= 6);
        assert!(
            s.error_bound > 0.0,
            "evictions must register an error bound"
        );
    }

    #[test]
    fn heavy_hitters_survive_eviction() {
        let mut c = TrafficCollector::new(CollectorConfig {
            capacity: 8,
            half_life_s: 60.0,
        });
        // One elephant pair plus a parade of mice.
        for round in 0..50u64 {
            c.observe(vm(0), vm(1), 1_000_000, round * 1_000_000);
            c.observe(
                vm(round as usize + 10),
                vm(round as usize + 200),
                10,
                round * 1_000_000,
            );
        }
        let s = c.snapshot();
        let top = s.top_k(1);
        assert_eq!((top[0].a, top[0].b), (vm(0), vm(1)));
        assert!(top[0].weight > 1_000_000.0);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let feed = |c: &mut TrafficCollector| {
            for i in 0..20 {
                c.observe(
                    vm(i % 5),
                    vm(i % 7 + 5),
                    100 + i as u64,
                    i as u64 * 1_000_000,
                );
            }
        };
        let mut a = TrafficCollector::new(CollectorConfig::default());
        let mut b = TrafficCollector::new(CollectorConfig::default());
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn top_k_orders_by_weight_then_id() {
        let mut c = TrafficCollector::new(CollectorConfig::default());
        c.observe(vm(0), vm(1), 100, 0);
        c.observe(vm(2), vm(3), 300, 0);
        c.observe(vm(4), vm(5), 100, 0);
        let top = c.snapshot().top_k(3);
        assert_eq!((top[0].a, top[0].b), (vm(2), vm(3)));
        assert_eq!((top[1].a, top[1].b), (vm(0), vm(1)), "tie broken by id");
        assert_eq!((top[2].a, top[2].b), (vm(4), vm(5)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        TrafficCollector::new(CollectorConfig {
            capacity: 0,
            half_life_s: 1.0,
        });
    }
}
