//! Traffic-aware adaptive clustering for the AL-VC architecture.
//!
//! The paper's service-based clustering (§III.A) is justified by traffic
//! correlation, but a static clustering silently decays as workloads
//! drift: cross-cluster traffic grows, AL locality erodes, and O/E/O
//! conversions re-inflate (§V). This crate closes the loop —
//! **measure → re-cluster → migrate** — in three composable layers:
//!
//! * [`collector`] — a bounded-memory streaming collector of
//!   exponentially-decayed per-VM-pair byte weights with Space-Saving
//!   heavy-hitter eviction, snapshotted as [`TrafficStats`];
//! * [`cluster`] — a deterministic, size-constrained label-propagation
//!   clusterer over the affinity graph, seeded from the current
//!   assignment so stationary workloads reach a fixed point immediately;
//! * [`planner`] — a migration planner that diffs proposal against
//!   reality, prices every move via [`alvc_core::update_cost`], and gates
//!   plans behind a hysteresis threshold (no churn for marginal gains).
//!
//! Approved [`ReclusterPlan`]s execute through the control plane as
//! `alvc_nfv::Intent::Recluster`, keeping the whole loop admission-checked
//! and replay-deterministic. See DESIGN.md §12 and the
//! `e11_adaptive_clustering` bench.
//!
//! ```
//! use alvc_affinity::{
//!     AffinityClusterer, CollectorConfig, HysteresisPolicy, MigrationPlanner,
//!     TrafficCollector,
//! };
//! use alvc_core::construction::PaperGreedy;
//! use alvc_core::{service_clusters, ClusterManager, ClusterSpec};
//! use alvc_topology::{AlvcTopologyBuilder, ServiceMix, ServiceType};
//!
//! let dc = AlvcTopologyBuilder::new()
//!     .racks(4)
//!     .ops_count(24)
//!     .tor_ops_degree(6)
//!     .service_mix(ServiceMix::uniform(&[ServiceType::WebService, ServiceType::Sns]))
//!     .seed(7)
//!     .build();
//! let mut mgr = ClusterManager::new();
//! for spec in service_clusters(&dc) {
//!     mgr.create_cluster(&dc, &spec.label, spec.vms, &PaperGreedy::new()).unwrap();
//! }
//! let mut collector = TrafficCollector::new(CollectorConfig::default());
//! // ... feed flow completions via collector.observe(...) ...
//! let stats = collector.snapshot();
//! let current = MigrationPlanner::current_specs(&mgr);
//! let specs: Vec<ClusterSpec> = current.iter().map(|(_, s)| s.clone()).collect();
//! let proposed = AffinityClusterer::default().propose(&specs, &stats);
//! let plan = MigrationPlanner::new(HysteresisPolicy::default())
//!     .plan(&dc, &mgr, &current, &proposed, &stats);
//! assert!(plan.is_empty(), "no traffic observed, nothing to fix");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library crates report progress through alvc-telemetry events, never the
// process's stdout/stderr (enforced under cargo clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod cluster;
pub mod collector;
pub mod planner;

pub use cluster::{AffinityClusterer, ClustererConfig};
pub use collector::{CollectorConfig, PairTraffic, TrafficCollector, TrafficStats};
pub use planner::{
    intra_share, HysteresisPolicy, MigrationPlanner, PlanCost, ReclusterPlan, VmMove,
};
