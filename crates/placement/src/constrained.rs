//! The constraint-aware placer: greedy marginal-cost placement that
//! enforces [`PlacementRule`]s *during* host selection.
//!
//! The existing strategies pick hosts purely on capacity and load; rules
//! attached to a [`ChainSpec`] would only surface afterwards, when the
//! orchestrator rejects the finished assignment. [`ConstraintAwarePlacer`]
//! instead prunes the candidate set of every stage against the rules that
//! bind it to already-placed stages, so a satisfiable rule set always
//! yields a rule-clean assignment and an unsatisfiable one fails with the
//! *first rule that emptied a candidate set* —
//! [`PlacementError::RuleUnsatisfiable`] — instead of a generic capacity
//! error.
//!
//! Candidate ranking follows the same economics as
//! [`crate::policy::score_assignment`]: entering the electronic domain
//! costs a prospective O/E/O conversion, wasting optical capacity on a
//! light VNF costs spill, and server load is balanced. Ties break
//! deterministically (optical before electronic, then lowest id), so equal
//! inputs always produce identical assignments — the property the replay
//! log depends on.

use std::collections::HashMap;

use alvc_nfv::{
    ChainSpec, HostLocation, PlacementContext, PlacementError, PlacementRule, ResourceDemand,
    VnfPlacer, VnfSpec,
};
use alvc_topology::{DataCenter, Domain, OpsId, PodId, ServerId};

use crate::policy::{W_BALANCE, W_BANDWIDTH, W_OEO, W_SPILL};

/// Pod of either host kind (mirrors the orchestrator-side helper, which is
/// private to `alvc-nfv`).
fn pod_of(dc: &DataCenter, host: HostLocation) -> PodId {
    match host {
        HostLocation::Server(s) => dc.pod_of_server(s),
        HostLocation::OptoRouter(o) => dc.pod_of_ops(o),
    }
}

/// Returns `true` if placing `host` at stage `position` is consistent with
/// `rule`, given the stages already assigned in `placed` (a prefix of the
/// chain). Rules whose other endpoint is not yet placed cannot be violated
/// yet and pass.
fn rule_admits(
    rule: &PlacementRule,
    dc: &DataCenter,
    placed: &[HostLocation],
    position: usize,
    host: HostLocation,
) -> bool {
    let partner = |stage: usize| placed.get(stage).copied();
    match *rule {
        PlacementRule::AntiAffinity { a, b } => {
            let other = if a == position { b } else { a };
            (a == position || b == position)
                .then(|| partner(other))
                .flatten()
                .is_none_or(|p| p != host)
        }
        PlacementRule::Affinity { a, b } => {
            let other = if a == position { b } else { a };
            (a == position || b == position)
                .then(|| partner(other))
                .flatten()
                .is_none_or(|p| pod_of(dc, p) == pod_of(dc, host))
        }
        PlacementRule::Colocate { a, b } => {
            let other = if a == position { b } else { a };
            (a == position || b == position)
                .then(|| partner(other))
                .flatten()
                .is_none_or(|p| p == host)
        }
        PlacementRule::PinToPod { stage, pod } => stage != position || pod_of(dc, host) == pod,
        // Future rule kinds (the enum is non-exhaustive) are not pruned
        // here; the orchestrator's post-placement check still enforces
        // them.
        _ => true,
    }
}

/// Greedy per-stage placement that enforces the chain's placement rules
/// while minimising marginal cost (O/E/O conversions first, then AL spill,
/// then server load).
///
/// Deterministic: identical contexts and chains always produce identical
/// assignments.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstraintAwarePlacer {
    _priv: (),
}

impl ConstraintAwarePlacer {
    /// Creates the placer.
    pub fn new() -> Self {
        ConstraintAwarePlacer::default()
    }

    /// Marginal cost of putting `vnf` on `host` as the next stage, given
    /// the already-placed prefix and local load ledgers.
    fn marginal_cost(
        vnf: &VnfSpec,
        host: HostLocation,
        placed: &[HostLocation],
        fits_some_opto: bool,
        server_load: &HashMap<ServerId, f64>,
        bandwidth_gbps: f64,
    ) -> f64 {
        match host {
            HostLocation::OptoRouter(_) => 0.0,
            HostLocation::Server(s) => {
                // Entering the electronic domain starts a new conversion
                // run unless the previous stage is already electronic.
                let starts_run = placed.last().is_none_or(|p| p.domain() == Domain::Optical);
                let oeo = if starts_run {
                    W_OEO + 2.0 * bandwidth_gbps * W_BANDWIDTH
                } else {
                    0.0
                };
                let spill = if fits_some_opto { W_SPILL } else { 0.0 };
                let load = server_load.get(&s).copied().unwrap_or(0.0) + vnf.demand.cpu;
                oeo + spill + W_BALANCE * load
            }
        }
    }
}

impl VnfPlacer for ConstraintAwarePlacer {
    fn name(&self) -> &'static str {
        "constraint-aware"
    }

    fn place(
        &self,
        ctx: &PlacementContext<'_>,
        chain: &ChainSpec,
    ) -> Result<Vec<HostLocation>, PlacementError> {
        if chain.vnfs.is_empty() {
            return Ok(Vec::new());
        }
        let opto = ctx.opto_candidates();
        let mut opto_load: HashMap<OpsId, ResourceDemand> =
            opto.iter().map(|&o| (o, ctx.used_on_opto(o))).collect();
        let mut server_load: HashMap<ServerId, f64> = ctx
            .servers
            .iter()
            .map(|&s| (s, ctx.used_on_server(s).cpu))
            .collect();
        let mut placed: Vec<HostLocation> = Vec::with_capacity(chain.vnfs.len());
        for (i, vnf) in chain.vnfs.iter().enumerate() {
            // Capacity-feasible candidates, optical first, id order.
            let mut candidates: Vec<HostLocation> = opto
                .iter()
                .filter(|&&o| {
                    let cap = ctx.dc.opto_capacity(o).expect("opto candidate");
                    vnf.demand.fits_in(&cap, &opto_load[&o])
                })
                .map(|&o| HostLocation::OptoRouter(o))
                .collect();
            candidates.extend(ctx.servers.iter().map(|&s| HostLocation::Server(s)));
            if candidates.is_empty() {
                return Err(if ctx.servers.is_empty() {
                    PlacementError::NoElectronicHost
                } else {
                    PlacementError::NoCapacity { chain_position: i }
                });
            }
            let fits_some_opto = opto.iter().any(|&o| {
                let cap = ctx.dc.opto_capacity(o).expect("opto candidate");
                vnf.fits_optoelectronic(&cap)
            });
            // Prune against every rule binding stage `i` to placed stages;
            // remember the first rule that empties the set.
            let mut eliminated_by: Option<PlacementRule> = None;
            for rule in &chain.rules {
                let next: Vec<HostLocation> = candidates
                    .iter()
                    .copied()
                    .filter(|&h| rule_admits(rule, ctx.dc, &placed, i, h))
                    .collect();
                if next.is_empty() && !candidates.is_empty() {
                    eliminated_by = Some(*rule);
                    candidates = next;
                    break;
                }
                candidates = next;
            }
            if candidates.is_empty() {
                let rule = eliminated_by.expect("rules emptied a nonempty set");
                return Err(PlacementError::RuleUnsatisfiable {
                    chain_position: i,
                    rule,
                });
            }
            let best = candidates
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ca = Self::marginal_cost(
                        vnf,
                        a,
                        &placed,
                        fits_some_opto,
                        &server_load,
                        chain.bandwidth_gbps,
                    );
                    let cb = Self::marginal_cost(
                        vnf,
                        b,
                        &placed,
                        fits_some_opto,
                        &server_load,
                        chain.bandwidth_gbps,
                    );
                    ca.total_cmp(&cb)
                        .then_with(|| host_order(a).cmp(&host_order(b)))
                })
                .expect("candidates non-empty");
            match best {
                HostLocation::OptoRouter(o) => {
                    let e = opto_load.get_mut(&o).expect("tracked");
                    *e = e.plus(&vnf.demand);
                }
                HostLocation::Server(s) => {
                    *server_load.entry(s).or_insert(0.0) += vnf.demand.cpu;
                }
            }
            placed.push(best);
        }
        debug_assert!(chain.violated_rule(ctx.dc, &placed).is_none());
        Ok(placed)
    }
}

/// Total order on hosts for deterministic tie-breaking: optical routers
/// before servers, then ascending id.
fn host_order(h: HostLocation) -> (u8, usize) {
    match h {
        HostLocation::OptoRouter(o) => (0, o.index()),
        HostLocation::Server(s) => (1, s.index()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_core::construction::{AlConstruct, PaperGreedy};
    use alvc_core::OpsAvailability;
    use alvc_nfv::{VnfSpec, VnfType};
    use alvc_topology::{AlvcTopologyBuilder, VmId};

    fn setup() -> (DataCenter, alvc_core::AbstractionLayer) {
        let dc = AlvcTopologyBuilder::new()
            .racks(4)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(8)
            .opto_fraction(0.5)
            .seed(5)
            .build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let al = PaperGreedy::new()
            .construct(&dc, &vms, &OpsAvailability::all())
            .unwrap();
        (dc, al)
    }

    fn ctx<'a>(
        dc: &'a DataCenter,
        al: &'a alvc_core::AbstractionLayer,
        servers: &'a [ServerId],
        opto_used: &'a HashMap<OpsId, ResourceDemand>,
        server_used: &'a HashMap<ServerId, ResourceDemand>,
    ) -> PlacementContext<'a> {
        PlacementContext {
            dc,
            al,
            opto_used,
            server_used,
            servers,
        }
    }

    #[test]
    fn rule_free_chain_prefers_optical() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = ctx(&dc, &al, &servers, &ou, &su);
        let chain = ChainSpec::builder("light")
            .linear(vec![VnfSpec::of(VnfType::Firewall); 3])
            .ingress(VmId(0))
            .egress(VmId(1))
            .build()
            .unwrap();
        let hosts = ConstraintAwarePlacer::new().place(&ctx, &chain).unwrap();
        assert!(hosts
            .iter()
            .all(|h| matches!(h, HostLocation::OptoRouter(_))));
    }

    #[test]
    fn anti_affinity_separates_hosts() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = ctx(&dc, &al, &servers, &ou, &su);
        let mut b = ChainSpec::builder("aa");
        let x = b.stage(VnfSpec::of(VnfType::Firewall));
        let y = b.stage(VnfSpec::of(VnfType::Firewall));
        b.dependency(x, y);
        let chain = b
            .ingress(VmId(0))
            .egress(VmId(1))
            .anti_affine(x, y)
            .build()
            .unwrap();
        let hosts = ConstraintAwarePlacer::new().place(&ctx, &chain).unwrap();
        assert_ne!(hosts[0], hosts[1]);
        assert!(chain.violated_rule(&dc, &hosts).is_none());
    }

    #[test]
    fn colocate_shares_host_and_conflict_is_unsatisfiable() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = ctx(&dc, &al, &servers, &ou, &su);
        let mut b = ChainSpec::builder("co");
        let x = b.stage(VnfSpec::of(VnfType::Firewall));
        let y = b.stage(VnfSpec::of(VnfType::Nat));
        b.dependency(x, y);
        let chain = b
            .ingress(VmId(0))
            .egress(VmId(1))
            .colocate(x, y)
            .build()
            .unwrap();
        let hosts = ConstraintAwarePlacer::new().place(&ctx, &chain).unwrap();
        assert_eq!(hosts[0], hosts[1]);
    }

    #[test]
    fn pin_to_missing_pod_reports_the_rule() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = ctx(&dc, &al, &servers, &ou, &su);
        let bogus = PodId::from(dc.pod_count() + 7);
        let mut b = ChainSpec::builder("pin");
        let x = b.stage(VnfSpec::of(VnfType::Firewall));
        let chain = b
            .ingress(VmId(0))
            .egress(VmId(1))
            .pin_to_pod(x, bogus)
            .build()
            .unwrap();
        let err = ConstraintAwarePlacer::new()
            .place(&ctx, &chain)
            .unwrap_err();
        assert!(matches!(
            err,
            PlacementError::RuleUnsatisfiable {
                chain_position: 0,
                rule: PlacementRule::PinToPod { .. }
            }
        ));
    }

    #[test]
    fn heavy_vnfs_fall_back_to_servers() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = ctx(&dc, &al, &servers, &ou, &su);
        let chain = ChainSpec::builder("heavy")
            .linear([VnfSpec::of(VnfType::VideoTranscoder)])
            .ingress(VmId(0))
            .egress(VmId(1))
            .build()
            .unwrap();
        let hosts = ConstraintAwarePlacer::new().place(&ctx, &chain).unwrap();
        assert!(matches!(hosts[0], HostLocation::Server(_)));
    }

    #[test]
    fn placement_is_deterministic() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = ctx(&dc, &al, &servers, &ou, &su);
        let chain = fig5_mixed();
        let a = ConstraintAwarePlacer::new().place(&ctx, &chain).unwrap();
        let b = ConstraintAwarePlacer::new().place(&ctx, &chain).unwrap();
        assert_eq!(a, b);
    }

    fn fig5_mixed() -> ChainSpec {
        ChainSpec::builder("mixed")
            .linear([
                VnfSpec::of(VnfType::Firewall),
                VnfSpec::of(VnfType::VideoTranscoder),
                VnfSpec::of(VnfType::Nat),
            ])
            .ingress(VmId(0))
            .egress(VmId(1))
            .build()
            .unwrap()
    }
}
