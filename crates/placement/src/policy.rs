//! The [`PlacementPolicy`] trait: multi-resource scored placement layered
//! over [`VnfPlacer`].
//!
//! Every placement strategy produces a host per VNF; a *policy*
//! additionally prices the whole assignment with a [`PlacementScore`] over
//! four resource dimensions — O/E/O conversions, AL spill (light VNFs that
//! leaked into the electronic domain), electronic CPU makespan, and the
//! bandwidth dragged through O/E/O dips. One scalar [`PlacementScore::cost`]
//! makes assignments comparable across strategies, and is what the bounded
//! local search in [`crate::refine()`](fn@crate::refine) descends on.

use std::collections::HashMap;

use alvc_nfv::{
    ChainSpec, ElectronicOnlyPlacer, HostLocation, PlacementContext, PlacementError, VnfPlacer,
};
use alvc_topology::{Domain, OpsId, ServerId};

use crate::constrained::ConstraintAwarePlacer;
use crate::cost_driven::CostDrivenPlacer;
use crate::estimate::estimated_oeo;
use crate::optical_first::OpticalFirstPlacer;

/// Cost weight of one O/E/O conversion (the paper's headline metric).
pub const W_OEO: f64 = 10.0;
/// Cost weight of one spilled light VNF (optical capacity left unused
/// while a light VNF burns a conversion-prone electronic slot).
pub const W_SPILL: f64 = 4.0;
/// Cost weight of the peak per-server CPU load (load balance).
pub const W_BALANCE: f64 = 1.0;
/// Cost weight per Gb/s dragged through O/E/O dips (each conversion takes
/// the flow down and back up an access link).
pub const W_BANDWIDTH: f64 = 0.5;

/// Multi-resource quality of one host assignment (lower is better on every
/// axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementScore {
    /// Estimated O/E/O conversions ([`estimated_oeo`]).
    pub oeo_conversions: usize,
    /// Light VNFs placed electronically although an (empty) optoelectronic
    /// router of the AL could host them — capacity the assignment spilled.
    pub al_spill: usize,
    /// Peak per-server CPU after the assignment commits (electronic
    /// makespan), including usage already in the ledger.
    pub peak_server_cpu: f64,
    /// Bandwidth crossing O/E/O boundaries: `2 × conversions × bandwidth`
    /// (one dip down, one back up per conversion).
    pub oeo_bandwidth_gbps: f64,
}

impl PlacementScore {
    /// The weighted scalar cost the refinement pass descends on.
    pub fn cost(&self) -> f64 {
        W_OEO * self.oeo_conversions as f64
            + W_SPILL * self.al_spill as f64
            + W_BALANCE * self.peak_server_cpu
            + W_BANDWIDTH * self.oeo_bandwidth_gbps
    }
}

/// Scores `hosts` (one per VNF of `chain`) against `ctx`: the shared
/// multi-resource scoring function every [`PlacementPolicy`] defaults to.
pub fn score_assignment(
    ctx: &PlacementContext<'_>,
    chain: &ChainSpec,
    hosts: &[HostLocation],
) -> PlacementScore {
    let oeo = estimated_oeo(hosts);
    let opto = ctx.opto_candidates();
    let al_spill = chain
        .vnfs
        .iter()
        .zip(hosts)
        .filter(|(v, h)| {
            h.domain() == Domain::Electronic
                && opto.iter().any(|&o| {
                    let cap = ctx.dc.opto_capacity(o).expect("opto candidate");
                    v.fits_optoelectronic(&cap)
                })
        })
        .count();
    let mut server_cpu: HashMap<ServerId, f64> = ctx
        .servers
        .iter()
        .map(|&s| (s, ctx.used_on_server(s).cpu))
        .collect();
    for (v, h) in chain.vnfs.iter().zip(hosts) {
        if let HostLocation::Server(s) = h {
            *server_cpu.entry(*s).or_insert(0.0) += v.demand.cpu;
        }
    }
    let peak_server_cpu = server_cpu.values().copied().fold(0.0, f64::max);
    PlacementScore {
        oeo_conversions: oeo,
        al_spill,
        peak_server_cpu,
        oeo_bandwidth_gbps: 2.0 * oeo as f64 * chain.bandwidth_gbps,
    }
}

/// A placement strategy that also prices its assignments: the scored
/// surface over [`VnfPlacer`].
///
/// The default methods delegate to [`score_assignment`], so implementing
/// the policy for an existing placer is a one-line opt-in; strategies with
/// a private cost model can override [`PlacementPolicy::score`].
pub trait PlacementPolicy: VnfPlacer {
    /// Prices an assignment produced by any strategy under this policy's
    /// cost model.
    fn score(
        &self,
        ctx: &PlacementContext<'_>,
        chain: &ChainSpec,
        hosts: &[HostLocation],
    ) -> PlacementScore {
        score_assignment(ctx, chain, hosts)
    }

    /// Places the chain and prices the result in one call.
    ///
    /// # Errors
    ///
    /// Whatever [`VnfPlacer::place`] returns.
    fn place_scored(
        &self,
        ctx: &PlacementContext<'_>,
        chain: &ChainSpec,
    ) -> Result<(Vec<HostLocation>, PlacementScore), PlacementError> {
        let hosts = self.place(ctx, chain)?;
        let score = self.score(ctx, chain, &hosts);
        Ok((hosts, score))
    }
}

impl PlacementPolicy for OpticalFirstPlacer {}
impl PlacementPolicy for CostDrivenPlacer {}
impl PlacementPolicy for ElectronicOnlyPlacer {}
impl PlacementPolicy for ConstraintAwarePlacer {}

/// Checks opto-router capacity for a whole assignment at once: the demand
/// the assignment adds to each router must fit on top of the context's
/// committed usage. Shared by the constraint-aware placer (for swap
/// feasibility) and the refinement pass.
pub(crate) fn assignment_fits_opto(
    ctx: &PlacementContext<'_>,
    chain: &ChainSpec,
    hosts: &[HostLocation],
) -> bool {
    let mut added: HashMap<OpsId, alvc_nfv::ResourceDemand> = HashMap::new();
    for (v, h) in chain.vnfs.iter().zip(hosts) {
        if let HostLocation::OptoRouter(o) = h {
            let e = added.entry(*o).or_default();
            *e = e.plus(&v.demand);
        }
    }
    added.iter().all(|(&o, d)| match ctx.dc.opto_capacity(o) {
        Some(cap) => d.fits_in(&cap, &ctx.used_on_opto(o)),
        None => false,
    })
}
