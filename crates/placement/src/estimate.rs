//! Routing-free O/E/O estimation for host assignments.

use alvc_nfv::HostLocation;
use alvc_topology::Domain;

/// The domain sequence a flow visits at its VNFs, in chain order.
pub fn domain_sequence(hosts: &[HostLocation]) -> Vec<Domain> {
    hosts.iter().map(|h| h.domain()).collect()
}

/// Estimated O/E/O conversions of a host assignment: the number of maximal
/// electronic runs among the VNF hosts.
///
/// The model matches Fig. 8: the flow is steered through the optical core;
/// each maximal group of consecutive electronic VNFs forces one dip out of
/// the core and back (one O/E/O conversion), while consecutive electronic
/// VNFs share a dip. Optical VNFs cost nothing.
///
/// The estimate assumes electronic VNFs of one run are reachable without
/// re-entering the core between them — true when they land on the same
/// server, otherwise the routed path (which the orchestrator computes) may
/// dip more often; tests cross-validate the two.
///
/// # Example
///
/// ```
/// use alvc_nfv::HostLocation;
/// use alvc_placement::estimate::estimated_oeo;
/// use alvc_topology::{OpsId, ServerId};
///
/// let hosts = [
///     HostLocation::OptoRouter(OpsId(0)),   // optical
///     HostLocation::Server(ServerId(0)),    // electronic ┐ one run
///     HostLocation::Server(ServerId(0)),    // electronic ┘
///     HostLocation::OptoRouter(OpsId(1)),   // optical
/// ];
/// assert_eq!(estimated_oeo(&hosts), 1);
/// ```
pub fn estimated_oeo(hosts: &[HostLocation]) -> usize {
    let mut runs = 0;
    let mut in_run = false;
    for h in hosts {
        match h.domain() {
            Domain::Electronic => {
                if !in_run {
                    runs += 1;
                    in_run = true;
                }
            }
            Domain::Optical => in_run = false,
        }
    }
    runs
}

/// Number of VNFs placed in each domain: `(electronic, optical)`.
pub fn domain_split(hosts: &[HostLocation]) -> (usize, usize) {
    let e = hosts
        .iter()
        .filter(|h| h.domain() == Domain::Electronic)
        .count();
    (e, hosts.len() - e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_topology::{OpsId, ServerId};

    fn s(i: usize) -> HostLocation {
        HostLocation::Server(ServerId(i))
    }
    fn o(i: usize) -> HostLocation {
        HostLocation::OptoRouter(OpsId(i))
    }

    #[test]
    fn all_optical_is_zero() {
        assert_eq!(estimated_oeo(&[o(0), o(1), o(2)]), 0);
    }

    #[test]
    fn all_electronic_is_one_run() {
        assert_eq!(estimated_oeo(&[s(0), s(1), s(2)]), 1);
    }

    #[test]
    fn fig8_before_and_after() {
        // Fig. 8 "before": VNF1 optical, VNF2 electronic, VNF3 electronic
        // but separated — two conversions.
        assert_eq!(estimated_oeo(&[s(0), o(0), s(1)]), 2);
        // "after": moving one electronic VNF optical saves a conversion.
        assert_eq!(estimated_oeo(&[o(1), o(0), s(1)]), 1);
        assert_eq!(estimated_oeo(&[o(1), o(0), o(2)]), 0);
    }

    #[test]
    fn empty_chain_zero() {
        assert_eq!(estimated_oeo(&[]), 0);
        assert_eq!(domain_split(&[]), (0, 0));
    }

    #[test]
    fn adjacent_electronic_share_a_run() {
        assert_eq!(estimated_oeo(&[o(0), s(0), s(1), o(1), s(2)]), 2);
    }

    #[test]
    fn split_counts() {
        assert_eq!(domain_split(&[s(0), o(0), s(1)]), (2, 1));
        assert_eq!(
            domain_sequence(&[s(0), o(0)]),
            vec![Domain::Electronic, Domain::Optical]
        );
    }
}
