//! The paper's optical-first placement rule (§IV.D).

use std::collections::HashMap;

use alvc_nfv::ResourceDemand;
use alvc_nfv::{ChainSpec, HostLocation, PlacementContext, PlacementError, VnfPlacer};
use alvc_topology::{OpsId, ServerId};

/// "We propose to move VNFs to the optical domain": each VNF goes to an
/// optoelectronic router of the slice's AL whenever one has capacity,
/// otherwise to a server.
///
/// Routers are chosen best-fit (tightest remaining CPU after placement) so
/// light VNFs pack densely and capacity is preserved for later chains;
/// servers are chosen least-loaded-first like the electronic baseline.
///
/// # Example
///
/// ```
/// // See the `alvc-placement` integration tests; constructing a context
/// // requires a built topology and abstraction layer.
/// use alvc_placement::OpticalFirstPlacer;
/// use alvc_nfv::VnfPlacer;
/// assert_eq!(OpticalFirstPlacer::new().name(), "optical-first");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OpticalFirstPlacer {
    _priv: (),
}

impl OpticalFirstPlacer {
    /// Creates the placer.
    pub fn new() -> Self {
        OpticalFirstPlacer::default()
    }
}

/// Shared helper: pick the least-CPU-loaded server.
pub(crate) fn least_loaded_server(
    servers: &[ServerId],
    load: &HashMap<ServerId, f64>,
) -> Option<ServerId> {
    servers
        .iter()
        .min_by(|a, b| {
            let la = load.get(a).copied().unwrap_or(0.0);
            let lb = load.get(b).copied().unwrap_or(0.0);
            la.total_cmp(&lb).then(a.cmp(b))
        })
        .copied()
}

impl VnfPlacer for OpticalFirstPlacer {
    fn name(&self) -> &'static str {
        "optical-first"
    }

    fn place(
        &self,
        ctx: &PlacementContext<'_>,
        chain: &ChainSpec,
    ) -> Result<Vec<HostLocation>, PlacementError> {
        let opto = ctx.opto_candidates();
        // Local view of usage accumulated during this placement.
        let mut opto_used: HashMap<OpsId, ResourceDemand> =
            opto.iter().map(|&o| (o, ctx.used_on_opto(o))).collect();
        let mut server_load: HashMap<ServerId, f64> = ctx
            .servers
            .iter()
            .map(|&s| (s, ctx.used_on_server(s).cpu))
            .collect();

        let mut hosts = Vec::with_capacity(chain.vnfs.len());
        for (i, spec) in chain.vnfs.iter().enumerate() {
            // Best-fit optoelectronic router: feasible with minimal
            // remaining CPU after placement.
            let best_opto = opto
                .iter()
                .filter(|&&o| {
                    let cap = ctx.dc.opto_capacity(o).expect("opto candidate");
                    spec.demand.fits_in(&cap, &opto_used[&o])
                })
                .min_by(|&&a, &&b| {
                    let rem = |o: OpsId| {
                        ctx.dc.opto_capacity(o).expect("opto candidate").cpu
                            - opto_used[&o].cpu
                            - spec.demand.cpu
                    };
                    rem(a).total_cmp(&rem(b)).then(a.cmp(&b))
                })
                .copied();
            if let Some(o) = best_opto {
                let e = opto_used.get_mut(&o).expect("tracked");
                *e = e.plus(&spec.demand);
                hosts.push(HostLocation::OptoRouter(o));
                continue;
            }
            // Fall back to the electronic domain.
            let Some(server) = least_loaded_server(ctx.servers, &server_load) else {
                return Err(if ctx.servers.is_empty() {
                    PlacementError::NoElectronicHost
                } else {
                    PlacementError::NoCapacity { chain_position: i }
                });
            };
            *server_load.entry(server).or_insert(0.0) += spec.demand.cpu;
            hosts.push(HostLocation::Server(server));
        }
        Ok(hosts)
    }
}
