//! Conversion-aware placement under scarce optical capacity.

use std::collections::HashMap;

use alvc_nfv::ResourceDemand;
use alvc_nfv::{ChainSpec, HostLocation, PlacementContext, PlacementError, VnfPlacer};
use alvc_topology::{OpsId, ServerId};

use crate::estimate::estimated_oeo;
use crate::optical_first::least_loaded_server;

/// Places VNFs to minimize *O/E/O conversions*, not merely to maximize the
/// number of optical VNFs.
///
/// Key observation: conversions equal the number of maximal electronic
/// runs. Moving a single VNF out of the middle of a three-VNF electronic
/// run to the optical domain *adds* a conversion boundary (the run splits
/// in two); moving a whole run, or the VNF at a run's edge, removes or
/// shrinks runs. When optoelectronic capacity cannot hold every light VNF,
/// [`OpticalFirstPlacer`](crate::OpticalFirstPlacer) wastes capacity on
/// splits, while this strategy greedily applies the capacity where it
/// lowers the estimated conversion count the most.
///
/// Algorithm: start from the all-feasible-optical assignment *demand*
/// (ignoring capacity), then while capacity is violated, evict the optical
/// VNF whose return to the electronic domain increases
/// [`estimated_oeo`] the least (ties: largest CPU demand first, then chain
/// position). Finally map optical VNFs to concrete routers best-fit;
/// eviction continues if packing fails.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostDrivenPlacer {
    _priv: (),
}

impl CostDrivenPlacer {
    /// Creates the placer.
    pub fn new() -> Self {
        CostDrivenPlacer::default()
    }
}

/// Attempts to bin-pack the optical VNFs (by index) onto the candidate
/// routers best-fit-decreasing; returns the router per VNF index or `None`
/// if packing fails.
fn pack_optical(
    ctx: &PlacementContext<'_>,
    chain: &ChainSpec,
    optical: &[usize],
) -> Option<HashMap<usize, OpsId>> {
    let opto = ctx.opto_candidates();
    let mut used: HashMap<OpsId, ResourceDemand> =
        opto.iter().map(|&o| (o, ctx.used_on_opto(o))).collect();
    // Largest CPU demand first for better packing.
    let mut order: Vec<usize> = optical.to_vec();
    order.sort_by(|&a, &b| {
        chain.vnfs[b]
            .demand
            .cpu
            .total_cmp(&chain.vnfs[a].demand.cpu)
            .then(a.cmp(&b))
    });
    let mut assignment = HashMap::new();
    for i in order {
        let demand = chain.vnfs[i].demand;
        let best = opto
            .iter()
            .filter(|&&o| {
                let cap = ctx.dc.opto_capacity(o).expect("opto candidate");
                demand.fits_in(&cap, &used[&o])
            })
            .min_by(|&&a, &&b| {
                let rem = |o: OpsId| {
                    ctx.dc.opto_capacity(o).expect("candidate").cpu - used[&o].cpu - demand.cpu
                };
                rem(a).total_cmp(&rem(b)).then(a.cmp(&b))
            })
            .copied()?;
        let e = used.get_mut(&best).expect("tracked");
        *e = e.plus(&demand);
        assignment.insert(i, best);
    }
    Some(assignment)
}

impl VnfPlacer for CostDrivenPlacer {
    fn name(&self) -> &'static str {
        "cost-driven"
    }

    fn place(
        &self,
        ctx: &PlacementContext<'_>,
        chain: &ChainSpec,
    ) -> Result<Vec<HostLocation>, PlacementError> {
        let n = chain.vnfs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        // Which VNFs *could* go optical at all (fit an empty router of some
        // candidate)?
        let opto = ctx.opto_candidates();
        let feasible: Vec<bool> = chain
            .vnfs
            .iter()
            .map(|v| {
                opto.iter().any(|&o| {
                    let cap = ctx.dc.opto_capacity(o).expect("candidate");
                    v.demand.fits_in(&cap, &ResourceDemand::default())
                })
            })
            .collect();
        let mut optical: Vec<usize> = (0..n).filter(|&i| feasible[i]).collect();

        // Evict until the optical set packs onto the routers.
        let assignment = loop {
            if let Some(a) = pack_optical(ctx, chain, &optical) {
                break a;
            }
            // Choose the eviction with the least conversion increase.
            let domains_with = |set: &[usize]| -> Vec<HostLocation> {
                (0..n)
                    .map(|i| {
                        if set.contains(&i) {
                            HostLocation::OptoRouter(OpsId(0)) // domain only
                        } else {
                            HostLocation::Server(ServerId(0))
                        }
                    })
                    .collect()
            };
            let (pos, _) = optical
                .iter()
                .enumerate()
                .map(|(pos, &i)| {
                    let mut reduced = optical.clone();
                    reduced.remove(pos);
                    let cost = estimated_oeo(&domains_with(&reduced));
                    // Prefer: smaller resulting cost, then evict the
                    // biggest CPU hog, then earliest position.
                    (
                        pos,
                        (
                            cost,
                            std::cmp::Reverse((chain.vnfs[i].demand.cpu * 1000.0).round() as u64),
                            i,
                        ),
                    )
                })
                .min_by_key(|(_, key)| *key)
                .expect("optical set shrinks while packing fails");
            optical.remove(pos);
        };

        // Materialize: optical VNFs on their routers, the rest on servers.
        let mut server_load: HashMap<ServerId, f64> = ctx
            .servers
            .iter()
            .map(|&s| (s, ctx.used_on_server(s).cpu))
            .collect();
        let mut hosts = Vec::with_capacity(n);
        for (i, spec) in chain.vnfs.iter().enumerate() {
            if let Some(&o) = assignment.get(&i) {
                hosts.push(HostLocation::OptoRouter(o));
            } else {
                let Some(server) = least_loaded_server(ctx.servers, &server_load) else {
                    return Err(if ctx.servers.is_empty() {
                        PlacementError::NoElectronicHost
                    } else {
                        PlacementError::NoCapacity { chain_position: i }
                    });
                };
                *server_load.entry(server).or_insert(0.0) += spec.demand.cpu;
                hosts.push(HostLocation::Server(server));
            }
        }
        Ok(hosts)
    }
}
