//! VNF placement strategies over the hybrid optical/electronic domain
//! (§IV.D of the AL-VC paper, Fig. 8).
//!
//! "In order to avoid flow traversing back and forth, we propose to move
//! VNFs to the optical domain … Since the optoelectronic routers have
//! limited capabilities, therefore, VNFs only with low resource demands
//! need to be implemented in this domain."
//!
//! Strategies (all implementing [`alvc_nfv::VnfPlacer`]):
//!
//! * [`OpticalFirstPlacer`] — the paper's rule: place each VNF on an
//!   optoelectronic router of the slice whenever it fits, otherwise on a
//!   server;
//! * [`CostDrivenPlacer`] — when optical capacity is scarce, spends it on
//!   the VNFs whose move actually removes an O/E/O conversion (breaking up
//!   electronic runs is worthless unless a whole run is eliminated);
//! * [`alvc_nfv::ElectronicOnlyPlacer`] — the "before" baseline (all VNFs
//!   electronic), defined next to the trait;
//! * [`ConstraintAwarePlacer`] — enforces the chain's typed
//!   [`alvc_nfv::PlacementRule`]s (anti-affinity, affinity, colocation,
//!   pod pinning) during host selection, failing with
//!   [`alvc_nfv::PlacementError::RuleUnsatisfiable`] when a rule empties a
//!   candidate set.
//!
//! The [`PlacementPolicy`] trait layers a multi-resource
//! [`PlacementScore`] (O/E/O conversions, AL spill, server makespan,
//! converted bandwidth) over every strategy, and [`refine::refine`] runs a
//! bounded local search that descends on that score and reports the
//! greedy-vs-refined optimality gap.
//!
//! [`estimate::estimated_oeo`] predicts a host assignment's conversion
//! count without routing, which the experiments use for quick sweeps and
//! which the integration tests cross-validate against routed paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library crates report progress through alvc-telemetry events, never the
// process's stdout/stderr (enforced under cargo clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod constrained;
pub mod cost_driven;
pub mod estimate;
pub mod optical_first;
pub mod policy;
pub mod refine;

pub use constrained::ConstraintAwarePlacer;
pub use cost_driven::CostDrivenPlacer;
pub use optical_first::OpticalFirstPlacer;
pub use policy::{score_assignment, PlacementPolicy, PlacementScore};
pub use refine::{refine, RefineConfig, RefineOutcome};
