//! Bounded local-search refinement over a finished placement.
//!
//! Greedy placers commit one stage at a time and never revisit a choice, so
//! they can strand a chain in a local optimum (e.g. a heavy middle VNF
//! splitting an otherwise all-optical chain into two conversion runs).
//! [`refine`] performs steepest-descent single-VNF moves over the full
//! candidate space — bounded by [`RefineConfig`] so worst-case work stays
//! `O(rounds × vnfs × hosts)` — and reports the greedy-vs-refined
//! *optimality gap* ([`RefineOutcome::gap`]).
//!
//! Guarantees:
//!
//! - **Never worsens.** Only strictly improving moves are applied; the
//!   refined cost is `≤` the initial cost by construction.
//! - **Stays feasible.** Every candidate move is checked against
//!   optoelectronic capacities *and* the chain's [`PlacementRule`]s before
//!   it is scored, so a rule-clean input stays rule-clean.
//! - **Deterministic.** Candidate enumeration is in id order and ties keep
//!   the earlier candidate, so equal inputs yield equal outputs.
//!
//! [`PlacementRule`]: alvc_nfv::PlacementRule

use alvc_nfv::{ChainSpec, HostLocation, PlacementContext};

use crate::policy::{assignment_fits_opto, score_assignment, PlacementScore};

/// Bounds on the local search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineConfig {
    /// Maximum full passes over the chain (a pass tries every VNF).
    pub max_rounds: usize,
    /// Maximum improving moves applied in total.
    pub max_moves: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            max_rounds: 4,
            max_moves: 32,
        }
    }
}

/// What the refinement pass did and how much it helped.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOutcome {
    /// The (possibly improved) assignment, one host per VNF.
    pub hosts: Vec<HostLocation>,
    /// Score of the assignment as handed in.
    pub initial: PlacementScore,
    /// Score after refinement (cost never exceeds the initial cost).
    pub refined: PlacementScore,
    /// Improving moves applied.
    pub moves: usize,
    /// Candidate assignments scored (search effort).
    pub evaluated: usize,
}

impl RefineOutcome {
    /// Relative greedy-vs-refined optimality gap in `[0, 1]`:
    /// `(initial − refined) / initial` cost, or `0` for a zero-cost input.
    pub fn gap(&self) -> f64 {
        let initial = self.initial.cost();
        if initial <= 0.0 {
            return 0.0;
        }
        (initial - self.refined.cost()) / initial
    }
}

/// Refines `hosts` (a finished, feasible assignment for `chain`) by bounded
/// steepest-descent single-VNF moves. See the module docs for guarantees.
pub fn refine(
    ctx: &PlacementContext<'_>,
    chain: &ChainSpec,
    hosts: Vec<HostLocation>,
    cfg: RefineConfig,
) -> RefineOutcome {
    let initial = score_assignment(ctx, chain, &hosts);
    let opto = ctx.opto_candidates();
    let mut current = hosts;
    let mut cost = initial.cost();
    let mut moves = 0;
    let mut evaluated = 0;
    'rounds: for _ in 0..cfg.max_rounds {
        let mut improved_this_round = false;
        for i in 0..current.len() {
            if moves >= cfg.max_moves {
                break 'rounds;
            }
            // Steepest descent: best feasible alternative host for VNF i.
            let mut best: Option<(f64, HostLocation)> = None;
            let candidates = opto
                .iter()
                .map(|&o| HostLocation::OptoRouter(o))
                .chain(ctx.servers.iter().map(|&s| HostLocation::Server(s)));
            for cand in candidates {
                if cand == current[i] {
                    continue;
                }
                let mut trial = current.clone();
                trial[i] = cand;
                if !assignment_fits_opto(ctx, chain, &trial)
                    || chain.violated_rule(ctx.dc, &trial).is_some()
                {
                    continue;
                }
                evaluated += 1;
                let c = score_assignment(ctx, chain, &trial).cost();
                if c < cost && best.is_none_or(|(bc, _)| c < bc) {
                    best = Some((c, cand));
                }
            }
            if let Some((c, cand)) = best {
                current[i] = cand;
                cost = c;
                moves += 1;
                improved_this_round = true;
            }
        }
        if !improved_this_round {
            break;
        }
    }
    let refined = score_assignment(ctx, chain, &current);
    RefineOutcome {
        hosts: current,
        initial,
        refined,
        moves,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_core::construction::{AlConstruct, PaperGreedy};
    use alvc_core::OpsAvailability;
    use alvc_nfv::{ElectronicOnlyPlacer, VnfPlacer, VnfSpec, VnfType};
    use alvc_topology::{AlvcTopologyBuilder, DataCenter, VmId};
    use std::collections::HashMap;

    fn setup() -> (DataCenter, alvc_core::AbstractionLayer) {
        let dc = AlvcTopologyBuilder::new()
            .racks(4)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(8)
            .opto_fraction(0.5)
            .seed(5)
            .build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let al = PaperGreedy::new()
            .construct(&dc, &vms, &OpsAvailability::all())
            .unwrap();
        (dc, al)
    }

    #[test]
    fn refine_improves_electronic_only_baseline() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &ou,
            server_used: &su,
            servers: &servers,
        };
        let chain = ChainSpec::builder("light")
            .linear(vec![VnfSpec::of(VnfType::Firewall); 3])
            .ingress(VmId(0))
            .egress(VmId(1))
            .build()
            .unwrap();
        // The all-electronic baseline leaves plenty on the table for a
        // light chain: refinement should pull VNFs into the optical domain.
        let hosts = ElectronicOnlyPlacer::new().place(&ctx, &chain).unwrap();
        let out = refine(&ctx, &chain, hosts, RefineConfig::default());
        assert!(out.refined.cost() < out.initial.cost());
        assert!(out.gap() > 0.0);
        assert!(out.moves >= 1);
        assert!(chain.violated_rule(&dc, &out.hosts).is_none());
    }

    #[test]
    fn refine_never_worsens_and_is_deterministic() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &ou,
            server_used: &su,
            servers: &servers,
        };
        let chain = ChainSpec::builder("mixed")
            .linear([
                VnfSpec::of(VnfType::Firewall),
                VnfSpec::of(VnfType::VideoTranscoder),
                VnfSpec::of(VnfType::Nat),
            ])
            .ingress(VmId(0))
            .egress(VmId(1))
            .build()
            .unwrap();
        let hosts = ElectronicOnlyPlacer::new().place(&ctx, &chain).unwrap();
        let a = refine(&ctx, &chain, hosts.clone(), RefineConfig::default());
        let b = refine(&ctx, &chain, hosts, RefineConfig::default());
        assert!(a.refined.cost() <= a.initial.cost());
        assert_eq!(a.hosts, b.hosts);
        assert!(a.gap() >= 0.0);
    }

    #[test]
    fn refine_respects_rules() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &ou,
            server_used: &su,
            servers: &servers,
        };
        let mut b = ChainSpec::builder("ruled");
        let x = b.stage(VnfSpec::of(VnfType::Firewall));
        let y = b.stage(VnfSpec::of(VnfType::Nat));
        b.dependency(x, y);
        let chain = b
            .ingress(VmId(0))
            .egress(VmId(1))
            .anti_affine(x, y)
            .build()
            .unwrap();
        let hosts = ElectronicOnlyPlacer::new().place(&ctx, &chain).unwrap();
        assert!(chain.violated_rule(&dc, &hosts).is_none());
        let out = refine(&ctx, &chain, hosts, RefineConfig::default());
        assert!(chain.violated_rule(&dc, &out.hosts).is_none());
        assert!(out.refined.cost() <= out.initial.cost());
    }

    #[test]
    fn zero_budget_is_a_no_op() {
        let (dc, al) = setup();
        let servers: Vec<_> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &ou,
            server_used: &su,
            servers: &servers,
        };
        let chain = ChainSpec::builder("light")
            .linear(vec![VnfSpec::of(VnfType::Firewall); 2])
            .ingress(VmId(0))
            .egress(VmId(1))
            .build()
            .unwrap();
        let hosts = ElectronicOnlyPlacer::new().place(&ctx, &chain).unwrap();
        let cfg = RefineConfig {
            max_rounds: 0,
            max_moves: 0,
        };
        let out = refine(&ctx, &chain, hosts.clone(), cfg);
        assert_eq!(out.hosts, hosts);
        assert_eq!(out.moves, 0);
        assert_eq!(out.gap(), 0.0);
    }
}
