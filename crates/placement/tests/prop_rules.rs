//! Property tests for the constraint-aware placement surface:
//!
//! 1. assignments returned by [`ConstraintAwarePlacer`] never violate the
//!    chain's placement rules;
//! 2. the bounded refinement pass never worsens the greedy score and never
//!    introduces a rule violation;
//! 3. a linear chain built through the DAG builder path is bit-identical —
//!    as a spec and as a placement — to the same chain built through the
//!    deprecated positional constructor.

use std::collections::HashMap;

use alvc_core::construction::{AlConstruct, PaperGreedy};
use alvc_core::{AbstractionLayer, OpsAvailability};
use alvc_nfv::{
    ChainSpec, HostLocation, PlacementContext, PlacementError, VnfPlacer, VnfSpec, VnfType,
};
use alvc_placement::{
    refine, ConstraintAwarePlacer, OpticalFirstPlacer, PlacementPolicy, RefineConfig,
};
use alvc_topology::{AlvcTopologyBuilder, DataCenter, OpsInterconnect, ServerId, VmId};
use proptest::prelude::*;

fn dc_for(seed: u64) -> DataCenter {
    AlvcTopologyBuilder::new()
        .racks(4)
        .servers_per_rack(2)
        .vms_per_server(2)
        .ops_count(12)
        .tor_ops_degree(4)
        .opto_fraction(0.5)
        .interconnect(OpsInterconnect::FullMesh)
        .seed(seed)
        .build()
}

fn al_for(dc: &DataCenter) -> AbstractionLayer {
    let vms: Vec<_> = dc.vm_ids().collect();
    PaperGreedy::new()
        .construct(dc, &vms, &OpsAvailability::all())
        .unwrap()
}

fn vnf_of(kind: u8) -> VnfSpec {
    VnfSpec::of(match kind % 5 {
        0 => VnfType::Firewall,
        1 => VnfType::Nat,
        2 => VnfType::LoadBalancer,
        3 => VnfType::Dpi,
        _ => VnfType::VideoTranscoder,
    })
}

/// Builds a linear chain with pair rules derived from `rule_picks`; skips
/// combinations the builder itself rejects (e.g. conflicting rules).
fn ruled_chain(kinds: &[u8], rule_picks: &[(u8, u8, u8)]) -> Option<ChainSpec> {
    let n = kinds.len();
    let mut b = ChainSpec::builder("prop").linear(kinds.iter().map(|&k| vnf_of(k)));
    for &(kind, ra, rb) in rule_picks {
        let (a, bb) = (ra as usize % n, rb as usize % n);
        if a == bb {
            continue;
        }
        b = match kind % 3 {
            0 => b.anti_affine(a, bb),
            1 => b.affine(a, bb),
            _ => b.colocate(a, bb),
        };
    }
    b.ingress(VmId(0)).egress(VmId(1)).build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the constraint-aware placer returns satisfies every rule;
    /// when it errors with `RuleUnsatisfiable` the offending rule really is
    /// one of the chain's rules.
    #[test]
    fn constrained_placements_never_violate_rules(
        seed in 0u64..50,
        kinds in proptest::collection::vec(0u8..5, 1..6),
        rule_picks in proptest::collection::vec((0u8..3, 0u8..8, 0u8..8), 0..4),
    ) {
        let Some(chain) = ruled_chain(&kinds, &rule_picks) else {
            return Ok(());
        };
        let dc = dc_for(seed);
        let al = al_for(&dc);
        let servers: Vec<ServerId> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &ou,
            server_used: &su,
            servers: &servers,
        };
        match ConstraintAwarePlacer::new().place(&ctx, &chain) {
            Ok(hosts) => {
                prop_assert_eq!(hosts.len(), chain.vnfs.len());
                prop_assert!(chain.violated_rule(&dc, &hosts).is_none());
            }
            Err(PlacementError::RuleUnsatisfiable { rule, .. }) => {
                prop_assert!(chain.rules.contains(&rule));
            }
            Err(other) => {
                // Capacity errors are legitimate; rule-clean inputs on this
                // roomy topology should not hit them, but a greedy prefix
                // may corner itself.
                prop_assert!(matches!(
                    other,
                    PlacementError::NoCapacity { .. } | PlacementError::NoElectronicHost
                ));
            }
        }
    }

    /// Refinement never worsens the score, preserves feasibility, and
    /// respects the rules, regardless of which placer produced the input.
    #[test]
    fn refinement_never_worsens(
        seed in 0u64..50,
        kinds in proptest::collection::vec(0u8..5, 1..6),
        rule_picks in proptest::collection::vec((0u8..3, 0u8..8, 0u8..8), 0..3),
        use_constrained in 0u8..2,
    ) {
        let Some(chain) = ruled_chain(&kinds, &rule_picks) else {
            return Ok(());
        };
        let dc = dc_for(seed);
        let al = al_for(&dc);
        let servers: Vec<ServerId> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &ou,
            server_used: &su,
            servers: &servers,
        };
        let use_constrained = use_constrained == 1;
        let placed = if use_constrained {
            ConstraintAwarePlacer::new().place(&ctx, &chain)
        } else {
            OpticalFirstPlacer::new().place(&ctx, &chain)
        };
        let Ok(hosts) = placed else {
            return Ok(());
        };
        if chain.violated_rule(&dc, &hosts).is_some() {
            // The unconstrained greedy may violate rules; refinement's
            // contract only covers rule-clean inputs.
            return Ok(());
        }
        let out = refine(&ctx, &chain, hosts, RefineConfig::default());
        prop_assert!(out.refined.cost() <= out.initial.cost());
        prop_assert!(out.gap() >= 0.0);
        prop_assert!(chain.violated_rule(&dc, &out.hosts).is_none());
        prop_assert_eq!(out.hosts.len(), chain.vnfs.len());
    }

    /// A rule-free linear chain built through the DAG path equals the
    /// deprecated positional constructor bit-for-bit — as a spec and in the
    /// placements every strategy derives from it.
    #[test]
    fn dag_path_matches_legacy_path_bit_identically(
        seed in 0u64..50,
        kinds in proptest::collection::vec(0u8..5, 1..6),
        bw in 1u32..100,
    ) {
        let vnfs: Vec<VnfSpec> = kinds.iter().map(|&k| vnf_of(k)).collect();
        let bw_gbps = f64::from(bw) / 10.0;
        let via_builder = ChainSpec::builder("same")
            .linear(vnfs.clone())
            .ingress(VmId(0))
            .egress(VmId(1))
            .bandwidth_gbps(bw_gbps)
            .build()
            .unwrap();
        #[allow(deprecated)]
        let via_legacy = ChainSpec::new("same", vnfs, VmId(0), VmId(1), bw_gbps);
        prop_assert_eq!(&via_builder, &via_legacy);

        let dc = dc_for(seed);
        let al = al_for(&dc);
        let servers: Vec<ServerId> = dc.server_ids().collect();
        let (ou, su) = (HashMap::new(), HashMap::new());
        let ctx = PlacementContext {
            dc: &dc,
            al: &al,
            opto_used: &ou,
            server_used: &su,
            servers: &servers,
        };
        for placer in [
            &ConstraintAwarePlacer::new() as &dyn VnfPlacer,
            &OpticalFirstPlacer::new(),
        ] {
            let a = placer.place(&ctx, &via_builder);
            let b = placer.place(&ctx, &via_legacy);
            prop_assert_eq!(a, b);
        }
        // The scored surface agrees too.
        if let (Ok((ha, sa)), Ok((hb, sb))) = (
            ConstraintAwarePlacer::new().place_scored(&ctx, &via_builder),
            ConstraintAwarePlacer::new().place_scored(&ctx, &via_legacy),
        ) {
            prop_assert_eq!(ha, hb);
            prop_assert_eq!(sa.cost(), sb.cost());
        }
    }
}

/// Non-property regression: anti-affinity + colocation on disjoint pairs
/// compose.
#[test]
fn mixed_rule_kinds_compose() {
    let dc = dc_for(7);
    let al = al_for(&dc);
    let servers: Vec<ServerId> = dc.server_ids().collect();
    let (ou, su) = (HashMap::new(), HashMap::new());
    let ctx = PlacementContext {
        dc: &dc,
        al: &al,
        opto_used: &ou,
        server_used: &su,
        servers: &servers,
    };
    let chain = ChainSpec::builder("mixed")
        .linear([
            VnfSpec::of(VnfType::Firewall),
            VnfSpec::of(VnfType::Nat),
            VnfSpec::of(VnfType::LoadBalancer),
            VnfSpec::of(VnfType::Dpi),
        ])
        .ingress(VmId(0))
        .egress(VmId(1))
        .anti_affine(0, 1)
        .colocate(2, 3)
        .affine(0, 2)
        .build()
        .unwrap();
    let hosts = ConstraintAwarePlacer::new().place(&ctx, &chain).unwrap();
    assert!(chain.violated_rule(&dc, &hosts).is_none());
    assert_ne!(hosts[0], hosts[1]);
    assert_eq!(hosts[2], hosts[3]);
    let _unused: Vec<HostLocation> = hosts;
}
