//! Cross-strategy placement tests on generated topologies.

use std::collections::HashMap;

use alvc_core::construction::{AlConstruct, PaperGreedy};
use alvc_core::{AbstractionLayer, OpsAvailability};
use alvc_nfv::chain::fig5;
use alvc_nfv::{
    ChainSpec, ElectronicOnlyPlacer, HostLocation, PlacementContext, VnfPlacer, VnfSpec, VnfType,
};
use alvc_placement::estimate::{domain_split, estimated_oeo};
use alvc_placement::{CostDrivenPlacer, OpticalFirstPlacer};
use alvc_topology::{AlvcTopologyBuilder, DataCenter, OptoCapacity, ServerId, VmId};

fn setup(opto_fraction: f64, seed: u64) -> (DataCenter, AbstractionLayer, Vec<ServerId>) {
    let dc = AlvcTopologyBuilder::new()
        .racks(6)
        .servers_per_rack(2)
        .vms_per_server(2)
        .ops_count(10)
        .tor_ops_degree(3)
        .opto_fraction(opto_fraction)
        .seed(seed)
        .build();
    let vms: Vec<_> = dc.vm_ids().collect();
    let al = PaperGreedy::new()
        .construct(&dc, &vms, &OpsAvailability::all())
        .unwrap();
    let servers: Vec<_> = dc.server_ids().collect();
    (dc, al, servers)
}

fn ctx<'a>(
    dc: &'a DataCenter,
    al: &'a AbstractionLayer,
    servers: &'a [ServerId],
    opto_used: &'a HashMap<alvc_topology::OpsId, alvc_nfv::ResourceDemand>,
    server_used: &'a HashMap<ServerId, alvc_nfv::ResourceDemand>,
) -> PlacementContext<'a> {
    PlacementContext {
        dc,
        al,
        opto_used,
        server_used,
        servers,
    }
}

#[test]
fn optical_first_beats_electronic_only_on_conversions() {
    let (dc, al, servers) = setup(1.0, 3);
    let empty_o = HashMap::new();
    let empty_s = HashMap::new();
    let c = ctx(&dc, &al, &servers, &empty_o, &empty_s);
    let chain = fig5::blue(VmId(0), VmId(1)); // secgw, firewall (light), dpi (heavy)
    let electronic = ElectronicOnlyPlacer::new().place(&c, &chain).unwrap();
    let optical = OpticalFirstPlacer::new().place(&c, &chain).unwrap();
    assert!(estimated_oeo(&optical) <= estimated_oeo(&electronic));
    // Light VNFs moved optical, the heavy DPI stayed electronic.
    let (e, o) = domain_split(&optical);
    assert_eq!(o, 2, "secgw and firewall fit optoelectronic routers");
    assert_eq!(e, 1, "dpi exceeds OptoCapacity::small");
}

#[test]
fn heavy_vnfs_never_placed_optically() {
    let (dc, al, servers) = setup(1.0, 4);
    let empty_o = HashMap::new();
    let empty_s = HashMap::new();
    let c = ctx(&dc, &al, &servers, &empty_o, &empty_s);
    let chain = ChainSpec::builder("heavy")
        .linear([
            VnfSpec::of(VnfType::Dpi),
            VnfSpec::of(VnfType::VideoTranscoder),
            VnfSpec::of(VnfType::WanOptimizer),
        ])
        .ingress(VmId(0))
        .egress(VmId(1))
        .bandwidth_gbps(10.0)
        .build()
        .unwrap();
    for placer in [
        &OpticalFirstPlacer::new() as &dyn VnfPlacer,
        &CostDrivenPlacer::new(),
    ] {
        let hosts = placer.place(&c, &chain).unwrap();
        assert!(
            hosts.iter().all(|h| matches!(h, HostLocation::Server(_))),
            "{} placed a heavy VNF optically",
            placer.name()
        );
        assert_eq!(estimated_oeo(&hosts), 1, "one contiguous electronic run");
    }
}

#[test]
fn no_opto_routers_degenerates_to_electronic() {
    let (dc, al, servers) = setup(0.0, 5);
    let empty_o = HashMap::new();
    let empty_s = HashMap::new();
    let c = ctx(&dc, &al, &servers, &empty_o, &empty_s);
    let chain = fig5::green(VmId(0), VmId(1));
    for placer in [
        &OpticalFirstPlacer::new() as &dyn VnfPlacer,
        &CostDrivenPlacer::new(),
    ] {
        let hosts = placer.place(&c, &chain).unwrap();
        assert!(hosts.iter().all(|h| matches!(h, HostLocation::Server(_))));
    }
}

#[test]
fn capacity_accumulates_across_chains() {
    let (dc, al, servers) = setup(1.0, 6);
    // One router's worth of capacity: fill it with firewalls (1 cpu each,
    // cap 4) chain by chain.
    let mut opto_used: HashMap<alvc_topology::OpsId, alvc_nfv::ResourceDemand> = HashMap::new();
    let server_used = HashMap::new();
    let chain = ChainSpec::builder("fw")
        .linear([VnfSpec::of(VnfType::Firewall)])
        .ingress(VmId(0))
        .egress(VmId(1))
        .build()
        .unwrap();
    let opto_count = {
        let c = ctx(&dc, &al, &servers, &opto_used, &server_used);
        c.opto_candidates().len()
    };
    assert!(opto_count > 0);
    let capacity_total = opto_count * 4; // 4 cpu each
    let mut optical_placements = 0;
    for _ in 0..(capacity_total + 3) {
        let hosts = {
            let c = ctx(&dc, &al, &servers, &opto_used, &server_used);
            OpticalFirstPlacer::new().place(&c, &chain).unwrap()
        };
        match hosts[0] {
            HostLocation::OptoRouter(o) => {
                optical_placements += 1;
                let e = opto_used.entry(o).or_default();
                *e = e.plus(&VnfType::Firewall.default_demand());
            }
            HostLocation::Server(_) => {}
        }
    }
    assert_eq!(
        optical_placements, capacity_total,
        "router capacity bounds optical placements"
    );
}

#[test]
fn cost_driven_never_worse_than_optical_first_under_scarcity() {
    // One optoelectronic router with 2 CPU: capacity for two light VNFs of
    // a 5-VNF light chain. Optical-first spends them on the first two
    // (splitting the remaining electronic run achieves nothing); the
    // cost-driven placer spends them where runs shrink.
    let mut dc = DataCenter::new();
    let (r0, t0) = dc.add_rack();
    let s0 = dc.add_server(r0);
    let vm0 = dc.add_vm(s0, alvc_topology::ServiceType::WebService);
    let vm1 = dc.add_vm(s0, alvc_topology::ServiceType::WebService);
    let opto = dc.add_ops(Some(OptoCapacity {
        cpu: 2.0,
        memory_gib: 64.0,
        storage_gib: 64.0,
        buffer_mib: 64.0,
    }));
    dc.connect_tor_ops(t0, opto);
    let al = PaperGreedy::new()
        .construct(&dc, &[vm0, vm1], &OpsAvailability::all())
        .unwrap();
    let servers = vec![s0];
    let empty_o = HashMap::new();
    let empty_s = HashMap::new();
    let c = ctx(&dc, &al, &servers, &empty_o, &empty_s);
    let chain = ChainSpec::builder("light5")
        .linear(vec![VnfSpec::of(VnfType::Firewall); 5])
        .ingress(vm0)
        .egress(vm1)
        .build()
        .unwrap();
    let of = OpticalFirstPlacer::new().place(&c, &chain).unwrap();
    let cd = CostDrivenPlacer::new().place(&c, &chain).unwrap();
    let (_, of_optical) = domain_split(&of);
    let (_, cd_optical) = domain_split(&cd);
    assert_eq!(of_optical, 2, "capacity admits exactly two optical VNFs");
    assert!(cd_optical <= 2);
    assert!(
        estimated_oeo(&cd) <= estimated_oeo(&of),
        "cost-driven ({}) must not exceed optical-first ({})",
        estimated_oeo(&cd),
        estimated_oeo(&of)
    );
}

#[test]
fn placers_are_deterministic() {
    let (dc, al, servers) = setup(0.5, 7);
    let empty_o = HashMap::new();
    let empty_s = HashMap::new();
    let c = ctx(&dc, &al, &servers, &empty_o, &empty_s);
    let chain = fig5::green(VmId(0), VmId(1));
    for placer in [
        &OpticalFirstPlacer::new() as &dyn VnfPlacer,
        &CostDrivenPlacer::new(),
    ] {
        let a = placer.place(&c, &chain).unwrap();
        let b = placer.place(&c, &chain).unwrap();
        assert_eq!(a, b, "{}", placer.name());
    }
}

#[test]
fn empty_chain_places_nothing() {
    let (dc, al, servers) = setup(0.5, 8);
    let empty_o = HashMap::new();
    let empty_s = HashMap::new();
    let c = ctx(&dc, &al, &servers, &empty_o, &empty_s);
    let chain = ChainSpec::builder("fwd")
        .passthrough()
        .ingress(VmId(0))
        .egress(VmId(1))
        .build()
        .unwrap();
    assert!(CostDrivenPlacer::new()
        .place(&c, &chain)
        .unwrap()
        .is_empty());
    assert!(OpticalFirstPlacer::new()
        .place(&c, &chain)
        .unwrap()
        .is_empty());
}
