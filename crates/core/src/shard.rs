//! Pod-sharded abstraction-layer construction.
//!
//! The flat batch engine ([`crate::construction::construct_layers`]) treats
//! the whole data center as one OPS pool. At hyperscale (100k–1M VMs) that
//! single pool becomes the bottleneck: every cluster's candidate scan walks
//! the full core, and the serial commit loop touches global state per
//! cluster. This module partitions the problem by **pod** (see
//! [`alvc_topology::PodId`]):
//!
//! * each pod gets its own [`PodShard`] — the pod's OPS list plus an
//!   availability template in which every *foreign* OPS is blocked, so a
//!   constructor running inside the shard can never select (or absorb, via
//!   connectivity augmentation) a switch from another pod;
//! * clusters are split into pod-local sub-clusters, each pod's
//!   sub-batch runs the existing flat engine **in parallel across pods**
//!   (rayon, with the `parallel` feature), and results are collected in
//!   pod-id order so the outcome is independent of thread schedule;
//! * sub-layers are then **merged at the boundary**, serially in cluster
//!   order: a cluster spanning several pods gets the union of its pod-local
//!   layers, re-connected through the remaining global availability (the
//!   per-pod gateway OPSs of the boundary ring). Conflicts or merge
//!   failures fall back to a serial whole-DC construction for that cluster,
//!   so the sharded path never returns worse answers than the flat one —
//!   only faster ones.
//!
//! Determinism: pod fan-out order, per-pod sub-batches, and the merge loop
//! are all fixed by (pod id, cluster index); no step depends on thread
//! timing. On a single-pod data center the sharded path degenerates to the
//! flat engine exactly.

use std::mem::size_of;

use alvc_topology::{DataCenter, OpsId, PodId, VmId};

use crate::abstraction_layer::AbstractionLayer;
use crate::construction::{construct_layers, ensure_connected, AlConstruct, OpsAvailability};
use crate::error::ConstructionError;
use crate::label::LabelId;
use crate::manager::{ClusterId, ClusterManager};

/// One pod's slice of the sharded state: its OPS roster and the
/// availability template blocking everything outside the pod.
#[derive(Debug, Clone)]
pub struct PodShard {
    pod: PodId,
    ops: Vec<OpsId>,
    foreign_blocked: OpsAvailability,
}

impl PodShard {
    /// The pod this shard covers.
    pub fn pod(&self) -> PodId {
        self.pod
    }

    /// The pod's OPSs, in id order.
    pub fn ops(&self) -> &[OpsId] {
        &self.ops
    }

    /// An availability view for constructing inside this shard: every OPS
    /// outside the pod is blocked, plus everything `global` blocks.
    pub fn availability(&self, global: &OpsAvailability) -> OpsAvailability {
        let mut avail = self.foreign_blocked.clone();
        for &o in &self.ops {
            if !global.is_available(o) {
                avail.block(o);
            }
        }
        avail
    }

    /// Estimated resident bytes of this shard's bookkeeping (OPS roster +
    /// foreign-block set, counting hash-set slots at ~2× entry size).
    pub fn memory_bytes(&self) -> usize {
        self.ops.len() * size_of::<OpsId>()
            + self.foreign_blocked.blocked_count() * size_of::<OpsId>() * 2
    }
}

/// The pod partition of a data center: one [`PodShard`] per pod.
///
/// # Example
///
/// ```
/// use alvc_core::ShardedState;
/// use alvc_topology::AlvcTopologyBuilder;
///
/// let dc = AlvcTopologyBuilder::new().racks(2).ops_count(3).pods(4).seed(1).build();
/// let state = ShardedState::new(&dc);
/// assert_eq!(state.shard_count(), 4);
/// assert_eq!(state.shards().map(|s| s.ops().len()).sum::<usize>(), dc.ops_count());
/// ```
#[derive(Debug, Clone)]
pub struct ShardedState {
    shards: Vec<PodShard>,
}

impl ShardedState {
    /// Builds the pod partition of `dc`.
    pub fn new(dc: &DataCenter) -> Self {
        let n = dc.pod_count();
        let mut per_pod: Vec<Vec<OpsId>> = vec![Vec::new(); n];
        for ops in dc.ops_ids() {
            per_pod[dc.pod_of_ops(ops).index()].push(ops);
        }
        let shards = per_pod
            .into_iter()
            .enumerate()
            .map(|(p, ops)| {
                let foreign_blocked = OpsAvailability::with_blocked(
                    dc.ops_ids().filter(|o| dc.pod_of_ops(*o).index() != p),
                );
                PodShard {
                    pod: PodId(p),
                    ops,
                    foreign_blocked,
                }
            })
            .collect();
        ShardedState { shards }
    }

    /// Number of shards (= pods).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard of `pod`.
    ///
    /// # Panics
    ///
    /// Panics if `pod` is out of range.
    pub fn shard(&self, pod: PodId) -> &PodShard {
        &self.shards[pod.index()]
    }

    /// Iterates over shards in pod order.
    pub fn shards(&self) -> impl Iterator<Item = &PodShard> {
        self.shards.iter()
    }

    /// Splits `vms` into pod-local groups, in pod order; empty pods are
    /// omitted. Order within a group follows the input order.
    pub fn split_by_pod(dc: &DataCenter, vms: &[VmId]) -> Vec<(PodId, Vec<VmId>)> {
        let mut per_pod: Vec<Vec<VmId>> = vec![Vec::new(); dc.pod_count()];
        for &vm in vms {
            per_pod[dc.pod_of_vm(vm).index()].push(vm);
        }
        per_pod
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(p, g)| (PodId(p), g))
            .collect()
    }
}

/// Per-shard construction statistics reported by
/// [`construct_layers_sharded`].
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Per pod: (sub-clusters constructed, estimated shard bytes).
    pub per_shard: Vec<(usize, usize)>,
    /// Clusters whose sub-layers spanned more than one pod and were merged
    /// at the boundary.
    pub merged_clusters: usize,
    /// Clusters re-constructed serially against the whole DC (sub-layer
    /// failure or merge conflict).
    pub fallbacks: usize,
}

impl ShardReport {
    /// Largest estimated shard footprint in bytes.
    pub fn peak_shard_bytes(&self) -> usize {
        self.per_shard.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }

    /// Mean estimated shard footprint in bytes.
    pub fn mean_shard_bytes(&self) -> usize {
        if self.per_shard.is_empty() {
            return 0;
        }
        self.per_shard.iter().map(|&(_, b)| b).sum::<usize>() / self.per_shard.len()
    }
}

/// Pod-sharded batch construction: like
/// [`construct_layers`] but
/// partitioned by pod and fanned out shard-parallel, with
/// merge-at-boundary for clusters spanning pods.
///
/// Guarantees, matching the flat engine: deterministic (independent of
/// thread schedule), committed layers pairwise OPS-disjoint and disjoint
/// from `available`'s blocked set, and every `Ok` layer valid for its
/// cluster.
pub fn construct_layers_sharded(
    dc: &DataCenter,
    clusters: &[Vec<VmId>],
    ctor: &(dyn AlConstruct + Sync),
    available: &OpsAvailability,
) -> (
    Vec<Result<AbstractionLayer, ConstructionError>>,
    ShardReport,
) {
    let mut report = ShardReport::default();
    if clusters.is_empty() {
        return (Vec::new(), report);
    }
    let _span = alvc_telemetry::span!("alvc_core.shard.construct_layers_sharded_us");
    let mut _trace_span = alvc_telemetry::trace::child_span("core.construct_sharded");
    _trace_span.add_field("clusters", clusters.len());
    let state = ShardedState::new(dc);
    let n_pods = state.shard_count();

    // Split every cluster into pod-local sub-clusters and bucket them by
    // pod, preserving cluster order inside each bucket.
    // sub_of_cluster[c] lists (pod, index into that pod's sub-batch).
    let mut pod_batches: Vec<Vec<Vec<VmId>>> = vec![Vec::new(); n_pods];
    let mut sub_of_cluster: Vec<Vec<(usize, usize)>> = Vec::with_capacity(clusters.len());
    for vms in clusters {
        let mut subs = Vec::new();
        for (pod, group) in ShardedState::split_by_pod(dc, vms) {
            let p = pod.index();
            subs.push((p, pod_batches[p].len()));
            pod_batches[p].push(group);
        }
        sub_of_cluster.push(subs);
    }

    // Shard-parallel construction: each pod runs the flat batch engine
    // against its foreign-blocked availability. Results are collected in
    // pod order, so the fan-out is deterministic.
    let pod_results = construct_pods(dc, &state, &pod_batches, ctor, available);
    for (p, shard) in state.shards().enumerate() {
        report.per_shard.push((
            pod_batches[p].len(),
            shard.memory_bytes()
                + pod_batches[p]
                    .iter()
                    .map(|g| g.len() * size_of::<VmId>())
                    .sum::<usize>(),
        ));
    }

    // Serial merge in cluster order against the running global pool.
    let mut pool = available.clone();
    let mut results = Vec::with_capacity(clusters.len());
    for (c, subs) in sub_of_cluster.iter().enumerate() {
        let merged = merge_cluster(dc, subs, &pod_results, &pool, &mut report);
        let resolved = match merged {
            Ok(al) => Ok(al),
            Err(_) => {
                // Merge-at-boundary failed (sub-layer error, OPS conflict,
                // or un-connectable union): rebuild this cluster serially
                // against the true remaining availability.
                report.fallbacks += 1;
                ctor.construct(dc, &clusters[c], &pool)
            }
        };
        if let Ok(al) = &resolved {
            for &o in al.ops() {
                pool.block(o);
            }
        }
        results.push(resolved);
    }
    alvc_telemetry::counter!("alvc_core.shard.merged_clusters").add(report.merged_clusters as u64);
    alvc_telemetry::counter!("alvc_core.shard.fallbacks").add(report.fallbacks as u64);
    (results, report)
}

/// Merges a cluster's pod-local sub-layers: single-pod clusters pass
/// through; multi-pod unions are re-connected through the remaining global
/// availability. Errors if any sub-layer failed or a sub-layer OPS was
/// already claimed during the merge loop.
fn merge_cluster(
    dc: &DataCenter,
    subs: &[(usize, usize)],
    pod_results: &[Vec<Result<AbstractionLayer, ConstructionError>>],
    pool: &OpsAvailability,
    report: &mut ShardReport,
) -> Result<AbstractionLayer, ConstructionError> {
    if subs.is_empty() {
        return Err(ConstructionError::EmptyCluster);
    }
    let mut tors = Vec::new();
    let mut ops = Vec::new();
    for &(p, i) in subs {
        let al = pod_results[p][i].as_ref().map_err(Clone::clone)?;
        if al.ops().iter().any(|&o| !pool.is_available(o)) {
            // An earlier cluster's boundary bridge absorbed one of our
            // switches; the conflict fallback rebuilds us serially.
            return Err(ConstructionError::Disconnected);
        }
        tors.extend_from_slice(al.tors());
        ops.extend_from_slice(al.ops());
    }
    tors.sort();
    tors.dedup();
    ops.sort();
    ops.dedup();
    let union = AbstractionLayer::new(tors, ops);
    if subs.len() == 1 {
        return Ok(union);
    }
    report.merged_clusters += 1;
    ensure_connected(dc, union, pool)
}

#[cfg(feature = "parallel")]
fn construct_pods(
    dc: &DataCenter,
    state: &ShardedState,
    pod_batches: &[Vec<Vec<VmId>>],
    ctor: &(dyn AlConstruct + Sync),
    available: &OpsAvailability,
) -> Vec<Vec<Result<AbstractionLayer, ConstructionError>>> {
    use rayon::prelude::*;
    // Rayon workers have no ambient trace context: capture the caller's
    // before the fan-out so per-pod spans parent under it.
    let ctx = alvc_telemetry::trace::current_ctx();
    (0..pod_batches.len())
        .into_par_iter()
        .map(|p| construct_one_pod(dc, state, pod_batches, ctor, available, p, ctx))
        .collect()
}

#[cfg(not(feature = "parallel"))]
fn construct_pods(
    dc: &DataCenter,
    state: &ShardedState,
    pod_batches: &[Vec<Vec<VmId>>],
    ctor: &(dyn AlConstruct + Sync),
    available: &OpsAvailability,
) -> Vec<Vec<Result<AbstractionLayer, ConstructionError>>> {
    let ctx = alvc_telemetry::trace::current_ctx();
    (0..pod_batches.len())
        .map(|p| construct_one_pod(dc, state, pod_batches, ctor, available, p, ctx))
        .collect()
}

/// One pod's shard-local construction, timed into the per-pod
/// `alvc_core.shard.pod_construct_us` histogram (the per-pod SLO base) and
/// traced as a `core.construct_pod` child span of `ctx`.
fn construct_one_pod(
    dc: &DataCenter,
    state: &ShardedState,
    pod_batches: &[Vec<Vec<VmId>>],
    ctor: &(dyn AlConstruct + Sync),
    available: &OpsAvailability,
    p: usize,
    ctx: alvc_telemetry::TraceCtx,
) -> Vec<Result<AbstractionLayer, ConstructionError>> {
    let _g = alvc_telemetry::trace::enter(ctx);
    let mut sp = alvc_telemetry::trace::child_span("core.construct_pod");
    sp.add_field("pod", p);
    sp.add_field("sub_clusters", pod_batches[p].len());
    let start = std::time::Instant::now();
    let avail = state.shard(PodId(p)).availability(available);
    let out = construct_layers(dc, &pod_batches[p], ctor, &avail);
    alvc_telemetry::histogram_with("alvc_core.shard.pod_construct_us", &format!("pod{p}"))
        .record(start.elapsed().as_secs_f64() * 1e6);
    out
}

impl ClusterManager {
    /// Pod-sharded batch construction and registration: the sharded
    /// counterpart of [`ClusterManager::construct_all_labeled`], fanning
    /// out per pod via [`construct_layers_sharded`]. Returns per-request
    /// results plus the per-shard report (sub-cluster counts, estimated
    /// shard bytes, merge/fallback counts).
    pub fn construct_all_sharded(
        &mut self,
        dc: &DataCenter,
        requests: Vec<(LabelId, Vec<VmId>)>,
        constructor: &(dyn AlConstruct + Sync),
    ) -> (Vec<Result<ClusterId, ConstructionError>>, ShardReport) {
        let clusters: Vec<Vec<VmId>> = requests
            .iter()
            .map(|(_, vms)| {
                let mut vms = vms.clone();
                vms.sort();
                vms.dedup();
                vms
            })
            .collect();
        let (layers, report) =
            construct_layers_sharded(dc, &clusters, constructor, self.availability());
        let results = layers
            .into_iter()
            .zip(requests.into_iter().zip(clusters))
            .map(|(layer, ((label, _), vms))| layer.map(|al| self.register_cluster(label, vms, al)))
            .collect();
        (results, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::PaperGreedy;
    use alvc_topology::{AlvcTopologyBuilder, OpsInterconnect};
    use std::collections::HashSet;

    fn pod_dc(pods: usize, seed: u64) -> DataCenter {
        AlvcTopologyBuilder::new()
            .racks(6)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(12)
            .tor_ops_degree(3)
            .interconnect(OpsInterconnect::FullMesh)
            .pods(pods)
            .seed(seed)
            .build()
    }

    fn pod_local_clusters(dc: &DataCenter, chunk: usize) -> Vec<Vec<VmId>> {
        // Chunked VM groups per pod, so every cluster is pod-local.
        let mut out = Vec::new();
        for pod in dc.pod_ids() {
            let vms: Vec<VmId> = dc.vm_ids().filter(|&vm| dc.pod_of_vm(vm) == pod).collect();
            out.extend(vms.chunks(chunk).map(<[_]>::to_vec));
        }
        out
    }

    #[test]
    fn sharded_state_partitions_ops() {
        let dc = pod_dc(3, 1);
        let state = ShardedState::new(&dc);
        assert_eq!(state.shard_count(), 3);
        let mut seen = HashSet::new();
        for shard in state.shards() {
            for &o in shard.ops() {
                assert_eq!(dc.pod_of_ops(o), shard.pod());
                assert!(seen.insert(o));
            }
            assert!(shard.memory_bytes() > 0);
        }
        assert_eq!(seen.len(), dc.ops_count());
    }

    #[test]
    fn shard_availability_blocks_foreign_and_global() {
        let dc = pod_dc(2, 2);
        let state = ShardedState::new(&dc);
        let shard = state.shard(PodId(0));
        let own = shard.ops()[0];
        let foreign = state.shard(PodId(1)).ops()[0];
        let mut global = OpsAvailability::all();
        global.block(own);
        let avail = shard.availability(&global);
        assert!(!avail.is_available(foreign), "foreign OPS blocked");
        assert!(!avail.is_available(own), "globally blocked OPS blocked");
        assert!(avail.is_available(shard.ops()[1]));
    }

    #[test]
    fn sharded_construction_is_disjoint_valid_and_deterministic() {
        let dc = pod_dc(4, 7);
        let clusters = pod_local_clusters(&dc, 8);
        let (a, report) =
            construct_layers_sharded(&dc, &clusters, &PaperGreedy::new(), &OpsAvailability::all());
        let (b, _) =
            construct_layers_sharded(&dc, &clusters, &PaperGreedy::new(), &OpsAvailability::all());
        assert_eq!(a, b, "sharded construction must be deterministic");
        assert_eq!(report.per_shard.len(), 4);
        let mut seen: HashSet<OpsId> = HashSet::new();
        for (c, res) in a.iter().enumerate() {
            let al = res.as_ref().expect("per-pod full mesh fits these ALs");
            assert!(al.validate(&dc, &clusters[c]).is_ok());
            for &o in al.ops() {
                assert!(seen.insert(o), "OPS {o} claimed by two layers");
            }
        }
    }

    #[test]
    fn cross_pod_cluster_merges_at_boundary() {
        let dc = pod_dc(2, 9);
        // One cluster spanning both pods.
        let clusters = vec![dc.vm_ids().collect::<Vec<_>>()];
        let (results, report) =
            construct_layers_sharded(&dc, &clusters, &PaperGreedy::new(), &OpsAvailability::all());
        let al = results[0].as_ref().expect("boundary ring connects pods");
        assert!(al.validate(&dc, &clusters[0]).is_ok());
        assert!(al.is_connected(&dc));
        let pods: HashSet<_> = al.ops().iter().map(|&o| dc.pod_of_ops(o)).collect();
        assert!(pods.len() >= 2, "layer spans pods");
        assert_eq!(report.merged_clusters + report.fallbacks, 1);
    }

    #[test]
    fn single_pod_sharded_matches_flat() {
        let dc = pod_dc(1, 21);
        let vms: Vec<_> = dc.vm_ids().collect();
        let clusters: Vec<Vec<_>> = vms.chunks(8).map(<[_]>::to_vec).collect();
        let flat = construct_layers(&dc, &clusters, &PaperGreedy::new(), &OpsAvailability::all());
        let (sharded, report) =
            construct_layers_sharded(&dc, &clusters, &PaperGreedy::new(), &OpsAvailability::all());
        assert_eq!(flat, sharded);
        assert_eq!(report.merged_clusters, 0);
    }

    #[test]
    fn manager_construct_all_sharded_registers_disjoint() {
        let dc = pod_dc(3, 13);
        let mut mgr = ClusterManager::new();
        let requests: Vec<(LabelId, Vec<VmId>)> = pod_local_clusters(&dc, 10)
            .into_iter()
            .enumerate()
            .map(|(i, vms)| (LabelId::intern(&format!("shard-test-{i}")), vms))
            .collect();
        let n = requests.len();
        let (results, report) = mgr.construct_all_sharded(&dc, requests, &PaperGreedy::new());
        assert_eq!(results.len(), n);
        assert!(results.iter().all(Result::is_ok));
        assert!(mgr.verify_disjoint());
        assert_eq!(mgr.availability().blocked_count(), mgr.owned_ops_count());
        assert!(report.peak_shard_bytes() >= report.mean_shard_bytes());
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let dc = pod_dc(2, 3);
        let (results, report) =
            construct_layers_sharded(&dc, &[], &PaperGreedy::new(), &OpsAvailability::all());
        assert!(results.is_empty());
        assert_eq!(report.peak_shard_bytes(), 0);
        assert_eq!(report.mean_shard_bytes(), 0);
    }
}
