//! Abstraction layer construction algorithms (§III.C, Fig. 4).
//!
//! The paper's procedure has two covering stages:
//!
//! 1. **ToR selection** — "draw a bipartite graph that connects all the VMs
//!    to ToRs and select the minimum set of vertices", done greedily by
//!    "maximum incoming and outgoing connections" (incoming = machine links,
//!    outgoing = OPS uplinks);
//! 2. **OPS selection** — "using the maximum-weighted algorithm, we select
//!    the OPSs against the selected ToRs … this set of OPSs will be declared
//!    as the final AL".
//!
//! This module implements that pipeline ([`PaperGreedy`]), the random
//! baseline of the authors' prior work \[15\] ([`RandomSelection`]), an
//! exact branch-and-bound variant ([`ExactCover`]) quantifying how close the
//! greedy comes to the true minimum, and a non-adaptive static-degree
//! ablation ([`StaticDegreeGreedy`]).
//!
//! All constructors finish with a **connectivity augmentation** pass: cover
//! feasibility alone does not make the selected switches one connected
//! component (the paper assumes it implicitly), so if the layer is
//! disconnected we grow it along shortest OPS paths until it is, or fail
//! with [`ConstructionError::Disconnected`].

mod cost_aware;
mod exact;
mod paper;
mod random;
mod redundant;
pub mod reference;
mod static_degree;

pub use cost_aware::CostAwareGreedy;
pub use exact::ExactCover;
pub use paper::PaperGreedy;
pub use random::RandomSelection;
pub use redundant::RedundantGreedy;
pub use reference::NaiveGreedy;
pub use static_degree::StaticDegreeGreedy;

use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use alvc_graph::{LazySelector, NodeId};
use alvc_topology::{DataCenter, OpsId, TorId, VmId};

use crate::abstraction_layer::AbstractionLayer;
use crate::error::ConstructionError;

/// Which OPSs a constructor may use. Enforces the paper's rule that "one
/// OPS cannot be part of two ALs at the same time": OPSs already owned by
/// another cluster are blocked.
///
/// # Example
///
/// ```
/// use alvc_core::OpsAvailability;
/// use alvc_topology::OpsId;
///
/// let mut avail = OpsAvailability::all();
/// assert!(avail.is_available(OpsId(0)));
/// avail.block(OpsId(0));
/// assert!(!avail.is_available(OpsId(0)));
/// avail.release(OpsId(0));
/// assert!(avail.is_available(OpsId(0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpsAvailability {
    blocked: HashSet<OpsId>,
}

impl OpsAvailability {
    /// Everything available.
    pub fn all() -> Self {
        OpsAvailability::default()
    }

    /// Everything available except the given OPSs.
    pub fn with_blocked(blocked: impl IntoIterator<Item = OpsId>) -> Self {
        OpsAvailability {
            blocked: blocked.into_iter().collect(),
        }
    }

    /// Marks `ops` as owned by some AL.
    pub fn block(&mut self, ops: OpsId) {
        self.blocked.insert(ops);
    }

    /// Releases `ops` back to the pool.
    pub fn release(&mut self, ops: OpsId) {
        self.blocked.remove(&ops);
    }

    /// Returns `true` if `ops` may be used.
    pub fn is_available(&self, ops: OpsId) -> bool {
        !self.blocked.contains(&ops)
    }

    /// Number of blocked OPSs.
    pub fn blocked_count(&self) -> usize {
        self.blocked.len()
    }
}

/// An abstraction layer construction algorithm.
///
/// Implementations must be deterministic for a given input (randomized
/// algorithms derive their RNG from a configured seed), so experiments are
/// reproducible.
pub trait AlConstruct {
    /// Short identifier used in reports ("paper-greedy", "random", …).
    fn name(&self) -> &'static str;

    /// Builds an abstraction layer for the cluster `vms` of `dc`, using
    /// only OPSs allowed by `available`.
    ///
    /// # Errors
    ///
    /// See [`ConstructionError`]; in particular constructors fail rather
    /// than return a layer that does not cover or connect the cluster.
    fn construct(
        &self,
        dc: &DataCenter,
        vms: &[VmId],
        available: &OpsAvailability,
    ) -> Result<AbstractionLayer, ConstructionError>;
}

// ----- shared pipeline pieces used by the concrete constructors -----------

/// A covering candidate (a ToR covering VMs, or an OPS covering ToRs) in
/// the compact indexed form the incremental greedy loop works on.
struct CoverCandidate<Id> {
    id: Id,
    degree: usize,
    members: Vec<u32>,
}

/// The shared incremental greedy cover loop behind [`select_tors_greedy`]
/// and [`select_ops_greedy`]: repeatedly select the candidate maximizing
/// `(gain, degree, Reverse(id))` via a [`LazySelector`], decaying gains
/// through the `element → candidates` inverted index (in CSR form:
/// element `e`'s candidates are `elem_data[elem_offsets[e]..elem_offsets
/// [e + 1]]`, avoiding one heap allocation per element) as elements get
/// covered. Identical output to the historical per-round rescan
/// (see `reference::select_cover_naive`), in `O((cands + decays) log cands
/// + edges)` instead of `O(rounds × edges)`.
///
/// Returns the chosen candidate ids (selection order) or the index of the
/// first element left uncoverable.
fn greedy_cover_indexed<Id: Copy + Ord>(
    cands: &[CoverCandidate<Id>],
    elem_offsets: &[u32],
    elem_data: &[u32],
) -> Result<Vec<Id>, usize> {
    let n_elems = elem_offsets.len() - 1;
    let mut gains: Vec<usize> = cands.iter().map(|c| c.members.len()).collect();
    let mut covered = vec![false; n_elems];
    let mut n_covered = 0;
    let mut used = vec![false; cands.len()];
    let mut selected = Vec::new();
    // Gain decrements, accumulated per covered element (its full candidate
    // list is walked exactly once) so the inner decay loop stays untouched.
    let mut decays: u64 = 0;
    let key = |ci: usize, gain: usize| (gain, cands[ci].degree, Reverse(cands[ci].id));
    let mut selector = LazySelector::with_capacity(cands.len());
    for (ci, &g) in gains.iter().enumerate() {
        if g > 0 {
            selector.push(ci, key(ci, g));
        }
    }
    while n_covered < n_elems {
        let Some(ci) =
            selector.pop_max(|ci| (!used[ci] && gains[ci] > 0).then(|| key(ci, gains[ci])))
        else {
            alvc_telemetry::counter!("alvc_core.construction.rounds").add(selected.len() as u64);
            alvc_telemetry::counter!("alvc_core.construction.decays").add(decays);
            return Err(covered
                .iter()
                .position(|&c| !c)
                .expect("uncovered element exists"));
        };
        used[ci] = true;
        selected.push(cands[ci].id);
        for k in 0..cands[ci].members.len() {
            let e = cands[ci].members[k] as usize;
            if !covered[e] {
                covered[e] = true;
                n_covered += 1;
                decays += u64::from(elem_offsets[e + 1] - elem_offsets[e]);
                for &cj in &elem_data[elem_offsets[e] as usize..elem_offsets[e + 1] as usize] {
                    gains[cj as usize] -= 1;
                }
            }
        }
    }
    alvc_telemetry::counter!("alvc_core.construction.rounds").add(selected.len() as u64);
    alvc_telemetry::counter!("alvc_core.construction.decays").add(decays);
    Ok(selected)
}

/// Greedy ToR selection: repeatedly pick the ToR covering the most
/// still-uncovered VMs; ties break toward the ToR with more OPS uplinks
/// (the paper's "incoming and outgoing connections" weight), then the lower
/// id. Runs on the incremental lazy-greedy engine; output is identical to
/// [`reference::select_tors_greedy_naive`].
pub(crate) fn select_tors_greedy(
    dc: &DataCenter,
    vms: &[VmId],
) -> Result<Vec<TorId>, ConstructionError> {
    if vms.is_empty() {
        return Err(ConstructionError::EmptyCluster);
    }
    // Dense slot table (ToR index → candidate index) and a CSR inverted
    // index: both avoid per-element hashing/allocation on the hot path.
    let mut tor_slot: Vec<u32> = vec![u32::MAX; dc.tor_count()];
    let mut cands: Vec<CoverCandidate<TorId>> = Vec::new();
    let mut elem_offsets: Vec<u32> = Vec::with_capacity(vms.len() + 1);
    let mut elem_data: Vec<u32> = Vec::with_capacity(vms.len());
    elem_offsets.push(0);
    for (i, &vm) in vms.iter().enumerate() {
        let tors = dc.tors_of_vm(vm);
        if tors.is_empty() {
            return Err(ConstructionError::UncoverableVm(vm));
        }
        for &t in tors {
            let slot = &mut tor_slot[t.index()];
            if *slot == u32::MAX {
                *slot = cands.len() as u32;
                cands.push(CoverCandidate {
                    id: t,
                    degree: dc.ops_of_tor(t).len(),
                    members: Vec::new(),
                });
            }
            let ci = *slot;
            cands[ci as usize].members.push(i as u32);
            elem_data.push(ci);
        }
        elem_offsets.push(elem_data.len() as u32);
    }
    match greedy_cover_indexed(&cands, &elem_offsets, &elem_data) {
        Ok(mut selected) => {
            selected.sort();
            Ok(selected)
        }
        Err(i) => Err(ConstructionError::UncoverableVm(vms[i])),
    }
}

/// Greedy OPS selection over the selected ToRs, restricted to available
/// OPSs: repeatedly pick the available OPS covering the most uncovered
/// ToRs; ties break toward the OPS with more ToR links, then the lower id.
/// Runs on the incremental lazy-greedy engine; output is identical to
/// [`reference::select_ops_greedy_naive`].
pub(crate) fn select_ops_greedy(
    dc: &DataCenter,
    tors: &[TorId],
    available: &OpsAvailability,
) -> Result<Vec<OpsId>, ConstructionError> {
    let mut ops_slot: Vec<u32> = vec![u32::MAX; dc.ops_count()];
    let mut cands: Vec<CoverCandidate<OpsId>> = Vec::new();
    let mut elem_offsets: Vec<u32> = Vec::with_capacity(tors.len() + 1);
    let mut elem_data: Vec<u32> = Vec::with_capacity(tors.len());
    elem_offsets.push(0);
    for &tor in tors {
        let i = elem_offsets.len() - 1;
        let mut any = false;
        for ops in dc.ops_of_tor(tor) {
            if available.is_available(ops) {
                let slot = &mut ops_slot[ops.index()];
                if *slot == u32::MAX {
                    *slot = cands.len() as u32;
                    cands.push(CoverCandidate {
                        id: ops,
                        degree: dc.tors_of_ops(ops).len(),
                        members: Vec::new(),
                    });
                }
                let ci = *slot;
                cands[ci as usize].members.push(i as u32);
                elem_data.push(ci);
                any = true;
            }
        }
        if !any {
            return Err(ConstructionError::UncoverableTor(tor));
        }
        elem_offsets.push(elem_data.len() as u32);
    }
    match greedy_cover_indexed(&cands, &elem_offsets, &elem_data) {
        Ok(mut selected) => {
            selected.sort();
            Ok(selected)
        }
        Err(i) => Err(ConstructionError::UncoverableTor(tors[i])),
    }
}

/// Connectivity augmentation: while the layer's switches form more than one
/// component, BFS from the first component through available (non-member)
/// OPSs to reach another component, and absorb the OPSs on that path.
///
/// # Errors
///
/// [`ConstructionError::Disconnected`] if no such path exists.
pub(crate) fn ensure_connected(
    dc: &DataCenter,
    mut al: AbstractionLayer,
    available: &OpsAvailability,
) -> Result<AbstractionLayer, ConstructionError> {
    loop {
        if al.is_connected(dc) {
            return Ok(al);
        }
        // Label the current components of the AL-induced subgraph.
        let members: Vec<NodeId> = al.switch_nodes(dc);
        let member_set: HashSet<NodeId> = members.iter().copied().collect();
        let mut component: HashMap<NodeId, usize> = HashMap::new();
        let mut n_components = 0;
        for &start in &members {
            if component.contains_key(&start) {
                continue;
            }
            let label = n_components;
            n_components += 1;
            let mut queue = VecDeque::from([start]);
            component.insert(start, label);
            while let Some(u) = queue.pop_front() {
                for v in dc.graph().neighbors(u) {
                    if member_set.contains(&v) && !component.contains_key(&v) {
                        component.insert(v, label);
                        queue.push_back(v);
                    }
                }
            }
        }
        debug_assert!(n_components > 1);

        // BFS from component 0 through walkable nodes: members or available
        // OPSs not yet in the layer. Stop at the first node of a different
        // component.
        let walkable = |n: NodeId| -> bool {
            if member_set.contains(&n) {
                return true;
            }
            match dc.graph().node_weight(n) {
                Some(alvc_topology::PhysNode::Ops { id, .. }) => available.is_available(*id),
                _ => false,
            }
        };
        let sources: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|n| component[n] == 0)
            .collect();
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut visited: HashSet<NodeId> = sources.iter().copied().collect();
        let mut queue: VecDeque<NodeId> = sources.into_iter().collect();
        let mut reached: Option<NodeId> = None;
        'bfs: while let Some(u) = queue.pop_front() {
            for v in dc.graph().neighbors(u) {
                if visited.contains(&v) || !walkable(v) {
                    continue;
                }
                visited.insert(v);
                prev.insert(v, u);
                if component.get(&v).copied().unwrap_or(0) != 0 && member_set.contains(&v) {
                    reached = Some(v);
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
        let Some(mut cur) = reached else {
            return Err(ConstructionError::Disconnected);
        };
        // Absorb the OPSs on the connecting path.
        let mut absorbed = false;
        while let Some(&p) = prev.get(&cur) {
            if !member_set.contains(&cur) {
                if let Some(alvc_topology::PhysNode::Ops { id, .. }) = dc.graph().node_weight(cur) {
                    al.insert_ops(*id);
                    absorbed = true;
                }
            }
            cur = p;
        }
        if !absorbed {
            // The path used only existing members yet components differ —
            // cannot happen, but guard against infinite loops.
            return Err(ConstructionError::Disconnected);
        }
    }
}

// ----- batch (fleet) construction ----------------------------------------

/// Constructs one abstraction layer per VM cluster against a shared OPS
/// pool — the batch engine behind [`crate::ClusterManager::construct_all`]
/// and the NFV orchestrator's bulk chain deployment.
///
/// Three phases:
///
/// 1. **Partition** — each cluster's *candidate* OPSs (available switches
///    adjacent to its VMs' ToRs) are computed, and every contested OPS is
///    assigned to exactly one requesting cluster (fewest assignments so
///    far, then lowest cluster index), yielding near-disjoint per-cluster
///    pools.
/// 2. **Optimistic construction** — each cluster is constructed against
///    its restricted pool. With the `parallel` feature (default) this fans
///    out over rayon worker threads; without it, a serial loop.
/// 3. **Serial commit** — in cluster order, a successful optimistic layer
///    commits iff all its OPSs are still unclaimed; otherwise (including
///    optimistic failures, which may be artifacts of the restricted pool)
///    the cluster is re-constructed serially against the true remaining
///    availability.
///
/// Guarantees: the result is **deterministic** (independent of thread
/// schedule), committed layers are pairwise **OPS-disjoint** and disjoint
/// from `available`'s blocked set, and every `Ok` layer is a valid output
/// of `ctor` for its cluster. The result is *not* guaranteed to equal
/// folding [`AlConstruct::construct`] serially over the clusters: an
/// optimistic layer built from a restricted pool may commit even though a
/// serial pass — seeing more candidates — would have chosen differently
/// (see `DESIGN.md`).
pub fn construct_layers(
    dc: &DataCenter,
    clusters: &[Vec<VmId>],
    ctor: &(dyn AlConstruct + Sync),
    available: &OpsAvailability,
) -> Vec<Result<AbstractionLayer, ConstructionError>> {
    if clusters.is_empty() {
        return Vec::new();
    }
    let _span = alvc_telemetry::span!("alvc_core.construction.construct_layers_us");
    // Phase 1: deterministic pool partition over the contested candidates.
    let mut requests: BTreeMap<OpsId, Vec<usize>> = BTreeMap::new();
    for (c, vms) in clusters.iter().enumerate() {
        let mut cands: Vec<OpsId> = Vec::new();
        for &vm in vms {
            for &tor in dc.tors_of_vm(vm) {
                for ops in dc.ops_of_tor(tor) {
                    if available.is_available(ops) {
                        cands.push(ops);
                    }
                }
            }
        }
        cands.sort();
        cands.dedup();
        for o in cands {
            requests.entry(o).or_default().push(c);
        }
    }
    let mut assigned = vec![0usize; clusters.len()];
    let mut owner: HashMap<OpsId, usize> = HashMap::new();
    for (&o, reqs) in &requests {
        let &winner = reqs
            .iter()
            .min_by_key(|&&c| (assigned[c], c))
            .expect("every requested OPS has a requester");
        owner.insert(o, winner);
        assigned[winner] += 1;
    }
    let pools: Vec<OpsAvailability> = (0..clusters.len())
        .map(|c| {
            let mut pool = available.clone();
            for (&o, &w) in &owner {
                if w != c {
                    pool.block(o);
                }
            }
            pool
        })
        .collect();

    // Phase 2: optimistic construction against the restricted pools.
    let optimistic = construct_each(dc, clusters, ctor, &pools);

    // Phase 3: serial conflict resolution in cluster order. The commit
    // check also catches overlaps the partition cannot see, e.g. two
    // connectivity augmentations absorbing the same unrequested bridge OPS.
    let mut pool = available.clone();
    let mut results = Vec::with_capacity(clusters.len());
    let mut optimistic_commits: u64 = 0;
    let mut conflict_fallbacks: u64 = 0;
    for (c, opt) in optimistic.into_iter().enumerate() {
        let resolved = match opt {
            Ok(al) if al.ops().iter().all(|&o| pool.is_available(o)) => {
                optimistic_commits += 1;
                Ok(al)
            }
            _ => {
                conflict_fallbacks += 1;
                ctor.construct(dc, &clusters[c], &pool)
            }
        };
        if let Ok(al) = &resolved {
            alvc_telemetry::histogram!("alvc_core.construction.al_size")
                .record(al.ops().len() as f64);
            for &o in al.ops() {
                pool.block(o);
            }
        }
        results.push(resolved);
    }
    alvc_telemetry::counter!("alvc_core.construction.optimistic_commits").add(optimistic_commits);
    alvc_telemetry::counter!("alvc_core.construction.conflict_fallbacks").add(conflict_fallbacks);
    alvc_telemetry::event!(
        "alvc_core.construction.batch",
        "clusters" = clusters.len(),
        "optimistic_commits" = optimistic_commits,
        "conflict_fallbacks" = conflict_fallbacks,
    );
    results
}

/// Runs `ctor` once per cluster against per-cluster pools — fanned out
/// over rayon with the `parallel` feature, a plain loop without.
#[cfg(feature = "parallel")]
fn construct_each(
    dc: &DataCenter,
    clusters: &[Vec<VmId>],
    ctor: &(dyn AlConstruct + Sync),
    pools: &[OpsAvailability],
) -> Vec<Result<AbstractionLayer, ConstructionError>> {
    use rayon::prelude::*;
    (0..clusters.len())
        .into_par_iter()
        .map(|c| ctor.construct(dc, &clusters[c], &pools[c]))
        .collect()
}

#[cfg(not(feature = "parallel"))]
fn construct_each(
    dc: &DataCenter,
    clusters: &[Vec<VmId>],
    ctor: &(dyn AlConstruct + Sync),
    pools: &[OpsAvailability],
) -> Vec<Result<AbstractionLayer, ConstructionError>> {
    (0..clusters.len())
        .map(|c| ctor.construct(dc, &clusters[c], &pools[c]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvc_topology::{AlvcTopologyBuilder, OpsInterconnect, ServiceType};

    fn line_core_dc() -> DataCenter {
        // tor0-ops0, tor1-ops2; ops0-ops1-ops2 chain. Covers need ops0+ops2,
        // connectivity needs ops1.
        let mut dc = DataCenter::new();
        let (r0, t0) = dc.add_rack();
        let (r1, t1) = dc.add_rack();
        for r in [r0, r1] {
            let s = dc.add_server(r);
            dc.add_vm(s, ServiceType::WebService);
        }
        let o0 = dc.add_ops(None);
        let o1 = dc.add_ops(None);
        let o2 = dc.add_ops(None);
        dc.connect_tor_ops(t0, o0);
        dc.connect_tor_ops(t1, o2);
        dc.connect_ops_ops(o0, o1);
        dc.connect_ops_ops(o1, o2);
        dc
    }

    #[test]
    fn availability_blocks_and_releases() {
        let mut a = OpsAvailability::with_blocked([OpsId(1)]);
        assert!(!a.is_available(OpsId(1)));
        assert!(a.is_available(OpsId(0)));
        assert_eq!(a.blocked_count(), 1);
        a.release(OpsId(1));
        assert!(a.is_available(OpsId(1)));
    }

    #[test]
    fn select_tors_greedy_covers_all_vms() {
        let dc = AlvcTopologyBuilder::new().racks(6).seed(3).build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let tors = select_tors_greedy(&dc, &vms).unwrap();
        // Single-homed servers: every rack hosting VMs must appear.
        assert_eq!(tors.len(), 6);
    }

    #[test]
    fn select_tors_greedy_exploits_dual_homing() {
        // Two racks; server in rack1 dual-homed to tor0 → tor0 covers all.
        let mut dc = DataCenter::new();
        let (r0, _t0) = dc.add_rack();
        let (r1, _t1) = dc.add_rack();
        let s0 = dc.add_server(r0);
        let s1 = dc.add_server(r1);
        dc.add_vm(s0, ServiceType::WebService);
        dc.add_vm(s1, ServiceType::WebService);
        dc.add_access_link(s1, TorId(0));
        let tors = select_tors_greedy(&dc, &dc.vm_ids().collect::<Vec<_>>()).unwrap();
        assert_eq!(tors, vec![TorId(0)]);
    }

    #[test]
    fn select_tors_empty_cluster_rejected() {
        let dc = AlvcTopologyBuilder::new().seed(0).build();
        assert_eq!(
            select_tors_greedy(&dc, &[]),
            Err(ConstructionError::EmptyCluster)
        );
    }

    #[test]
    fn select_ops_greedy_minimizes_on_shared_switch() {
        // tor0,tor1 both see ops1 → one OPS suffices.
        let mut dc = DataCenter::new();
        let (_, t0) = dc.add_rack();
        let (_, t1) = dc.add_rack();
        let o0 = dc.add_ops(None);
        let o1 = dc.add_ops(None);
        let o2 = dc.add_ops(None);
        dc.connect_tor_ops(t0, o0);
        dc.connect_tor_ops(t0, o1);
        dc.connect_tor_ops(t1, o1);
        dc.connect_tor_ops(t1, o2);
        let ops = select_ops_greedy(&dc, &[t0, t1], &OpsAvailability::all()).unwrap();
        assert_eq!(ops, vec![o1]);
    }

    #[test]
    fn select_ops_respects_availability() {
        let mut dc = DataCenter::new();
        let (_, t0) = dc.add_rack();
        let o0 = dc.add_ops(None);
        let o1 = dc.add_ops(None);
        dc.connect_tor_ops(t0, o0);
        dc.connect_tor_ops(t0, o1);
        let avail = OpsAvailability::with_blocked([o0]);
        let ops = select_ops_greedy(&dc, &[t0], &avail).unwrap();
        assert_eq!(ops, vec![o1]);
        let none = OpsAvailability::with_blocked([o0, o1]);
        assert_eq!(
            select_ops_greedy(&dc, &[t0], &none),
            Err(ConstructionError::UncoverableTor(t0))
        );
    }

    #[test]
    fn ensure_connected_absorbs_bridge_ops() {
        let dc = line_core_dc();
        let al = AbstractionLayer::new(vec![TorId(0), TorId(1)], vec![OpsId(0), OpsId(2)]);
        assert!(!al.is_connected(&dc));
        let fixed = ensure_connected(&dc, al, &OpsAvailability::all()).unwrap();
        assert!(fixed.is_connected(&dc));
        assert!(fixed.contains_ops(OpsId(1)));
        assert_eq!(fixed.ops_count(), 3);
    }

    #[test]
    fn ensure_connected_fails_when_bridge_blocked() {
        let dc = line_core_dc();
        let al = AbstractionLayer::new(vec![TorId(0), TorId(1)], vec![OpsId(0), OpsId(2)]);
        let avail = OpsAvailability::with_blocked([OpsId(1)]);
        assert_eq!(
            ensure_connected(&dc, al, &avail),
            Err(ConstructionError::Disconnected)
        );
    }

    #[test]
    fn construct_layers_is_disjoint_valid_and_deterministic() {
        use crate::construction::PaperGreedy;
        let dc = AlvcTopologyBuilder::new()
            .racks(12)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(24)
            .tor_ops_degree(4)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(9)
            .build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let clusters: Vec<Vec<_>> = vms.chunks(8).map(<[_]>::to_vec).collect();
        let a = construct_layers(&dc, &clusters, &PaperGreedy::new(), &OpsAvailability::all());
        let b = construct_layers(&dc, &clusters, &PaperGreedy::new(), &OpsAvailability::all());
        assert_eq!(a, b, "batch construction must be deterministic");
        let mut seen: HashSet<OpsId> = HashSet::new();
        for (c, res) in a.iter().enumerate() {
            let al = res.as_ref().expect("full mesh with 24 OPSs fits 3 ALs");
            assert!(al.validate(&dc, &clusters[c]).is_ok());
            for &o in al.ops() {
                assert!(seen.insert(o), "OPS {o} claimed by two layers");
            }
        }
    }

    #[test]
    fn construct_layers_matches_serial_fold_on_full_mesh() {
        // On a full-mesh core the bare greedy cover is already connected,
        // so an optimistic layer that commits is exactly what the serial
        // fold would build (extra never-winning candidates don't change the
        // argmax) — and a layer that differs must conflict and be redone
        // serially. Either way the batch equals the serial fold here.
        use crate::construction::PaperGreedy;
        let dc = AlvcTopologyBuilder::new()
            .racks(16)
            .servers_per_rack(2)
            .vms_per_server(2)
            .ops_count(32)
            .tor_ops_degree(4)
            .interconnect(OpsInterconnect::FullMesh)
            .seed(23)
            .build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let clusters: Vec<Vec<_>> = vms.chunks(10).map(<[_]>::to_vec).collect();
        let batch = construct_layers(&dc, &clusters, &PaperGreedy::new(), &OpsAvailability::all());
        let mut pool = OpsAvailability::all();
        for (c, res) in batch.iter().enumerate() {
            let serial = PaperGreedy::new().construct(&dc, &clusters[c], &pool);
            assert_eq!(res, &serial, "cluster {c} diverged from the serial fold");
            if let Ok(al) = &serial {
                for &o in al.ops() {
                    pool.block(o);
                }
            }
        }
    }

    #[test]
    fn construct_layers_handles_contention_and_exhaustion() {
        // 2 OPSs, many clusters: later clusters must fail cleanly with a
        // construction error, never panic or overlap.
        use crate::construction::PaperGreedy;
        let dc = AlvcTopologyBuilder::new()
            .racks(6)
            .ops_count(2)
            .tor_ops_degree(1)
            .seed(5)
            .build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let clusters: Vec<Vec<_>> = vms.chunks(2).map(<[_]>::to_vec).collect();
        let results =
            construct_layers(&dc, &clusters, &PaperGreedy::new(), &OpsAvailability::all());
        assert_eq!(results.len(), clusters.len());
        assert!(results.iter().any(|r| r.is_err()), "pool must exhaust");
        let mut seen: HashSet<OpsId> = HashSet::new();
        for res in results.iter().flatten() {
            for &o in res.ops() {
                assert!(seen.insert(o));
            }
        }
    }

    #[test]
    fn construct_layers_empty_input() {
        use crate::construction::PaperGreedy;
        let dc = AlvcTopologyBuilder::new().seed(0).build();
        assert!(
            construct_layers(&dc, &[], &PaperGreedy::new(), &OpsAvailability::all()).is_empty()
        );
    }

    #[test]
    fn ensure_connected_noop_when_connected() {
        let dc = AlvcTopologyBuilder::new()
            .interconnect(OpsInterconnect::Ring)
            .seed(1)
            .build();
        let vms: Vec<_> = dc.vm_ids().collect();
        let tors = select_tors_greedy(&dc, &vms).unwrap();
        let ops = select_ops_greedy(&dc, &tors, &OpsAvailability::all()).unwrap();
        let al = AbstractionLayer::new(tors, ops.clone());
        if al.is_connected(&dc) {
            let same = ensure_connected(&dc, al.clone(), &OpsAvailability::all()).unwrap();
            assert_eq!(same, al);
        }
    }
}
